#!/usr/bin/env python3
"""Memory pressure and quantization: the M property end to end.

    python examples/memory_and_quantization.py

Walks the paper's memory story with the library's tools:

1. the **admission audit** — why Table 2 only runs LLaMA3-8B and
   LLaMA2-13B while CodeLLaMA-34B and QWen2-72B get layer subsets;
2. the **pipeline structure** the 48 KB cores force, and the measured
   (not just derived) bubble fractions, including imbalanced stages;
3. what **int8 quantization** buys: verified-accurate inference on a
   tiny model, then halved stages / doubled KV budget at scale.
"""

import numpy as np

from repro.core import WSE2
from repro.llm import (
    CODELLAMA_34B,
    LLAMA2_13B,
    LLAMA3_8B,
    QWEN2_72B,
    TINY_GQA,
    ReferenceTransformer,
    quantization_error,
    quantize_weights,
    quantized_config,
    synthesize_weights,
)
from repro.runtime import PipelineSchedule, audit_model, required_layer_subset
from repro.runtime.pipeline_sim import simulate_pipeline

MODELS = (LLAMA3_8B, LLAMA2_13B, CODELLAMA_34B, QWEN2_72B)


def admission() -> None:
    print("=== 1. Memory audit on the WSE-2 (Section 7.1's admission) ===")
    for model in MODELS:
        audit = audit_model(model, WSE2)
        print(f"  {audit.summary()}")
        if not audit.fits_end_to_end:
            subset = required_layer_subset(model, WSE2)
            print(f"    -> paper-style layer subset: {subset} of "
                  f"{model.num_layers} layers")


def bubbles() -> None:
    print("\n=== 2. Pipeline stages and measured bubbles (LLaMA3-8B) ===")
    schedule = PipelineSchedule(LLAMA3_8B, WSE2, region_side=360)
    print(f"  stages: {schedule.num_stages}; analytic single-stream "
          f"utilization: {schedule.utilization(1):.2f}")
    for streams in (1, 2, 4, 8):
        run = simulate_pipeline([1.0] * schedule.num_stages,
                                num_tokens=64 * streams, streams=streams)
        print(f"  measured with {streams} stream(s): "
              f"utilization {run.utilization:.2f} "
              f"(bubbles {run.bubble_fraction:.0%})")
    skewed = simulate_pipeline([1.0, 1.0, 2.0, 1.0, 1.0],
                               num_tokens=320, streams=8)
    print(f"  one 2x-slow stage drags utilization to "
          f"{skewed.utilization:.2f} — imbalanced layer placement is "
          f"what Section 7.5 warns about")


def quantization() -> None:
    print("\n=== 3. Quantization: accuracy checked, memory relieved ===")
    weights = synthesize_weights(TINY_GQA, seed=13)
    error = quantization_error(weights, bits=8)
    prompt = np.array([4, 9, 2])
    exact = ReferenceTransformer(weights).generate(prompt, 6)
    int8 = ReferenceTransformer(
        quantize_weights(weights, 8).dequantize()).generate(prompt, 6)
    print(f"  int8 worst relative weight error: {error:.4f}")
    print(f"  greedy tokens fp64 : {exact.tolist()}")
    print(f"  greedy tokens int8 : {int8.tolist()}")

    for model in (LLAMA2_13B,):
        fp16 = audit_model(model, WSE2)
        int8_audit = audit_model(quantized_config(model, 8), WSE2)
        s_fp16 = PipelineSchedule(model, WSE2, 375).num_stages
        s_int8 = PipelineSchedule(quantized_config(model, 8), WSE2,
                                  375).num_stages
        print(f"  {model.name}: weights/core "
              f"{fp16.weights_per_core / 1024:.1f} -> "
              f"{int8_audit.weights_per_core / 1024:.1f} KiB, "
              f"KV budget {fp16.kv_budget_per_core / 1024:.1f} -> "
              f"{int8_audit.kv_budget_per_core / 1024:.1f} KiB, "
              f"stages {s_fp16} -> {s_int8}")


def main() -> None:
    admission()
    bubbles()
    quantization()


if __name__ == "__main__":
    main()
