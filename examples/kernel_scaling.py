#!/usr/bin/env python3
"""Kernel scaling studies: regenerate the Figure 9 and Figure 10 sweeps.

    python examples/kernel_scaling.py

Sweeps MeshGEMM vs SUMMA vs Cannon and MeshGEMV vs the Cerebras-default
pipeline GEMV over core counts and matrix sizes, printing total /
compute / communication cycles — the series the paper's Figures 9 and
10 plot — plus computational-efficiency percentages.
"""

from repro.bench.ascii_charts import grouped_bars
from repro.bench.experiments import run_figure9, run_figure10
from repro.bench.reporting import format_table
from repro.core import WSE2
from repro.gemm import GEMM_KERNELS
from repro.gemm.base import GemmShape


def figure9() -> None:
    print("=== Figure 9: MeshGEMM vs SUMMA vs Cannon ===")
    cells = run_figure9()
    rows = [[c.label, f"{c.measured:,.0f}",
             f"{c.extra['compute_cycles']:,.0f}",
             f"{c.extra['comm_cycles']:,.0f}"] for c in cells]
    print(format_table("core scaling (cycles)",
                       ["case", "total", "compute", "comm"], rows))

    print("\ncomputational efficiency at the hardware limit (720x720):")
    shape = GemmShape.square(4096)
    for name in ("meshgemm", "cannon", "summa"):
        kernel = GEMM_KERNELS[name]
        cost = kernel.estimate(WSE2, shape, grid=720)
        ideal = shape.total_macs / (720 * 720 * WSE2.macs_per_cycle)
        print(f"  {name:10s} {100 * ideal / cost.total_cycles:5.1f} %")


def figure10() -> None:
    print("\n=== Figure 10: MeshGEMV vs GEMV-Cerebras ===")
    cells = run_figure10()
    rows = [[c.label, f"{c.measured:,.0f}",
             f"{c.extra['comm_cycles']:,.0f}",
             f"{c.extra['us']:.2f}"] for c in cells]
    print(format_table("core scaling",
                       ["case", "total cyc", "comm cyc", "us"], rows))

    by_point = {}
    for cell in cells:
        point, kernel = cell.label.rsplit(" ", 1)
        by_point.setdefault(point, {})[kernel] = cell.measured
    best = max(by_point.values(),
               key=lambda k: k["pipeline-gemv"] / k["meshgemv"])
    print(f"\npeak MeshGEMV speedup over pipeline GEMV: "
          f"{best['pipeline-gemv'] / best['meshgemv']:.1f}x "
          f"(paper: up to 4.6x)")


def chart_view() -> None:
    print("\n=== Figure 9, chart view (total cycles @720x720, log scale) ===")
    cells = run_figure9(grids=(720,))
    groups, series = [], {"meshgemm": [], "cannon": [], "summa": []}
    for cell in cells:
        point, kernel = cell.label.rsplit(" ", 1)
        if point.split("@")[0] not in groups:
            groups.append(point.split("@")[0])
        series[kernel].append(cell.measured)
    print(grouped_bars("", groups, series))


def main() -> None:
    figure9()
    figure10()
    chart_view()


if __name__ == "__main__":
    main()
