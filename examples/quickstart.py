#!/usr/bin/env python3
"""Quickstart: the PLMR model, mesh kernels, and wafer-scale estimates.

Runs in a few seconds::

    python examples/quickstart.py

Covers the library's three layers:

1. **Device model** — inspect the WSE-2 preset through PLMR eyes.
2. **Functional kernels** — run MeshGEMM and MeshGEMV on a small
   simulated mesh and check them against numpy.
3. **Performance model** — estimate the same kernels at wafer scale and
   reproduce the paper's compliance analysis (Figures 6 and 8).
"""

import numpy as np

from repro.core import WSE2, TINY_MESH, compliance_table
from repro.gemm import CannonGEMM, MeshGEMM, SummaGEMM
from repro.gemm.base import GemmShape
from repro.gemv import MeshGEMV, PipelineGEMV
from repro.mesh import MeshMachine


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The device, in PLMR terms.
    # ------------------------------------------------------------------
    print("=== Cerebras WSE-2 through the PLMR model ===")
    for key, value in WSE2.describe().items():
        print(f"  {key:24s} {value}")
    print(f"  local-vs-remote latency variance: ~{WSE2.latency_variance:.0f}x")

    # ------------------------------------------------------------------
    # 2. Functional execution on a simulated 6x6 mesh.
    # ------------------------------------------------------------------
    print("\n=== Functional MeshGEMM on a 6x6 mesh ===")
    rng = np.random.default_rng(0)
    a = rng.standard_normal((12, 18))
    b = rng.standard_normal((18, 12))
    machine = MeshMachine(TINY_MESH.submesh(6, 6))
    result = MeshGEMM.run(machine, a, b)
    print(f"  max |error| vs numpy: {np.max(np.abs(result - a @ b)):.2e}")
    print(f"  trace: {machine.trace.summary()}")

    print("\n=== Functional MeshGEMV (two-way K-tree) on a 6x6 mesh ===")
    x = rng.standard_normal(18)
    machine = MeshMachine(TINY_MESH.submesh(6, 6))
    y = MeshGEMV.run(machine, x, b)
    print(f"  max |error| vs numpy: {np.max(np.abs(y - x @ b)):.2e}")
    print(f"  route colours used (R metric): {machine.trace.max_paths_per_core}")

    # ------------------------------------------------------------------
    # 3. Wafer-scale estimates (the paper's Tables 6-7 shapes).
    # ------------------------------------------------------------------
    print("\n=== Estimated 16K x 16K kernels on a 750x750 WSE-2 region ===")
    region = WSE2.submesh(750)
    shape = GemmShape.square(16384)
    for kernel in (MeshGEMM, CannonGEMM, SummaGEMM):
        cost = kernel.estimate(region, shape)
        print(f"  {kernel.name:10s} {cost.milliseconds:8.3f} ms "
              f"(compute {cost.compute_cycles / 1e6:7.2f} M cyc, "
              f"comm {cost.comm_cycles / 1e6:7.2f} M cyc)")
    for kernel in (MeshGEMV, PipelineGEMV):
        cost = kernel.estimate(region, rows=16384, cols=16384)
        print(f"  {kernel.name:13s} {cost.seconds * 1e6:8.2f} us")

    print("\n=== PLMR compliance (Figures 6 + 8) ===")
    for report in compliance_table(WSE2):
        print(f"  {report.verdict_string()}")


if __name__ == "__main__":
    main()
