#!/usr/bin/env python3
"""KV-cache management demo: shift-based vs concat-based (Table 5).

    python examples/kvcache_capacity.py

Animates (in ASCII) how the two managers distribute tokens over the
mesh rows, then computes the Table 5 wafer-scale capacities.
"""

import numpy as np

from repro.core import WSE2
from repro.errors import CapacityExceeded
from repro.llm import LLAMA2_13B, LLAMA3_8B
from repro.llm.kvcache import (
    ConcatKVCache,
    KVCacheGeometry,
    ShiftKVCache,
    capacity_geometry,
)


def occupancy_bar(counts, width=30) -> str:
    peak = max(max(counts), 1)
    return "  ".join(
        "row%d[%s]" % (i, ("#" * round(width * c / peak)).ljust(width // 3)[:10])
        for i, c in enumerate(counts)
    )


def demo_small() -> None:
    print("=== Toy mesh: 6 rows, appending 24 tokens ===")
    geometry = KVCacheGeometry(grid_width=4, grid_height=6, kv_dim=8,
                               budget_bytes_per_core=1 << 16)
    shift = ShiftKVCache(geometry)
    concat = ConcatKVCache(geometry)
    token = np.zeros(8)
    for step in range(24):
        shift.append(token, token)
        try:
            concat.append(token, token)
        except CapacityExceeded:
            pass
        if step % 8 == 7:
            print(f"  after {step + 1:2d} tokens:")
            print(f"    shift  {shift.row_occupancy()}")
            print(f"    concat {concat.row_occupancy()}  <- bottom row only")
    order = shift.tokens_in_order()
    print(f"  shift cache physical order == logical order: "
          f"{order == sorted(order)}")
    print(f"  total shift moves (1 NoC phase each): {shift.total_shift_moves}")


def table5() -> None:
    print("\n=== Table 5: maximum tokens in generation on the WSE-2 ===")
    print(f"{'model':12s} {'manager':8s} {'max tokens':>12s} {'paper':>9s}")
    paper = {"llama3-8b": (382, 137548), "llama2-13b": (16, 6168)}
    for model, grid in ((LLAMA3_8B, 360), (LLAMA2_13B, 375)):
        geometry = capacity_geometry(model, grid, WSE2.core_memory_bytes,
                                     WSE2.num_cores)
        concat = ConcatKVCache(geometry).capacity
        shift = ShiftKVCache(geometry).capacity
        p_concat, p_shift = paper[model.name]
        print(f"{model.name:12s} {'concat':8s} {concat:12,d} {p_concat:9,d}")
        print(f"{model.name:12s} {'shift':8s} {shift:12,d} {p_shift:9,d}")
        print(f"{'':12s} {'ratio':8s} {shift / concat:12.0f}x "
              f"{p_shift / p_concat:8.0f}x   <- equals the row count")


def main() -> None:
    demo_small()
    table5()


if __name__ == "__main__":
    main()
