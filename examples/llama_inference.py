#!/usr/bin/env python3
"""End-to-end LLM inference: functional on a tiny model, estimated at scale.

    python examples/llama_inference.py

Part 1 mirrors the paper's Python layer: synthesize a checkpoint, save
it, load it back, and run *functional distributed inference* — every
matmul through MeshGEMM/MeshGEMV/dist-GEMM-T, every reduction through
the two-way K-tree, KV vectors through the shift-based cache — and
validate the generated tokens against the dense reference model.

Part 2 estimates LLaMA3-8B at wafer scale: prefill/decode throughput at
the paper's core configurations, the pipeline-stage structure, the
prefill -> decode re-placement cost, and a Table 2-style summary.
"""

import os
import tempfile

import numpy as np

from repro.core import WSE2
from repro.llm import (
    LLAMA3_8B,
    TINY_GQA,
    ReferenceTransformer,
    WaferLLMEngine,
    load_checkpoint,
    save_checkpoint,
    synthesize_weights,
)


def functional_demo() -> None:
    print("=== Part 1: functional distributed inference (tiny GQA model) ===")
    weights = synthesize_weights(TINY_GQA, seed=7)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "tiny-gqa.npz")
        save_checkpoint(weights, path)
        print(f"  checkpoint saved and re-loaded "
              f"({os.path.getsize(path) / 1024:.0f} KiB)")
        weights = load_checkpoint(path)

    engine = WaferLLMEngine(TINY_GQA, weights=weights)
    prompt = np.array([5, 12, 3])
    generated = engine.generate(prompt, num_tokens=8)
    expected = ReferenceTransformer(weights).generate(prompt, 8)
    print(f"  prompt tokens    : {prompt.tolist()}")
    print(f"  mesh-generated   : {generated.tolist()}")
    print(f"  reference        : {expected.tolist()}")
    assert np.array_equal(generated, expected), "mesh != reference!"
    kernels = engine.transformer.ops.total_kernels()
    print(f"  distributed kernels launched: {kernels}")
    occupancy = engine.transformer.kv_cache(0).row_occupancy()
    print(f"  shift-KV row occupancy after generation: {occupancy}")


def wafer_scale_estimates() -> None:
    print("\n=== Part 2: LLaMA3-8B on the WSE-2 (cost model) ===")
    engine = WaferLLMEngine(LLAMA3_8B, device=WSE2)

    print(f"  prefill  @660x660: {engine.prefill_throughput(4096):10.0f} tok/s "
          f"(paper: 25037 @600x600)")
    print(f"  decode   @360x360: {engine.decode_throughput(2048):10.0f} tok/s "
          f"(paper: 2699 @420x420)")

    schedule = engine.pipeline_schedule()
    print(f"  pipeline stages on 360x360 regions: {schedule.num_stages} "
          f"(single-stream utilization {schedule.utilization():.2f})")
    transition = engine.transition()
    print(f"  prefill->decode re-placement: {transition.seconds * 1e3:.3f} ms")

    print("\n  Table 2-style summary (generated tokens/s):")
    for seq_in, seq_out in ((2048, 128), (4096, 128), (2048, 2048),
                            (4096, 4096)):
        result = engine.estimate_generation(seq_in, seq_out)
        print(f"    {seq_in:5d}/{seq_out:<5d} "
              f"{result.throughput_tokens_per_s:8.1f} tok/s   "
              f"(prefill {result.prefill_seconds * 1e3:7.1f} ms, "
              f"decode {result.decode_seconds:6.2f} s, "
              f"{result.tokens_per_joule:.4f} tok/J)")


def main() -> None:
    functional_demo()
    wafer_scale_estimates()


if __name__ == "__main__":
    main()
