#!/usr/bin/env python3
"""Serving simulation: concurrent requests fill the pipeline bubbles.

    python examples/serving_simulation.py

The paper serves one stream and pays ~5x utilization loss to pipeline
bubbles (Section 7.5).  This example runs the extension serving layer:
a continuous-batching server on the calibrated WSE-2 model, sweeping the
batch size to show throughput climbing toward the bubble-free ceiling
while per-request decode rates stay near the single-stream figure, then
pits chunked prefill against exclusive prefill on one shared trace.
"""

from repro.core import WSE2
from repro.llm import LLAMA3_8B
from repro.runtime import PipelineSchedule
from repro.serving import (
    ContinuousBatchingServer,
    Request,
    compare_modes,
    synthetic_trace,
)


def batch_sweep() -> None:
    print("=== Batched decode throughput, LLaMA3-8B @ 360x360 ===")
    server = ContinuousBatchingServer(LLAMA3_8B, WSE2, max_batch=64)
    single = server.throughput_at_batch(1)
    print(f"{'batch':>6s} {'tok/s':>10s} {'x single':>9s}")
    for batch in (1, 2, 4, 8, 16, 32, 64):
        rate = server.throughput_at_batch(batch)
        print(f"{batch:6d} {rate:10,.0f} {rate / single:8.1f}x")
    schedule = PipelineSchedule(LLAMA3_8B, WSE2, 360)
    print(f"\npipeline stages: {schedule.num_stages}; multi-stream "
          f"utilization at batch 8: {schedule.utilization(8):.2f} "
          f"(vs {schedule.utilization(1):.2f} single-stream)")


def request_trace() -> None:
    print("\n=== Serving 12 mixed requests (Poisson-ish arrivals) ===")
    server = ContinuousBatchingServer(LLAMA3_8B, WSE2, max_batch=8)
    requests = [
        Request(i, seq_in=512 * (1 + i % 3), seq_out=64 + 32 * (i % 4),
                arrival_s=0.08 * i)
        for i in range(12)
    ]
    report = server.serve(requests)
    print(f"  makespan      : {report.makespan_s:.2f} s")
    print(f"  peak batch    : {report.peak_batch}")
    print(f"  throughput    : {report.throughput_tokens_per_s:,.0f} tok/s")
    print(f"  mean latency  : {report.mean_latency_s:.2f} s")
    print(f"  p99 latency   : {report.p99_latency_s:.2f} s")
    print(f"\n  {'req':>4s} {'queue(s)':>9s} {'decode tok/s':>13s}")
    for stat in report.completed[:6]:
        print(f"  {stat.request.request_id:4d} {stat.queueing_s:9.3f} "
              f"{stat.decode_tokens_per_s:13,.0f}")


def chunked_vs_exclusive() -> None:
    print("\n=== Chunked vs exclusive prefill (16 requests, SLOs) ===")
    trace = synthetic_trace(
        16, seed=7, mean_interarrival_s=0.03,
        seq_in_range=(256, 2048), seq_out_range=(32, 128),
        ttft_slo_s=1.0, tpot_slo_s=0.05,
    )
    results = compare_modes(LLAMA3_8B, WSE2, trace,
                            chunk_tokens=256, max_batch=16)
    print(f"  {'mode':>10s} {'goodput':>9s} {'p99 TTFT':>9s} "
          f"{'SLO':>6s} {'stall(s)':>9s}")
    for mode, metrics in results.items():
        print(f"  {mode:>10s} {metrics.goodput_tokens_per_s:9,.0f} "
              f"{metrics.p99_ttft_s:9.3f} {metrics.slo_attainment:6.2f} "
              f"{metrics.decode_stall_s:9.3f}")
    print("  (chunked prefill rides the decode step with weights "
          "resident;\n   exclusive prefill streams weights and stalls "
          "every decode stream)")


def main() -> None:
    batch_sweep()
    request_trace()
    chunked_vs_exclusive()


if __name__ == "__main__":
    main()
