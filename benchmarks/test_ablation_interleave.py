"""Ablation — INTERLEAVE on/off (Section 5.2).

MeshGEMM minus INTERLEAVE *is* Cannon: identical cyclic-shift structure,
identity placement.  This bench isolates the placement's contribution:
per-step critical path drops from N-1 hops to 2, which converts the
comm-bound region of the sweep (small matrices, big grids) from
linear-in-N per-step cost to constant.
"""

import os

import numpy as np

from repro.bench.reporting import format_table
from repro.collectives.interleave import (
    identity_placement,
    interleave_placement,
    ring_dilation,
)
from repro.core.device_presets import TINY_MESH, WSE2
from repro.gemm import CannonGEMM, MeshGEMM
from repro.gemm.base import GemmShape
from repro.mesh.machine import MeshMachine
from conftest import OUT_DIR


def test_interleave_cost_ablation(benchmark):
    device = WSE2

    def run():
        out = {}
        for dim in (2048, 4096, 8192):
            shape = GemmShape.square(dim)
            for grid in (480, 720):
                with_il = MeshGEMM.estimate(device, shape, grid=grid)
                without = CannonGEMM.estimate(device, shape, grid=grid)
                out[(dim, grid)] = (with_il, without)
        return out

    sweep = benchmark(run)
    rows = []
    for (dim, grid), (with_il, without) in sorted(sweep.items()):
        rows.append([
            f"{dim // 1024}K@{grid}",
            f"{with_il.total_cycles:,.0f}",
            f"{without.total_cycles:,.0f}",
            f"{without.total_cycles / with_il.total_cycles:.2f}x",
        ])
    table = format_table(
        "Ablation: INTERLEAVE on/off (MeshGEMM vs Cannon, total cycles)",
        ["case", "interleaved", "identity", "slowdown w/o"], rows,
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "ablation_interleave.txt"), "w") as f:
        f.write(table + "\n")

    # The benefit is largest where comm dominates: 2K at 720^2.
    gain_small = sweep[(2048, 720)][1].total_cycles / \
        sweep[(2048, 720)][0].total_cycles
    gain_big = sweep[(8192, 480)][1].total_cycles / \
        sweep[(8192, 480)][0].total_cycles
    assert gain_small > 5
    assert gain_big < 1.5
    assert gain_small > gain_big


def test_interleave_dilation_measured(benchmark):
    """Dilation 2 vs N-1, measured on functional traces for many N."""

    def run():
        out = {}
        for n in (4, 8, 16, 64, 256):
            out[n] = (
                ring_dilation(interleave_placement(n)),
                ring_dilation(identity_placement(n)),
            )
        return out

    dilations = benchmark(run)
    for n, (interleaved, identity) in dilations.items():
        assert interleaved == 2
        assert identity == n - 1


def test_interleave_preserves_results(benchmark):
    """Both placements compute identical products (correctness is free)."""
    rng = np.random.default_rng(5)
    grid = 6
    a = rng.standard_normal((grid * 2, grid))
    b = rng.standard_normal((grid, grid * 3))

    def run():
        m1 = MeshMachine(TINY_MESH.submesh(grid, grid))
        m2 = MeshMachine(TINY_MESH.submesh(grid, grid))
        return MeshGEMM.run(m1, a, b), CannonGEMM.run(m2, a, b)

    with_il, without = benchmark(run)
    assert np.allclose(with_il, without)
    assert np.allclose(with_il, a @ b)
