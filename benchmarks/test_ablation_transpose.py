"""Ablation — transpose-free placement vs explicit mesh transpose
(Sections 4.1, 4.2).

``Q @ K^T`` can be computed two ways on the mesh:

* **dist-GEMM-T** (WaferLLM): K stays in its natural layout; the
  tile-level transpose is free and only two-hop shifts move data;
* **transpose-then-GEMM**: first re-place K^T across the mesh (the
  corner-to-corner pattern the L property punishes), then run a plain
  MeshGEMM.

The bench prices both for prefill attention shapes, plus the decode-side
equivalent: pre-optimized weight placement vs per-token re-placement of
``W_O``/``W_out``.
"""

import os

from repro.bench.reporting import format_table
from repro.core.device_presets import WSE2
from repro.gemm import MeshGEMM, MeshGEMMTransposed
from repro.gemm.base import GemmShape
from repro.llm.tensor_layout import weight_layout, weight_layout_decode
from repro.mesh.cost_model import CommPhase, estimate
from conftest import OUT_DIR


def _mesh_transpose_cost(device, rows, cols, grid, dtype_bytes=2):
    """Explicit transpose: every tile travels to its mirrored position.

    The worst flow crosses the full diagonal (2(grid-1) hops) and the
    per-link payload is the tile column it must carry.
    """
    tile_bytes = (-(-rows // grid)) * (-(-cols // grid)) * dtype_bytes
    phase = CommPhase(
        label="mesh-transpose",
        hop_distance=2.0 * (grid - 1),
        payload_bytes=float(tile_bytes * grid),
    )
    return estimate("mesh-transpose", device, [phase])


def test_transpose_free_attention(benchmark):
    device = WSE2
    grid = 110  # per-head sub-mesh at the 660^2 prefill configuration
    seq, hd = 4096, 128

    def run():
        shape = GemmShape(m=seq, k=hd, n=seq)
        free = MeshGEMMTransposed.estimate(device, shape, grid=grid)
        transpose = _mesh_transpose_cost(device, seq, hd, grid)
        gemm = MeshGEMM.estimate(device, shape, grid=grid)
        return free, transpose, gemm

    free, transpose, gemm = benchmark(run)
    explicit_total = transpose.total_cycles + gemm.total_cycles
    rows = [
        ["dist-GEMM-T (transpose-free)", f"{free.total_cycles:,.0f}"],
        ["explicit transpose + MeshGEMM", f"{explicit_total:,.0f}"],
        ["  of which transpose", f"{transpose.total_cycles:,.0f}"],
    ]
    table = format_table(
        "Ablation: transpose-free Q@K^T (4096x128 per head, 110x110 mesh)",
        ["plan", "total cycles"], rows,
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "ablation_transpose.txt"), "w") as f:
        f.write(table + "\n")

    # The explicit transpose adds real cycles on top of the GEMM.
    assert explicit_total > gemm.total_cycles
    assert transpose.total_cycles > 0


def test_preplacement_beats_per_token_replacement(benchmark):
    """Decode: one-time W_O re-placement vs paying it every token."""
    device = WSE2
    tokens = 2048

    def run():
        pre = weight_layout(4096, 4096)
        dec = weight_layout_decode(4096, 4096)
        one_time = pre.transition_cost(dec, device)
        per_token_total = one_time.scaled(tokens)
        return one_time, per_token_total

    one_time, per_token_total = benchmark(run)
    # Pre-placement pays once; the naive plan pays per generated token.
    assert per_token_total.total_cycles == tokens * one_time.total_cycles
    # And the one-time cost is far below a single decode step (~0.4 ms).
    assert one_time.seconds < 4e-4
