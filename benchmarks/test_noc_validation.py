"""Validation bench — fluid NoC simulation vs the closed-form cost model.

Runs the max-min-fair flow simulator over the communication patterns the
kernels actually use and compares against what the analytic phases
charge: uncontended patterns must match exactly; allgather's incast must
show the serialization the allgather-GEMM plan prices in; Cannon's
wraparound must show *no* bandwidth contention (full-duplex links), the
finding that keeps the cyclic-GEMM plan contention-free.
"""

import os

from repro.bench.reporting import format_table
from repro.core import WSE2
from repro.mesh.netsim import (
    FlowSpec,
    allgather_incast_slowdown,
    cannon_wraparound_slowdown,
    simulate_flows,
)
from conftest import OUT_DIR


def test_noc_validation(benchmark):
    device = WSE2

    def run():
        rows = []
        # 1. Single flows of kernel-typical sizes: closed form must hold.
        for hops, payload in ((2, 968), (719, 968), (27, 44)):
            flow = FlowSpec((0, 0), (hops, 0), float(payload))
            result = simulate_flows(device, [flow])[0]
            rows.append((f"single flow {hops}h/{payload}B",
                         result.completion_cycles,
                         result.uncontended_cycles))
        # 2. Interleaved shift: every two-hop flow at full rate.
        shift = [FlowSpec((x, 0), (x + 2, 0), 968.0) for x in range(0, 40, 4)]
        worst = max(r.slowdown for r in simulate_flows(device, shift))
        rows.append(("interleaved shifts slowdown", worst, 1.0))
        # 3. Cannon wraparound and allgather incast.
        rows.append(("cannon wraparound slowdown",
                     cannon_wraparound_slowdown(device, 128, 968.0), 1.0))
        rows.append(("allgather incast x16 slowdown",
                     allgather_incast_slowdown(device, 16, 968.0), 15.0))
        return rows

    rows = benchmark(run)
    table = format_table(
        "NoC validation: fluid simulation vs closed form",
        ["scenario", "simulated", "closed form"],
        [[name, f"{sim:.2f}", f"{model:.2f}"] for name, sim, model in rows],
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "noc_validation.txt"), "w") as handle:
        handle.write(table + "\n")

    by_name = {name: (sim, model) for name, sim, model in rows}
    for name, (sim, model) in by_name.items():
        if name.startswith("single flow"):
            assert sim == model, name
    assert by_name["interleaved shifts slowdown"][0] == 1.0
    assert abs(by_name["cannon wraparound slowdown"][0] - 1.0) < 0.05
    incast_sim, incast_model = by_name["allgather incast x16 slowdown"]
    assert 0.5 * incast_model < incast_sim < 1.5 * incast_model
