"""Extension bench — chunked prefill beats exclusive prefill.

Not a paper table (the paper serves single streams).  On the canonical
32-request trace both servers see identical requests and the same decode
region; chunked prefill rides the batched decode step with weights
resident, while exclusive prefill streams weights and stalls every
decode stream.  The claims under test are strict: chunked achieves
higher decode goodput AND lower p99 TTFT than the exclusive baseline.
"""

import os

from repro.bench.experiments import run_serving, run_serving_cells
from repro.bench.reporting import format_table
from conftest import OUT_DIR


def test_chunked_beats_exclusive(benchmark):
    results = benchmark(run_serving)
    chunked = results["chunked"]
    exclusive = results["exclusive"]

    rows = []
    for cell in run_serving_cells():
        rows.append([cell.label, f"{cell.measured:,.4f}"])
    table = format_table(
        "Serving: chunked vs exclusive prefill (LLaMA3-8B, 32 requests)",
        ["metric", "measured"], rows,
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "serving_chunked.txt"), "w") as handle:
        handle.write(table + "\n")

    # The headline acceptance criteria, strictly.
    assert chunked.goodput_tokens_per_s > exclusive.goodput_tokens_per_s
    assert chunked.p99_ttft_s < exclusive.p99_ttft_s

    # Chunking exists to keep decode running during prefill.
    assert chunked.decode_stall_s == 0.0
    assert exclusive.decode_stall_s > 0.0

    # Both servers drain the trace (admitted = finished; nothing lost).
    for metrics in (chunked, exclusive):
        assert metrics.finished + len(metrics.rejected) == metrics.submitted
        assert metrics.peak_kv_tokens <= metrics.kv_capacity_tokens
