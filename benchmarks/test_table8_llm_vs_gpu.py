"""Table 8 — WaferLLM (WSE-2) vs vLLM (A100): end-to-end LLM inference.

4096-in / 4096-out generation.  The paper's shape: ~30-40x decode
throughput and a *modest* (1.4-1.7x) energy win — the 22x GEMV energy
advantage collapses to ~1.7x because pipeline-parallel bubbles idle most
of the wafer (Section 7.5), which is exactly what wall-clock device
power x time accounting captures.
"""

from repro.bench.experiments import run_table8
from conftest import report


def test_table8_llm_vs_gpu(benchmark):
    cells = benchmark(run_table8)
    report("Table 8: WaferLLM(WSE-2) vs vLLM(A100), 4096/4096", cells)
    by_cell = {c.label: c.measured for c in cells}

    for model in ("llama3-8b", "llama2-13b"):
        wse = by_cell[f"{model} wse_tokens_s"]
        gpu = by_cell[f"{model} a100_tokens_s"]
        ratio = by_cell[f"{model} energy_ratio"]
        # Decode throughput: tens of times faster (paper 31.6x / 38.6x).
        assert 15 < wse / gpu < 80, model
        # Energy: a small wafer advantage, nothing like Table 6's 22x.
        assert 0.7 < ratio < 3.0, model

    for cell in cells:
        assert 0.2 < cell.measured / cell.paper < 5.0, cell.label
