"""Extension bench — decode cost vs live context length.

Not a published table, but implied by the paper's setup: the decode
step's attention GEMVs scan the whole shift-balanced KV cache, so the
per-token cost is affine in the context length while the projection/FFN
part is constant.  This bench sweeps the context and checks both the
affine shape and the GQA-vs-MHA contrast: the MHA 13B model pays both a
steeper context slope (more heads) and — the real GQA win — ~5x more KV
bytes per token relative to its size, the architectural reason LLaMA3
adopted grouped-query attention.
"""

import os

import pytest

from repro.bench.reporting import format_table
from repro.core import WSE2
from repro.llm.config import LLAMA2_13B, LLAMA3_8B
from repro.llm.wafer_system import WaferLLMSystem
from conftest import OUT_DIR

CONTEXTS = (128, 1024, 4096, 16384, 65536)


def test_context_scaling(benchmark):
    system = WaferLLMSystem(WSE2)

    def run():
        out = {}
        for model, grid in ((LLAMA3_8B, 360), (LLAMA2_13B, 375)):
            out[model.name] = {
                ctx: system.decode_token_cost(model, ctx, grid).seconds
                for ctx in CONTEXTS
            }
        return out

    sweep = benchmark(run)
    rows = []
    for name, series in sweep.items():
        for ctx, seconds in series.items():
            rows.append([name, f"{ctx:,}", f"{seconds * 1e3:.3f}",
                         f"{1 / seconds:,.0f}"])
    table = format_table(
        "Decode cost vs context length",
        ["model", "context", "ms/token", "tok/s"], rows,
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "context_scaling.txt"), "w") as handle:
        handle.write(table + "\n")

    for name, series in sweep.items():
        times = [series[ctx] for ctx in CONTEXTS]
        # Monotone in context.
        assert times == sorted(times), name
        # Affine: the marginal cost per context token is ~constant.
        slope_lo = (series[4096] - series[1024]) / (4096 - 1024)
        slope_hi = (series[65536] - series[16384]) / (65536 - 16384)
        assert slope_hi == pytest.approx(slope_lo, rel=0.5), name

    # The larger MHA model pays a steeper context slope (more heads x
    # wider E), while GQA's real win is *memory*: per-token KV bytes are
    # 5x smaller relative to model width (why LLaMA3 adopted it).
    slope_8b = (sweep["llama3-8b"][65536] - sweep["llama3-8b"][128]) / 65408
    slope_13b = (sweep["llama2-13b"][65536] - sweep["llama2-13b"][128]) / 65408
    assert slope_13b > 1.2 * slope_8b
    kv_8b = LLAMA3_8B.kv_bytes_per_token() / LLAMA3_8B.weight_bytes
    kv_13b = LLAMA2_13B.kv_bytes_per_token() / LLAMA2_13B.weight_bytes
    assert kv_13b > 3 * kv_8b
