"""Extension bench — continuous batching fills the pipeline bubbles.

Not a paper table (the paper serves single streams); this quantifies its
Section 7.5/8 narrative: concurrent streams recover the bubbled
stage-cycles, so serving throughput scales far past the single-stream
decode rate while each stream's latency stays close to it.
"""

import os

from repro.bench.reporting import format_table
from repro.core import WSE2
from repro.llm import LLAMA3_8B
from repro.serving import ContinuousBatchingServer, Request
from conftest import OUT_DIR


def test_batch_throughput_scaling(benchmark):
    server = ContinuousBatchingServer(LLAMA3_8B, WSE2, max_batch=64)

    def sweep():
        return {b: server.throughput_at_batch(b)
                for b in (1, 2, 4, 8, 16, 32, 64)}

    rates = benchmark(sweep)
    rows = [[str(b), f"{rate:,.0f}", f"{rate / rates[1]:.1f}x"]
            for b, rate in rates.items()]
    table = format_table(
        "Serving: batched decode throughput (LLaMA3-8B @ 360x360)",
        ["batch", "tok/s", "vs single"], rows,
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "serving_batching.txt"), "w") as handle:
        handle.write(table + "\n")

    # Monotone scaling with diminishing returns.
    values = list(rates.values())
    assert values == sorted(values)
    assert rates[8] > 2 * rates[1]
    gain_lo = rates[2] / rates[1]
    gain_hi = rates[64] / rates[32]
    assert gain_hi < gain_lo  # compute eventually dominates


def test_serving_end_to_end(benchmark):
    server = ContinuousBatchingServer(LLAMA3_8B, WSE2, max_batch=8)
    # Short prompts, long generations: the decode batch actually fills.
    requests = [Request(i, 128, 1024, arrival_s=0.02 * i) for i in range(16)]

    def run():
        return server.serve(requests)

    report = benchmark(run)
    assert len(report.completed) == 16
    assert report.peak_batch > 1
    # Aggregate throughput beats the single-stream decode rate.
    single = server.system.decode_throughput(LLAMA3_8B, 2048,
                                             server.decode_grid)
    assert report.throughput_tokens_per_s > single
