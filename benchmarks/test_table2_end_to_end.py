"""Table 2 — end-to-end LLM inference throughput (tokens/s).

Regenerates every cell: {LLaMA3-8B, LLaMA2-13B} x {2048/128, 4096/128,
2048/2048, 4096/4096} x {WaferLLM, T10, Ladder}, at the paper's core
configurations (8B: 660^2 prefill / 360^2 decode; 13B: 750^2 / 375^2).
"""

from repro.bench.experiments import run_table2
from conftest import report


def test_table2_end_to_end(benchmark):
    cells = benchmark(run_table2)
    report("Table 2: end-to-end throughput (generated tokens/s)", cells,
           unit="tok/s")

    by_cell = {c.label: c.measured for c in cells}
    for model in ("llama3-8b", "llama2-13b"):
        for config in ("2048/128", "4096/128", "2048/2048", "4096/4096"):
            wafer = by_cell[f"{model} {config} waferllm"]
            t10 = by_cell[f"{model} {config} t10"]
            ladder = by_cell[f"{model} {config} ladder"]
            # Shape: WaferLLM >> T10 >> Ladder, by orders of magnitude.
            assert wafer > 10 * t10, (model, config)
            assert t10 > 2 * ladder, (model, config)

    # Long generations amortize prefill: 2048/2048 beats 2048/128.
    assert by_cell["llama3-8b 2048/2048 waferllm"] > \
        by_cell["llama3-8b 2048/128 waferllm"]

    # Every cell within 5x of the published value.
    for cell in cells:
        assert 0.2 < cell.measured / cell.paper < 5.0, cell.label
