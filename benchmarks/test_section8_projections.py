"""Section 8 bench — future-direction projections, quantified.

Regenerates the paper's forward-looking claims from the calibrated
models:

* resident (pipeline-free) decode reaches ~10k tokens/s for a 13B-class
  model — the Section 8 hardware-architecture projection;
* wider/shallower same-parameter models decode faster on the wafer —
  the LLM-model-design thesis;
* MeshGEMM/MeshGEMV stay ahead on Dojo-like fabrics — "beyond Cerebras";
* a 40x-density SoW wafer keeps the PLMR structure (L grows) while
  prefill throughput rises.
"""

import os

from repro.bench.reporting import format_table
from repro.core import DOJO_LIKE, WSE2, WSE3
from repro.llm import (
    LLAMA2_13B,
    LLAMA3_8B,
    cross_device_kernels,
    resident_decode_projection,
    sow_density_projection,
    width_study,
)
from conftest import OUT_DIR


def test_resident_decode_projection(benchmark):
    projection = benchmark(resident_decode_projection, LLAMA2_13B, WSE2, 375)
    print(f"\n13B decode today {projection.current_tokens_per_s:,.0f} tok/s "
          f"-> resident {projection.projected_tokens_per_s:,.0f} tok/s "
          f"({projection.stages} stages)")
    # Section 8: "potentially reaching 10,000 tokens per second".
    assert 6_000 < projection.projected_tokens_per_s < 16_000


def test_wider_models_decode_faster(benchmark):
    rows = benchmark(width_study, LLAMA3_8B, WSE2, 360, (1.0, 2.0, 4.0))
    table = format_table(
        "Section 8: wider-layer variants of LLaMA3-8B (decode @360x360)",
        ["width", "layers", "d_model", "params (B)", "decode tok/s"],
        [[f"{r['factor']:g}x", r["layers"], r["d_model"],
          f"{r['params_b']:.1f}", f"{r['decode_tok_s']:,.0f}"] for r in rows],
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "section8_width.txt"), "w") as handle:
        handle.write(table + "\n")
    rates = [r["decode_tok_s"] for r in rows]
    assert rates == sorted(rates)


def test_beyond_wse_devices(benchmark):
    rows = benchmark(cross_device_kernels, [WSE2, WSE3, DOJO_LIKE])
    table = format_table(
        "Section 8: kernels across PLMR devices (total cycles, 4K problem)",
        ["device", "meshgemm", "cannon", "summa", "meshgemv", "pipeline"],
        [[r["device"], f"{r['meshgemm']:,.0f}", f"{r['cannon']:,.0f}",
          f"{r['summa']:,.0f}", f"{r['meshgemv']:,.0f}",
          f"{r['pipeline_gemv']:,.0f}"] for r in rows],
    )
    print("\n" + table)
    for row in rows:
        assert row["meshgemm"] <= row["cannon"] * 1.001, row["device"]
        assert row["meshgemv"] <= row["pipeline_gemv"] * 1.001, row["device"]


def test_sow_density_scaling(benchmark):
    projection = benchmark(sow_density_projection, WSE2, LLAMA3_8B, 40.0)
    print(f"\nSoW 40x: cores {projection['base_cores']:,.0f} -> "
          f"{projection['future_cores']:,.0f}; prefill "
          f"{projection['base_prefill_tok_s']:,.0f} -> "
          f"{projection['future_prefill_tok_s']:,.0f} tok/s")
    assert projection["future_prefill_tok_s"] > \
        projection["base_prefill_tok_s"]
    # The PLMR L property persists (and intensifies) at higher density.
    assert projection["future_latency_variance"] > WSE2.latency_variance
