"""Ablation — automatic vs paper-chosen parallelism configurations.

The paper picks core configurations empirically and leaves automatic
configuration as future work (Section 4.4); `repro.llm.autotune`
implements it.  This bench compares the tuned configurations against the
paper's for both end-to-end models: the tuner must never lose, and its
choices reproduce the paper's qualitative structure (large prefill grid,
much smaller decode grid, K = 2-ish trees).
"""

import os

from repro.bench.reporting import format_table
from repro.core import WSE2
from repro.llm import LLAMA2_13B, LLAMA3_8B, compare_with_paper_configs
from conftest import OUT_DIR


def test_autotune_vs_paper(benchmark):
    def run():
        return [compare_with_paper_configs(model, WSE2)
                for model in (LLAMA3_8B, LLAMA2_13B)]

    reports = benchmark(run)
    rows = []
    for report in reports:
        for source in ("paper", "autotuned"):
            entry = report[source]
            rows.append([
                report["model"], source,
                entry["prefill_grid"], entry["decode_grid"],
                f"{entry['prefill_tok_s']:,.0f}",
                f"{entry['decode_tok_s']:,.0f}",
            ])
    table = format_table(
        "Ablation: autotuned vs paper parallelism configurations",
        ["model", "source", "prefill grid", "decode grid",
         "prefill tok/s", "decode tok/s"], rows,
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "ablation_autotune.txt"), "w") as handle:
        handle.write(table + "\n")

    for report in reports:
        paper, tuned = report["paper"], report["autotuned"]
        # Never lose to the empirical configuration.
        assert tuned["prefill_tok_s"] >= 0.99 * paper["prefill_tok_s"]
        assert tuned["decode_tok_s"] >= 0.99 * paper["decode_tok_s"]
        # Same qualitative structure the paper found by hand.
        assert tuned["prefill_grid"] > tuned["decode_grid"]
