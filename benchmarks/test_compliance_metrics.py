"""Figures 6 and 8 — PLMR compliance analyses of GEMM and GEMV variants.

Regenerates the paper's qualitative comparison tables: paths per core,
critical path, and memory per core for every distributed GEMM/GEMV
scheme, graded against the WSE-2, and cross-checks the symbolic claims
against *measured* traces from functional runs on a small mesh.
"""

import os

import numpy as np

from repro.core import WSE2, compliance_table
from repro.core.device_presets import TINY_MESH
from repro.bench.reporting import format_table
from repro.gemm import CannonGEMM, MeshGEMM, SummaGEMM
from repro.gemv import MeshGEMV, PipelineGEMV
from repro.mesh.machine import MeshMachine
from conftest import OUT_DIR


def test_figure6_figure8_verdicts(benchmark):
    reports = benchmark(compliance_table, WSE2)
    rows = [
        [r.algorithm, f"{r.paths_per_core:.0f}",
         f"{r.critical_path_hops:.0f}", f"{r.memory_factor:.0f}",
         "ok" if r.satisfies_l else "VIOLATED",
         "ok" if r.satisfies_m else "VIOLATED",
         "ok" if r.satisfies_r else "VIOLATED"]
        for r in reports
    ]
    table = format_table(
        "Figures 6+8: PLMR compliance on WSE-2",
        ["algorithm", "paths/core", "critical hops", "mem factor",
         "L", "M", "R"], rows,
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "figures_6_8.txt"), "w") as handle:
        handle.write(table + "\n")

    verdicts = {r.algorithm: r for r in reports}
    assert verdicts["meshgemm"].fully_compliant
    assert verdicts["ktree-allreduce-gemv"].fully_compliant
    for name in ("allgather-gemm", "summa", "cannon",
                 "pipeline-allreduce-gemv", "ring-allreduce-gemv"):
        assert not verdicts[name].fully_compliant, name


def test_measured_traces_match_claims(benchmark):
    """Functional runs must exhibit the claimed metrics."""
    grid = 8
    rng = np.random.default_rng(0)
    a = rng.standard_normal((grid, grid))

    def run():
        traces = {}
        for kernel in (MeshGEMM, CannonGEMM, SummaGEMM):
            machine = MeshMachine(TINY_MESH.submesh(grid, grid))
            kernel.run(machine, a, a)
            traces[kernel.name] = machine.trace
        for kernel in (MeshGEMV, PipelineGEMV):
            machine = MeshMachine(TINY_MESH.submesh(grid, grid))
            kernel.run(machine, a[0], a)
            traces[kernel.name] = machine.trace
        return traces

    traces = benchmark(run)
    # Route colours: cyclic-shift O(1); SUMMA O(N); K-tree <= K+1.
    assert traces["meshgemm"].max_paths_per_core <= 4
    assert traces["cannon"].max_paths_per_core <= 4
    assert traces["summa"].max_paths_per_core >= grid
    assert traces["meshgemv"].max_paths_per_core <= 3
    # Steady-state shift hops: 2 vs grid - 1.
    mesh_shift = max(r.max_hops for r in traces["meshgemm"].comms
                     if "shift" in r.pattern)
    cannon_shift = max(r.max_hops for r in traces["cannon"].comms
                       if "shift" in r.pattern)
    assert mesh_shift == 2
    assert cannon_shift == grid - 1
