"""Ablation — element precision (fp32 / fp16 / int8) across the system.

Not a paper table, but a corollary of its analysis.  Precision moves the
*memory-shaped* quantities, not the latency-shaped ones:

* prefill throughput rises as weights shrink (the weight-streaming term
  scales with bytes);
* KV-cache token capacity scales inversely with the element width
  (Table 5's budget arithmetic);
* MeshGEMV's K-tree, by contrast, is stage-latency dominated — its tiny
  per-hop payloads make the GEMV nearly precision-insensitive, unlike a
  GPU GEMV whose whole cost is the weight stream.
"""

import os

from dataclasses import replace

from repro.bench.reporting import format_table
from repro.core import WSE2
from repro.gemv import MeshGEMV
from repro.llm.config import LLAMA3_8B
from repro.llm.kvcache import ShiftKVCache, capacity_geometry
from repro.llm.wafer_system import WaferLLMSystem
from conftest import OUT_DIR

DTYPES = {"fp32": 4, "fp16": 2, "int8": 1}


def test_precision_sweep(benchmark):
    system = WaferLLMSystem(WSE2)

    def run():
        out = {}
        for name, nbytes in DTYPES.items():
            model = replace(LLAMA3_8B, name=f"llama3-8b-{name}",
                            dtype_bytes=nbytes)
            prefill = system.prefill_throughput(model, 4096, 600)
            geometry = capacity_geometry(model, 360,
                                         WSE2.core_memory_bytes,
                                         WSE2.num_cores)
            kv_capacity = ShiftKVCache(geometry).capacity
            gemv = MeshGEMV.estimate(WSE2.submesh(750), rows=16384,
                                     cols=16384, dtype_bytes=nbytes)
            out[name] = (prefill, kv_capacity, gemv)
        return out

    sweep = benchmark(run)
    rows = [[name, f"{prefill:,.0f}", f"{kv:,}",
             f"{gemv.seconds * 1e6:.2f}"]
            for name, (prefill, kv, gemv) in sweep.items()]
    table = format_table(
        "Ablation: element precision (LLaMA3-8B system effects)",
        ["dtype", "prefill tok/s @600^2", "KV tokens @360^2", "gemv16K us"],
        rows,
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "ablation_precision.txt"), "w") as handle:
        handle.write(table + "\n")

    # Narrower weights stream faster: prefill strictly improves.
    assert sweep["int8"][0] > sweep["fp16"][0] > sweep["fp32"][0]
    # KV capacity scales with the inverse element width.
    assert sweep["int8"][1] > 1.5 * sweep["fp16"][1]
    assert sweep["fp16"][1] > 1.5 * sweep["fp32"][1]
    # The K-tree GEMV is latency-bound: < 10% spread across 4x widths.
    assert sweep["fp32"][2].total_cycles < 1.1 * sweep["int8"][2].total_cycles
