"""Table 6 — MeshGEMV (WSE-2) vs cuBLAS (A100): GEMV latency and energy.

The paper's headline micro-benchmark: on same-process-node silicon the
wafer's on-chip bandwidth beats HBM by ~3 orders of magnitude in GEMV
latency and ~an order of magnitude in energy.
"""

from repro.bench.experiments import run_table6
from conftest import report


def test_table6_gemv_vs_gpu(benchmark):
    cells = benchmark(run_table6)
    report("Table 6: MeshGEMV(WSE-2) vs cuBLAS(A100) GEMV", cells)
    by_cell = {c.label: c.measured for c in cells}

    for dim in (16, 32):
        wse = by_cell[f"gemv{dim}K wse_ms"]
        gpu = by_cell[f"gemv{dim}K a100_ms"]
        ratio = by_cell[f"gemv{dim}K energy_ratio"]
        # Latency: hundreds of times faster (paper: 280x / 606x).
        assert 100 < gpu / wse < 3000, dim
        # Energy: wafer wins by ~an order of magnitude (paper: 10x/22x).
        assert 5 < ratio < 60, dim

    # The gap grows with matrix size (32K ratio > 16K ratio).
    assert by_cell["gemv32K energy_ratio"] > by_cell["gemv16K energy_ratio"]

    for cell in cells:
        assert 0.2 < cell.measured / cell.paper < 5.0, cell.label
