"""Ablation — the K in the two-way K-tree allreduce (Section 6.2).

The paper fixes K = 2, arguing that deeper trees add routing complexity
for shrinking returns and that K must respect the R budget.  This bench
sweeps K over the MeshGEMV cost model and over functional runs, showing:

* K = 1 (a two-way linear reduce) is clearly worst — the L cliff;
* K = 2 captures almost all of the benefit;
* K >= 3 changes little while raising the root's route-colour count
  (K + 1), eating into the R budget.
"""

import os

import numpy as np

from repro.bench.reporting import format_table
from repro.core.device_presets import TINY_MESH, WSE2
from repro.gemv import meshgemv_with_k
from repro.mesh.machine import MeshMachine
from conftest import OUT_DIR

KS = (1, 2, 3, 4)


def test_ktree_k_sweep(benchmark):
    device = WSE2

    def run():
        return {
            k: meshgemv_with_k(k).estimate(device, rows=16384, cols=16384,
                                           grid=720)
            for k in KS
        }

    costs = benchmark(run)
    rows = [[f"K={k}", f"{costs[k].total_cycles:,.0f}",
             f"{costs[k].comm_cycles:,.0f}", f"{k + 1}"] for k in KS]
    table = format_table(
        "Ablation: K-tree arity (GEMV 16K @ 720x720)",
        ["K", "total cyc", "comm cyc", "paths at root"], rows,
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "ablation_ktree_k.txt"), "w") as handle:
        handle.write(table + "\n")

    # K=1 is the linear-reduce cliff.
    assert costs[1].total_cycles > 2 * costs[2].total_cycles
    # K=2 already captures most of the benefit: K=3/4 change < 40%.
    for k in (3, 4):
        assert abs(costs[k].total_cycles - costs[2].total_cycles) \
            < 0.4 * costs[2].total_cycles


def test_ktree_k_functional_equivalence(benchmark):
    """All K values compute the same GEMV on the functional mesh."""
    grid = 8
    rng = np.random.default_rng(3)
    a = rng.standard_normal(grid * 2)
    b = rng.standard_normal((grid * 2, grid))
    expected = a @ b

    def run():
        results = {}
        for k in KS:
            machine = MeshMachine(TINY_MESH.submesh(grid, grid))
            results[k] = meshgemv_with_k(k).run(machine, a, b)
        return results

    results = benchmark(run)
    for k, got in results.items():
        assert np.allclose(got, expected), k
