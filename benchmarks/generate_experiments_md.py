#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from the live cost models.

    python benchmarks/generate_experiments_md.py > EXPERIMENTS.md

Runs every table/figure experiment and renders paper-vs-measured
markdown so the committed EXPERIMENTS.md always reflects the code.
"""

from __future__ import annotations

import io
import sys

from repro.bench.experiments import (
    fault_sweep_rows,
    run_fault_sweep,
    run_figure9,
    run_figure10,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
    run_placement_cells,
    run_serving_cells,
)

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (Section 7), reproduced
by this library's calibrated models and functional kernels.  Regenerate
with `python benchmarks/generate_experiments_md.py > EXPERIMENTS.md`;
the benchmark suite (`pytest benchmarks/ --benchmark-only`) asserts the
qualitative shapes (orderings, trends, crossovers) and that **every cell
lands within 5x of the published value** — most are far closer.

Absolute numbers come from an analytic cycle model of the WSE-2 (see
DESIGN.md for the substitution rationale and calibration constants), so
agreement should be read as "the model reproduces the published system
behaviour", not as a hardware measurement.

"""

PLACEMENT_INTRO = """## Placement — paper-chosen vs planner-chosen layouts (no paper counterpart)

`PYTHONPATH=src python -m repro place` — predicted throughput of the
placement planner's validated plan ("measured") against the paper's
hand-chosen grids anchored at the origin ("paper"), both priced on the
same fabric view through one scoring path (DESIGN.md §12).  The clean
row shows pure grid search: the planner keeps prefill compute-bound
longer (848² vs 660²) and stops decode before the K-tree reduction
dominates (276² vs 360²).  The degraded row injects a seeded WSE-2
defect map (seed 11, ~10k defects); the planner additionally steers its
carve-outs away from remap-stretched fabric and shrinks the decode grid
to 228², while the paper grids pay the communication stretch where they
land.  Every planner row replayed clean through the reconciler and the
PLMR trace sanitizer at the probe scale (zero findings).

"""

FAULT_SWEEP_INTRO = """## Fault sweep — availability and goodput under injected faults (no paper counterpart)

`PYTHONPATH=src python -m repro faults` — LLaMA3-8B on WSE-2, 16
requests (1024 in / 256 out, 50 ms inter-arrival), chunk 256, seed 0.
Each scenario reuses the baseline makespan as its fault horizon; all
schedules are pure functions of the seed (DESIGN.md §8).

"""

FAULT_SWEEP_OUTRO = """
* **Transients** (8 expected over the horizon) cost only retried step
  bodies plus backoff.
* **Link retrains** (4 expected, each 1% of the horizon at 0.25x
  bandwidth) stretch steps but commit them — no retries, no lost work.
* **A core death with a spare region** pays one remap: lost step +
  weight re-shard + KV recompute-from-prompt for every live job. MTTR
  jumps but capacity is fully restored, so goodput recovers.
* **Without spares** each death degrades capacity by a region-row
  fraction ((grid-1)/grid KV budget and batch ceiling); requests still
  complete — the policy sheds only jobs that can never fit again — at
  a lasting goodput cost.

The CI smoke variant (`repro faults --smoke`, 6 requests) asserts the
same ordering in under a second.

"""

FLEET_INTRO = """## Fleet chaos sweep — multi-wafer availability and failover (no paper counterpart)

`PYTHONPATH=src python -m repro fleet` — a 3-wafer LLaMA3-8B fleet on
WSE-2, 24 requests (20 ms mean inter-arrival, 4 sessions), chunk 256,
seed 0.  The clean run fixes the fault horizon; every schedule is a pure
function of the seed, and two same-seed runs produce identical failover
timelines (`timeline_signature`).  Availability is wafer-seconds up over
wafer-seconds total; a failover drains the dead wafer and re-prefills
every live session's context on a healthy replica through the ordinary
chunked-prefill path (DESIGN.md §13).

"""

FLEET_OUTRO = """
* **Wafer down mid-trace** retires one wafer at 40% of the clean
  makespan: the router migrates its live sessions and readmits the
  wafer as a fresh epoch after recovery — nothing is lost, goodput pays
  the re-prefill.
* **Wafer churn** draws Poisson down/degraded events across the
  horizon; every loss follows the same drain → migrate → readmit arc.
* **Router partition** hides a healthy wafer from new dispatches; work
  already placed there completes, so availability stays 1.0 — only
  dispatch balance shifts.
* **Bursty arrivals + wafer down** stacks the failover under a loaded
  queue; migrations ride the same admission path as fresh prompts.

The CI smoke variant (`repro fleet --smoke`, 12 requests on a tiny
model) asserts failovers >= 1, at least one live-session migration,
zero lost requests, and availability in (0, 1].

"""

SIMBENCH_INTRO = """## Simulator throughput — compiled mesh programs (no paper counterpart)

Wall-clock cost of the **functional simulator itself** (not the modeled
wafer): the same kernel launched through the eager reference path versus
the compiled execution layer (route caching + capture/replay, DESIGN.md
§10; batched structure-of-arrays flow engine + superfused reduce
chains, §11).  Timings come from the committed `BENCH_simulator.json`
(regenerate with `PYTHONPATH=src python -m repro bench`); speedup ratios
are machine-independent, absolute times are one container's.  Phase
counts are read live from the trace, so phases/s and decode steps/s
derive deterministically from the committed timings.

"""

SIMBENCH_OUTRO = """
The decode row is the per-token fast path: the weight matrix stays
resident on a warm machine and each launch re-places only the activation
vector before replaying the captured program through the batched flow
engine, so cached decode steps/s is the simulator's decode token rate
for one GEMV-bound layer slice.  The decode-vs-eager ratio is the
`batched_vs_eager` number CI tracks for the flow engine.

"""


def _simbench_phase_counts(report) -> dict:
    """Phases per iteration of each microbench (live, deterministic)."""
    import numpy as np

    from repro.core import WSE2
    from repro.gemm.meshgemm import MeshGEMM
    from repro.gemv.meshgemv import MeshGEMV
    from repro.llm.mesh_ops import MeshOpContext
    from repro.mesh.machine import MeshMachine
    from repro.mesh.reconcile import trace_to_phases

    marks = report["benchmarks"]
    rng = np.random.default_rng(0)
    counts = {}

    grid, dim = int(marks["decode_gemv"]["grid"]), int(marks["decode_gemv"]["dim"])
    machine = MeshMachine(WSE2.submesh(grid, grid), enforce_memory=False)
    MeshGEMV.run(machine,
                 rng.standard_normal((1, dim)).astype(np.float32),
                 rng.standard_normal((dim, dim)).astype(np.float32))
    counts["decode_gemv"] = len(trace_to_phases(machine.trace))

    grid, dim = int(marks["prefill_gemm"]["grid"]), int(marks["prefill_gemm"]["dim"])
    machine = MeshMachine(WSE2.submesh(grid, grid), enforce_memory=False)
    MeshGEMM.run(machine,
                 rng.standard_normal((dim, dim)).astype(np.float32),
                 rng.standard_normal((dim, dim)).astype(np.float32))
    counts["prefill_gemm"] = len(trace_to_phases(machine.trace))

    grid = int(marks["allreduce"]["grid"])
    length = int(marks["allreduce"]["length"])
    ops = MeshOpContext(device=WSE2, grid=grid)
    ops.reduce_sum(rng.standard_normal(length))
    counts["allreduce"] = len(trace_to_phases(ops.traces[-1][1]))
    return counts


def simbench_rows():
    """Rows for the simulator-throughput table, from the committed JSON."""
    import os

    from repro.bench.simbench import BENCH_FILENAME, load_report

    root = os.path.join(os.path.dirname(__file__), "..")
    report = load_report(os.path.join(root, BENCH_FILENAME))
    if report is None:
        raise SystemExit(
            f"{BENCH_FILENAME} missing at the repo root; run "
            "`PYTHONPATH=src python -m repro bench` first"
        )
    marks = report["benchmarks"]
    phases = _simbench_phase_counts(report)

    def row(label, bench, slow_key, fast_key, ratio_key):
        slow_ms = marks[bench][slow_key]
        fast_ms = marks[bench][fast_key]
        per_s = 1000.0 / fast_ms
        return [
            label,
            f"{slow_ms:.3f}",
            f"{fast_ms:.3f}",
            f"{marks[bench][ratio_key]:.2f}x",
            f"{per_s:,.0f}",
            f"{per_s * phases[bench]:,.0f}",
        ]

    dec = marks["decode_gemv"]
    gem = marks["prefill_gemm"]
    red = marks["allreduce"]
    return [
        row(f"decode GEMV step ({dec['grid']:.0f}² mesh, "
            f"{dec['dim']:.0f}² W) vs capture",
            "decode_gemv", "capture_ms", "replay_ms", "replay_vs_capture"),
        row(f"decode GEMV step ({dec['grid']:.0f}² mesh, "
            f"{dec['dim']:.0f}² W) vs eager",
            "decode_gemv", "eager_ms", "replay_ms", "replay_vs_eager"),
        row(f"prefill MeshGEMM ({gem['grid']:.0f}² mesh, "
            f"{gem['dim']:.0f}²)",
            "prefill_gemm", "eager_ms", "replay_ms", "replay_vs_eager"),
        row(f"K-tree allreduce ({red['grid']:.0f}-line, "
            f"{red['length']:.0f} values)",
            "allreduce", "eager_ms", "replay_ms", "replay_vs_eager"),
    ]


SERVEBENCH_INTRO = """## Serving throughput — macro-compiled serving loop (no paper counterpart)

Wall-clock cost of the **serving simulation itself**: whole traces
through `ServeEngine` and whole fleet chaos scenarios through
`FleetRouter`, with the macro-compiled loop (shape-keyed step-cost
cache + horizon-batched decode + incremental scheduling, DESIGN.md §15)
against the per-event reference loop.  Both modes are asserted
**bit-identical** before any timing counts — same fleet timeline
signatures, same per-request stats — so the speedup is pure overhead
removal, not model drift.  Numbers come from the committed
`BENCH_serving.json` (regenerate with `PYTHONPATH=src python -m repro
bench --suite serving`); ratios are machine-independent.

"""

SERVEBENCH_OUTRO = """
`fleet_bursty` is the decode-bound regime the horizon path is built
for — long outputs and flash-crowd arrivals mean thousands of pure
decode steps between scheduler events, which the macro loop commits as
single vectorized updates.  Prefill-heavy scenarios keep more work on
the per-event path (every chunk is a scheduling decision), so their
speedups are smaller; the step-cost cache still removes the dominant
analytic-model cost there.

"""


def servebench_rows():
    """Rows for the serving-throughput table, from the committed JSON."""
    import os

    from repro.bench.servebench import BENCH_FILENAME, load_report

    root = os.path.join(os.path.dirname(__file__), "..")
    report = load_report(os.path.join(root, BENCH_FILENAME))
    if report is None:
        raise SystemExit(
            f"{BENCH_FILENAME} missing at the repo root; run "
            "`PYTHONPATH=src python -m repro bench --suite serving` first"
        )
    rows = []
    for name, mark in report["benchmarks"].items():
        rows.append([
            name,
            f"{mark['n_requests']:.0f}",
            f"{mark['reference_ms']:.2f}",
            f"{mark['horizon_ms']:.2f}",
            f"{mark['horizon_rps']:,.0f}",
            f"{mark['horizon_vs_reference']:.2f}x",
        ])
    return rows


NOTES = """
## Reading notes / known deviations

* **Table 2 metric.** The published end-to-end throughput only
  reconciles with the paper's own prefill (Table 3) and decode (Table 4)
  rates if it counts *generated* tokens over total request time; we use
  that definition.
* **Table 5 absolutes.** Concat/shift capacities depend on the per-core
  SRAM left after weights and runtime reserve (a constant we document in
  `repro.llm.kvcache`); the headline ratio — shift supports
  `grid_height` x more tokens (360x / 375x) — is reserve-independent and
  matches the paper's 360x / 385x.
* **Table 6/8 energy ratios.** All energy ratios are device power x
  time with P(WSE-2) = 15 kW and P(A100) = 555 W, the constants that
  reproduce the paper's published GEMV/GEMM ratios; our MeshGEMV is
  modestly faster than the paper's measured kernel, which proportionally
  raises the Table 6 ratios.
* **Serving extension.** The paper serves one stream at a time, so the
  serving table has no paper column.  Chunked prefill piggybacks on the
  batched decode step with weights resident (decode-mode pricing);
  exclusive prefill streams weights and stalls every decode stream,
  which is why it loses on both goodput and p99 TTFT.  The benchmark
  suite asserts both inequalities strictly.
* **T10 / Ladder.** Three documented constants per baseline (see
  `repro.baselines`) are calibrated against Table 3/4 columns; Table 2
  is then reproduced without further tuning.
"""


def md_table(title: str, headers, rows) -> str:
    out = [f"## {title}", ""]
    out.append("| " + " | ".join(headers) + " |")
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    out.append("")
    return "\n".join(out)


def fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.1f}"
    if value >= 0.01:
        return f"{value:.3f}"
    return f"{value:.5f}"


def cells_to_rows(cells):
    rows = []
    for cell in cells:
        ratio = f"{cell.measured / cell.paper:.2f}x" if cell.paper else "—"
        paper = fmt(cell.paper) if cell.paper is not None else "—"
        rows.append([cell.label, fmt(cell.measured), paper, ratio])
    return rows


def figure_rows(cells):
    rows = []
    for cell in cells:
        rows.append([
            cell.label,
            f"{cell.measured:,.0f}",
            f"{cell.extra['compute_cycles']:,.0f}",
            f"{cell.extra['comm_cycles']:,.0f}",
        ])
    return rows


def main() -> None:
    out = io.StringIO()
    out.write(HEADER)
    headers = ["case", "measured", "paper", "measured/paper"]

    out.write(md_table("Table 2 — end-to-end throughput (generated tokens/s)",
                       headers, cells_to_rows(run_table2())))
    out.write(md_table("Table 3 — prefill throughput (tokens/s, seq 4096)",
                       headers, cells_to_rows(run_table3())))
    out.write(md_table("Table 4 — decode throughput (tokens/s, context 2048)",
                       headers, cells_to_rows(run_table4())))
    out.write(md_table("Table 5 — maximum tokens in generation",
                       headers, cells_to_rows(run_table5())))
    out.write(md_table("Table 6 — MeshGEMV (WSE-2) vs cuBLAS (A100)",
                       headers, cells_to_rows(run_table6())))
    out.write(md_table("Table 7 — MeshGEMM (WSE-2) vs cuBLAS (A100)",
                       headers, cells_to_rows(run_table7())))
    out.write(md_table("Table 8 — WaferLLM (WSE-2) vs vLLM (A100), 4096/4096",
                       headers, cells_to_rows(run_table8())))

    fig_headers = ["case", "total cycles", "compute cycles", "comm cycles"]
    out.write(md_table(
        "Figure 9 — MeshGEMM vs SUMMA vs Cannon (no published cycle "
        "counts; shapes asserted in benchmarks)",
        fig_headers, figure_rows(run_figure9())))
    out.write(md_table(
        "Figure 10 — MeshGEMV vs GEMV-Cerebras (no published cycle "
        "counts; shapes asserted in benchmarks)",
        fig_headers, figure_rows(run_figure10())))

    out.write(md_table(
        "Serving extension — chunked vs exclusive prefill, LLaMA3-8B on "
        "WSE-2 (canonical 32-request trace; no paper counterpart)",
        headers, cells_to_rows(run_serving_cells())))

    out.write(PLACEMENT_INTRO)
    out.write(md_table(
        "Placement planner vs paper defaults, LLaMA3-8B on WSE-2",
        ["case", "planner", "paper grids", "planner/paper"],
        cells_to_rows(run_placement_cells())))

    out.write(FAULT_SWEEP_INTRO)
    out.write("```\n")
    widths = [22, 4, 4, 7, 6, 4, 12, 7, 13]
    header = ["scenario", "done", "shed", "retries", "remaps", "degr",
              "availability", "MTTR ms", "goodput tok/s"]
    out.write("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()
              + "\n")
    for row in fault_sweep_rows(run_fault_sweep()):
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
                  + "\n")
    out.write("```\n")
    out.write(FAULT_SWEEP_OUTRO)

    out.write(FLEET_INTRO)
    out.write("```\n")
    fleet_widths = [28, 4, 4, 9, 4, 7, 12, 7, 11, 13]
    fleet_header = ["scenario", "done", "lost", "failovers", "migr",
                    "retries", "availability", "MTTR ms", "p99 TTFT ms",
                    "goodput tok/s"]
    out.write("  ".join(h.ljust(w)
                        for h, w in zip(fleet_header, fleet_widths)).rstrip()
              + "\n")
    from repro.core import WSE2
    from repro.fleet import chaos_sweep, fleet_rows
    from repro.llm.config import get_model

    sweep = chaos_sweep(get_model("llama3-8b"), WSE2)
    for row in fleet_rows(sweep):
        out.write("  ".join(c.ljust(w)
                            for c, w in zip(row, fleet_widths)).rstrip()
                  + "\n")
    out.write("```\n")
    out.write(FLEET_OUTRO)

    out.write(SIMBENCH_INTRO)
    out.write(md_table(
        "Simulator wall-clock, cached (replay) vs uncached",
        ["microbench", "uncached ms/it", "cached ms/it", "speedup",
         "cached it/s", "cached phases/s"],
        simbench_rows()))
    out.write(SIMBENCH_OUTRO)

    out.write(SERVEBENCH_INTRO)
    out.write(md_table(
        "Serving-loop wall-clock, horizon (macro) vs reference (per-event)",
        ["scenario", "requests", "reference ms", "horizon ms",
         "sim requests/s", "speedup"],
        servebench_rows()))
    out.write(SERVEBENCH_OUTRO)

    out.write(NOTES)
    sys.stdout.write(out.getvalue())


if __name__ == "__main__":
    main()
