"""Table 3 — prefill throughput (tokens/s) across core configurations.

Four models x three core configurations (480^2, 600^2, 720^2) x three
systems, at input sequence length 4096.  Asserts the paper's shapes:
WaferLLM scales up with cores while T10 and Ladder decline.
"""

from repro.bench.experiments import run_table3
from conftest import report

MODELS = ("llama3-8b", "llama2-13b", "codellama-34b", "qwen2-72b")
GRIDS = (480, 600, 720)


def test_table3_prefill(benchmark):
    cells = benchmark(run_table3)
    report("Table 3: prefill throughput (tokens/s, seq 4096)", cells,
           unit="tok/s")
    by_cell = {c.label: c.measured for c in cells}

    for model in MODELS:
        wafer = [by_cell[f"{model}@{g} waferllm"] for g in GRIDS]
        t10 = [by_cell[f"{model}@{g} t10"] for g in GRIDS]
        ladder = [by_cell[f"{model}@{g} ladder"] for g in GRIDS]
        # WaferLLM scales with cores; baselines decline (Section 7.1).
        assert wafer == sorted(wafer), model
        assert t10 == sorted(t10, reverse=True), model
        assert ladder == sorted(ladder, reverse=True), model
        # Orders of magnitude: ~100x over T10, several 100x over Ladder.
        assert wafer[0] > 40 * t10[0], model
        assert wafer[0] > 100 * ladder[0], model

    # Paper: 1.4x scale-up for 8B and 1.6x for 72B from 480^2 to 720^2 —
    # larger models scale better.
    scale_8b = by_cell["llama3-8b@720 waferllm"] / by_cell["llama3-8b@480 waferllm"]
    scale_72b = by_cell["qwen2-72b@720 waferllm"] / by_cell["qwen2-72b@480 waferllm"]
    assert 1.1 < scale_8b < 1.8
    assert scale_72b > scale_8b

    for cell in cells:
        assert 0.2 < cell.measured / cell.paper < 5.0, cell.label
