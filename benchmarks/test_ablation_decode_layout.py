"""Ablation — fine-grained replication vs partition-only decode layouts
(Section 4.2).

Decode activations are a single length-1 token vector.  Partition-only
layouts can split it across at most one mesh axis (N-way parallelism);
WaferLLM replicates the free dimension along the other axis (``B E_y
L^x``), lighting up all N^2 cores.  This bench quantifies the win for
one decode-layer GEMV chain and checks the paper's rationale: the
replicated plan needs no extra allreduce — its reduction tree is the
same K-tree the 1-D plan needs anyway.
"""

import os

from repro.bench.reporting import format_table
from repro.collectives.plans import ktree_reduce_plan
from repro.core.device_presets import WSE2
from repro.gemv import MeshGEMV
from repro.llm.config import LLAMA3_8B
from repro.mesh.cost_model import ComputePhase, estimate
from conftest import OUT_DIR


def _partition_only_cost(device, rows, cols, grid):
    """GEMV with the vector split along one axis only (1-D parallelism).

    Each of the ``grid`` core-columns holds a ``rows/grid`` slice of the
    vector and the full column strip of the matrix; the partials still
    reduce down the column with the K-tree.
    """
    tk = -(-rows // grid)
    phases = [ComputePhase(label="1d-partial", macs_per_core=float(tk * cols))]
    phases += ktree_reduce_plan(grid, payload_bytes=float(cols * 2),
                                payload_elems=float(cols), k=2)
    return estimate("partition-only", device, phases)


def test_decode_layout_ablation(benchmark):
    device = WSE2
    model = LLAMA3_8B
    grid = 360  # the 8B decode configuration

    def run():
        out = {}
        for name, (k, n) in {
            "wq (E->E)": (model.d_model, model.d_model),
            "w-gate (E->F)": (model.d_model, model.d_ff),
            "w-down (F->E)": (model.d_ff, model.d_model),
        }.items():
            replicated = MeshGEMV.estimate(device, rows=k, cols=n, grid=grid)
            partitioned = _partition_only_cost(device, k, n, grid)
            out[name] = (replicated, partitioned)
        return out

    sweep = benchmark(run)
    rows = []
    for name, (replicated, partitioned) in sweep.items():
        rows.append([
            name,
            f"{replicated.total_cycles:,.0f}",
            f"{partitioned.total_cycles:,.0f}",
            f"{partitioned.total_cycles / replicated.total_cycles:.1f}x",
        ])
    table = format_table(
        "Ablation: replicated (2-D) vs partition-only (1-D) decode GEMV "
        f"@ {grid}x{grid}",
        ["projection", "replicated cyc", "partition-only cyc", "win"], rows,
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "ablation_decode_layout.txt"), "w") as f:
        f.write(table + "\n")

    # Replication wins on every projection; the FFN GEMVs (the decode
    # cycle hogs) gain the most because their compute dominates.
    for name, (replicated, partitioned) in sweep.items():
        assert replicated.total_cycles < partitioned.total_cycles, name
    ffn_win = (sweep["w-gate (E->F)"][1].total_cycles
               / sweep["w-gate (E->F)"][0].total_cycles)
    assert ffn_win > 10
