"""Figure 9 — MeshGEMM vs SUMMA vs Cannon.

Two sweeps, exactly as the figure plots them:

* **core scaling** — fixed matrix size (2K/4K/8K), cores from 480^2 to
  720^2; reports total, compute, and communication cycles;
* **matrix-size scaling** — fixed 720^2 cores, matrices 2K to 32K.

Asserted shapes (Section 7.2): MeshGEMM has the lowest total cycles and
keeps >70% efficiency near the hardware limit while SUMMA/Cannon fall
below ~50% at 720^2 on small matrices; at 2K, SUMMA/Cannon *worsen* when
scaled 540^2 -> 720^2 while MeshGEMM does not; at 8K the communication
gap closes because compute fully hides it.
"""

from repro.bench.experiments import run_figure9
from repro.bench.reporting import format_table
from repro.core.device_presets import WSE2
from repro.gemm import CannonGEMM, MeshGEMM, SummaGEMM
from repro.gemm.base import GemmShape
from conftest import OUT_DIR

import os

KERNELS = (MeshGEMM, CannonGEMM, SummaGEMM)


def _efficiency(cost, shape, grid, device):
    ideal = shape.total_macs / (grid * grid * device.macs_per_cycle)
    return ideal / cost.total_cycles


def test_figure9_core_scaling(benchmark):
    cells = benchmark(run_figure9)
    rows = []
    for cell in cells:
        rows.append([
            cell.label,
            f"{cell.measured:,.0f}",
            f"{cell.extra['compute_cycles']:,.0f}",
            f"{cell.extra['comm_cycles']:,.0f}",
            f"{cell.extra['ms']:.3f}",
        ])
    table = format_table(
        "Figure 9: MeshGEMM vs SUMMA vs Cannon (core scaling)",
        ["case", "total cyc", "compute cyc", "comm cyc", "ms"], rows,
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "figure_9.txt"), "w") as handle:
        handle.write(table + "\n")

    by_point = {}
    for cell in cells:
        point, kernel = cell.label.rsplit(" ", 1)
        by_point.setdefault(point, {})[kernel] = cell

    # MeshGEMM never loses beyond noise.
    for point, kernels in by_point.items():
        best = min(c.measured for c in kernels.values())
        assert kernels["meshgemm"].measured <= best * 1.001, point

    # GEMM 2K: scaling 540 -> 720 worsens SUMMA and Cannon, not MeshGEMM.
    for kernel in ("cannon", "summa"):
        assert by_point["gemm2K@720"][kernel].measured > \
            by_point["gemm2K@540"][kernel].measured, kernel
    assert by_point["gemm2K@720"]["meshgemm"].measured <= \
        by_point["gemm2K@540"]["meshgemm"].measured * 1.05


def test_figure9_efficiency_claims(benchmark):
    device = WSE2
    shape = GemmShape.square(4096)

    def run():
        return {
            kernel.name: kernel.estimate(device, shape, grid=720)
            for kernel in KERNELS
        }

    costs = benchmark(run)
    eff = {name: _efficiency(cost, shape, 720, device)
           for name, cost in costs.items()}
    # MeshGEMM holds >70% efficiency near the hardware limit;
    # SUMMA and Cannon fall below ~50% (Section 7.2).
    assert eff["meshgemm"] > 0.70, eff
    assert eff["summa"] < 0.55, eff
    assert eff["cannon"] < 0.55, eff


def test_figure9_matrix_size_scaling(benchmark):
    device = WSE2

    def run():
        out = {}
        for dim in (2048, 4096, 8192, 16384, 32768):
            shape = GemmShape.square(dim)
            out[dim] = {
                kernel.name: kernel.estimate(device, shape, grid=720)
                for kernel in KERNELS
            }
        return out

    sweep = benchmark(run)
    rows = [
        [f"{dim // 1024}K", *(f"{sweep[dim][k.name].total_cycles:,.0f}"
                              for k in KERNELS)]
        for dim in sorted(sweep)
    ]
    print("\n" + format_table(
        "Figure 9 (right): matrix-size scaling at 720x720 (total cycles)",
        ["size", "meshgemm", "cannon", "summa"], rows,
    ))

    # Large matrices: communication matters less — the kernels converge
    # to within noise of each other (the paper still measures ~17%
    # there from effects below this model's resolution); MeshGEMM is
    # never worse.
    big = sweep[32768]
    assert big["meshgemm"].total_cycles <= big["summa"].total_cycles * 1.001
    assert big["meshgemm"].total_cycles <= big["cannon"].total_cycles * 1.001

    # Small matrices: the gap is multiplicative (paper: 2-3x+).
    small = sweep[2048]
    assert small["summa"].total_cycles / small["meshgemm"].total_cycles > 2
