"""Table 5 — maximum tokens in generation (KV-cache capacity).

Shift-based (WaferLLM) vs concat-based (PagedAttention-style) cache
management at the end-to-end decode configurations.  The headline shape:
the shift-based manager supports ``grid_height`` x more tokens (360x for
8B, ~385x for 13B) because every row of cores shares the load instead of
only the append row.
"""

import numpy as np

from repro.bench.experiments import run_table5
from repro.llm.config import get_model
from repro.llm.kvcache import ConcatKVCache, ShiftKVCache, capacity_geometry
from conftest import report


def test_table5_capacity(benchmark):
    cells = benchmark(run_table5)
    report("Table 5: maximum tokens in generation", cells, unit="tokens")
    by_cell = {c.label: c.measured for c in cells}

    for model, grid in (("llama3-8b", 360), ("llama2-13b", 375)):
        shift = by_cell[f"{model} shift"]
        concat = by_cell[f"{model} concat"]
        # The capacity ratio equals the row count exactly.
        assert shift / concat == grid, model
        # Paper reports 360x / 385x — same two-orders-of-magnitude shape.
        assert shift / concat > 300

    for cell in cells:
        assert 0.2 < cell.measured / cell.paper < 5.0, cell.label


def test_table5_failure_is_driven_not_computed(benchmark):
    """Actually fill a scaled-down cache until it refuses (failure path)."""
    model = get_model("llama3-8b")

    def fill_to_failure():
        geometry = capacity_geometry(model, 8, 48 * 1024, 851_400)
        concat = ConcatKVCache(geometry)
        shift = ShiftKVCache(geometry)
        empty = np.zeros(0)
        concat_count = shift_count = 0
        try:
            while True:
                concat.append(empty, empty)
                concat_count += 1
        except Exception:
            pass
        try:
            while True:
                shift.append(empty, empty)
                shift_count += 1
        except Exception:
            pass
        return concat_count, shift_count

    concat_count, shift_count = benchmark(fill_to_failure)
    assert shift_count == 8 * concat_count
