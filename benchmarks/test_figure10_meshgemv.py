"""Figure 10 — MeshGEMV vs GEMV-Cerebras (pipeline allreduce).

Core-scaling sweep at 4K/8K/16K square matrices plus a matrix-size
sweep.  Asserted shapes (Section 7.3): MeshGEMV's communication cycles
grow only slightly with cores while the baseline's linear reduce grows
steeply; total-time improvement reaches the paper's ~4.6x; at 16K,
MeshGEMV's total cycles keep decreasing with more cores while the
baseline eventually regresses.
"""

import os

from repro.bench.experiments import run_figure10
from repro.bench.reporting import format_table
from repro.core.device_presets import WSE2
from repro.gemv import MeshGEMV, PipelineGEMV
from conftest import OUT_DIR


def test_figure10_core_scaling(benchmark):
    cells = benchmark(run_figure10)
    rows = [[c.label, f"{c.measured:,.0f}",
             f"{c.extra['compute_cycles']:,.0f}",
             f"{c.extra['comm_cycles']:,.0f}",
             f"{c.extra['us']:.2f}"] for c in cells]
    table = format_table(
        "Figure 10: MeshGEMV vs GEMV-Cerebras (core scaling)",
        ["case", "total cyc", "compute cyc", "comm cyc", "us"], rows,
    )
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "figure_10.txt"), "w") as handle:
        handle.write(table + "\n")

    by_point = {}
    for cell in cells:
        point, kernel = cell.label.rsplit(" ", 1)
        by_point.setdefault(point, {})[kernel] = cell

    # MeshGEMV wins at every sweep point.
    speedups = []
    for point, kernels in by_point.items():
        ratio = kernels["pipeline-gemv"].measured / kernels["meshgemv"].measured
        assert ratio > 1.0, point
        speedups.append(ratio)
    # Peak improvement in the paper's range (up to ~4.6x; allow slack).
    assert 3.0 < max(speedups) < 12.0

    # Baseline comm cost grows faster with cores than MeshGEMV's, and
    # at the largest grid the baseline spends several times more cycles
    # communicating (the linear-reduce cliff).
    mesh_growth = (by_point["gemv4K@720"]["meshgemv"].extra["comm_cycles"]
                   / by_point["gemv4K@240"]["meshgemv"].extra["comm_cycles"])
    pipe_growth = (by_point["gemv4K@720"]["pipeline-gemv"].extra["comm_cycles"]
                   / by_point["gemv4K@240"]["pipeline-gemv"].extra["comm_cycles"])
    assert pipe_growth > mesh_growth
    assert (by_point["gemv4K@720"]["pipeline-gemv"].extra["comm_cycles"]
            > 3 * by_point["gemv4K@720"]["meshgemv"].extra["comm_cycles"])


def test_figure10_16k_keeps_scaling(benchmark):
    device = WSE2

    def run():
        out = {}
        for grid in (240, 360, 480, 600, 720):
            out[grid] = {
                "meshgemv": MeshGEMV.estimate(device, rows=16384, cols=16384,
                                              grid=grid),
                "pipeline": PipelineGEMV.estimate(device, rows=16384,
                                                  cols=16384, grid=grid),
            }
        return out

    sweep = benchmark(run)
    mesh = [sweep[g]["meshgemv"].total_cycles for g in sorted(sweep)]
    pipe = [sweep[g]["pipeline"].total_cycles for g in sorted(sweep)]
    # MeshGEMV total keeps decreasing as cores are added at 16K...
    assert mesh == sorted(mesh, reverse=True)
    # ...while the baseline's compute savings are eaten by the linear
    # reduce: its best point is NOT the largest grid.
    assert pipe.index(min(pipe)) < len(pipe) - 1
