"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures,
prints it next to the published numbers, and saves the rendered report
under ``benchmarks/out/``.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.bench.experiments import CellResult
from repro.bench.reporting import Comparison, comparison_table

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def report(title: str, cells: List[CellResult], unit: str = "") -> str:
    """Render, print, and persist a measured-vs-paper table."""
    comparisons = [
        Comparison(c.label, c.measured, c.paper, unit=unit) for c in cells
    ]
    text = comparison_table(title, comparisons)
    os.makedirs(OUT_DIR, exist_ok=True)
    filename = title.split(":")[0].strip().lower().replace(" ", "_") + ".txt"
    with open(os.path.join(OUT_DIR, filename), "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return text


@pytest.fixture
def save_report():
    """Fixture exposing the report helper."""
    return report
