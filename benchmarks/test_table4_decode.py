"""Table 4 — decode throughput (tokens/s) across core configurations.

Four models x three decode configurations (420^2, 540^2, 660^2) x three
systems, at a 2048-token live context.  Asserts the paper's shape:
*everyone's* decode throughput declines as cores grow (NoC latency hurts
GEMV), and WaferLLM's margin over T10 is single-digit (~5.7x) while the
margin over Ladder stays in the hundreds.
"""

from repro.bench.experiments import run_table4
from conftest import report

MODELS = ("llama3-8b", "llama2-13b", "codellama-34b", "qwen2-72b")
GRIDS = (420, 540, 660)


def test_table4_decode(benchmark):
    cells = benchmark(run_table4)
    report("Table 4: decode throughput (tokens/s)", cells, unit="tok/s")
    by_cell = {c.label: c.measured for c in cells}

    for model in MODELS:
        wafer = [by_cell[f"{model}@{g} waferllm"] for g in GRIDS]
        t10 = [by_cell[f"{model}@{g} t10"] for g in GRIDS]
        # Decode throughput decreases with more cores (Section 7.1).
        assert wafer == sorted(wafer, reverse=True), model
        assert t10 == sorted(t10, reverse=True), model

    # Speedups at 420^2: vs T10 single-digit, vs Ladder hundreds.
    wafer = by_cell["llama3-8b@420 waferllm"]
    assert 3 < wafer / by_cell["llama3-8b@420 t10"] < 12
    assert 80 < wafer / by_cell["llama3-8b@420 ladder"] < 600

    # Decode gains over T10 are far below the prefill gains (~160x):
    # the paper attributes this to decode moving much less data.
    assert wafer / by_cell["llama3-8b@420 t10"] < 20

    for cell in cells:
        assert 0.2 < cell.measured / cell.paper < 5.0, cell.label
