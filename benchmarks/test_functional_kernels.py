"""Simulator micro-benchmarks: functional kernel wall-clock on small meshes.

These time the *simulator itself* (not the modelled wafer): one full
functional MeshGEMM / MeshGEMV / distributed-transformer step on small
meshes, so regressions in the mesh machine's overhead show up in
``pytest-benchmark`` history.
"""

import numpy as np
import pytest

from repro.core.device_presets import TINY_MESH
from repro.gemm import MeshGEMM
from repro.gemv import MeshGEMV
from repro.llm.checkpoint import synthesize_weights
from repro.llm.config import TINY_GQA
from repro.llm.distributed import WaferTransformer
from repro.mesh.machine import MeshMachine

RNG = np.random.default_rng(0)
GEMM_A = RNG.standard_normal((24, 24))
GEMM_B = RNG.standard_normal((24, 24))
GEMV_A = RNG.standard_normal(24)
WEIGHTS = synthesize_weights(TINY_GQA, seed=1)


def test_functional_meshgemm_8x8(benchmark):
    def run():
        machine = MeshMachine(TINY_MESH.submesh(8, 8))
        return MeshGEMM.run(machine, GEMM_A, GEMM_B)

    result = benchmark(run)
    assert np.allclose(result, GEMM_A @ GEMM_B)


def test_functional_meshgemv_8x8(benchmark):
    def run():
        machine = MeshMachine(TINY_MESH.submesh(8, 8))
        return MeshGEMV.run(machine, GEMV_A, GEMM_B)

    result = benchmark(run)
    assert np.allclose(result, GEMV_A @ GEMM_B)


def test_functional_decode_step(benchmark):
    transformer = WaferTransformer(WEIGHTS)
    transformer.prefill(np.array([1, 2, 3]))
    token = [4]

    def step():
        logits = transformer.decode_step(token[0])
        token[0] = int(np.argmax(logits)) % TINY_GQA.vocab_size
        return logits

    logits = benchmark(step)
    assert logits.shape == (TINY_GQA.vocab_size,)
