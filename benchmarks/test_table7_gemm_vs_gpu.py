"""Table 7 — MeshGEMM (WSE-2) vs cuBLAS (A100): GEMM latency and energy.

The counterpoint to Table 6: GEMM is compute-bound, so the wafer's
bandwidth advantage buys latency (~8x, from sheer silicon area) but NOT
energy — the A100's denser, more efficient cores win the energy ratio
(paper: ~0.27-0.31, i.e. the wafer uses ~3x more energy).
"""

from repro.bench.experiments import run_table7
from conftest import report


def test_table7_gemm_vs_gpu(benchmark):
    cells = benchmark(run_table7)
    report("Table 7: MeshGEMM(WSE-2) vs cuBLAS(A100) GEMM", cells)
    by_cell = {c.label: c.measured for c in cells}

    for dim in (16, 32):
        wse = by_cell[f"gemm{dim}K wse_ms"]
        gpu = by_cell[f"gemm{dim}K a100_ms"]
        ratio = by_cell[f"gemm{dim}K energy_ratio"]
        # Latency: wafer faster by mid-single-digit factor (paper ~8x).
        assert 3 < gpu / wse < 20, dim
        # Energy: the GPU wins (ratio < 1) — the crossover vs Table 6.
        assert ratio < 1.0, dim

    for cell in cells:
        assert 0.2 < cell.measured / cell.paper < 5.0, cell.label
