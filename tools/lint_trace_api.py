#!/usr/bin/env python3
"""Lint: kernels must not call the raw ``Trace.record_*`` API.

The replayable phase stream depends on every event carrying its phase
scope, per-flow detail, and per-core MAC list — which only the
:class:`~repro.mesh.machine.MeshMachine` wrappers (``communicate``,
``compute``, ``barrier``) fill in.  A kernel that records into the
trace directly produces events the reconciler cannot replay, so direct
calls are allowed only inside the machine itself (and the trace module
that defines them).

Run from the repository root::

    python tools/lint_trace_api.py

Exits non-zero listing each offending ``path:line`` on stderr.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src" / "repro"

#: Modules allowed to touch the raw recording API: the machine (the one
#: sanctioned caller) and the trace module that defines it.
ALLOWED = {
    SOURCE_ROOT / "mesh" / "machine.py",
    SOURCE_ROOT / "mesh" / "trace.py",
}

RECORD_CALL = re.compile(r"\.record_(comm|compute|barrier)\s*\(")


def find_violations(source_root: Path = SOURCE_ROOT) -> List[Tuple[Path, int, str]]:
    """All ``path, line number, line`` triples calling ``record_*`` directly."""
    violations: List[Tuple[Path, int, str]] = []
    for path in sorted(source_root.rglob("*.py")):
        if path in ALLOWED:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if RECORD_CALL.search(line):
                violations.append((path, lineno, line.strip()))
    return violations


def main() -> int:
    violations = find_violations()
    for path, lineno, line in violations:
        rel = path.relative_to(REPO_ROOT)
        print(f"{rel}:{lineno}: direct trace recording: {line}",
              file=sys.stderr)
    if violations:
        print(
            f"\n{len(violations)} direct Trace.record_* call(s) outside "
            "repro/mesh/machine.py — route them through machine."
            "communicate / compute / barrier so the phase stream stays "
            "replayable.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
