#!/usr/bin/env python3
"""Lint: kernels must not call the raw ``Trace.record_*`` API.

Thin shim over the AST-based ``raw-trace-record`` rule in
:mod:`repro.analysis.lint` — the regex this script used to carry false-
positived on comments and docstrings; the AST rule only sees real call
sites.  The entry point and the :func:`find_violations` signature are
kept so existing CI invocations and tests stay green.

Run from the repository root::

    python tools/lint_trace_api.py

Exits non-zero listing each offending ``path:line`` on stderr.  The
full rule catalogue (this rule included) runs via ``repro check``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src" / "repro"

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))


def find_violations(source_root: Path = SOURCE_ROOT) -> List[Tuple[Path, int, str]]:
    """All ``path, line number, line`` triples calling ``record_*`` directly."""
    from repro.analysis.lint.engine import lint_tree
    from repro.analysis.lint.rules import RawTraceRecordRule

    violations: List[Tuple[Path, int, str]] = []
    for finding in lint_tree(source_root, rules=[RawTraceRecordRule()]):
        path = REPO_ROOT / finding.path
        line = ""
        try:
            line = path.read_text(encoding="utf-8").splitlines()[
                (finding.line or 1) - 1
            ].strip()
        except (OSError, IndexError):
            pass
        violations.append((path, finding.line or 0, line))
    return violations


def main() -> int:
    violations = find_violations()
    for path, lineno, line in violations:
        rel = path.relative_to(REPO_ROOT)
        print(f"{rel}:{lineno}: direct trace recording: {line}",
              file=sys.stderr)
    if violations:
        print(
            f"\n{len(violations)} direct Trace.record_* call(s) outside "
            "repro/mesh/machine.py — route them through machine."
            "communicate / compute / barrier so the phase stream stays "
            "replayable.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
