"""Tests for the analytic cycle model."""

import pytest

from repro.core import PLMRDevice
from repro.errors import ConfigurationError
from repro.mesh.cost_model import (
    CommPhase,
    ComputePhase,
    KernelCost,
    LoopPhase,
    ReducePhase,
    STAGE_LAUNCH_CYCLES,
    estimate,
)


@pytest.fixture
def device() -> PLMRDevice:
    return PLMRDevice(
        mesh_width=10, mesh_height=10, clock_hz=1e9,
        macs_per_cycle=2.0, hop_cycles=1.0, link_bytes_per_cycle=4.0,
    )


class TestComputePhase:
    def test_cycles(self, device):
        phase = ComputePhase("c", macs_per_core=200, overhead_cycles=10)
        assert phase.cycles(device) == pytest.approx(10 + 100)

    def test_repeats(self, device):
        phase = ComputePhase("c", macs_per_core=200, repeats=3,
                             overhead_cycles=10)
        assert phase.cycles(device) == pytest.approx(3 * 110)


class TestCommPhase:
    def test_head_plus_body(self, device):
        phase = CommPhase("m", hop_distance=7, payload_bytes=40,
                          overhead_cycles=0)
        assert phase.cycles(device) == pytest.approx(7 + 10)

    def test_repeats(self, device):
        phase = CommPhase("m", hop_distance=1, payload_bytes=4,
                          repeats=5, overhead_cycles=2)
        assert phase.cycles(device) == pytest.approx(5 * (2 + 1 + 1))


class TestReducePhase:
    def test_pipelined_wavefront(self, device):
        phase = ReducePhase("r", stages=10, stage_hop_distance=1,
                            payload_bytes=40, stage_add_elems=20,
                            overhead_cycles=0)
        expected = 10 * (1 + STAGE_LAUNCH_CYCLES) + 10 + 10
        assert phase.cycles(device) == pytest.approx(expected)

    def test_non_pipelined_rounds(self, device):
        phase = ReducePhase("r", stages=10, stage_hop_distance=1,
                            payload_bytes=40, stage_add_elems=20,
                            pipelined=False, overhead_cycles=0)
        expected = 10 * (1 + STAGE_LAUNCH_CYCLES + 10 + 10)
        assert phase.cycles(device) == pytest.approx(expected)

    def test_pipelined_beats_rounds(self, device):
        kwargs = dict(stages=50, stage_hop_distance=2, payload_bytes=400,
                      stage_add_elems=100)
        fast = ReducePhase("r", **kwargs)
        slow = ReducePhase("r", pipelined=False, **kwargs)
        assert fast.cycles(device) < slow.cycles(device)


class TestLoopPhase:
    def _loop(self, compute_macs, comm_bytes, overlap=True):
        return LoopPhase(
            "l", steps=10,
            compute=ComputePhase("c", compute_macs, overhead_cycles=0),
            comm=CommPhase("m", hop_distance=0, payload_bytes=comm_bytes,
                           overhead_cycles=0),
            overlap=overlap,
        )

    def test_overlap_takes_max(self, device):
        loop = self._loop(compute_macs=200, comm_bytes=40)  # 100 vs 10
        assert loop.cycles(device) == pytest.approx(10 * 100 + 10)

    def test_no_overlap_sums(self, device):
        loop = self._loop(compute_macs=200, comm_bytes=40, overlap=False)
        assert loop.cycles(device) == pytest.approx(10 * 110)

    def test_comm_bound_loop(self, device):
        loop = self._loop(compute_macs=2, comm_bytes=4000)  # 1 vs 1000
        assert loop.cycles(device) == pytest.approx(10 * 1000 + 1)

    def test_breakdowns(self, device):
        loop = self._loop(compute_macs=200, comm_bytes=40)
        assert loop.compute_cycles(device) == pytest.approx(1000)
        assert loop.comm_cycles(device) == pytest.approx(100)

    def test_zero_steps(self, device):
        loop = LoopPhase("l", steps=0,
                         compute=ComputePhase("c", 10),
                         comm=CommPhase("m", 1, 1))
        assert loop.cycles(device) == 0.0


class TestEstimateAndKernelCost:
    def test_estimate_sums_phases(self, device):
        cost = estimate("k", device, [
            ComputePhase("c", 200, overhead_cycles=0),
            CommPhase("m", 10, 40, overhead_cycles=0),
        ])
        assert cost.compute_cycles == pytest.approx(100)
        assert cost.comm_cycles == pytest.approx(20)
        assert cost.total_cycles == pytest.approx(120)

    def test_exposed_comm(self, device):
        loop = LoopPhase(
            "l", steps=10,
            compute=ComputePhase("c", 200, overhead_cycles=0),
            comm=CommPhase("m", 0, 4000, overhead_cycles=0),
        )
        cost = estimate("k", device, [loop])
        assert cost.exposed_comm_cycles == pytest.approx(
            cost.total_cycles - cost.compute_cycles
        )

    def test_seconds_and_ms(self, device):
        cost = KernelCost("k", device, 0, 0, 1e6)
        assert cost.seconds == pytest.approx(1e-3)
        assert cost.milliseconds == pytest.approx(1.0)

    def test_energy(self, device):
        cost = KernelCost("k", device, 0, 0, 1e9)  # 1 s
        assert cost.energy_joules == pytest.approx(device.device_power_w)

    def test_scaled(self, device):
        cost = KernelCost("k", device, 10, 20, 30).scaled(3)
        assert (cost.compute_cycles, cost.comm_cycles, cost.total_cycles) == \
            (30, 60, 90)

    def test_add(self, device):
        total = KernelCost("a", device, 1, 2, 3) + KernelCost("b", device, 4, 5, 9)
        assert total.total_cycles == 12

    def test_add_across_devices_rejected(self, device):
        other = PLMRDevice(mesh_width=2, mesh_height=2)
        with pytest.raises(ConfigurationError):
            KernelCost("a", device, 1, 1, 1) + KernelCost("b", other, 1, 1, 1)
