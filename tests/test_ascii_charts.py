"""Tests for the ASCII chart renderers."""

import pytest

from repro.bench.ascii_charts import grouped_bars, hbar_chart, sparkline
from repro.errors import ConfigurationError


class TestHBar:
    def test_largest_value_fills_width(self):
        chart = hbar_chart("t", {"a": 10.0, "b": 5.0}, width=20)
        lines = chart.splitlines()
        assert lines[1].count("█") == 20
        assert lines[2].count("█") == 10

    def test_labels_aligned(self):
        chart = hbar_chart("t", {"short": 1.0, "longer-name": 2.0})
        lines = chart.splitlines()[1:]
        assert lines[0].index("|") == lines[1].index("|")

    def test_unit_rendered(self):
        chart = hbar_chart("t", {"a": 3.0}, unit="ms")
        assert "3 ms" in chart

    def test_log_scale_compresses(self):
        linear = hbar_chart("t", {"a": 1000.0, "b": 1.0}, width=30)
        logd = hbar_chart("t", {"a": 1000.0, "b": 1.0}, width=30,
                          log_scale=True)
        assert linear.splitlines()[2].count("█") == 0
        assert "(log scale)" in logd

    def test_zero_values_ok(self):
        chart = hbar_chart("t", {"a": 0.0, "b": 1.0})
        assert "|" in chart

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            hbar_chart("t", {})

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            hbar_chart("t", {"a": -1.0})


class TestGroupedBars:
    def test_structure(self):
        chart = grouped_bars(
            "fig", ["2K", "8K"],
            {"meshgemm": [1.0, 4.0], "cannon": [3.0, 4.1]},
        )
        assert chart.count("2K:") == 1
        assert chart.count("meshgemm") == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            grouped_bars("f", ["a"], {"s": [1.0, 2.0]})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            grouped_bars("f", [], {})


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_extremes(self):
        line = sparkline([0.0, 10.0])
        assert line[0] == "▁" and line[1] == "█"

    def test_flat_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])
