"""Differential sweep for the batched flow engine.

The engine's contract (DESIGN.md §11): every batched quantity — ingress
contention, per-hop serialization, phase criticals, scope ingress — is
**bit-exact** with the eager per-flow reference.  Integer quantities are
exact by construction; floats are exact because ``np.add.at`` applies
its updates in destination order, which is the same order the eager
dict accumulation walks.  The sweep runs the real kernels and
collectives on clean, remapped, and degraded fabrics and compares
record by record; synthetic phases cover the port-serialization
semantics the kernels cannot reach; capture→replay runs the whole
chain through the compiled (superfused) path and demands an identical
trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.device_presets import TINY_MESH
from repro.gemm.gemm_t import MeshGEMMTransposed
from repro.gemm.meshgemm import MeshGEMM
from repro.gemv.meshgemv import MeshGEMV
from repro.collectives.allgather import line_allgather
from repro.collectives.allreduce import broadcast_from_root, ktree_reduce
from repro.llm.mesh_ops import MeshOpContext
from repro.mesh import FlowBatch, PhaseStream
from repro.mesh.fabric import Flow
from repro.mesh.flow_engine import PORT_TUPLES, encode_ports, segment_max
from repro.mesh.machine import MeshMachine
from repro.mesh.netsim import FlowSpec, simulate_flows
from repro.mesh.program import ProgramReplayError
from repro.mesh.reconcile import _scope_ingress_bytes, _scope_ingress_bytes_eager
from repro.mesh.remap import DefectMap, normalize_link
from repro.mesh.trace import CommRecord, FlowRecord, ingress_port

GRID = 4
DIM = 8


def _clean_machine(vectorize: bool = False) -> MeshMachine:
    return MeshMachine(TINY_MESH.submesh(GRID, GRID), vectorize=vectorize)


def _remapped_machine(vectorize: bool = False) -> MeshMachine:
    """A 5x5 physical fabric remapped down to the 4x4 logical grid."""
    defects = DefectMap(
        GRID + 1, GRID + 1,
        dead_cores=frozenset({(2, 2)}),
        dead_links=frozenset({normalize_link((0, 1), (1, 1))}),
        degraded_links={normalize_link((3, 0), (3, 1)): 0.5},
    )
    return MeshMachine(
        TINY_MESH.submesh(GRID + 1, GRID + 1),
        defects=defects,
        logical_shape=(GRID, GRID),
        vectorize=vectorize,
    )


def _degraded_machine(vectorize: bool = False) -> MeshMachine:
    """Full-size fabric, no remap — only bandwidth-degraded links."""
    defects = DefectMap(
        GRID, GRID,
        degraded_links={
            normalize_link((1, 0), (2, 0)): 0.5,
            normalize_link((0, 2), (0, 3)): 0.25,
        },
    )
    return MeshMachine(
        TINY_MESH.submesh(GRID, GRID),
        defects=defects,
        logical_shape=(GRID, GRID),
        vectorize=vectorize,
    )


MACHINES = [_clean_machine, _remapped_machine, _degraded_machine]
MACHINE_IDS = ["clean", "remapped", "degraded"]
KERNELS = [MeshGEMM, MeshGEMV, MeshGEMMTransposed]


def _operands(rng, kernel):
    if kernel is MeshGEMV:
        return (rng.integers(-4, 5, size=(1, DIM)).astype(np.float64),
                rng.integers(-4, 5, size=(DIM, DIM)).astype(np.float64))
    return (rng.integers(-4, 5, size=(DIM, DIM)).astype(np.float64),
            rng.integers(-4, 5, size=(DIM, DIM)).astype(np.float64))


def _rows(machine):
    width = machine.topology.width
    height = machine.topology.height
    return [[(x, y) for x in range(width)] for y in range(height)]


def _run_allreduce(machine) -> None:
    lines = _rows(machine)
    for line in lines:
        for i, coord in enumerate(line):
            machine.place("ar.v", coord, np.array([float(i + 1), 2.0]))
    roots = ktree_reduce(machine, lines, "ar.v")
    broadcast_from_root(machine, lines, roots, "ar.v")


def _run_allgather(machine) -> None:
    lines = _rows(machine)
    for line in lines:
        for i, coord in enumerate(line):
            machine.place("ag.t", coord, np.array([float(i)]))
    line_allgather(machine, lines, "ag.t", "ag.out")


COLLECTIVES = [_run_allreduce, _run_allgather]
COLLECTIVE_IDS = ["allreduce", "allgather"]


# ---------------------------------------------------------------------------
# Ingress contention: batched == eager, record by record
# ---------------------------------------------------------------------------
class TestIngressDifferential:
    @pytest.mark.parametrize("make_machine", MACHINES, ids=MACHINE_IDS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_kernel_records_bit_exact(self, rng, kernel, make_machine):
        machine = make_machine()
        kernel.run(machine, *_operands(rng, kernel))
        comms = machine.trace.comms
        assert comms, "kernel produced no communication phases"
        for rec in comms:
            assert rec.ingress_bottleneck_bytes == (
                rec.ingress_bottleneck_bytes_eager()
            )

    @pytest.mark.parametrize("make_machine", MACHINES, ids=MACHINE_IDS)
    @pytest.mark.parametrize("collective", COLLECTIVES, ids=COLLECTIVE_IDS)
    def test_collective_records_bit_exact(self, collective, make_machine):
        machine = make_machine()
        collective(machine)
        comms = machine.trace.comms
        assert comms
        for rec in comms:
            assert rec.ingress_bottleneck_bytes == (
                rec.ingress_bottleneck_bytes_eager()
            )

    def test_opposite_ports_do_not_serialize(self):
        # Two 100-byte flows entering (1, 1) from east and west use
        # different ingress links: the bottleneck is one flow, not two.
        flows = (
            FlowRecord(src=(0, 1), dsts=((1, 1),), hops=1, nbytes=100),
            FlowRecord(src=(2, 1), dsts=((1, 1),), hops=1, nbytes=100),
        )
        rec = CommRecord(step=0, pattern="p", num_flows=2, max_hops=1,
                         total_hops=2, max_payload_bytes=100,
                         total_payload_bytes=200, flows=flows)
        assert rec.ingress_bottleneck_bytes == 100.0
        assert rec.ingress_bottleneck_bytes_eager() == 100.0

    def test_same_port_serializes(self):
        # Both flows approach (0, 1) from the east: one shared ingress
        # link, so the payloads stack.
        flows = (
            FlowRecord(src=(2, 1), dsts=((0, 1),), hops=2, nbytes=100),
            FlowRecord(src=(3, 1), dsts=((0, 1),), hops=3, nbytes=100),
        )
        rec = CommRecord(step=0, pattern="p", num_flows=2, max_hops=3,
                         total_hops=5, max_payload_bytes=100,
                         total_payload_bytes=200, flows=flows)
        assert rec.ingress_bottleneck_bytes == 200.0
        assert rec.ingress_bottleneck_bytes_eager() == 200.0

    def test_degraded_flow_occupies_ingress_longer(self):
        # A half-rate route doubles the flow's wire bytes in the
        # bottleneck accounting.
        flows = (
            FlowRecord(src=(2, 1), dsts=((0, 1),), hops=2, nbytes=100,
                       bw_factor=0.5),
        )
        rec = CommRecord(step=0, pattern="p", num_flows=1, max_hops=2,
                         total_hops=2, max_payload_bytes=100,
                         total_payload_bytes=100, flows=flows)
        assert rec.ingress_bottleneck_bytes == 200.0
        assert rec.ingress_bottleneck_bytes_eager() == 200.0

    def test_encode_ports_matches_ingress_port_exhaustive(self):
        coords = [(x, y) for x in range(5) for y in range(4)]
        src, dst = [], []
        for s in coords:
            for d in coords:
                if s != d:
                    src.append(s)
                    dst.append(d)
        codes = encode_ports(np.array(src), np.array(dst))
        for s, d, code in zip(src, dst, codes):
            assert PORT_TUPLES[code] == ingress_port(s, d)


# ---------------------------------------------------------------------------
# Phase criticals: segment reductions == per-record loops
# ---------------------------------------------------------------------------
class TestPhaseCriticals:
    @pytest.mark.parametrize("make_machine", MACHINES, ids=MACHINE_IDS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_stream_matches_per_record(self, rng, kernel, make_machine):
        machine = make_machine()
        kernel.run(machine, *_operands(rng, kernel))
        comms = machine.trace.comms
        stream = PhaseStream.from_records(comms)
        assert stream.num_phases == len(comms)

        assert stream.max_hops_per_phase().tolist() == [
            float(rec.max_hops) for rec in comms
        ]
        assert stream.ingress_bottleneck_per_phase().tolist() == [
            rec.ingress_bottleneck_bytes_eager() for rec in comms
        ]
        assert stream.max_wire_bytes_per_phase().tolist() == [
            max(f.wire_bytes for f in rec.flows) for rec in comms
        ]

        device = machine.device
        expected_cycles = [
            max(
                f.hops * device.hop_cycles
                + f.nbytes / (device.link_bytes_per_cycle * f.bw_factor)
                for f in rec.flows
            )
            for rec in comms
        ]
        assert stream.stream_cycles_per_phase(device).tolist() == (
            expected_cycles
        )

    def test_empty_phase_segments_fill_zero(self):
        class _Rec:
            flows = ()

        real = FlowRecord(src=(0, 0), dsts=((2, 0),), hops=2, nbytes=16)

        class _Full:
            flows = (real,)

        stream = PhaseStream.from_records([_Rec(), _Full(), _Rec()])
        assert stream.max_hops_per_phase().tolist() == [0.0, 2.0, 0.0]
        assert stream.ingress_bottleneck_per_phase().tolist() == [
            0.0, 16.0, 0.0
        ]

    def test_segment_max_against_naive(self, rng):
        values = rng.standard_normal(50)
        offsets = np.array([0, 0, 7, 7, 20, 50])  # two empty segments
        got = segment_max(values, offsets, len(offsets), fill=-1.0)
        bounds = list(offsets) + [len(values)]
        for i in range(len(offsets)):
            seg = values[bounds[i]:bounds[i + 1]]
            expected = seg.max() if len(seg) else -1.0
            assert got[i] == expected


# ---------------------------------------------------------------------------
# Gather-scope ingress: PhaseStream reduction == scalar dict walk
# ---------------------------------------------------------------------------
class TestScopeIngress:
    @pytest.mark.parametrize("make_machine", MACHINES, ids=MACHINE_IDS)
    def test_batched_equals_eager_on_allgather(self, make_machine):
        machine = make_machine()
        _run_allgather(machine)
        comms = machine.trace.comms
        assert _scope_ingress_bytes(comms) == _scope_ingress_bytes_eager(comms)

    def test_fallback_without_flow_detail(self):
        legacy = CommRecord(step=0, pattern="p", num_flows=3, max_hops=2,
                            total_hops=4, max_payload_bytes=64,
                            total_payload_bytes=128)
        comms = [legacy, legacy]
        assert _scope_ingress_bytes(comms) == 128
        assert _scope_ingress_bytes(comms) == _scope_ingress_bytes_eager(comms)


# ---------------------------------------------------------------------------
# Fluid NoC simulator: batched water-filling == eager water-filling
# ---------------------------------------------------------------------------
class TestNetsimDifferential:
    @pytest.fixture
    def device(self):
        return TINY_MESH.submesh(8, 8)

    def _compare(self, device, flows):
        eager = simulate_flows(device, flows, batched=False)
        batched = simulate_flows(device, flows, batched=True)
        assert len(eager) == len(batched)
        for e, b in zip(eager, batched):
            assert e.spec == b.spec
            assert e.hops == b.hops
            assert b.completion_cycles == pytest.approx(
                e.completion_cycles, rel=1e-9
            )

    def test_random_flows(self, rng, device):
        flows = [
            FlowSpec(
                (int(rng.integers(8)), int(rng.integers(8))),
                (int(rng.integers(8)), int(rng.integers(8))),
                float(rng.integers(1, 400)),
            )
            for _ in range(40)
        ]
        self._compare(device, flows)

    def test_fan_in_contention(self, device):
        flows = [FlowSpec((x, 0), (7, 0), 64.0) for x in range(7)]
        self._compare(device, flows)

    def test_duplicate_routes(self, device):
        flows = [FlowSpec((0, 0), (4, 0), 100.0)] * 5
        self._compare(device, flows)


# ---------------------------------------------------------------------------
# Capture -> compiled replay: superfused phases, identical traces
# ---------------------------------------------------------------------------
def _trace_signature(trace):
    return (
        trace.comms,
        trace.computes,
        trace.barriers,
        trace._scopes,
        trace._next_seq,
        trace._next_group,
        trace.peak_memory_bytes,
        trace.core_peak_bytes,
    )


def _reduce_chain_machine():
    """A stacked compute feeding a 3-stage unicast reduce chain — the
    exact shape the compiled tape superfuses into one array step."""
    machine = MeshMachine(TINY_MESH.submesh(GRID, GRID), vectorize=True)
    for y in range(GRID):
        for x in range(GRID):
            machine.place("x", (x, y), np.array([float(x + 1), float(y + 1)]))
    return machine


def _run_reduce_chain(machine):
    coords = list(machine.topology.coords())

    def scalar(core):
        core.store("p", core.load("x") * 2.0)
        return 2.0

    def stacked(stacks):
        return {"p": stacks["x"] * 2.0}, 2.0

    with machine.phase("chain", kind="reduce", pipelined=True):
        machine.compute_stacked(
            "double", coords, stacked,
            reads=("x",), writes=("p",), fallback=scalar,
        )
        for step, src_x in enumerate((3, 2, 1)):
            flows = [
                Flow.unicast((src_x, y), (0, y), "p", "p.in")
                for y in range(GRID)
            ]
            machine.communicate(f"fold-{step}", flows)
            machine.absorb(
                f"fold-{step}-add",
                [((0, y), "p", "p.in") for y in range(GRID)],
                op="add", reads=("p", "p.in"), writes=("p",),
            )


class TestSuperfusedReplay:
    def _expected_roots(self):
        # p = 2x doubled then rows folded into x=0: sum over x of 2(x+1).
        return {
            (0, y): np.array([2.0 * (1 + 2 + 3 + 4), 8.0 * (y + 1)])
            for y in range(GRID)
        }

    def test_live_run_values(self):
        machine = _reduce_chain_machine()
        _run_reduce_chain(machine)
        for coord, want in self._expected_roots().items():
            assert np.array_equal(machine.core(coord).load("p"), want)

    @pytest.mark.parametrize("compiled", [True, False],
                             ids=["compiled", "eager-replay"])
    def test_replay_matches_live(self, compiled):
        capture_machine = _reduce_chain_machine()
        with capture_machine.capture() as program:
            _run_reduce_chain(capture_machine)

        replay_machine = _reduce_chain_machine()
        program.replay(replay_machine, compiled=compiled)

        reference = _reduce_chain_machine()
        _run_reduce_chain(reference)
        for coord in reference.topology.coords():
            assert np.array_equal(
                replay_machine.core(coord).load("p"),
                reference.core(coord).load("p"),
            )
        assert _trace_signature(replay_machine.trace) == _trace_signature(
            reference.trace
        )

    def test_compiled_and_eager_replay_agree(self):
        capture_machine = _reduce_chain_machine()
        with capture_machine.capture() as program:
            _run_reduce_chain(capture_machine)
        fast = _reduce_chain_machine()
        program.replay(fast, compiled=True)
        slow = _reduce_chain_machine()
        program.replay(slow, compiled=False)
        for coord in fast.topology.coords():
            assert np.array_equal(
                fast.core(coord).load("p"), slow.core(coord).load("p")
            )
        assert _trace_signature(fast.trace) == _trace_signature(slow.trace)

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("make_machine", MACHINES, ids=MACHINE_IDS)
    def test_kernel_capture_replay_bit_exact(self, rng, kernel, make_machine):
        a, b = _operands(rng, kernel)
        expected = kernel.run(make_machine(True), a, b)
        _, program = kernel.capture_run(make_machine(True), a, b)
        replay_machine = make_machine(True)
        replayed = kernel.replay_run(replay_machine, program, a, b)
        assert np.array_equal(replayed, expected)
        reference = make_machine(True)
        kernel.run(reference, a, b)
        assert _trace_signature(replay_machine.trace) == _trace_signature(
            reference.trace
        )


# ---------------------------------------------------------------------------
# Weight-stationary decode path: stacked activation feed
# ---------------------------------------------------------------------------
class TestStackedFeed:
    def test_warm_context_bit_exact_multi_token(self, rng):
        weights = rng.integers(-4, 5, size=(DIM, DIM)).astype(np.float64)
        eager = MeshOpContext(grid=GRID)
        warm = MeshOpContext(grid=GRID, compiled=True, vectorize=True)
        for _ in range(6):
            vec = rng.integers(-4, 5, size=DIM).astype(np.float64)
            assert np.array_equal(
                warm.gemv(vec, weights), eager.gemv(vec, weights)
            )
        entry = next(iter(warm._resident.values()))
        assert entry["feed"] is not None

    def test_feed_places_scatter_identical_tiles(self, rng):
        weights = rng.integers(-4, 5, size=(DIM, DIM)).astype(np.float64)
        warm = MeshOpContext(grid=GRID, compiled=True, vectorize=True)
        vec = rng.integers(-4, 5, size=DIM).astype(np.float64)
        warm.gemv(vec, weights)
        fresh = rng.integers(-4, 5, size=DIM).astype(np.float64)
        warm.gemv(fresh, weights)
        machine = next(iter(warm._resident.values()))["machine"]
        tk = DIM // GRID
        for y in range(GRID):
            chunk = fresh[y * tk:(y + 1) * tk]
            for x in range(GRID):
                assert np.array_equal(
                    machine.core((x, y)).load("gemv.a"), chunk
                )

    def test_feed_absent_without_stacked_compute(self, rng):
        weights = rng.integers(-4, 5, size=(DIM, DIM)).astype(np.float64)
        eager = MeshOpContext(grid=GRID)
        warm = MeshOpContext(grid=GRID, compiled=True, vectorize=False)
        vec = rng.integers(-4, 5, size=DIM).astype(np.float64)
        warm.gemv(vec, weights)
        entry = next(iter(warm._resident.values()))
        assert entry["feed"] is None  # no stacked op reads the activation
        # The scatter fallback still replays bit-exactly.
        for _ in range(3):
            v = rng.integers(-4, 5, size=DIM).astype(np.float64)
            assert np.array_equal(warm.gemv(v, weights), eager.gemv(v, weights))

    def test_make_stacked_feed_rejects_unknown_names(self, rng):
        weights = rng.integers(-4, 5, size=(DIM, DIM)).astype(np.float64)
        warm = MeshOpContext(grid=GRID, compiled=True, vectorize=True)
        vec = rng.integers(-4, 5, size=DIM).astype(np.float64)
        warm.gemv(vec, weights)
        entry = next(iter(warm._resident.values()))
        program, machine = entry["program"], entry["machine"]
        placement = [((x, y), 0, 2) for y in range(GRID) for x in range(GRID)]
        assert program.make_stacked_feed(machine, "no.such", placement) is None
        # Mixed slice lengths are refused too.
        bad = [((x, y), 0, 1 + x % 2)
               for y in range(GRID) for x in range(GRID)]
        assert program.make_stacked_feed(machine, "gemv.a", bad) is None


# ---------------------------------------------------------------------------
# Link retrains invalidate bandwidth-keyed caches (regression)
# ---------------------------------------------------------------------------
class TestRetrainInvalidation:
    def _machine(self):
        defects = DefectMap(
            GRID, GRID,
            degraded_links={normalize_link((1, 0), (2, 0)): 0.5},
        )
        return MeshMachine(
            TINY_MESH.submesh(GRID, GRID),
            defects=defects,
            logical_shape=(GRID, GRID),
        )

    def test_flow_bandwidth_cache_sees_retrain(self):
        machine = self._machine()
        flow = Flow.unicast((0, 0), (3, 0), "t", "t")
        assert machine.fabric.flow_bandwidth_factor(flow) == 0.5
        machine.topology.defects.retrain_link((1, 0), (2, 0), 0.25)
        # The cache key carries links_version: no stale 0.5 served.
        assert machine.fabric.flow_bandwidth_factor(flow) == 0.25
        machine.topology.defects.retrain_link((1, 0), (2, 0), 1.0)
        assert machine.fabric.flow_bandwidth_factor(flow) == 1.0

    def test_comm_records_follow_retrain(self):
        machine = self._machine()
        machine.place("t", (0, 0), np.arange(4.0))
        machine.communicate(
            "before", [Flow.unicast((0, 0), (3, 0), "t", "t.in")]
        )
        assert machine.trace.comms[-1].flows[0].bw_factor == 0.5
        machine.topology.defects.retrain_link((1, 0), (2, 0), 0.25)
        machine.communicate(
            "after", [Flow.unicast((0, 0), (3, 0), "t", "t.in2")]
        )
        assert machine.trace.comms[-1].flows[0].bw_factor == 0.25

    def test_retrain_invalidates_captured_programs(self, rng):
        machine = self._machine()
        a, b = _operands(rng, MeshGEMV)
        _, program = MeshGEMV.capture_run(machine, a, b)
        replay_machine = self._machine()
        assert program.compatible(replay_machine)
        replay_machine.topology.defects.retrain_link((1, 0), (2, 0), 0.25)
        assert not program.compatible(replay_machine)
        with pytest.raises(ProgramReplayError):
            MeshGEMV.replay_run(replay_machine, program, a, b)


# ---------------------------------------------------------------------------
# FlowBatch construction parity: fabric SoA == per-flow lookups
# ---------------------------------------------------------------------------
class TestFlowBatchConstruction:
    @pytest.mark.parametrize("make_machine", MACHINES, ids=MACHINE_IDS)
    def test_fabric_batch_matches_per_flow(self, make_machine):
        machine = make_machine()
        fabric = machine.fabric
        flows = [
            Flow.unicast((0, 0), (3, 2), "t", "t.in"),
            Flow.multicast((1, 1), [(1, 3), (3, 1), (0, 0)], "t", "t.in"),
            Flow.unicast((2, 2), (2, 2), "t", "t.in"),  # local, zero hops
        ]
        nbytes = [32, 48, 8]
        batch = fabric.flow_batch(flows, nbytes)
        assert batch.num_flows == len(flows)
        assert batch.nbytes.tolist() == nbytes
        for i, flow in enumerate(flows):
            assert batch.hops[i] == fabric.flow_hops(flow)
            assert batch.bw_factor[i] == fabric.flow_bandwidth_factor(flow)
        assert batch.num_dsts == sum(len(f.dsts) for f in flows)
        assert [tuple(d) for d in batch.dst] == [
            d for f in flows for d in f.dsts
        ]

    def test_dense_vectorized_path_matches_loop(self):
        # Above VECTOR_MIN_FLOWS on a dense mesh the fabric vectorizes
        # Manhattan hop computation; compare to the memoized lookups.
        machine = MeshMachine(TINY_MESH.submesh(8, 8))
        fabric = machine.fabric
        flows = [
            Flow.unicast((x, y), (7 - x, 7 - y), "t", "t.in")
            for x in range(8) for y in range(8)
        ]
        nbytes = [16] * len(flows)
        batch = fabric.flow_batch(flows, nbytes)
        for i, flow in enumerate(flows):
            assert batch.hops[i] == fabric.flow_hops(flow)
            assert batch.bw_factor[i] == 1.0

    def test_record_batch_equals_lazy_rebuild(self, rng):
        machine = _clean_machine()
        MeshGEMV.run(machine, *_operands(rng, MeshGEMV))
        for rec in machine.trace.comms:
            attached = rec.flow_batch()
            rebuilt = FlowBatch.from_records(rec.flows)
            assert attached.nbytes.tolist() == rebuilt.nbytes.tolist()
            assert attached.hops.tolist() == rebuilt.hops.tolist()
            assert attached.bw_factor.tolist() == rebuilt.bw_factor.tolist()
            assert attached.src.tolist() == rebuilt.src.tolist()
            assert attached.dst.tolist() == rebuilt.dst.tolist()
            assert attached.dst_flow.tolist() == rebuilt.dst_flow.tolist()
