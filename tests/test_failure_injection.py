"""Failure-injection tests: PLMR violations surfacing through real flows.

The M and R properties are enforced by the substrate, so violations must
surface as typed errors in realistic end-to-end situations — a decode
loop outgrowing a concat cache, an inference pass on starved cores, a
routing-enforced fabric refusing a SUMMA plan.
"""

import numpy as np
import pytest

from repro.core.device_presets import TINY_MESH, WSE2
from repro.errors import (
    CapacityExceeded,
    ConfigurationError,
    FaultEscalationError,
    MemoryCapacityError,
    RoutingResourceError,
)
from repro.gemm import MeshGEMM, SummaGEMM
from repro.llm.checkpoint import synthesize_weights
from repro.llm.config import TINY_MHA, get_model
from repro.llm.distributed import WaferTransformer
from repro.mesh.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.mesh.machine import MeshMachine
from repro.serving import Request, WaferServer


class TestKVOverflowDuringInference:
    def test_concat_cache_dies_mid_generation(self):
        """A concat-managed decode hits CapacityExceeded while the
        shift-managed twin keeps generating — Table 5 as a failure."""
        weights = synthesize_weights(TINY_MHA, seed=31)
        # Budget for ~6 tokens per row on a 3-row cache.
        budget = 6 * 2 * (TINY_MHA.kv_dim // 4) * 8
        concat = WaferTransformer(weights, cache_kind="concat",
                                  kv_rows=3, kv_budget_bytes=budget)
        shift = WaferTransformer(weights, cache_kind="shift",
                                 kv_rows=3, kv_budget_bytes=budget)
        prompt = np.array([1, 2, 3])
        concat.prefill(prompt)
        shift.prefill(prompt)
        concat_tokens = 0
        with pytest.raises(CapacityExceeded):
            for step in range(16):
                concat.decode_step(step % 8)
                concat_tokens += 1
        for step in range(14):  # 3 prompt + 14 decode <= 18-token capacity
            shift.decode_step(step % 8)  # must NOT raise
        assert concat_tokens < 14
        # The shift cache accepted 3x the concat capacity, as designed.
        assert shift.kv_cache(0).num_tokens > \
            concat.kv_cache(0).num_tokens

    def test_shift_cache_also_finite(self):
        weights = synthesize_weights(TINY_MHA, seed=32)
        budget = 2 * 2 * (TINY_MHA.kv_dim // 4) * 8  # 2 tokens/row
        shift = WaferTransformer(weights, cache_kind="shift",
                                 kv_rows=2, kv_budget_bytes=budget)
        shift.prefill(np.array([1]))
        with pytest.raises(CapacityExceeded):
            for step in range(10):
                shift.decode_step(step % 8)


class TestStarvedCores:
    def test_gemm_on_starved_mesh_raises_memory_error(self):
        machine = MeshMachine(TINY_MESH.submesh(2, 2))
        for core in machine.cores.values():
            core.capacity_bytes = 256  # a few dozen fp64 elements
        big = np.ones((16, 16))
        with pytest.raises(MemoryCapacityError):
            MeshGEMM.run(machine, big, big)

    def test_same_problem_fits_with_normal_cores(self):
        machine = MeshMachine(TINY_MESH.submesh(2, 2))
        big = np.ones((16, 16))
        result = MeshGEMM.run(machine, big, big)
        assert np.allclose(result, big @ big)


class TestRoutingEnforcement:
    def test_summa_rejected_on_routing_enforced_fabric(self):
        """SUMMA needs O(N) route colours; a fabric that enforces the R
        budget refuses it mid-flight while MeshGEMM sails through."""
        grid = 8  # needs 2*8 colours > the tiny device's 6
        a = np.ones((grid, grid))
        enforced = MeshMachine(TINY_MESH.submesh(grid, grid),
                               enforce_routing=True)
        with pytest.raises(RoutingResourceError):
            SummaGEMM.run(enforced, a, a)

    def test_meshgemm_fits_routing_budget(self):
        grid = 8
        a = np.ones((grid, grid))
        enforced = MeshMachine(TINY_MESH.submesh(grid, grid),
                               enforce_routing=True)
        result = MeshGEMM.run(enforced, a, a)  # 4 colours <= budget of 6
        assert np.allclose(result, a @ a)


def _fault_requests(n: int = 8) -> list:
    return [
        Request(i, seq_in=512, seq_out=64, arrival_s=i * 0.05,
                priority=i % 2)
        for i in range(n)
    ]


class TestFaultSchedule:
    def test_generate_is_seed_deterministic(self):
        kwargs = dict(transient_rate_hz=5.0, retrain_rate_hz=2.0,
                      core_dead_rate_hz=1.0)
        first = FaultSchedule.generate(2.0, seed=3, **kwargs)
        second = FaultSchedule.generate(2.0, seed=3, **kwargs)
        assert first.events == second.events
        assert FaultSchedule.generate(2.0, seed=4, **kwargs).events \
            != first.events

    def test_events_sorted_and_cursor_consumes_in_order(self):
        schedule = FaultSchedule(events=[
            FaultEvent(at_s=0.5, kind="transient"),
            FaultEvent(at_s=0.1, kind="core_dead"),
        ])
        assert [e.at_s for e in schedule.events] == [0.1, 0.5]
        assert [e.kind for e in schedule.pop_until(0.2)] == ["core_dead"]
        assert schedule.remaining == 1
        schedule.reset()
        assert schedule.remaining == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at_s=0.0, kind="gamma_ray")


class TestDecorrelatedJitter:
    def test_jitter_off_keeps_pinned_exponential_schedule(self):
        injector = FaultInjector(0.1, base_backoff_s=1e-4,
                                 max_backoff_s=1e-2)
        assert injector.backoff_s(1) == pytest.approx(1e-4)
        assert injector.backoff_s(2) == pytest.approx(2e-4)

    def test_jitter_is_seed_deterministic_and_bounded(self):
        first = FaultInjector(0.1, seed=5, jitter=True,
                              base_backoff_s=1e-4, max_backoff_s=1e-2)
        second = FaultInjector(0.1, seed=5, jitter=True,
                               base_backoff_s=1e-4, max_backoff_s=1e-2)
        pauses = [first.backoff_s(i) for i in range(1, 10)]
        assert pauses == [second.backoff_s(i) for i in range(1, 10)]
        assert all(1e-4 <= p <= 1e-2 for p in pauses)

    def test_jitter_resets_with_failure_run(self):
        injector = FaultInjector(0.1, seed=5, jitter=True)
        run1 = [injector.backoff_s(i) for i in range(1, 4)]
        # A new failure run restarts decorrelation from the base pause.
        assert injector.backoff_s(1) <= max(run1)

    def test_jitter_draws_do_not_perturb_failure_process(self):
        plain = FaultInjector(0.3, seed=9)
        jittered = FaultInjector(0.3, seed=9, jitter=True)
        jittered.backoff_s(1)  # consume a jitter draw
        fates = [(plain.step_fails(), jittered.step_fails())
                 for _ in range(64)]
        assert all(a == b for a, b in fates)


class TestFaultTaxonomyServing:
    """Typed fault events through the serving escalation policy."""

    MODEL = get_model("llama3-8b")

    def _serve(self, schedule, spares, **kwargs):
        server = WaferServer(self.MODEL, WSE2, fault_schedule=schedule,
                             spare_regions=spares, **kwargs)
        return server.serve(_fault_requests())

    def test_link_retrain_slows_but_commits(self):
        schedule = FaultSchedule(events=[
            FaultEvent(at_s=0.01, kind="link_retrain", duration_s=0.005,
                       bw_factor=0.25, detail="retrain#0"),
        ])
        metrics = self._serve(schedule, spares=1)
        assert metrics.finished == 8
        assert metrics.retries == 0
        assert metrics.downtime_s == pytest.approx(0.005 * 3.0)
        assert metrics.availability < 1.0
        assert [e.kind for e in metrics.fault_log] == ["link_retrain"]
        assert metrics.fault_log[0].action == "slowdown"

    def test_core_death_with_spare_remaps_and_completes(self):
        schedule = FaultSchedule(events=[
            FaultEvent(at_s=0.05, kind="core_dead", detail="death#0"),
        ])
        metrics = self._serve(schedule, spares=1)
        assert metrics.finished == 8
        assert metrics.remaps == 1 and metrics.degradations == 0
        assert metrics.downtime_s > 0
        assert any(e.kind == "remap" for e in metrics.events)
        assert metrics.availability < 1.0

    def test_core_death_without_spare_degrades_and_completes(self):
        schedule = FaultSchedule(events=[
            FaultEvent(at_s=0.05, kind="core_dead", detail="death#0"),
        ])
        metrics = self._serve(schedule, spares=0)
        assert metrics.finished == 8
        assert metrics.remaps == 0 and metrics.degradations == 1
        assert any(e.kind == "degrade" for e in metrics.events)

    def test_mttr_and_availability_deterministic_for_fixed_seed(self):
        def run():
            schedule = FaultSchedule.generate(
                5.0, seed=21, transient_rate_hz=2.0,
                retrain_rate_hz=1.0, core_dead_rate_hz=0.3)
            return self._serve(schedule, spares=1)
        first, second = run(), run()
        assert first.mttr_s == second.mttr_s
        assert first.availability == second.availability
        assert first.downtime_s == second.downtime_s
        assert first.makespan_s == second.makespan_s
        assert [(e.kind, e.action) for e in first.fault_log] == \
            [(e.kind, e.action) for e in second.fault_log]

    def test_availability_accounts_all_downtime(self):
        schedule = FaultSchedule(events=[
            FaultEvent(at_s=0.01, kind="transient"),
            FaultEvent(at_s=0.05, kind="core_dead"),
        ])
        metrics = self._serve(schedule, spares=1)
        assert metrics.availability == pytest.approx(
            1.0 - metrics.downtime_s / metrics.makespan_s
        )
        assert metrics.mttr_s == pytest.approx(
            metrics.downtime_s
            / sum(1 for e in metrics.fault_log if e.downtime_s > 0)
        )

    def test_max_retries_escalates_cleanly(self):
        server = WaferServer(
            self.MODEL, WSE2,
            fault_injector=FaultInjector(0.9, seed=0),
            max_retries=3,
        )
        with pytest.raises(FaultEscalationError, match="max_retries=3"):
            server.serve(_fault_requests())
