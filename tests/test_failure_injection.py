"""Failure-injection tests: PLMR violations surfacing through real flows.

The M and R properties are enforced by the substrate, so violations must
surface as typed errors in realistic end-to-end situations — a decode
loop outgrowing a concat cache, an inference pass on starved cores, a
routing-enforced fabric refusing a SUMMA plan.
"""

import numpy as np
import pytest

from repro.core.device_presets import TINY_MESH
from repro.errors import (
    CapacityExceeded,
    MemoryCapacityError,
    RoutingResourceError,
)
from repro.gemm import MeshGEMM, SummaGEMM
from repro.llm.checkpoint import synthesize_weights
from repro.llm.config import TINY_MHA
from repro.llm.distributed import WaferTransformer
from repro.mesh.machine import MeshMachine


class TestKVOverflowDuringInference:
    def test_concat_cache_dies_mid_generation(self):
        """A concat-managed decode hits CapacityExceeded while the
        shift-managed twin keeps generating — Table 5 as a failure."""
        weights = synthesize_weights(TINY_MHA, seed=31)
        # Budget for ~6 tokens per row on a 3-row cache.
        budget = 6 * 2 * (TINY_MHA.kv_dim // 4) * 8
        concat = WaferTransformer(weights, cache_kind="concat",
                                  kv_rows=3, kv_budget_bytes=budget)
        shift = WaferTransformer(weights, cache_kind="shift",
                                 kv_rows=3, kv_budget_bytes=budget)
        prompt = np.array([1, 2, 3])
        concat.prefill(prompt)
        shift.prefill(prompt)
        concat_tokens = 0
        with pytest.raises(CapacityExceeded):
            for step in range(16):
                concat.decode_step(step % 8)
                concat_tokens += 1
        for step in range(14):  # 3 prompt + 14 decode <= 18-token capacity
            shift.decode_step(step % 8)  # must NOT raise
        assert concat_tokens < 14
        # The shift cache accepted 3x the concat capacity, as designed.
        assert shift.kv_cache(0).num_tokens > \
            concat.kv_cache(0).num_tokens

    def test_shift_cache_also_finite(self):
        weights = synthesize_weights(TINY_MHA, seed=32)
        budget = 2 * 2 * (TINY_MHA.kv_dim // 4) * 8  # 2 tokens/row
        shift = WaferTransformer(weights, cache_kind="shift",
                                 kv_rows=2, kv_budget_bytes=budget)
        shift.prefill(np.array([1]))
        with pytest.raises(CapacityExceeded):
            for step in range(10):
                shift.decode_step(step % 8)


class TestStarvedCores:
    def test_gemm_on_starved_mesh_raises_memory_error(self):
        machine = MeshMachine(TINY_MESH.submesh(2, 2))
        for core in machine.cores.values():
            core.capacity_bytes = 256  # a few dozen fp64 elements
        big = np.ones((16, 16))
        with pytest.raises(MemoryCapacityError):
            MeshGEMM.run(machine, big, big)

    def test_same_problem_fits_with_normal_cores(self):
        machine = MeshMachine(TINY_MESH.submesh(2, 2))
        big = np.ones((16, 16))
        result = MeshGEMM.run(machine, big, big)
        assert np.allclose(result, big @ big)


class TestRoutingEnforcement:
    def test_summa_rejected_on_routing_enforced_fabric(self):
        """SUMMA needs O(N) route colours; a fabric that enforces the R
        budget refuses it mid-flight while MeshGEMM sails through."""
        grid = 8  # needs 2*8 colours > the tiny device's 6
        a = np.ones((grid, grid))
        enforced = MeshMachine(TINY_MESH.submesh(grid, grid),
                               enforce_routing=True)
        with pytest.raises(RoutingResourceError):
            SummaGEMM.run(enforced, a, a)

    def test_meshgemm_fits_routing_budget(self):
        grid = 8
        a = np.ones((grid, grid))
        enforced = MeshMachine(TINY_MESH.submesh(grid, grid),
                               enforce_routing=True)
        result = MeshGEMM.run(enforced, a, a)  # 4 colours <= budget of 6
        assert np.allclose(result, a @ a)
