"""The cache-key version dataflow pass: site/mutation inventory, the
PR-6 bug-shape true positive, and the precision exemptions."""

from pathlib import Path

from repro.analysis.determinism import (
    check_cache_keys,
    collect_cache_sites,
    collect_mutations,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "determinism"


# ----------------------------------------------------------------------
# inventory over the real tree
# ----------------------------------------------------------------------

def test_repo_cache_sites_cover_the_known_stores():
    sites = collect_cache_sites()
    labels = {s.label for s in sites}
    # The stores the ISSUE names: fabric registration, topology route
    # caches, and the placement anchor memo all must be inventoried.
    assert any("FabricModel" in lbl for lbl in labels)
    assert any("Topology" in lbl for lbl in labels)
    assert "GridSearch.best_anchor" in labels or any(
        "best_anchor" in lbl for lbl in labels
    )


def test_fabric_register_key_consumes_links_version():
    sites = collect_cache_sites()
    register = [
        s for s in sites
        if s.cls == "FabricModel" and s.function == "register"
    ]
    assert register
    assert "links_version" in register[0].key_fields


def test_mutation_inventory_skips_constructors():
    mutations = collect_mutations()
    assert mutations
    assert all(m.function not in ("__init__", "__post_init__")
               for m in mutations)
    # The PR-6 mutator is inventoried, with its version bump visible.
    retrain = [m for m in mutations if m.function == "retrain_link"]
    assert retrain
    assert any("links_version" in m.bumps for m in retrain)


def test_repo_tree_has_no_unversioned_cache_mutations():
    findings = check_cache_keys()
    pretty = "\n".join(f.render() for f in findings)
    assert not findings, f"dataflow findings in src/repro:\n{pretty}"


# ----------------------------------------------------------------------
# the seeded fixtures
# ----------------------------------------------------------------------

def test_bug_shape_fixture_is_flagged():
    findings = check_cache_keys(roots=[FIXTURES])
    flagged = [
        f for f in findings
        if (f.path or "").endswith("bad_cache_mutation.py")
    ]
    assert len(flagged) == 1
    finding = flagged[0]
    assert finding.rule == "unversioned-cache-mutation"
    assert finding.source == "dataflow"
    assert "LinkState.retrain" in finding.message
    assert finding.subject == "FlowPricer.price"


def test_version_discipline_fixture_stays_quiet():
    findings = check_cache_keys(roots=[FIXTURES])
    assert not any(
        (f.path or "").endswith("good_cache_version.py") for f in findings
    )


def test_allow_comment_suppresses_dataflow_finding(tmp_path):
    source = (FIXTURES / "bad_cache_mutation.py").read_text()
    patched = source.replace(
        "self.degraded[link] = value",
        "self.degraded[link] = value"
        "  # plmr: allow=unversioned-cache-mutation",
    )
    assert patched != source
    (tmp_path / "mod.py").write_text(patched)
    assert check_cache_keys(roots=[tmp_path]) == []


def test_bump_pairing_clears_the_finding(tmp_path):
    # Adding the version bump to the mutator AND consuming the counter
    # in the key — the PR-6 hand fix — silences the pass.
    source = (FIXTURES / "bad_cache_mutation.py").read_text()
    fixed = source.replace(
        "        self.degraded[link] = value",
        "        self.degraded[link] = value\n"
        "        self._links_version += 1",
    ).replace(
        "key = (link,)  # BUG: key omits links_version",
        "key = (self.links._links_version, link)",
    )
    assert fixed != source
    (tmp_path / "mod.py").write_text(fixed)
    assert check_cache_keys(roots=[tmp_path]) == []


def test_same_class_cache_bookkeeping_exempt(tmp_path):
    (tmp_path / "mod.py").write_text(
        "class Own:\n"
        "    def __init__(self):\n"
        "        self._memo = {}\n"
        "        self.rate = 1.0\n"
        "    def set_rate(self, r):\n"
        "        self.rate = r\n"
        "        self._memo.clear()\n"
        "    def value(self, k):\n"
        "        hit = self._memo.get(k)\n"
        "        if hit is None:\n"
        "            hit = self._memo[k] = k * self.rate\n"
        "        return hit\n"
    )
    assert check_cache_keys(roots=[tmp_path]) == []


def test_ctor_only_helper_exempt(tmp_path):
    # A builder invoked exclusively from __init__ is construction-time
    # initialization, not a post-hoc mutation of cached inputs.
    (tmp_path / "mod.py").write_text(
        "class View:\n"
        "    def __init__(self):\n"
        "        self._build()\n"
        "    def _build(self):\n"
        "        self.table = [1, 2, 3]\n"
        "class Planner:\n"
        "    def __init__(self, view):\n"
        "        self.view = view\n"
        "        self._plan_cache = {}\n"
        "    def lookup(self, view, k):\n"
        "        hit = self._plan_cache.get(k)\n"
        "        if hit is not None:\n"
        "            return hit\n"
        "        value = self.total(view)\n"
        "        self._plan_cache[k] = value\n"
        "        return value\n"
        "    def total(self, view):\n"
        "        return sum(view.table)\n"
    )
    assert check_cache_keys(roots=[tmp_path]) == []
