"""Tests for distributed GEMM kernels: correctness, traces, cost shapes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.device_presets import TINY_MESH, WSE2
from repro.errors import MemoryCapacityError, ShapeError
from repro.gemm import (
    AllgatherGEMM,
    CannonGEMM,
    GemmShape,
    LogicalGrid,
    MeshGEMM,
    MeshGEMMNonSquare,
    MeshGEMMTransposed,
    SummaGEMM,
    best_grid,
)
from repro.mesh.machine import MeshMachine

KERNELS = [MeshGEMM, CannonGEMM, SummaGEMM, AllgatherGEMM]


def _machine(side, enforce=True):
    return MeshMachine(TINY_MESH.submesh(side, side), enforce_memory=enforce)


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("grid", [2, 3, 4, 5, 6])
    def test_matches_numpy(self, kernel, grid, rng):
        a = rng.standard_normal((grid * 3, grid * 2))
        b = rng.standard_normal((grid * 2, grid * 4))
        machine = _machine(grid)
        assert np.allclose(kernel.run(machine, a, b), a @ b)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_single_core(self, kernel, rng):
        a = rng.standard_normal((3, 2))
        b = rng.standard_normal((2, 5))
        machine = _machine(1)
        assert np.allclose(kernel.run(machine, a, b), a @ b)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_integer_exactness(self, kernel, rng):
        a = rng.integers(-10, 10, size=(8, 8)).astype(np.int64)
        b = rng.integers(-10, 10, size=(8, 8)).astype(np.int64)
        machine = _machine(4)
        assert np.array_equal(kernel.run(machine, a, b), a @ b)

    def test_rejects_non_square_machine(self, rng):
        machine = MeshMachine(TINY_MESH.submesh(4, 2))
        with pytest.raises(ShapeError):
            MeshGEMM.run(machine, np.zeros((4, 4)), np.zeros((4, 4)))

    def test_rejects_indivisible_dims(self):
        machine = _machine(4)
        with pytest.raises(ShapeError):
            MeshGEMM.run(machine, np.zeros((5, 4)), np.zeros((4, 4)))

    def test_rejects_mismatched_inner(self):
        machine = _machine(2)
        with pytest.raises(ShapeError):
            MeshGEMM.run(machine, np.zeros((4, 4)), np.zeros((6, 4)))

    @settings(max_examples=20, deadline=None)
    @given(grid=st.integers(2, 5), tm=st.integers(1, 3), tk=st.integers(1, 3),
           tn=st.integers(1, 3), seed=st.integers(0, 1000))
    def test_property_meshgemm(self, grid, tm, tk, tn, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-4, 5, size=(grid * tm, grid * tk)).astype(float)
        b = rng.integers(-4, 5, size=(grid * tk, grid * tn)).astype(float)
        machine = _machine(grid)
        assert np.array_equal(MeshGEMM.run(machine, a, b), a @ b)


class TestMeasuredCompliance:
    """Trace-measured metrics must match the Figure 6 claims."""

    def test_meshgemm_steady_state_two_hops(self, rng):
        grid = 6
        machine = _machine(grid)
        a = rng.standard_normal((grid, grid))
        MeshGEMM.run(machine, a, a)
        shift_hops = [
            r.max_hops for r in machine.trace.comms
            if r.pattern.startswith("meshgemm-shift")
        ]
        assert shift_hops and max(shift_hops) == 2

    def test_cannon_steady_state_wraparound(self, rng):
        grid = 6
        machine = _machine(grid)
        a = rng.standard_normal((grid, grid))
        CannonGEMM.run(machine, a, a)
        shift_hops = [
            r.max_hops for r in machine.trace.comms
            if r.pattern.startswith("cannon-shift")
        ]
        assert max(shift_hops) == grid - 1

    def test_cyclic_kernels_constant_route_colours(self, rng):
        grid = 6
        a = np.ones((grid, grid))
        for kernel in (MeshGEMM, CannonGEMM):
            machine = _machine(grid)
            kernel.run(machine, a, a)
            # align-A, align-B, shift-A, shift-B: 4 colours, O(1).
            assert machine.trace.max_paths_per_core <= 4

    def test_summa_route_colours_scale(self, rng):
        grid = 6
        machine = _machine(grid)
        a = np.ones((grid, grid))
        SummaGEMM.run(machine, a, a)
        assert machine.trace.max_paths_per_core >= grid

    def test_allgather_memory_violation_enforced(self):
        grid = 4
        machine = _machine(grid, enforce=True)
        # 16 KB tiles: one fits in 64 KB cores, a gathered strip cannot.
        dim = grid * 45
        a = np.zeros((dim, dim), dtype=np.float64)
        with pytest.raises(MemoryCapacityError):
            AllgatherGEMM.run(machine, a, a)

    def test_meshgemm_memory_within_tiles(self, rng):
        grid = 4
        machine = _machine(grid)
        dim = grid * 20
        a = rng.standard_normal((dim, dim))
        MeshGEMM.run(machine, a, a)  # same tiles fit fine under cyclic shift
        tile_bytes = (dim // grid) ** 2 * 8
        assert machine.peak_memory_bytes() <= 4 * tile_bytes + 64


class TestTransposedGemm:
    @pytest.mark.parametrize("grid", [2, 3, 4, 5])
    def test_matches_numpy(self, grid, rng):
        a = rng.standard_normal((grid * 2, grid * 3))
        b = rng.standard_normal((grid * 4, grid * 3))  # untransposed (n, k)
        machine = _machine(grid)
        assert np.allclose(MeshGEMMTransposed.run(machine, a, b), a @ b.T)

    def test_rejects_k_mismatch(self):
        machine = _machine(2)
        with pytest.raises(ShapeError):
            MeshGEMMTransposed.run(machine, np.zeros((4, 4)), np.zeros((4, 6)))

    def test_no_alignment_phase(self, rng):
        machine = _machine(4)
        a = rng.standard_normal((4, 4))
        MeshGEMMTransposed.run(machine, a, a)
        assert not any("align" in r.pattern for r in machine.trace.comms)

    def test_shift_bounded_two_hops(self, rng):
        machine = _machine(6)
        a = rng.standard_normal((6, 6))
        MeshGEMMTransposed.run(machine, a, a)
        hops = [r.max_hops for r in machine.trace.comms
                if r.pattern == "gemmt-shift-B"]
        assert hops and max(hops) <= 2


class TestNonSquare:
    @pytest.mark.parametrize("nh,nw", [(2, 3), (3, 2), (2, 4), (3, 4), (2, 2)])
    def test_matches_numpy(self, nh, nw, rng):
        grid = LogicalGrid(nh, nw)
        n = grid.n
        a = rng.standard_normal((n * 2, n))
        b = rng.standard_normal((n, n * 3))
        machine = MeshMachine(TINY_MESH.submesh(nw, nh))
        assert np.allclose(MeshGEMMNonSquare.run(machine, a, b), a @ b)

    def test_lcm_grid(self):
        grid = LogicalGrid(4, 6)
        assert grid.n == 12
        assert grid.rows_per_core == 3
        assert grid.cols_per_core == 2

    def test_fold_is_monotone(self):
        grid = LogicalGrid(2, 3)
        xs = [grid.physical((0, j))[0] for j in range(grid.n)]
        assert xs == sorted(xs)

    def test_estimate_runs(self):
        device = WSE2.submesh(100, 150)
        cost = MeshGEMMNonSquare.estimate(device, GemmShape.square(600))
        assert cost.total_cycles > 0


class TestCostModel:
    def test_estimate_positive_and_finite(self, wse2_750):
        for kernel in KERNELS:
            cost = kernel.estimate(wse2_750, GemmShape.square(4096))
            assert 0 < cost.total_cycles < 1e12

    def test_meshgemm_fastest_at_scale(self, wse2_750):
        shape = GemmShape.square(2048)
        mesh = MeshGEMM.estimate(wse2_750, shape, grid=720)
        cannon = CannonGEMM.estimate(wse2_750, shape, grid=720)
        summa = SummaGEMM.estimate(wse2_750, shape, grid=720)
        assert mesh.total_cycles < cannon.total_cycles
        assert mesh.total_cycles < summa.total_cycles

    def test_comm_gap_grows_with_grid(self, wse2_750):
        shape = GemmShape.square(2048)
        gaps = []
        for grid in (120, 360, 720):
            mesh = MeshGEMM.estimate(wse2_750, shape, grid=grid)
            cannon = CannonGEMM.estimate(wse2_750, shape, grid=grid)
            gaps.append(cannon.comm_cycles / mesh.comm_cycles)
        assert gaps == sorted(gaps)

    def test_table7_magnitudes(self, wse2_750):
        # 16K GEMM near 4.8 ms, 32K near 34 ms (paper Table 7).
        c16 = MeshGEMM.estimate(wse2_750, GemmShape.square(16384))
        c32 = MeshGEMM.estimate(wse2_750, GemmShape.square(32768))
        assert 2.0 < c16.milliseconds < 10.0
        assert 15.0 < c32.milliseconds < 70.0

    def test_grid_exceeding_fabric_rejected(self):
        with pytest.raises(ShapeError):
            MeshGEMM.estimate(WSE2.submesh(100), GemmShape.square(4096), grid=200)

    def test_best_grid_respects_dims(self, wse2_750):
        assert best_grid(wse2_750, GemmShape(m=64, k=4096, n=4096)) == 64
        assert best_grid(wse2_750, GemmShape.square(4096)) == 750


class TestGemmShape:
    def test_tiles_pad_up(self):
        assert GemmShape.square(10).tiles(4) == (3, 3, 3)

    def test_tile_bytes(self):
        shape = GemmShape(m=8, k=8, n=8, dtype_bytes=2)
        assert shape.tile_bytes(4) == (8, 8, 8)

    def test_total_macs(self):
        assert GemmShape(m=2, k=3, n=4).total_macs == 24

    def test_invalid_dims(self):
        with pytest.raises(ShapeError):
            GemmShape(m=0, k=1, n=1)

    def test_macs_per_core_conserves_work(self):
        shape = GemmShape.square(64)
        grid = 8
        per_core = shape.macs_per_core(grid)
        assert per_core * grid * grid == pytest.approx(shape.total_macs)
