"""Negative fixture: module state paired with a version counter."""

_PLAN_CACHE = {}
_PLAN_CACHE_VERSION = 0


def lookup(key):
    return _PLAN_CACHE.get((_PLAN_CACHE_VERSION, key))
