"""True-positive fixture: the PR-6 ``retrain_link`` bug shape.

``FlowPricer.price`` memoizes on ``(link,)`` while the priced value
depends on ``LinkState.degraded``; ``LinkState.retrain`` mutates that
field without bumping a version counter the key consumes.  The cache-key
dataflow pass must flag the mutation (``unversioned-cache-mutation``).
"""


class LinkState:
    def __init__(self):
        self.degraded = {}
        self._links_version = 0

    def factor(self, link):
        if link in self.degraded:
            return self.degraded[link]
        return 1.0

    def retrain(self, link, value):
        # BUG: mutates a cached input without bumping _links_version.
        self.degraded[link] = value


class FlowPricer:
    def __init__(self, links):
        self.links = links
        self._price_cache = {}

    def price(self, link):
        key = (link,)  # BUG: key omits links_version
        hit = self._price_cache.get(key)
        if hit is not None:
            return hit
        value = self.links.factor(link)
        self._price_cache[key] = value
        return value
