"""Fixture: wall-clock reads that would desynchronize replays."""

import time
from datetime import datetime
from time import perf_counter


def stamp_event(events):
    events.append(time.time())          # wall-clock-read


def measure():
    start = perf_counter()              # wall-clock-read
    return start


def label_run():
    return datetime.now().isoformat()   # wall-clock-read
