"""Fixture: mutable module-level state with no version companion."""

_RESULT_CACHE = {}          # mutable-module-state


def lookup(key):
    return _RESULT_CACHE.get(key)
