"""Negative fixture: the version-counter discipline, applied correctly.

Same shape as :mod:`bad_cache_mutation`, but the mutator bumps
``_epoch_version`` and the cache key consumes it — the dataflow pass
must stay quiet.
"""


class EpochState:
    def __init__(self):
        self.weights = {}
        self._epoch_version = 0

    def weight(self, link):
        if link in self.weights:
            return self.weights[link]
        return 1.0

    @property
    def epoch_version(self):
        return self._epoch_version

    def retrain(self, link, value):
        self.weights[link] = value
        self._epoch_version += 1


class EpochPricer:
    def __init__(self, state):
        self.state = state
        self._epoch_cache = {}

    def price(self, link):
        key = (self.state.epoch_version, link)
        hit = self._epoch_cache.get(key)
        if hit is not None:
            return hit
        value = self.state.weight(link)
        self._epoch_cache[key] = value
        return value
