"""Fixture: unordered iteration feeding order-sensitive sinks."""

import hashlib
import heapq


def signature_of(names):
    digest = hashlib.sha256()
    for name in {n.strip() for n in names}:    # unordered-iteration
        digest.update(name.encode())
    return digest.hexdigest()


def drain(pending):
    heap = []
    for item in set(pending):                  # unordered-iteration
        heapq.heappush(heap, item)
    return heap
