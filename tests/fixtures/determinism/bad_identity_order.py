"""Fixture: object-identity and untyped tiebreakers in ordered structures."""

import heapq


def schedule(heap, at_s, event):
    # object-identity-ordering: the tiebreaker is the event object itself,
    # so equal timestamps compare by whatever __lt__ (or a crash) gives.
    heapq.heappush(heap, (at_s, event))


def stable_order(items):
    return sorted(items, key=lambda o: id(o))   # object-identity-ordering
