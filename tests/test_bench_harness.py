"""Tests for the benchmark harness: runners, paper data, reporting."""

import pytest

from repro.bench import (
    Comparison,
    comparison_table,
    format_table,
    paper_data,
    run_figure9,
    run_figure10,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)


class TestPaperData:
    def test_table2_complete(self):
        for model, configs in paper_data.TABLE2.items():
            assert len(configs) == 4
            for cell in configs.values():
                assert set(cell) == {"waferllm", "t10", "ladder"}

    def test_table3_4_grids(self):
        assert set(paper_data.TABLE3["llama3-8b"]) == {480, 600, 720}
        assert set(paper_data.TABLE4["llama3-8b"]) == {420, 540, 660}

    def test_table5_ratio_is_rows(self):
        t5 = paper_data.TABLE5["llama3-8b"]
        assert t5["shift"] / t5["concat"] == pytest.approx(360, rel=0.01)


class TestRunners:
    @pytest.mark.parametrize("runner,cells", [
        (run_table2, 24), (run_table3, 36), (run_table4, 36),
        (run_table5, 4), (run_table6, 6), (run_table7, 6), (run_table8, 6),
    ])
    def test_cell_counts(self, runner, cells):
        assert len(runner()) == cells

    def test_every_published_cell_within_5x(self):
        # The reproduction-quality gate: every measured value lands
        # within 5x of the published one (most are far closer).
        for runner in (run_table2, run_table3, run_table4, run_table5,
                       run_table6, run_table7, run_table8):
            for cell in runner():
                if cell.paper:
                    ratio = cell.measured / cell.paper
                    assert 0.2 < ratio < 5.0, (cell.label, ratio)

    def test_figure9_has_breakdowns(self):
        cells = run_figure9(sizes=(2048,), grids=(480, 720))
        assert len(cells) == 6
        for cell in cells:
            assert cell.extra["compute_cycles"] >= 0
            assert cell.extra["comm_cycles"] >= 0

    def test_figure9_meshgemm_wins_everywhere(self):
        # MeshGEMM is never worse than the best baseline beyond noise
        # (fully compute-bound points tie), and strictly wins at most
        # sweep points (Figure 9's headline).
        cells = run_figure9()
        by_point = {}
        for cell in cells:
            point, kernel = cell.label.rsplit(" ", 1)
            by_point.setdefault(point, {})[kernel] = cell.measured
        strict_wins = 0
        for point, kernels in by_point.items():
            best = min(kernels.values())
            assert kernels["meshgemm"] <= best * 1.001, point
            if kernels["meshgemm"] == best and \
                    kernels["meshgemm"] < max(kernels.values()) * 0.999:
                strict_wins += 1
        # 8K points are fully compute-bound and tie with Cannon, so the
        # strict-win fraction sits around 11/15.
        assert strict_wins >= 0.7 * len(by_point)

    def test_figure10_meshgemv_wins_everywhere(self):
        cells = run_figure10()
        by_point = {}
        for cell in cells:
            point, kernel = cell.label.rsplit(" ", 1)
            by_point.setdefault(point, {})[kernel] = cell.measured
        for point, kernels in by_point.items():
            assert kernels["meshgemv"] < kernels["pipeline-gemv"], point

    def test_figure10_gap_grows_with_cores(self):
        cells = run_figure10(sizes=(4096,), grids=(240, 480, 720))
        mesh = [c.measured for c in cells if "meshgemv" in c.label]
        pipe = [c.measured for c in cells if "pipeline" in c.label]
        gaps = [p / m for p, m in zip(pipe, mesh)]
        assert gaps == sorted(gaps)


class TestReporting:
    def test_comparison_ratio(self):
        c = Comparison("x", measured=20.0, paper=10.0)
        assert c.ratio == 2.0

    def test_comparison_without_paper(self):
        c = Comparison("x", measured=20.0)
        assert c.ratio is None
        assert c.row()[2] == "-"

    def test_format_table_alignment(self):
        table = format_table("T", ["a", "bbbb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bbbb" in lines[2]
        assert len(lines) == 6

    def test_comparison_table_renders(self):
        text = comparison_table("T", [Comparison("case", 1.0, 2.0, unit="ms")])
        assert "case" in text and "0.500x" in text or "0.50x" in text
