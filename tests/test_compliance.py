"""Tests for the PLMR compliance metrics (paper Figures 6 and 8)."""

import pytest

from repro.core import WSE2, compliance_table, grade
from repro.core.compliance import (
    ALL_PROFILES,
    ALLGATHER_GEMM,
    CANNON,
    KTREE_GEMV,
    MESHGEMM,
    PIPELINE_GEMV,
    RING_GEMV,
    SUMMA,
)


class TestProfiles:
    def test_registry_complete(self):
        assert set(ALL_PROFILES) == {
            "allgather-gemm", "summa", "cannon", "meshgemm",
            "pipeline-allreduce-gemv", "ring-allreduce-gemv",
            "ktree-allreduce-gemv",
        }

    def test_allgather_metrics_scale_linearly(self):
        m = ALLGATHER_GEMM.evaluate(100)
        assert m["paths_per_core"] == 100
        assert m["critical_path_hops"] == 99
        assert m["memory_factor"] == 100

    def test_summa_memory_doubles(self):
        assert SUMMA.evaluate(64)["memory_factor"] == 2.0

    def test_cannon_constant_paths_linear_hops(self):
        m = CANNON.evaluate(720)
        assert m["paths_per_core"] == 2.0
        assert m["critical_path_hops"] == 719

    def test_meshgemm_two_hop_bound(self):
        for n in (3, 10, 100, 720):
            assert MESHGEMM.evaluate(n)["critical_path_hops"] == 2.0

    def test_meshgemm_optimal_memory(self):
        assert MESHGEMM.evaluate(720)["memory_factor"] == 1.0

    def test_pipeline_and_ring_linear(self):
        assert PIPELINE_GEMV.evaluate(500)["critical_path_hops"] == 499
        assert RING_GEMV.evaluate(500)["critical_path_hops"] == 499

    def test_ktree_sublinear(self):
        # O(K * N^(1/K)) with K=2: ~2 * sqrt(N)/2 adds.
        hops_100 = KTREE_GEMV.evaluate(100)["critical_path_hops"]
        hops_10000 = KTREE_GEMV.evaluate(10000)["critical_path_hops"]
        assert hops_100 <= 12
        assert hops_10000 <= 110
        assert hops_10000 < 100 * hops_100  # far sublinear growth

    def test_ktree_root_paths_k_plus_one(self):
        assert KTREE_GEMV.evaluate(720)["paths_per_core"] == 3.0


class TestGrading:
    """The paper's verdicts: only MeshGEMM and K-tree GEMV fully comply."""

    def test_figure6_verdicts(self):
        reports = {r.algorithm: r for r in compliance_table(WSE2)}
        assert not reports["allgather-gemm"].satisfies_l
        assert not reports["allgather-gemm"].satisfies_m
        assert not reports["allgather-gemm"].satisfies_r
        assert not reports["summa"].satisfies_l
        assert reports["summa"].satisfies_m
        assert not reports["summa"].satisfies_r
        assert not reports["cannon"].satisfies_l
        assert reports["cannon"].satisfies_m
        assert reports["cannon"].satisfies_r
        assert reports["meshgemm"].fully_compliant

    def test_figure8_verdicts(self):
        reports = {r.algorithm: r for r in compliance_table(WSE2)}
        assert not reports["pipeline-allreduce-gemv"].satisfies_l
        assert reports["pipeline-allreduce-gemv"].satisfies_r
        assert not reports["ring-allreduce-gemv"].satisfies_l
        assert reports["ktree-allreduce-gemv"].fully_compliant

    def test_grade_custom_n(self):
        report = grade(MESHGEMM, WSE2, n=100)
        assert report.n == 100
        assert report.fully_compliant

    def test_verdict_string_mentions_violations(self):
        report = grade(CANNON, WSE2)
        assert "L:VIOLATED" in report.verdict_string()
        assert "R:ok" in report.verdict_string()

    def test_small_mesh_forgives_linear_algorithms(self):
        # On a tiny mesh even O(N) critical paths fit the slack bound —
        # the violations are a *scale* phenomenon, as the paper argues.
        report = grade(CANNON, WSE2, n=4)
        assert report.satisfies_l

    def test_compliance_table_covers_all_profiles(self):
        reports = compliance_table(WSE2)
        assert len(reports) == len(ALL_PROFILES)
