"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTopLevel:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "cerebras-wse2" in out
        assert "dojo-like" in out

    def test_compliance_default_device(self, capsys):
        assert main(["compliance"]) == 0
        out = capsys.readouterr().out
        assert "meshgemm" in out and "VIOLATED" in out

    def test_compliance_unknown_device(self, capsys):
        assert main(["compliance", "--device", "nope"]) == 2


class TestTablesAndFigures:
    @pytest.mark.parametrize("number", [5, 6, 7, 8])
    def test_tables(self, number, capsys):
        assert main(["table", str(number)]) == 0
        out = capsys.readouterr().out
        assert "measured/paper" in out

    def test_unknown_table(self, capsys):
        assert main(["table", "42"]) == 2

    def test_figure10(self, capsys):
        assert main(["figure", "10"]) == 0
        out = capsys.readouterr().out
        assert "meshgemv" in out and "pipeline-gemv" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "1"]) == 2


class TestKernelCommands:
    def test_gemm(self, capsys):
        assert main(["gemm", "--dim", "4096", "--grid", "480"]) == 0
        assert "meshgemm" in capsys.readouterr().out

    def test_gemm_unknown_kernel(self, capsys):
        assert main(["gemm", "--kernel", "magic"]) == 2

    def test_gemv_all_kernels(self, capsys):
        for kernel in ("meshgemv", "pipeline-gemv", "ring-gemv"):
            assert main(["gemv", "--dim", "4096", "--kernel", kernel,
                         "--grid", "240"]) == 0

    def test_gemv_unknown_kernel(self, capsys):
        assert main(["gemv", "--kernel", "magic"]) == 2


class TestLLMCommands:
    def test_llm_estimate(self, capsys):
        assert main(["llm", "--model", "llama3-8b",
                     "--seq-in", "2048", "--seq-out", "128"]) == 0
        out = capsys.readouterr().out
        assert "prefill" in out and "tok/s" in out

    def test_llm_unknown_model(self, capsys):
        assert main(["llm", "--model", "gpt-7"]) == 2

    def test_autotune(self, capsys):
        assert main(["autotune", "--model", "llama3-8b"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "autotuned" in out

    def test_serve(self, capsys):
        assert main(["serve", "--model", "llama3-8b", "--requests", "3",
                     "--batch", "2", "--seq-in", "128",
                     "--seq-out", "16"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "p99" in out


class TestAuditAndProject:
    def test_audit(self, capsys):
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        assert "llama3-8b" in out and "qwen2-72b" in out
        assert "no (" in out  # the big models don't fit

    def test_audit_int8(self, capsys):
        assert main(["audit", "--int8"]) == 0
        out = capsys.readouterr().out
        assert "codellama-34b-int8" in out

    def test_project(self, capsys):
        assert main(["project", "--model", "llama2-13b"]) == 0
        out = capsys.readouterr().out
        assert "resident projection" in out and "wider" in out


class TestProfile:
    def test_meshgemm_timeline(self, capsys):
        assert main(["profile", "--kernel", "meshgemm", "--grid", "8"]) == 0
        out = capsys.readouterr().out
        assert "meshgemm-compute-shift" in out
        assert "trace replay" in out and "TOTAL" in out

    def test_meshgemv_timeline(self, capsys):
        assert main(["profile", "--kernel", "meshgemv", "--grid", "8"]) == 0
        out = capsys.readouterr().out
        assert "gemv-partial" in out and "meshgemv-ktree-L1" in out

    def test_reconcile_flag(self, capsys):
        assert main(["profile", "--kernel", "summa", "--grid", "4",
                     "--reconcile"]) == 0
        out = capsys.readouterr().out
        assert "reconcile" in out and "ok" in out

    def test_nonsquare_height(self, capsys):
        assert main(["profile", "--kernel", "meshgemm-nonsquare",
                     "--grid", "2", "--height", "3"]) == 0
        out = capsys.readouterr().out
        assert "2x3" in out and "nsq-compute-shift" in out

    def test_unknown_kernel(self, capsys):
        assert main(["profile", "--kernel", "nope"]) == 2

    def test_unknown_preset(self, capsys):
        assert main(["profile", "--kernel", "meshgemm", "--grid", "4",
                     "--device", "nope"]) == 2


class TestFaults:
    def test_smoke_sweep_prints_availability_table(self, capsys):
        assert main(["faults", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "fault sweep" in out and "availability" in out
        assert "baseline" in out and "link retrains" in out
        assert "core death + spare" in out
        assert "core deaths, no spares" in out
        # Baseline row must report perfect availability.
        baseline = next(l for l in out.splitlines()
                        if l.startswith("baseline"))
        assert "1.0000" in baseline

    def test_smoke_sweep_is_deterministic(self, capsys):
        assert main(["faults", "--smoke"]) == 0
        first = capsys.readouterr().out
        assert main(["faults", "--smoke"]) == 0
        assert capsys.readouterr().out == first

    def test_unknown_model_exits_2(self, capsys):
        assert main(["faults", "--smoke", "--model", "gpt-7"]) == 2

    def test_serve_escalation_flags(self, capsys):
        assert main(["serve", "--model", "llama3-8b", "--requests", "3",
                     "--batch", "2", "--seq-in", "128", "--seq-out", "16",
                     "--max-retries", "4", "--spares", "2"]) == 0
        assert "throughput" in capsys.readouterr().out
