"""Tests for distributed GEMV kernels: correctness, traces, cost shapes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.device_presets import TINY_MESH, WSE2
from repro.errors import ShapeError
from repro.gemv import (
    GemvShape,
    MeshGEMV,
    PipelineGEMV,
    RingGEMV,
    meshgemv_with_k,
)
from repro.mesh.machine import MeshMachine

KERNELS = [MeshGEMV, PipelineGEMV, RingGEMV]


def _machine(side):
    return MeshMachine(TINY_MESH.submesh(side, side))


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("grid", [2, 3, 4, 6])
    def test_matches_numpy(self, kernel, grid, rng):
        a = rng.standard_normal(grid * 3)
        b = rng.standard_normal((grid * 3, grid * 2))
        machine = _machine(grid)
        assert np.allclose(kernel.run(machine, a, b), a @ b)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_row_vector_input(self, kernel, rng):
        grid = 4
        a = rng.standard_normal((1, grid * 2))
        b = rng.standard_normal((grid * 2, grid))
        machine = _machine(grid)
        assert np.allclose(kernel.run(machine, a, b), (a @ b)[0])

    def test_broadcast_replicates_result(self, rng):
        grid = 4
        a = rng.standard_normal(grid)
        b = rng.standard_normal((grid, grid))
        machine = _machine(grid)
        result = MeshGEMV.run(machine, a, b, broadcast=True)
        expected = a @ b
        assert np.allclose(result, expected)
        # After broadcast, every core in a column holds its chunk.
        for x in range(grid):
            for y in range(grid):
                chunk = machine.core((x, y)).load("gemv.c")
                assert np.allclose(chunk, expected[x:x + 1])

    def test_rejects_matrix_a(self):
        machine = _machine(2)
        with pytest.raises(ShapeError):
            MeshGEMV.run(machine, np.zeros((2, 2)), np.zeros((2, 2)))

    def test_rejects_mismatched_dims(self):
        machine = _machine(2)
        with pytest.raises(ShapeError):
            MeshGEMV.run(machine, np.zeros(4), np.zeros((6, 4)))

    def test_rejects_indivisible(self):
        machine = _machine(4)
        with pytest.raises(ShapeError):
            MeshGEMV.run(machine, np.zeros(5), np.zeros((5, 8)))

    @settings(max_examples=20, deadline=None)
    @given(grid=st.integers(2, 6), tk=st.integers(1, 3), tn=st.integers(1, 3),
           seed=st.integers(0, 500))
    def test_property_meshgemv(self, grid, tk, tn, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-5, 6, size=grid * tk).astype(float)
        b = rng.integers(-5, 6, size=(grid * tk, grid * tn)).astype(float)
        machine = _machine(grid)
        assert np.array_equal(MeshGEMV.run(machine, a, b), a @ b)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_with_k_variants(self, k, rng):
        grid = 6
        kernel = meshgemv_with_k(k)
        a = rng.standard_normal(grid)
        b = rng.standard_normal((grid, grid))
        machine = _machine(grid)
        assert np.allclose(kernel.run(machine, a, b), a @ b)

    def test_with_k_invalid(self):
        with pytest.raises(ValueError):
            meshgemv_with_k(0)


class TestMeasuredCompliance:
    def test_meshgemv_fewer_stages_than_pipeline(self, rng):
        grid = 8
        a = rng.standard_normal(grid)
        b = rng.standard_normal((grid, grid))
        mesh = _machine(grid)
        MeshGEMV.run(mesh, a, b)
        pipe = _machine(grid)
        PipelineGEMV.run(pipe, a, b)
        mesh_stages = sum(
            1 for r in mesh.trace.comms if "ktree" in r.pattern
        )
        pipe_stages = sum(
            1 for r in pipe.trace.comms if "reduce" in r.pattern
        )
        assert mesh_stages < pipe_stages

    def test_meshgemv_route_colours_bounded(self, rng):
        grid = 8
        machine = _machine(grid)
        MeshGEMV.run(machine, rng.standard_normal(grid),
                     rng.standard_normal((grid, grid)))
        assert machine.trace.max_paths_per_core <= 3  # K + 1 with K=2


class TestCostModel:
    def test_table6_latency_magnitudes(self, wse2_750):
        cost16 = MeshGEMV.estimate(wse2_750, rows=16384, cols=16384)
        cost32 = MeshGEMV.estimate(wse2_750, rows=32768, cols=32768)
        # Paper: 0.0012 ms and 0.00203 ms.
        assert 0.0003 < cost16.milliseconds < 0.003
        assert 0.0006 < cost32.milliseconds < 0.006
        assert cost32.total_cycles > cost16.total_cycles

    def test_speedup_over_pipeline_in_paper_range(self, wse2_750):
        # Figure 10 / Section 7.3: up to ~4.6x faster than Cerebras GEMV.
        mesh = MeshGEMV.estimate(wse2_750, rows=16384, cols=16384)
        pipe = PipelineGEMV.estimate(wse2_750, rows=16384, cols=16384)
        speedup = pipe.total_cycles / mesh.total_cycles
        assert 2.0 < speedup < 10.0

    def test_pipeline_degrades_with_cores(self, wse2_750):
        shape = GemvShape.square(4096)
        small = PipelineGEMV.estimate(wse2_750, shape, grid=240)
        large = PipelineGEMV.estimate(wse2_750, shape, grid=720)
        assert large.comm_cycles > small.comm_cycles

    def test_meshgemv_comm_grows_slowly(self, wse2_750):
        shape = GemvShape.square(4096)
        small = MeshGEMV.estimate(wse2_750, shape, grid=240)
        large = MeshGEMV.estimate(wse2_750, shape, grid=720)
        pipe_small = PipelineGEMV.estimate(wse2_750, shape, grid=240)
        pipe_large = PipelineGEMV.estimate(wse2_750, shape, grid=720)
        mesh_growth = large.comm_cycles / small.comm_cycles
        pipe_growth = pipe_large.comm_cycles / pipe_small.comm_cycles
        assert mesh_growth < pipe_growth

    def test_larger_k_shrinks_stage_count_but_not_always_time(self, wse2_750):
        shape = GemvShape.square(16384)
        times = {
            k: meshgemv_with_k(k).estimate(wse2_750, shape).total_cycles
            for k in (1, 2, 3, 4)
        }
        # K=1 is a two-way linear reduce: clearly worst.
        assert times[2] < times[1]

    def test_estimate_requires_shape_or_dims(self, wse2_750):
        with pytest.raises(ShapeError):
            MeshGEMV.estimate(wse2_750)

    def test_shape_helpers(self):
        shape = GemvShape.square(100)
        assert shape.tiles(8) == (13, 13)
        assert shape.total_macs == 10000
        with pytest.raises(ShapeError):
            GemvShape(k=0, n=4)
