"""Tests for attention-variant planning utilities."""

import pytest

from repro.errors import ConfigurationError
from repro.llm.attention import (
    head_groups,
    kv_cache_ratio,
    subgrid_for_heads,
    variant_summary,
)
from repro.llm.config import LLAMA2_13B, LLAMA3_8B, TINY_MQA


class TestHeadGroups:
    def test_gqa_grouping(self):
        groups = head_groups(LLAMA3_8B)
        assert len(groups) == 8
        assert groups[0].query_heads == (0, 1, 2, 3)
        assert groups[7].query_heads == (28, 29, 30, 31)

    def test_mha_one_to_one(self):
        groups = head_groups(LLAMA2_13B)
        assert len(groups) == 40
        assert all(len(g.query_heads) == 1 for g in groups)

    def test_mqa_single_group(self):
        groups = head_groups(TINY_MQA)
        assert len(groups) == 1
        assert groups[0].query_heads == (0, 1, 2, 3)

    def test_groups_partition_heads(self):
        for model in (LLAMA3_8B, LLAMA2_13B, TINY_MQA):
            heads = [h for g in head_groups(model) for h in g.query_heads]
            assert sorted(heads) == list(range(model.n_heads))


class TestKVRatio:
    def test_gqa_quarter(self):
        assert kv_cache_ratio(LLAMA3_8B) == pytest.approx(0.25)

    def test_mha_full(self):
        assert kv_cache_ratio(LLAMA2_13B) == 1.0

    def test_mqa_minimal(self):
        assert kv_cache_ratio(TINY_MQA) == pytest.approx(0.25)


class TestSubgrid:
    def test_heads_fit(self):
        side, fit = subgrid_for_heads(660, LLAMA3_8B)
        assert side == 110
        assert fit >= LLAMA3_8B.n_heads

    def test_small_grid_floor(self):
        side, fit = subgrid_for_heads(4, LLAMA3_8B)
        assert side >= 1 and fit >= 1

    def test_invalid_grid(self):
        with pytest.raises(ConfigurationError):
            subgrid_for_heads(0, LLAMA3_8B)


class TestSummary:
    def test_summary_fields(self):
        summary = variant_summary(LLAMA3_8B)
        assert summary["variant"] == "grouped-query"
        assert summary["group_size"] == 4
        assert summary["kv_bytes_per_token"] == LLAMA3_8B.kv_bytes_per_token()
