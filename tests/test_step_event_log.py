"""Tests for the columnar step-event log (repro.serving.events)."""

from __future__ import annotations

import pytest

from repro.serving.events import STALL_KINDS, StepEventLog
from repro.serving.metrics import StepEvent


def _event(i, kind="decode", batch=2, queue=0):
    return StepEvent(
        start_s=0.01 * i, end_s=0.01 * (i + 1), kind=kind,
        decode_batch=batch, chunk_tokens=64 if kind == "fused" else 0,
        kv_tokens=100 + i, queue_depth=queue,
    )


def _filled(n=5):
    log = StepEventLog()
    for i in range(n):
        log.append(_event(i))
    return log


class TestSequenceApi:
    def test_len_bool_iter(self):
        log = StepEventLog()
        assert len(log) == 0 and not log
        log = _filled(3)
        assert len(log) == 3 and log
        assert [e.kv_tokens for e in log] == [100, 101, 102]

    def test_indexing_roundtrips_events(self):
        log = _filled(4)
        assert log[0] == _event(0)
        assert log[-1] == _event(3)
        with pytest.raises(IndexError):
            log[4]
        with pytest.raises(IndexError):
            log[-5]

    def test_slicing_returns_event_lists(self):
        log = _filled(5)
        assert log[1:3] == [_event(1), _event(2)]
        assert log[::2] == [_event(0), _event(2), _event(4)]
        assert log[5:] == []

    def test_equality_with_logs_and_sequences(self):
        log = _filled(3)
        assert log == _filled(3)
        assert log != _filled(4)
        assert log == [_event(0), _event(1), _event(2)]
        assert log != [_event(0), _event(1)]
        assert log != object()


class TestAccumulators:
    def test_streaming_integrals_match_posthoc_sums(self):
        log = StepEventLog()
        events = [
            _event(0, kind="fused", batch=3, queue=2),
            _event(1, kind="prefill", batch=2, queue=1),
            _event(2, kind="decode", batch=4, queue=0),
            _event(3, kind="retry", batch=2, queue=3),
            _event(4, kind="remap", batch=1, queue=0),
            _event(5, kind="prefill", batch=0, queue=2),  # no live streams
        ]
        for e in events:
            log.append(e)
        queue_area = sum(e.queue_depth * e.duration_s for e in events)
        stall = sum(e.duration_s for e in events
                    if e.decode_batch > 0 and e.kind in STALL_KINDS)
        assert log.queue_area_s == queue_area
        assert log.decode_stall_s == stall
        assert stall > 0

    def test_stall_kinds_cover_the_blocking_steps(self):
        assert STALL_KINDS == {"prefill", "retry", "remap", "degrade"}


class TestExtendDecodeRun:
    def test_bulk_extend_equals_per_event_appends(self):
        starts = [0.0, 0.1, 0.2]
        ends = [0.1, 0.2, 0.3]
        bulk = StepEventLog()
        bulk.extend_decode_run(starts, ends, batch=3, kv_tokens=500,
                               kv_tokens_last=420)
        loop = StepEventLog()
        for i, (s, e) in enumerate(zip(starts, ends)):
            loop.append(StepEvent(
                start_s=s, end_s=e, kind="decode", decode_batch=3,
                chunk_tokens=0,
                kv_tokens=420 if i == len(starts) - 1 else 500,
                queue_depth=0,
            ))
        assert bulk == loop
        assert bulk.queue_area_s == 0.0
        assert bulk.decode_stall_s == 0.0

    def test_single_step_run_reports_released_kv(self):
        log = StepEventLog()
        log.extend_decode_run([0.0], [0.1], batch=1, kv_tokens=300,
                              kv_tokens_last=0)
        assert log[0].kv_tokens == 0

    def test_empty_run_is_a_no_op(self):
        log = _filled(2)
        log.extend_decode_run([], [], batch=1, kv_tokens=10, kv_tokens_last=0)
        assert log == _filled(2)
