"""Tests for the first-class distributed RMSNorm / softmax kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.device_presets import TINY_MESH
from repro.errors import ShapeError
from repro.llm.reference import rms_norm, softmax
from repro.mesh.cost_model import estimate
from repro.mesh.machine import MeshMachine
from repro.ops import DistributedRMSNorm, DistributedSoftmax


def _machine(side=6):
    return MeshMachine(TINY_MESH.submesh(side, side))


class TestDistributedRMSNorm:
    @pytest.mark.parametrize("n", [5, 12, 17, 64])
    def test_matches_dense(self, n, rng):
        x = rng.standard_normal(n)
        w = rng.standard_normal(n)
        got = DistributedRMSNorm.run(_machine(), x, w, eps=1e-5)
        assert np.allclose(got, rms_norm(x, w, 1e-5))

    def test_on_chosen_row(self, rng):
        machine = _machine()
        x = rng.standard_normal(10)
        got = DistributedRMSNorm.run(machine, x, np.ones(10), 1e-5, row=3)
        assert np.allclose(got, rms_norm(x, np.ones(10), 1e-5))

    def test_weight_shape_mismatch(self):
        with pytest.raises(ShapeError):
            DistributedRMSNorm.run(_machine(), np.ones(8), np.ones(7), 1e-5)

    def test_cleans_up_tiles(self, rng):
        machine = _machine()
        DistributedRMSNorm.run(machine, rng.standard_normal(12),
                               np.ones(12), 1e-5)
        for x in range(6):
            assert not machine.core((x, 0)).has("rms.x")

    def test_uses_ktree_routing_budget(self, rng):
        machine = _machine(8)
        DistributedRMSNorm.run(machine, rng.standard_normal(16),
                               np.ones(16), 1e-5)
        # K-tree colours + one broadcast colour.
        assert machine.trace.max_paths_per_core <= 4

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 40), seed=st.integers(0, 100))
    def test_property_matches_dense(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        got = DistributedRMSNorm.run(_machine(4), x, np.ones(n), 1e-6)
        assert np.allclose(got, rms_norm(x, np.ones(n), 1e-6))

    def test_plan_positive(self):
        cost = estimate("rms", TINY_MESH, DistributedRMSNorm.plan(8, 4096))
        assert cost.total_cycles > 0
        assert cost.comm_cycles > 0


class TestDistributedSoftmax:
    @pytest.mark.parametrize("n", [4, 9, 23, 48])
    def test_matches_dense(self, n, rng):
        scores = rng.standard_normal(n)
        got = DistributedSoftmax.run(_machine(), scores)
        assert np.allclose(got, softmax(scores))

    def test_masked_entries(self):
        scores = np.array([0.3, -np.inf, 1.2, -np.inf, 0.0])
        got = DistributedSoftmax.run(_machine(), scores)
        assert got[1] == 0.0 and got[3] == 0.0
        assert got.sum() == pytest.approx(1.0)

    def test_fully_masked_rejected(self):
        with pytest.raises(ShapeError):
            DistributedSoftmax.run(_machine(), np.full(4, -np.inf))

    def test_large_scores_stable(self):
        scores = np.array([1000.0, 1000.0, 999.0, 998.0])
        got = DistributedSoftmax.run(_machine(4), scores)
        assert np.isfinite(got).all()
        assert got.sum() == pytest.approx(1.0)

    def test_two_allreduces_in_trace(self, rng):
        machine = _machine()
        DistributedSoftmax.run(machine, rng.standard_normal(12))
        patterns = machine.trace.patterns()
        assert any("sm-ktree-max" in p for p in patterns)
        assert any("sm-ktree-sum" in p for p in patterns)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 40), seed=st.integers(0, 100))
    def test_property_matches_dense(self, n, seed):
        rng = np.random.default_rng(seed)
        scores = rng.standard_normal(n)
        got = DistributedSoftmax.run(_machine(4), scores)
        assert np.allclose(got, softmax(scores))

    def test_plan_has_two_reduction_rounds(self):
        from repro.mesh.cost_model import ReducePhase
        plan = DistributedSoftmax.plan(16, 4096)
        rms_plan = DistributedRMSNorm.plan(16, 4096)
        softmax_reduces = sum(
            p.stages for p in plan if isinstance(p, ReducePhase))
        rms_reduces = sum(
            p.stages for p in rms_plan if isinstance(p, ReducePhase))
        assert softmax_reduces == 2 * rms_reduces
