"""Tests for the shape-keyed step-cost cache (repro.serving.stepcost)."""

from __future__ import annotations

from repro.core import WSE2
from repro.core.device_presets import get_device
from repro.errors import ConfigurationError
from repro.llm.config import get_model
from repro.mesh.faults import FaultInjector
from repro.serving import stepcost
from repro.serving.chunked import WaferServer

import pytest

DEVICE = get_device("ipu-like-crossbar")
MODEL = get_model("tiny-gqa")


def _server(**kwargs):
    return WaferServer(MODEL, DEVICE, mode="chunked", chunk_tokens=64,
                       default_context_len=512, **kwargs)


class TestMemoization:
    def test_memoized_value_matches_direct_cost(self):
        server = _server()
        direct = server.system.fused_step_cost(
            MODEL, 128, 4, 0, server.grid).seconds
        assert stepcost.fused_step_seconds(
            server.system, MODEL, 128, 4, 0, server.grid) == direct
        # Second lookup is a hit and returns the identical value.
        before = stepcost.cache_info()["hits"]
        assert stepcost.fused_step_seconds(
            server.system, MODEL, 128, 4, 0, server.grid) == direct
        assert stepcost.cache_info()["hits"] == before + 1

    def test_prefill_memoized_value_matches_direct_cost(self):
        server = _server()
        direct = server.system.prefill_cost(MODEL, 200, server.grid).seconds
        assert stepcost.exclusive_prefill_seconds(
            server.system, MODEL, 200, server.grid) == direct

    def test_servers_with_same_shapes_share_entries(self):
        first = _server()
        first.fused_step_seconds(4, 100, 0)
        size_after_first = stepcost.cache_info()["size"]
        # A second server (e.g. another fleet epoch) prices the same
        # shape without growing the cache.
        second = _server()
        second.fused_step_seconds(4, 100, 0)
        assert stepcost.cache_info()["size"] == size_after_first

    def test_context_bucketing_shares_entries(self):
        stepcost.invalidate()  # isolate from shapes cached by other tests
        server = _server()
        server.fused_step_seconds(2, 10, 0)
        size = stepcost.cache_info()["size"]
        # 10 and 100 land in the same 128-token context bucket.
        server.fused_step_seconds(2, 100, 0)
        assert stepcost.cache_info()["size"] == size
        # 200 crosses into the next bucket: a new entry.
        server.fused_step_seconds(2, 200, 0)
        assert stepcost.cache_info()["size"] == size + 1


class TestInvalidation:
    def test_invalidate_bumps_version_and_clears(self):
        server = _server()
        server.fused_step_seconds(4, 100, 0)
        info = stepcost.cache_info()
        assert info["size"] > 0
        new_version = stepcost.invalidate()
        assert new_version == info["version"] + 1
        after = stepcost.cache_info()
        assert after["size"] == 0
        assert after["version"] == new_version

    def test_version_is_part_of_the_key(self):
        # The counter leads every key, so entries cached before a bump
        # are unreachable even if clearing were skipped: a re-lookup
        # after invalidate must be a miss, not a stale hit.
        server = _server()
        server.fused_step_seconds(4, 100, 0)
        stepcost.invalidate()
        misses = stepcost.cache_info()["misses"]
        server.fused_step_seconds(4, 100, 0)
        assert stepcost.cache_info()["misses"] == misses + 1

    def test_distinct_devices_get_distinct_entries(self):
        stepcost.invalidate()  # isolate from shapes cached by other tests
        size0 = stepcost.cache_info()["size"]
        small = _server()
        small.fused_step_seconds(1, 50, 0)
        big = WaferServer(get_model("llama3-8b"), WSE2, mode="chunked",
                          chunk_tokens=64, default_context_len=512)
        big.fused_step_seconds(1, 50, 0)
        assert stepcost.cache_info()["size"] >= size0 + 2


class TestNoteSteps:
    def test_note_steps_counts_attempts(self):
        injector = FaultInjector(0.0, seed=0)
        injector.note_steps(17)
        assert injector.steps_attempted == 17
        assert injector.steps_killed == 0

    def test_note_steps_rejected_at_nonzero_rate(self):
        injector = FaultInjector(0.5, seed=0)
        with pytest.raises(ConfigurationError):
            injector.note_steps(1)
