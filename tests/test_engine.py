"""Tests for the WaferLLMEngine façade."""

import numpy as np
import pytest

from repro.core import WSE2
from repro.errors import ConfigurationError
from repro.llm import LLAMA3_8B, TINY_GQA, WaferLLMEngine
from repro.llm.checkpoint import synthesize_weights
from repro.llm.reference import ReferenceTransformer


class TestFunctionalPath:
    def test_generate_matches_reference(self):
        weights = synthesize_weights(TINY_GQA, seed=9)
        engine = WaferLLMEngine(TINY_GQA, weights=weights)
        prompt = np.array([4, 1])
        expected = ReferenceTransformer(weights).generate(prompt, 4)
        assert np.array_equal(engine.generate(prompt, 4), expected)

    def test_generate_resets_between_calls(self):
        engine = WaferLLMEngine(TINY_GQA, seed=1)
        prompt = np.array([2, 3])
        first = engine.generate(prompt, 3)
        second = engine.generate(prompt, 3)
        assert np.array_equal(first, second)

    def test_large_model_functional_refused(self):
        engine = WaferLLMEngine(LLAMA3_8B)
        with pytest.raises(ConfigurationError, match="too large"):
            engine.generate(np.array([1]), 1)

    def test_transformer_property(self):
        engine = WaferLLMEngine(TINY_GQA)
        assert engine.transformer.config is TINY_GQA


class TestEstimationPath:
    def test_generation_estimate_available_for_large_models(self):
        engine = WaferLLMEngine(LLAMA3_8B, device=WSE2)
        result = engine.estimate_generation(2048, 128)
        assert result.total_seconds > 0
        assert result.system == "waferllm"

    def test_prefill_and_decode_estimates(self):
        engine = WaferLLMEngine(LLAMA3_8B, device=WSE2)
        assert engine.estimate_prefill(4096).total_cycles > 0
        assert engine.estimate_decode_token(2048).total_cycles > 0
        assert engine.prefill_throughput(4096) > engine.decode_throughput(2048)

    def test_pipeline_schedule_defaults_to_decode_grid(self):
        engine = WaferLLMEngine(LLAMA3_8B, device=WSE2)
        schedule = engine.pipeline_schedule()
        assert schedule.region_side == 360

    def test_transition_estimate(self):
        engine = WaferLLMEngine(LLAMA3_8B, device=WSE2)
        assert 0 < engine.transition().seconds < 0.01
