"""Smoke tests: every example script runs clean and prints its headline."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXPECTED_MARKERS = {
    "quickstart.py": "PLMR compliance",
    "llama_inference.py": "Table 2-style summary",
    "kernel_scaling.py": "peak MeshGEMV speedup",
    "kvcache_capacity.py": "equals the row count",
    "serving_simulation.py": "p99 latency",
    "memory_and_quantization.py": "DOES NOT FIT",
}


@pytest.mark.parametrize("script,marker", sorted(EXPECTED_MARKERS.items()))
def test_example_runs(script, marker):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker in result.stdout, (
        f"{script} output missing {marker!r}; got:\n{result.stdout[-800:]}"
    )


def test_all_examples_covered():
    scripts = {name for name in os.listdir(EXAMPLES_DIR)
               if name.endswith(".py")}
    assert scripts == set(EXPECTED_MARKERS), (
        "new example scripts must be added to EXPECTED_MARKERS"
    )
