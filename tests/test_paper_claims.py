"""Integration tests: the paper's headline claims, end to end.

Each test reproduces one claim from the abstract / introduction using
the library's public API, with tolerance bands around the published
factors.  These are the acceptance tests of the reproduction.
"""

import pytest

from repro.baselines import GPUModel, LadderSystem, T10System
from repro.core import WSE2
from repro.gemm import CannonGEMM, MeshGEMM, SummaGEMM
from repro.gemm.base import GemmShape
from repro.gemv import MeshGEMV, PipelineGEMV
from repro.llm.config import LLAMA2_13B, LLAMA3_8B
from repro.llm.kvcache import ConcatKVCache, ShiftKVCache, capacity_geometry
from repro.llm.wafer_system import WaferLLMSystem
from repro.mesh.energy import energy_ratio


@pytest.fixture(scope="module")
def wafer():
    return WaferLLMSystem(WSE2)


@pytest.fixture(scope="module")
def gpu():
    return GPUModel()


class TestAbstractClaims:
    def test_gemv_606x_faster_than_gpu(self, gpu):
        """Abstract: 606x faster GEMV than an advanced GPU (32K shape)."""
        wafer_cost = MeshGEMV.estimate(WSE2.submesh(750),
                                       rows=32768, cols=32768)
        gpu_seconds = gpu.gemv_seconds(32768, 32768)
        speedup = gpu_seconds / wafer_cost.seconds
        assert 200 < speedup < 2000

    def test_gemv_energy_efficiency_order_of_magnitude(self, gpu):
        """Abstract: ~22x more energy-efficient GEMV."""
        wafer_cost = MeshGEMV.estimate(WSE2.submesh(750),
                                       rows=32768, cols=32768)
        gpu_seconds = gpu.gemv_seconds(32768, 32768)
        ratio = energy_ratio(gpu.energy_joules(gpu_seconds),
                             wafer_cost.energy_joules)
        assert 10 < ratio < 60

    def test_decode_39x_faster_than_vllm(self, wafer, gpu):
        """Abstract: ~39x faster decoding (LLaMA2-13B, 4096/4096)."""
        gen = wafer.generation(LLAMA2_13B, 4096, 4096, 750, 375)
        vllm = gpu.vllm_decode_throughput(LLAMA2_13B, 4096, 4096)
        speedup = gen.decode_tokens_per_s / vllm
        assert 20 < speedup < 80

    def test_llm_energy_efficiency_modest(self, wafer, gpu):
        """Abstract: only ~1.7x better energy efficiency at LLM level —
        the pipeline bubbles eat the 22x GEMV advantage."""
        gen = wafer.generation(LLAMA2_13B, 4096, 4096, 750, 375)
        gpu_seconds = gpu.vllm_generation_seconds(LLAMA2_13B, 4096, 4096)
        ratio = energy_ratio(gpu.energy_joules(gpu_seconds),
                             gen.energy_joules)
        assert 0.8 < ratio < 3.0

    def test_utilization_gap_vs_shared_memory_systems(self, wafer):
        """Abstract: ~200x better accelerator utilization than SOTA
        systems (Ladder-class); intro: 200-400x end-to-end."""
        ladder = LadderSystem(WSE2)
        gen_w = wafer.generation(LLAMA3_8B, 2048, 2048, 660, 360)
        gen_l = ladder.generation(LLAMA3_8B, 2048, 2048, 660, 360)
        factor = gen_w.throughput_tokens_per_s / gen_l.throughput_tokens_per_s
        assert 100 < factor < 800

    def test_t10_gap_100_to_200x_prefill(self, wafer):
        """Intro: 100-200x faster than T10 for short generations."""
        t10 = T10System(WSE2)
        ours = wafer.prefill_throughput(LLAMA3_8B, 4096, 600)
        theirs = t10.prefill_throughput(LLAMA3_8B, 4096, 600)
        assert 60 < ours / theirs < 400


class TestSection7Claims:
    def test_meshgemm_2_to_3x_over_summa_cannon(self):
        """Section 7.2 / intro: MeshGEMM 2-3x over SUMMA and Cannon
        (averaged over the sweep sizes at a mid grid)."""
        ratios = []
        for dim in (2048, 4096, 8192):
            shape = GemmShape.square(dim)
            mesh = MeshGEMM.estimate(WSE2, shape, grid=600).total_cycles
            for baseline in (SummaGEMM, CannonGEMM):
                ratios.append(
                    baseline.estimate(WSE2, shape, grid=600).total_cycles / mesh
                )
        average = sum(ratios) / len(ratios)
        assert 1.5 < average < 8.0

    def test_meshgemv_4_to_8x_over_cerebras(self):
        """Intro: MeshGEMV 4-8x over Cerebras's optimized GEMV."""
        best = 0.0
        for grid in (360, 480, 600, 720):
            mesh = MeshGEMV.estimate(WSE2, rows=16384, cols=16384, grid=grid)
            pipe = PipelineGEMV.estimate(WSE2, rows=16384, cols=16384,
                                         grid=grid)
            best = max(best, pipe.total_cycles / mesh.total_cycles)
        assert 3.0 < best < 12.0

    def test_kv_cache_360x_more_tokens(self):
        """Intro/Table 5: shift-based cache ~360-400x more scalable."""
        geometry = capacity_geometry(LLAMA3_8B, 360,
                                     WSE2.core_memory_bytes, WSE2.num_cores)
        ratio = ShiftKVCache(geometry).capacity / \
            ConcatKVCache(geometry).capacity
        assert ratio == 360

    def test_gemm_8x_faster_but_less_efficient(self, gpu):
        """Section 7.5: GEMM ~8x faster on wafer, yet ~70% less
        energy-efficient — the crossover against GEMV."""
        wafer_cost = MeshGEMM.estimate(WSE2.submesh(750),
                                       GemmShape.square(16384))
        gpu_seconds = gpu.gemm_seconds(16384, 16384, 16384)
        speedup = gpu_seconds / wafer_cost.seconds
        ratio = energy_ratio(gpu.energy_joules(gpu_seconds),
                             wafer_cost.energy_joules)
        assert 4 < speedup < 16
        assert ratio < 0.6

    def test_prefill_vs_decode_core_preference(self, wafer):
        """Section 7.1: prefill wants more cores, decode fewer."""
        prefill_up = (wafer.prefill_throughput(LLAMA3_8B, 4096, 720)
                      > wafer.prefill_throughput(LLAMA3_8B, 4096, 480))
        decode_down = (wafer.decode_throughput(LLAMA3_8B, 2048, 660)
                       < wafer.decode_throughput(LLAMA3_8B, 2048, 420))
        assert prefill_up and decode_down
