"""Property tests for horizon planning: no boundary is ever skipped.

:func:`repro.serving.chunked.plan_decode_horizon` decides how many
decode steps commit in one vectorized update.  Its contract: a step may
*start* only strictly before the ``advance_to`` bound and the next
pending arrival, and must *end* strictly before the next scheduled
fault — and the plan must be maximal, never stopping early.  SLO
demotions and KV reservations cannot move during a horizon run (the
fast path requires an empty queue, and decode releases KV only at
completions, which bound the horizon via ``max_steps``), so arrivals,
faults, and the time bound are the complete set of external boundaries;
the end-to-end sweep at the bottom closes the loop on the internal ones
(completions and context-bucket crossings) by asserting bit-identity on
random workloads.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.device_presets import get_device
from repro.llm.config import get_model
from repro.serving.chunked import ServeEngine, WaferServer, plan_decode_horizon
from repro.serving.trace import synthetic_trace

times_s = st.floats(min_value=0.0, max_value=10.0,
                    allow_nan=False, allow_infinity=False)
bounds_s = st.one_of(st.just(math.inf), times_s)
steps_s = st.floats(min_value=1e-6, max_value=0.5,
                    allow_nan=False, allow_infinity=False)


class TestPlanDecodeHorizon:
    @given(now=times_s, step=steps_s, max_steps=st.integers(1, 200),
           until=bounds_s, arrival=bounds_s, fault=bounds_s)
    @settings(max_examples=300, deadline=None)
    def test_no_boundary_skipped_and_plan_maximal(
        self, now, step, max_steps, until, arrival, fault
    ):
        k, times = plan_decode_horizon(now, step, max_steps, until,
                                       arrival, fault)
        assert 0 <= k <= max_steps
        assert times.shape == (max_steps + 1,)
        assert times[0] == now
        start_bound = min(until, arrival)
        # Every committed step starts strictly before the time bound and
        # the next arrival, and ends strictly before the next fault.
        for j in range(k):
            assert times[j] < start_bound
            assert times[j + 1] < fault
        # Maximality: when the plan stops short of max_steps, committing
        # one more step would cross a boundary.
        if k < max_steps:
            assert times[k] >= start_bound or times[k + 1] >= fault

    @given(now=times_s, step=steps_s, max_steps=st.integers(1, 200))
    @settings(max_examples=100, deadline=None)
    def test_unbounded_plan_commits_everything(self, now, step, max_steps):
        k, times = plan_decode_horizon(now, step, max_steps,
                                       math.inf, math.inf, math.inf)
        assert k == max_steps
        # The prefix sums are the reference loop's accumulation order.
        expected = now
        for j in range(1, k + 1):
            expected += step
            assert times[j] == expected

    @given(now=times_s, step=steps_s, max_steps=st.integers(1, 50),
           until=bounds_s, arrival=bounds_s, fault=bounds_s)
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_reference_walk(
        self, now, step, max_steps, until, arrival, fault
    ):
        """The vectorized plan equals a per-step reference simulation."""
        k, times = plan_decode_horizon(now, step, max_steps, until,
                                       arrival, fault)
        clock, ref_k = np.float64(now), 0
        while ref_k < max_steps:
            if not (clock < min(until, arrival)):   # step may not start
                break
            end = clock + np.float64(step)
            if not (end < fault):                   # fault strikes step
                break
            clock, ref_k = end, ref_k + 1
        assert k == ref_k
        if k:
            assert times[k] == clock


class TestRandomWorkloadEquivalence:
    """Random schedules end to end: horizon on == horizon off, exactly."""

    DEVICE = get_device("ipu-like-crossbar")
    MODEL = get_model("tiny-gqa")

    @given(seed=st.integers(0, 2**16), n=st.integers(2, 10),
           mode=st.sampled_from(["chunked", "exclusive"]),
           interarrival=st.sampled_from([0.0, 0.001, 0.01]))
    @settings(max_examples=25, deadline=None)
    def test_metrics_bit_identical(self, seed, n, mode, interarrival):
        trace = synthetic_trace(
            n, seed=seed, mean_interarrival_s=interarrival,
            seq_in_range=(32, 256), seq_out_range=(8, 96),
            ttft_slo_s=5.0, tpot_slo_s=0.5,
        )

        def run(horizon):
            server = WaferServer(
                self.MODEL, self.DEVICE, mode=mode, chunk_tokens=64,
                default_context_len=512,
            )
            return ServeEngine(server, trace, horizon=horizon).run()

        assert run(True) == run(False)
