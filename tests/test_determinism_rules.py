"""The determinism lint rules: true positives from the seeded fixtures,
negatives for the disciplined shapes, and the path gates."""

from pathlib import Path

import pytest

from repro.analysis.lint import lint_source

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "determinism"


def _lint_fixture(name: str, rel_path: str = "src/repro/fx/mod.py"):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, rel_path)


# ----------------------------------------------------------------------
# wall-clock-read
# ----------------------------------------------------------------------

def test_wall_clock_fixture_flagged():
    findings = [
        f for f in _lint_fixture("bad_wall_clock.py")
        if f.rule == "wall-clock-read"
    ]
    assert len(findings) == 3
    assert all(f.line is not None for f in findings)


def test_wall_clock_allowed_in_simbench():
    code = "import time\n\ndef t():\n    return time.perf_counter()\n"
    assert lint_source(code, "src/repro/serving/chunked.py")
    # The wall-clock benchmark is the one module that measures real time.
    findings = lint_source(code, "src/repro/bench/simbench.py")
    assert not any(f.rule == "wall-clock-read" for f in findings)


def test_datetime_now_flagged_only_for_datetime_objects():
    code = (
        "from datetime import datetime\n"
        "class Clock:\n"
        "    def now(self):\n"
        "        return 0\n"
        "def ok(c: Clock):\n"
        "    return c.now()\n"
        "def bad():\n"
        "    return datetime.now()\n"
    )
    findings = [
        f for f in lint_source(code, "src/repro/x.py")
        if f.rule == "wall-clock-read"
    ]
    assert len(findings) == 1
    assert findings[0].line == 8


# ----------------------------------------------------------------------
# unordered-iteration
# ----------------------------------------------------------------------

def test_unordered_fixture_flagged():
    findings = [
        f for f in _lint_fixture("bad_unordered.py")
        if f.rule == "unordered-iteration"
    ]
    assert len(findings) == 2


def test_sorted_set_iteration_allowed():
    code = (
        "import hashlib\n"
        "def signature_of(names):\n"
        "    d = hashlib.sha256()\n"
        "    for n in sorted({x.strip() for x in names}):\n"
        "        d.update(n.encode())\n"
        "    return d.hexdigest()\n"
    )
    findings = lint_source(code, "src/repro/x.py")
    assert not any(f.rule == "unordered-iteration" for f in findings)


def test_set_iteration_outside_sensitive_functions_allowed():
    # Set iteration is only order-hazardous when it feeds an
    # order-sensitive sink (hashes, heaps, trace records).
    code = (
        "def total(xs):\n"
        "    acc = 0\n"
        "    for x in set(xs):\n"
        "        acc += x\n"
        "    return acc\n"
    )
    findings = lint_source(code, "src/repro/x.py")
    assert not any(f.rule == "unordered-iteration" for f in findings)


# ----------------------------------------------------------------------
# object-identity-ordering
# ----------------------------------------------------------------------

def test_identity_order_fixture_flagged():
    findings = [
        f for f in _lint_fixture("bad_identity_order.py")
        if f.rule == "object-identity-ordering"
    ]
    assert len(findings) == 2


def test_time_seq_heap_discipline_allowed():
    # The fleet router's (time, seq, payload) heap triple is the
    # sanctioned shape: the monotone counter breaks timestamp ties.
    code = (
        "import heapq\n"
        "import itertools\n"
        "_seq = itertools.count()\n"
        "def schedule(heap, at_s, event):\n"
        "    heapq.heappush(heap, (at_s, next(_seq), event))\n"
    )
    findings = lint_source(code, "src/repro/x.py")
    assert not any(
        f.rule == "object-identity-ordering" for f in findings
    )


# ----------------------------------------------------------------------
# mutable-module-state
# ----------------------------------------------------------------------

def test_module_state_fixture_flagged():
    findings = [
        f for f in _lint_fixture("bad_module_state.py")
        if f.rule == "mutable-module-state"
    ]
    assert len(findings) == 1
    assert findings[0].line == 3


def test_versioned_module_state_allowed():
    findings = [
        f for f in _lint_fixture("good_module_state.py")
        if f.rule == "mutable-module-state"
    ]
    assert not findings


# ----------------------------------------------------------------------
# hashseed-dependent
# ----------------------------------------------------------------------

def test_builtin_hash_flagged_in_src():
    code = "def seed_for(name):\n    return hash(name) % 997\n"
    findings = [
        f for f in lint_source(code, "src/repro/x.py")
        if f.rule == "hashseed-dependent"
    ]
    assert len(findings) == 1


def test_builtin_hash_not_flagged_outside_src():
    code = "def seed_for(name):\n    return hash(name) % 997\n"
    findings = lint_source(code, "tools/helper.py")
    assert not any(f.rule == "hashseed-dependent" for f in findings)


def test_dunder_hash_method_allowed():
    code = (
        "class Key:\n"
        "    def __hash__(self):\n"
        "        return 7\n"
        "def use(d, k: Key):\n"
        "    return d[k]\n"
    )
    findings = lint_source(code, "src/repro/x.py")
    assert not any(f.rule == "hashseed-dependent" for f in findings)


# ----------------------------------------------------------------------
# the tree itself
# ----------------------------------------------------------------------

@pytest.mark.parametrize("rule", [
    "wall-clock-read", "unordered-iteration", "object-identity-ordering",
    "mutable-module-state", "hashseed-dependent",
])
def test_src_tree_clean_of_rule(rule):
    from repro.analysis.lint import lint_tree

    findings = [f for f in lint_tree() if f.rule == rule]
    pretty = "\n".join(f.render() for f in findings)
    assert not findings, f"{rule} findings in src/repro:\n{pretty}"
