"""Tests for automatic parallelism configuration."""

import pytest

from repro.core import WSE2, TINY_MESH
from repro.errors import ConfigurationError
from repro.llm.autotune import (
    AutotuneResult,
    autotune,
    compare_with_paper_configs,
    min_decode_grid,
)
from repro.llm.config import LLAMA2_13B, LLAMA3_8B, QWEN2_72B
from repro.llm.wafer_system import WaferLLMSystem


@pytest.fixture(scope="module")
def tuned_8b() -> AutotuneResult:
    return autotune(LLAMA3_8B, WSE2)


class TestSearch:
    def test_returns_valid_grids(self, tuned_8b):
        side = min(WSE2.mesh_width, WSE2.mesh_height)
        assert 8 <= tuned_8b.prefill_grid <= side
        assert 8 <= tuned_8b.decode_grid <= side

    def test_prefill_grid_larger_than_decode(self, tuned_8b):
        # The paper's empirical configurations share this shape.
        assert tuned_8b.prefill_grid > tuned_8b.decode_grid

    def test_beats_neighbouring_grids(self, tuned_8b):
        system = WaferLLMSystem(WSE2)
        for delta in (-24, 24):
            neighbour = tuned_8b.prefill_grid + delta
            if 8 <= neighbour <= 860:
                assert tuned_8b.prefill_tokens_per_s >= \
                    system.prefill_throughput(LLAMA3_8B, 4096, neighbour)
            neighbour = tuned_8b.decode_grid + delta
            if 8 <= neighbour <= 860:
                assert tuned_8b.decode_tokens_per_s >= \
                    system.decode_throughput(LLAMA3_8B, 2048, neighbour)

    def test_at_least_matches_paper_configs(self, tuned_8b):
        system = WaferLLMSystem(WSE2)
        paper_prefill = system.prefill_throughput(LLAMA3_8B, 4096, 660)
        paper_decode = system.decode_throughput(LLAMA3_8B, 2048, 360)
        assert tuned_8b.prefill_tokens_per_s >= 0.99 * paper_prefill
        assert tuned_8b.decode_tokens_per_s >= 0.99 * paper_decode

    def test_chooses_paper_k(self, tuned_8b):
        # Section 6.2 picks K = 2; the sweep should agree (or pick a
        # neighbouring arity with near-identical cost).
        assert tuned_8b.ktree_k in (2, 3)

    def test_search_is_cheap(self, tuned_8b):
        assert tuned_8b.candidates_evaluated < 200

    def test_tiny_device_rejected(self):
        with pytest.raises(ConfigurationError):
            autotune(LLAMA3_8B, TINY_MESH.submesh(4, 4))


class TestMemoryFloor:
    def test_min_grid_positive(self):
        for model in (LLAMA3_8B, LLAMA2_13B, QWEN2_72B):
            grid = min_decode_grid(model, WSE2)
            assert 8 <= grid <= 860

    def test_bigger_model_bigger_floor(self):
        assert min_decode_grid(QWEN2_72B, WSE2) >= \
            min_decode_grid(LLAMA3_8B, WSE2)


class TestComparison:
    def test_report_structure(self):
        report = compare_with_paper_configs(LLAMA2_13B, WSE2)
        assert report["model"] == "llama2-13b"
        assert report["paper"]["prefill_grid"] == 750
        assert report["autotuned"]["prefill_tok_s"] >= \
            0.99 * report["paper"]["prefill_tok_s"]
        assert report["autotuned"]["decode_tok_s"] >= \
            0.99 * report["paper"]["decode_tok_s"]
