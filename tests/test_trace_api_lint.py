"""The trace-API lint holds: kernels never record into the trace raw."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from lint_trace_api import SOURCE_ROOT, find_violations  # noqa: E402


def test_no_direct_trace_recording():
    violations = find_violations()
    pretty = "\n".join(
        f"{path.relative_to(REPO_ROOT)}:{lineno}: {line}"
        for path, lineno, line in violations
    )
    assert not violations, (
        "direct Trace.record_* calls outside repro/mesh/machine.py "
        f"(use machine.communicate/compute/barrier):\n{pretty}"
    )


def test_lint_scans_the_real_tree():
    # Guard against the lint silently pointing at a stale directory.
    assert (SOURCE_ROOT / "mesh" / "machine.py").is_file()
    assert len(list(SOURCE_ROOT.rglob("*.py"))) > 50
