"""Tests for the PLMR device model and presets."""

import math

import pytest

from repro.core import (
    DOJO_LIKE,
    IPU_LIKE,
    PRESETS,
    TENSTORRENT_LIKE,
    TINY_MESH,
    WSE2,
    WSE3,
    PLMRDevice,
    get_device,
    square_mesh_for,
)
from repro.errors import ConfigurationError


class TestConstruction:
    def test_default_is_valid(self):
        device = PLMRDevice()
        assert device.num_cores == 64 * 64

    @pytest.mark.parametrize("field,value", [
        ("mesh_width", 0),
        ("mesh_height", -3),
        ("core_memory_bytes", 0),
        ("clock_hz", 0.0),
        ("macs_per_cycle", 0.0),
        ("message_bytes", 0),
        ("max_paths_per_core", 0),
    ])
    def test_invalid_parameters_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            PLMRDevice(**{field: value})

    def test_frozen(self):
        with pytest.raises(Exception):
            WSE2.mesh_width = 1  # type: ignore[misc]


class TestDerivedQuantities:
    def test_num_cores(self):
        assert WSE2.num_cores == 990 * 860

    def test_wse2_is_roughly_850k_cores(self):
        assert 800_000 <= WSE2.num_cores <= 900_000

    def test_total_memory_near_40gb(self):
        assert 38 <= WSE2.total_memory_bytes / 2**30 <= 42

    def test_max_hops(self):
        device = PLMRDevice(mesh_width=10, mesh_height=7)
        assert device.max_hops == 9 + 6

    def test_max_axis_hops(self):
        device = PLMRDevice(mesh_width=10, mesh_height=7)
        assert device.max_axis_hops == 10

    def test_latency_variance_near_1000x_for_wse2(self):
        # The paper's headline L figure: ~1000x local-vs-remote variance.
        assert 800 <= WSE2.latency_variance <= 1200

    def test_peak_macs(self):
        device = PLMRDevice(mesh_width=2, mesh_height=2,
                            macs_per_cycle=4, clock_hz=1e9)
        assert device.peak_macs_per_s == 4 * 4 * 1e9

    def test_aggregate_link_bandwidth_positive(self):
        # Section 4.4 quotes 100s of Pbit/s aggregate NoC bandwidth.
        pbits = WSE2.aggregate_link_bandwidth * 8 / 1e15
        assert pbits > 50

    def test_cycle_second_roundtrip(self):
        assert WSE2.seconds_to_cycles(WSE2.cycles_to_seconds(1234.0)) == pytest.approx(1234.0)

    def test_energy_is_power_times_time(self):
        assert WSE2.energy_joules(2.0) == pytest.approx(2.0 * WSE2.device_power_w)


class TestSubmesh:
    def test_submesh_dimensions(self):
        sub = WSE2.submesh(660)
        assert sub.mesh_width == 660 and sub.mesh_height == 660

    def test_submesh_inherits_per_core_parameters(self):
        sub = WSE2.submesh(100, 50)
        assert sub.core_memory_bytes == WSE2.core_memory_bytes
        assert sub.clock_hz == WSE2.clock_hz
        assert sub.device_power_w == WSE2.device_power_w

    def test_submesh_name_annotated(self):
        assert "[64x64]" in WSE2.submesh(64).name

    def test_submesh_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            WSE2.submesh(2000)

    def test_submesh_rectangular(self):
        sub = WSE2.submesh(100, 200)
        assert (sub.mesh_width, sub.mesh_height) == (100, 200)

    def test_square_mesh_for(self):
        sub = square_mesh_for(WSE2, 10_000)
        assert sub.mesh_width == sub.mesh_height == 100

    def test_square_mesh_for_caps_at_fabric(self):
        sub = square_mesh_for(TINY_MESH, 10_000)
        assert sub.mesh_width == 8


class TestPresets:
    def test_all_presets_registered(self):
        assert {"cerebras-wse2", "cerebras-wse3", "dojo-like",
                "tenstorrent-like", "ipu-like-crossbar",
                "tiny-test-mesh"} <= set(PRESETS)

    def test_get_device(self):
        assert get_device("cerebras-wse2") is WSE2

    def test_get_device_unknown(self):
        with pytest.raises(KeyError, match="known presets"):
            get_device("tpu-v5")

    def test_wse3_doubles_core_throughput(self):
        # Section 7.5: WSE-3 "increases core efficiency by 100%".
        assert WSE3.macs_per_cycle == 2 * WSE2.macs_per_cycle

    def test_ipu_crossbar_has_flat_latency(self):
        # The crossbar device models hop-invariant access: this is the
        # assumption T10 wrongly carries onto meshes.
        assert IPU_LIKE.hop_cycles == 0.0

    def test_dojo_has_megabyte_cores(self):
        assert DOJO_LIKE.core_memory_bytes >= 2**20

    def test_presets_describe(self):
        for device in (WSE2, WSE3, DOJO_LIKE, TENSTORRENT_LIKE):
            summary = device.describe()
            assert summary["P (cores)"] == device.num_cores
            assert summary["M (bytes/core)"] == device.core_memory_bytes

    def test_wse2_scale_dwarfs_tenstorrent(self):
        # PLMR spans device scales (Section 3.1).
        assert WSE2.num_cores > 1000 * TENSTORRENT_LIKE.num_cores
