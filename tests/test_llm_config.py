"""Tests for LLM configurations and derived quantities."""

import pytest

from repro.errors import ConfigurationError
from repro.llm.config import (
    CODELLAMA_34B,
    LLAMA2_13B,
    LLAMA3_8B,
    MODELS,
    QWEN2_72B,
    TINY_GQA,
    TINY_MHA,
    TINY_MQA,
    AttentionVariant,
    ModelConfig,
    get_model,
)


class TestVariants:
    def test_llama3_is_gqa(self):
        assert LLAMA3_8B.attention_variant is AttentionVariant.GQA

    def test_llama2_13b_is_mha(self):
        assert LLAMA2_13B.attention_variant is AttentionVariant.MHA

    def test_tiny_mqa(self):
        assert TINY_MQA.attention_variant is AttentionVariant.MQA

    def test_group_size(self):
        assert LLAMA3_8B.group_size == 4
        assert LLAMA2_13B.group_size == 1

    def test_head_dim(self):
        assert LLAMA3_8B.head_dim == 128
        assert QWEN2_72B.head_dim == 128

    def test_kv_dim(self):
        assert LLAMA3_8B.kv_dim == 1024
        assert LLAMA2_13B.kv_dim == 5120


class TestAccounting:
    def test_llama3_8b_param_count(self):
        # ~8.0 B parameters.
        assert 7.5e9 < LLAMA3_8B.total_params < 8.6e9

    def test_llama2_13b_param_count(self):
        assert 12.5e9 < LLAMA2_13B.total_params < 13.6e9

    def test_codellama_34b_param_count(self):
        assert 31e9 < CODELLAMA_34B.total_params < 36e9

    def test_qwen2_72b_param_count(self):
        assert 68e9 < QWEN2_72B.total_params < 76e9

    def test_weight_bytes_fp16(self):
        assert LLAMA3_8B.weight_bytes == LLAMA3_8B.total_params * 2

    def test_kv_bytes_per_token(self):
        # GQA: 2 (K,V) * 1024 * 32 layers * 2 B = 128 KiB/token.
        assert LLAMA3_8B.kv_bytes_per_token() == 2 * 1024 * 32 * 2

    def test_gqa_shrinks_kv_vs_mha(self):
        per_width_8b = LLAMA3_8B.kv_bytes_per_token() / (
            LLAMA3_8B.d_model * LLAMA3_8B.num_layers)
        per_width_13b = LLAMA2_13B.kv_bytes_per_token() / (
            LLAMA2_13B.d_model * LLAMA2_13B.num_layers)
        assert per_width_8b < per_width_13b

    def test_decode_macs_grow_with_context(self):
        short = LLAMA3_8B.decode_macs_per_token(128)
        long = LLAMA3_8B.decode_macs_per_token(4096)
        assert long > short

    def test_prefill_macs_superlinear(self):
        # Attention's L^2 term makes prefill superlinear in sequence.
        m1 = LLAMA3_8B.prefill_macs(1024)
        m4 = LLAMA3_8B.prefill_macs(4096)
        assert m4 > 4 * m1


class TestValidationAndRegistry:
    def test_indivisible_heads_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(name="bad", num_layers=1, d_model=100, n_heads=3,
                        n_kv_heads=1, d_ff=10, vocab_size=10)

    def test_kv_heads_must_divide(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(name="bad", num_layers=1, d_model=64, n_heads=4,
                        n_kv_heads=3, d_ff=10, vocab_size=10)

    def test_get_model(self):
        assert get_model("llama3-8b") is LLAMA3_8B

    def test_get_model_unknown(self):
        with pytest.raises(KeyError, match="known"):
            get_model("gpt-5")

    def test_registry_has_paper_models(self):
        assert {"llama3-8b", "llama2-13b", "codellama-34b", "qwen2-72b"} <= \
            set(MODELS)

    def test_scaled_to_layers(self):
        subset = QWEN2_72B.scaled_to_layers(4)
        assert subset.num_layers == 4
        assert subset.d_model == QWEN2_72B.d_model
        assert "[4L]" in subset.name

    def test_tiny_models_divide_small_grids(self):
        for cfg in (TINY_MHA, TINY_GQA, TINY_MQA):
            assert cfg.d_model % 4 == 0
            assert cfg.d_ff % 4 == 0
