"""Tests for the discrete-event pipeline simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.runtime.pipeline_sim import (
    imbalance_penalty,
    simulate_pipeline,
    uniform_stage_utilization,
)


class TestBasics:
    def test_single_stage_fully_utilized(self):
        run = simulate_pipeline([2.0], num_tokens=10)
        assert run.makespan == pytest.approx(20.0)
        assert run.utilization == pytest.approx(1.0)

    def test_single_stream_serializes(self):
        # One autoregressive stream: token n+1 waits for token n to
        # clear all stages, so utilization -> 1/s.
        run = simulate_pipeline([1.0] * 4, num_tokens=100, streams=1)
        assert run.utilization == pytest.approx(0.25, abs=0.01)

    def test_saturated_pipeline(self):
        run = simulate_pipeline([1.0] * 4, num_tokens=400, streams=8)
        assert run.utilization > 0.9

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            simulate_pipeline([], 10)
        with pytest.raises(ConfigurationError):
            simulate_pipeline([0.0], 10)
        with pytest.raises(ConfigurationError):
            simulate_pipeline([1.0], 0)
        with pytest.raises(ConfigurationError):
            simulate_pipeline([1.0], 1, streams=0)

    def test_bottleneck_identified(self):
        run = simulate_pipeline([1.0, 5.0, 1.0], num_tokens=50, streams=4)
        assert run.bottleneck_stage == 1

    def test_bubble_fraction_complements(self):
        run = simulate_pipeline([1.0] * 3, num_tokens=30, streams=2)
        assert run.bubble_fraction == pytest.approx(1 - run.utilization)


class TestFormulaValidation:
    """The simulator must reproduce the scheduler's analytic formula."""

    @settings(max_examples=20, deadline=None)
    @given(stages=st.integers(2, 8), streams=st.integers(1, 12))
    def test_uniform_stages_match_min_m_over_s(self, stages, streams):
        measured = uniform_stage_utilization(stages, streams,
                                             tokens_per_stream=64)
        expected = min(1.0, streams / stages)
        assert measured == pytest.approx(expected, abs=0.06)

    def test_matches_pipeline_schedule_single_stream(self):
        from repro.core import WSE2
        from repro.llm.config import LLAMA3_8B
        from repro.runtime import PipelineSchedule
        schedule = PipelineSchedule(LLAMA3_8B, WSE2, 360)
        measured = uniform_stage_utilization(schedule.num_stages, 1,
                                             tokens_per_stream=128)
        assert measured == pytest.approx(schedule.utilization(1), abs=0.02)


class TestImbalance:
    def test_balanced_stages_no_penalty(self):
        assert imbalance_penalty([1.0, 1.0, 1.0], streams=6) == \
            pytest.approx(1.0, abs=0.02)

    def test_skewed_stage_costs_throughput(self):
        penalty = imbalance_penalty([1.0, 3.0, 1.0, 1.0], streams=8)
        assert penalty > 1.5

    def test_penalty_grows_with_skew(self):
        mild = imbalance_penalty([1.0, 1.5, 1.0, 1.0], streams=8)
        severe = imbalance_penalty([1.0, 4.0, 1.0, 1.0], streams=8)
        assert severe > mild
