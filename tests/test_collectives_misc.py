"""Tests for shifts, broadcasts, allgather, and plan/trace cross-checks."""

import numpy as np
import pytest

from repro.collectives import (
    column_broadcast,
    column_ring_shift,
    identity_placement,
    interleave_placement,
    ktree_reduce,
    ktree_reduce_plan,
    line_allgather,
    pipeline_reduce_plan,
    ring_allreduce_plan,
    root_broadcast_plan,
    row_broadcast,
    row_ring_shift,
)
from repro.collectives.plans import ktree_stage_count
from repro.core.device_presets import TINY_MESH
from repro.errors import MemoryCapacityError, ShapeError
from repro.mesh.cost_model import ReducePhase
from repro.mesh.machine import MeshMachine


def _machine(side, enforce_memory=True):
    return MeshMachine(TINY_MESH.submesh(side, side),
                       enforce_memory=enforce_memory)


class TestRingShifts:
    def test_row_shift_moves_logically(self, rng):
        side = 5
        machine = _machine(side)
        matrix = rng.standard_normal((side, side))
        machine.scatter_matrix("t", matrix, side, side)
        placement = interleave_placement(side)
        # Shift by -1: the tile at logical column j moves to j-1; under
        # any placement the *logical* content rotates identically.
        row_ring_shift(machine, "s", "t", placement, offset=-1)
        gathered = machine.gather_matrix("t", side, side)
        # Physical gather mixes placement; verify via logical positions.
        from repro.collectives.interleave import inverse_placement
        logical_at = inverse_placement(placement)
        for y in range(side):
            for x in range(side):
                pass  # content checked through the cyclic GEMM tests
        # At minimum the multiset of values per row is preserved:
        assert sorted(gathered[0]) == pytest.approx(sorted(matrix[0]))

    def test_interleaved_shift_hops_bounded(self):
        side = 7
        machine = _machine(side)
        machine.scatter_matrix("t", np.zeros((side, side)), side, side)
        row_ring_shift(machine, "s", "t", interleave_placement(side), offset=-1)
        assert machine.trace.comms[-1].max_hops <= 2

    def test_identity_shift_wraparound_hops(self):
        side = 7
        machine = _machine(side)
        machine.scatter_matrix("t", np.zeros((side, side)), side, side)
        row_ring_shift(machine, "s", "t", identity_placement(side), offset=-1)
        assert machine.trace.comms[-1].max_hops == side - 1

    def test_column_shift(self):
        side = 4
        machine = _machine(side)
        matrix = np.arange(16.0).reshape(4, 4)
        machine.scatter_matrix("t", matrix, side, side)
        column_ring_shift(machine, "s", "t", identity_placement(side), offset=-1)
        gathered = machine.gather_matrix("t", side, side)
        assert np.array_equal(gathered, np.roll(matrix, -1, axis=0))

    def test_per_row_offsets(self):
        side = 4
        machine = _machine(side)
        matrix = np.arange(16.0).reshape(4, 4)
        machine.scatter_matrix("t", matrix, side, side)
        row_ring_shift(machine, "s", "t", identity_placement(side),
                       row_offsets=[0, -1, -2, -3])
        gathered = machine.gather_matrix("t", side, side)
        for y in range(side):
            assert np.array_equal(gathered[y], np.roll(matrix[y], -y))

    def test_placement_length_mismatch(self):
        machine = _machine(4)
        machine.scatter_matrix("t", np.zeros((4, 4)), 4, 4)
        with pytest.raises(ShapeError):
            row_ring_shift(machine, "s", "t", identity_placement(5))


class TestBroadcasts:
    def test_row_broadcast_delivers_everywhere(self):
        side = 4
        machine = _machine(side)
        matrix = np.arange(16.0).reshape(4, 4)
        machine.scatter_matrix("t", matrix, side, side)
        row_broadcast(machine, "b", "t", "piv", root_x=2)
        for y in range(side):
            for x in range(side):
                assert machine.core((x, y)).load("piv") == matrix[y, 2]

    def test_column_broadcast(self):
        side = 4
        machine = _machine(side)
        matrix = np.arange(16.0).reshape(4, 4)
        machine.scatter_matrix("t", matrix, side, side)
        column_broadcast(machine, "b", "t", "piv", root_y=1)
        for y in range(side):
            for x in range(side):
                assert machine.core((x, y)).load("piv") == matrix[1, x]

    def test_broadcast_critical_path(self):
        side = 6
        machine = _machine(side)
        machine.scatter_matrix("t", np.zeros((6, 6)), side, side)
        row_broadcast(machine, "b", "t", "piv", root_x=0)
        assert machine.trace.comms[-1].max_hops == side - 1


class TestAllgather:
    def test_gathers_whole_line(self, rng):
        side = 4
        machine = _machine(side, enforce_memory=False)
        matrix = rng.standard_normal((side, side))
        machine.scatter_matrix("t", matrix, side, side)
        lines = [machine.topology.row(y) for y in range(side)]
        line_allgather(machine, lines, "t", "g")
        for y in range(side):
            for x in range(side):
                core = machine.core((x, y))
                for j in range(side):
                    assert core.load(f"g.{j}") == matrix[y, j]

    def test_route_colours_scale_with_line(self):
        side = 6
        machine = _machine(side, enforce_memory=False)
        machine.scatter_matrix("t", np.zeros((side, side)), side, side)
        lines = [machine.topology.row(y) for y in range(side)]
        line_allgather(machine, lines, "t", "g")
        # R violation: one colour per source position.
        assert machine.trace.max_paths_per_core >= side

    def test_memory_violation_raised_when_enforced(self):
        # Strips that cannot fit make the M violation a hard failure.
        side = 4
        machine = _machine(side, enforce_memory=True)
        big = np.zeros(6000, dtype=np.float64)  # 48 KB per tile
        for y in range(side):
            for x in range(side):
                machine.place("t", (x, y), big)
        lines = [machine.topology.row(y) for y in range(side)]
        with pytest.raises(MemoryCapacityError):
            line_allgather(machine, lines, "t", "g")


class TestPlanTraceCrossChecks:
    """The analytic plans must mirror the functional step structure."""

    @pytest.mark.parametrize("side", [3, 4, 6, 8])
    def test_ktree_plan_stage_totals(self, side):
        machine = _machine(side)
        machine.scatter_matrix("v", np.ones((side, side)), side, side)
        lines = [machine.topology.row(y) for y in range(side)]
        ktree_reduce(machine, lines, "v", k=2, pattern_prefix="kt")
        functional = sum(
            1 for r in machine.trace.comms if r.pattern.startswith("kt")
        )
        planned = sum(
            p.stages for p in ktree_reduce_plan(side, 8.0, 1.0, k=2)
            if isinstance(p, ReducePhase)
        )
        assert functional == planned == ktree_stage_count(side, 2)

    def test_pipeline_plan_stage_totals(self):
        plan = pipeline_reduce_plan(10, 8.0, 2.0)
        assert plan[0].stages == 9

    def test_ring_plan_round_totals(self):
        plan = ring_allreduce_plan(10, 100.0, 25.0)
        assert sum(p.stages for p in plan) == 18
        assert all(not p.pipelined for p in plan)

    def test_trivial_lines_empty_plans(self):
        assert pipeline_reduce_plan(1, 8, 1) == []
        assert ring_allreduce_plan(1, 8, 1) == []
        assert ktree_reduce_plan(1, 8, 1) == []
        assert root_broadcast_plan(1, 8) == []

    def test_ktree_hop_distances_grow_geometrically(self):
        plan = [p for p in ktree_reduce_plan(64, 8.0, 1.0, k=2)
                if isinstance(p, ReducePhase)]
        distances = [p.stage_hop_distance for p in plan]
        assert distances == sorted(distances)
        assert distances[0] == 1.0
        assert distances[-1] > 1.0
