"""Plan-vs-trace reconciliation across every registered kernel.

The phase-stream refactor promises one thing above all: a kernel's
analytic ``plan()`` and its functional execution describe the *same*
computation.  These tests enforce that promise generically — every
kernel in the profiling registry is run functionally, its trace lowered
back into cost-model phases, and the two cycle estimates compared
within the named :class:`~repro.mesh.reconcile.Tolerances`.
"""

import numpy as np
import pytest

from repro.core import PRESETS
from repro.errors import ConfigurationError
from repro.mesh.cost_model import CommPhase, ComputePhase, LoopPhase, ReducePhase
from repro.mesh.machine import MeshMachine
from repro.mesh.reconcile import reconcile, trace_timeline
from repro.mesh.trace import ingress_port
from repro.profiling import (
    all_kernel_names,
    build_case,
    reconcile_case,
    run_case,
    timeline_case,
)

SQUARE_KERNELS = [n for n in all_kernel_names() if n != "meshgemm-nonsquare"]
PRESET_NAMES = ["cerebras-wse2", "tenstorrent-like"]


class TestReconcileSweep:
    @pytest.mark.parametrize("preset", PRESET_NAMES)
    @pytest.mark.parametrize("grid", [4, 5])
    @pytest.mark.parametrize("kernel", SQUARE_KERNELS)
    def test_plan_matches_trace(self, kernel, grid, preset):
        report = reconcile_case(build_case(kernel, grid), preset)
        report.check()

    @pytest.mark.parametrize("preset", PRESET_NAMES)
    @pytest.mark.parametrize("mesh", [(2, 3), (3, 4)])
    def test_nonsquare_fabrics(self, mesh, preset):
        width, height = mesh
        case = build_case("meshgemm-nonsquare", width, height=height)
        reconcile_case(case, preset).check()

    def test_odd_grid_seven(self):
        # A deeper odd grid stresses uneven K-tree groups and ring hops.
        for kernel in ("meshgemm", "meshgemv", "meshgemv-k3"):
            reconcile_case(build_case(kernel, 7)).check()

    def test_compute_bucket_is_exact(self):
        # MAC counts are counted, not modelled: the compute bucket of the
        # trace must equal the plan's bit for bit on a clean tiling.
        report = reconcile_case(build_case("meshgemm", 4))
        compute = next(b for b in report.buckets if b.bucket == "compute")
        assert compute.rel_diff == pytest.approx(0.0)

    def test_report_render_names_buckets(self):
        report = reconcile_case(build_case("summa", 4))
        text = report.render()
        for needle in ("compute:", "comm:", "total:", "tol"):
            assert needle in text

    def test_check_raises_on_drift(self):
        # Doubling the plan's compute must blow the 5% compute tolerance.
        case = build_case("meshgemm", 4)
        machine = run_case(case)
        phases = case.planner() + [
            ComputePhase(label="phantom", macs_per_core=1e9)
        ]
        report = reconcile(phases, machine.trace, machine.device,
                           name="meshgemm-drift")
        assert not report.ok
        with pytest.raises(AssertionError, match="compute"):
            report.check()

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            build_case("nope", 4)


class TestTraceLowering:
    def test_to_phases_vocabulary(self):
        machine = run_case(build_case("meshgemv", 4))
        phases = machine.trace.to_phases()
        assert phases, "trace lowered to no phases"
        assert all(
            isinstance(p, (ComputePhase, CommPhase, ReducePhase, LoopPhase))
            for p in phases
        )
        # The K-tree column reduction must lower to ReducePhases.
        assert any(isinstance(p, ReducePhase) for p in phases)

    def test_compute_shift_loop_coalesces(self):
        # meshgemm's per-step overlap scopes share one label, so the
        # lowering merges the `grid - 1` shifting steps into one
        # LoopPhase; the final (shift-free) step stays a ComputePhase.
        machine = run_case(build_case("meshgemm", 4))
        phases = machine.trace.to_phases()
        loops = [p for p in phases
                 if isinstance(p, LoopPhase)
                 and p.label == "meshgemm-compute-shift"]
        assert len(loops) == 1
        assert loops[0].steps == 3
        assert any(isinstance(p, ComputePhase)
                   and p.label == "meshgemm-compute-shift" for p in phases)

    def test_timeline_replays_without_execution(self):
        machine, rows = timeline_case(build_case("meshgemm", 4))
        assert rows
        assert sum(r.events for r in rows) == len(machine.trace.events())
        assert sum(r.total_cycles for r in rows) > 0
        # Replay is pure: a second replay of the same trace is identical.
        again = trace_timeline(machine.trace, machine.device)
        assert [(r.label, r.total_cycles) for r in rows] == \
            [(r.label, r.total_cycles) for r in again]

    def test_loop_coalescing_buys_overlap(self):
        # Per-step timeline rows pay fill/drain individually; the
        # coalesced stream overlaps compute and shifts across steps, so
        # the reconciled total is strictly below the sum of the rows.
        machine, rows = timeline_case(build_case("meshgemm", 4))
        shift = [r for r in rows if r.label == "meshgemm-compute-shift"]
        assert shift and all(r.kind == "overlap" for r in shift)
        from repro.mesh.reconcile import trace_cost

        total = trace_cost(machine.device, machine.trace).total_cycles
        assert total < sum(r.total_cycles for r in rows)

    def test_ingress_port_directions(self):
        # XY routing approaches along Y when rows differ, else along X.
        assert ingress_port((0, 0), (3, 0)) == ("x", 1)
        assert ingress_port((3, 0), (0, 0)) == ("x", -1)
        assert ingress_port((2, 4), (2, 1)) == ("y", -1)
        assert ingress_port((0, 0), (3, 2)) == ("y", 1)


class TestPhaseScopes:
    def _machine(self, side=3):
        return MeshMachine(PRESETS["tiny-test-mesh"].submesh(side, side))

    def test_unknown_kind_rejected(self):
        machine = self._machine()
        with pytest.raises(ValueError, match="unknown phase kind"):
            machine.trace.begin_phase("x", kind="parallel")

    def test_lifo_enforced(self):
        trace = self._machine().trace
        outer = trace.begin_phase("outer")
        trace.begin_phase("inner")
        with pytest.raises(ValueError, match="LIFO"):
            trace.end_phase(outer)

    def test_unscoped_events_get_singleton_groups(self):
        machine = self._machine()
        machine.compute_all("a", lambda core: 1.0)
        machine.compute_all("b", lambda core: 1.0)
        groups = machine.trace.phase_groups()
        assert [scope.label for scope, _ in groups] == ["a", "b"]
        assert all(len(events) == 1 for _, events in groups)

    def test_phase_groups_events_in_order(self):
        machine = self._machine()
        with machine.phase("work", overlap=True):
            machine.compute_all("work-mac", lambda core: 2.0)
            machine.barrier("work-sync")
        groups = machine.trace.phase_groups()
        assert len(groups) == 1
        scope, events = groups[0]
        assert scope.kind == "overlap"
        assert [e.seq for e in events] == sorted(e.seq for e in events)

    def test_barriers_counted_in_summary(self):
        machine = self._machine()
        machine.barrier("sync")
        summary = machine.trace.summary()
        assert summary["barrier_phases"] == 1
        assert summary["comm_phases"] == 0


class TestMulticastDelivery:
    def test_destinations_not_aliased(self):
        # A multicast delivers independent tiles: mutating one receiver's
        # copy must not leak into the others (regression for the shared-
        # ndarray delivery bug).
        from repro.mesh.fabric import Flow

        machine = MeshMachine(PRESETS["tiny-test-mesh"].submesh(3, 1))
        machine.place("t", (0, 0), np.array([1.0, 2.0]))
        machine.communicate("bcast", [
            Flow(src=(0, 0), dsts=((1, 0), (2, 0)), src_name="t",
                 dst_name="t"),
        ])
        first = machine.core((1, 0)).load("t")
        first += 100.0
        np.testing.assert_allclose(machine.core((2, 0)).load("t"),
                                   [1.0, 2.0])
        np.testing.assert_allclose(machine.core((1, 0)).load("t"),
                                   [101.0, 102.0])
