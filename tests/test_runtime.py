"""Tests for pipeline scheduling and weight placement runtime."""

import pytest

from repro.core import WSE2
from repro.errors import ConfigurationError
from repro.llm.config import LLAMA2_13B, LLAMA3_8B, QWEN2_72B, TINY_MHA
from repro.runtime import (
    PipelineSchedule,
    WeightPlacementPlan,
    decode_speedup_if_resident,
    transition_cost,
    transposes_avoided_per_token,
)


class TestPipelineSchedule:
    def test_8b_needs_multiple_stages_on_decode_region(self):
        schedule = PipelineSchedule(LLAMA3_8B, WSE2, region_side=360)
        # 16 GB of weights vs ~3.6 GB usable per 360x360 region.
        assert schedule.num_stages >= 4

    def test_tiny_model_single_stage(self):
        schedule = PipelineSchedule(TINY_MHA, WSE2, region_side=360)
        assert schedule.num_stages == 1
        assert schedule.utilization() == 1.0

    def test_utilization_single_stream(self):
        schedule = PipelineSchedule(LLAMA3_8B, WSE2, region_side=360)
        assert schedule.utilization(1) == pytest.approx(1 / schedule.num_stages)

    def test_utilization_improves_with_streams(self):
        schedule = PipelineSchedule(LLAMA3_8B, WSE2, region_side=360)
        u1 = schedule.utilization(1)
        u4 = schedule.utilization(4)
        assert u4 > u1
        assert schedule.utilization(1000) > 0.99

    def test_bubble_fraction_complements(self):
        schedule = PipelineSchedule(LLAMA3_8B, WSE2, region_side=360)
        assert schedule.bubble_fraction(2) == pytest.approx(
            1 - schedule.utilization(2))

    def test_paperish_5x_utilization_loss(self):
        # Section 7.5: pipeline bubbles reduce utilization ~5x for the
        # evaluated models.
        schedule = PipelineSchedule(LLAMA3_8B, WSE2, region_side=360)
        assert 3 <= 1 / schedule.utilization(1) <= 8

    def test_larger_model_more_stages(self):
        s8 = PipelineSchedule(LLAMA3_8B, WSE2, 420).num_stages
        s72 = PipelineSchedule(QWEN2_72B, WSE2, 420).num_stages
        assert s72 > s8

    def test_stages_on_fabric(self):
        schedule = PipelineSchedule(LLAMA3_8B, WSE2, region_side=360)
        assert schedule.stages_on_fabric == (990 // 360) * (860 // 360)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            PipelineSchedule(LLAMA3_8B, WSE2, region_side=0)
        schedule = PipelineSchedule(LLAMA3_8B, WSE2, region_side=360)
        with pytest.raises(ConfigurationError):
            schedule.utilization(0)

    def test_layers_per_stage_covers_model(self):
        schedule = PipelineSchedule(LLAMA2_13B, WSE2, region_side=375)
        assert schedule.layers_per_stage() * schedule.num_stages >= \
            LLAMA2_13B.num_layers

    def test_decode_speedup_projection(self):
        # Section 8 projects ~10k tokens/s for 13B once resident —
        # i.e. a speedup about equal to the stage count (~5x).
        speedup = decode_speedup_if_resident(LLAMA2_13B, WSE2, 375)
        assert 3 <= speedup <= 10


class TestPlacement:
    def test_only_wo_and_wout_move(self):
        plan = WeightPlacementPlan(LLAMA3_8B)
        assert plan.changed_layers() == [3, 6]

    def test_transition_cost_small_vs_token(self):
        cost = transition_cost(LLAMA3_8B, WSE2)
        # Paper: transition "completes instantly"; one decode token is
        # ~0.4 ms, the full transition must be within the same order.
        assert cost.seconds < 5e-3

    def test_transition_scales_with_model(self):
        assert transition_cost(QWEN2_72B, WSE2).total_cycles > \
            transition_cost(LLAMA3_8B, WSE2).total_cycles

    def test_transposes_avoided(self):
        assert transposes_avoided_per_token(LLAMA3_8B) == 96
