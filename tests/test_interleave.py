"""Tests for INTERLEAVE (Algorithm 1) — including the paper's example."""

import pytest
from hypothesis import given, strategies as st

from repro.collectives.interleave import (
    identity_placement,
    interleave,
    interleave_placement,
    inverse_placement,
    ring_dilation,
    shift_mapping_1d,
)
from repro.errors import ConfigurationError


class TestPlacement:
    def test_paper_example_n5(self):
        # Figure 7: physical line holds logicals [0, 4, 1, 3, 2].
        assert interleave_placement(5) == [0, 2, 4, 3, 1]

    def test_n1(self):
        assert interleave_placement(1) == [0]

    def test_n2(self):
        assert interleave_placement(2) == [0, 1]

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            interleave_placement(0)

    @given(st.integers(1, 300))
    def test_is_permutation(self, n):
        assert sorted(interleave_placement(n)) == list(range(n))

    @given(st.integers(3, 300))
    def test_dilation_exactly_two(self, n):
        # The paper proves two hops is optimal and achieved for n >= 3.
        assert ring_dilation(interleave_placement(n)) == 2

    @given(st.integers(3, 200))
    def test_identity_dilation_is_wraparound(self, n):
        assert ring_dilation(identity_placement(n)) == n - 1

    def test_dilation_single_core(self):
        assert ring_dilation([0]) == 0

    def test_inverse_roundtrip(self):
        placement = interleave_placement(9)
        inverse = inverse_placement(placement)
        for logical, physical in enumerate(placement):
            assert inverse[physical] == logical

    def test_inverse_rejects_non_permutation(self):
        with pytest.raises(ConfigurationError):
            inverse_placement([0, 0, 2])


class TestAlgorithm1:
    def test_paper_walkthrough(self):
        # "physical core 2 (index=2) sends data to physical core 4
        #  (send_index=4) and receives from physical core 0".
        assert interleave(2, 5) == (4, 0)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            interleave(5, 5)

    @given(st.integers(2, 150))
    def test_send_edges_form_single_cycle(self, n):
        visited = []
        current = 0
        for _ in range(n):
            visited.append(current)
            current, _ = interleave(current, n)
        assert current == 0
        assert sorted(visited) == list(range(n))

    @given(st.integers(2, 150))
    def test_send_recv_consistent(self, n):
        for p in range(n):
            send, _recv = interleave(p, n)
            _send2, recv2 = interleave(send, n)
            assert recv2 == p

    @given(st.integers(2, 150))
    def test_neighbour_distance_bounded_by_two(self, n):
        for p in range(n):
            send, recv = interleave(p, n)
            assert abs(send - p) <= 2
            assert abs(recv - p) <= 2


class TestShiftMapping:
    @given(st.integers(1, 100), st.integers(-5, 5))
    def test_mapping_is_permutation(self, n, offset):
        mapping = shift_mapping_1d(interleave_placement(n), offset)
        assert sorted(mapping) == list(range(n))

    def test_zero_offset_identity(self):
        mapping = shift_mapping_1d(interleave_placement(7), 0)
        assert mapping == list(range(7))

    def test_plus_one_matches_algorithm1(self):
        n = 9
        mapping = shift_mapping_1d(interleave_placement(n), 1)
        for p in range(n):
            send, _ = interleave(p, n)
            assert mapping[p] == send

    @given(st.integers(2, 60))
    def test_opposite_offsets_invert(self, n):
        placement = interleave_placement(n)
        forward = shift_mapping_1d(placement, 1)
        backward = shift_mapping_1d(placement, -1)
        for p in range(n):
            assert backward[forward[p]] == p
