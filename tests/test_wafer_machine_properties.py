"""Property tests across the mesh machine and kernel integration seams."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.device_presets import TINY_MESH
from repro.gemm import MeshGEMM, MeshGEMMTransposed
from repro.gemv import MeshGEMV
from repro.mesh.fabric import Flow
from repro.mesh.machine import MeshMachine


class TestMachineProperties:
    @settings(max_examples=25, deadline=None)
    @given(side=st.integers(2, 8), rows=st.integers(1, 3),
           cols=st.integers(1, 3), seed=st.integers(0, 200))
    def test_scatter_gather_identity(self, side, rows, cols, seed):
        rng = np.random.default_rng(seed)
        machine = MeshMachine(TINY_MESH.submesh(side, side))
        matrix = rng.standard_normal((side * rows, side * cols))
        machine.scatter_matrix("m", matrix, side, side)
        assert np.array_equal(machine.gather_matrix("m", side, side), matrix)

    @settings(max_examples=25, deadline=None)
    @given(side=st.integers(2, 6), seed=st.integers(0, 200))
    def test_permutation_conserves_multiset(self, side, seed):
        rng = np.random.default_rng(seed)
        machine = MeshMachine(TINY_MESH.submesh(side, side))
        values = rng.permutation(side * side).astype(float)
        coords = list(machine.topology.coords())
        for coord, value in zip(coords, values):
            machine.place("t", coord, np.array([value]))
        perm = rng.permutation(len(coords))
        mapping = {coords[i]: coords[perm[i]] for i in range(len(coords))}
        machine.shift_named("p", mapping, "t", "t")
        after = sorted(
            float(machine.core(c).load("t")[0]) for c in coords
        )
        assert after == sorted(values)

    @settings(max_examples=20, deadline=None)
    @given(side=st.integers(2, 6))
    def test_trace_hops_match_topology(self, side):
        machine = MeshMachine(TINY_MESH.submesh(side, side))
        machine.place("t", (0, 0), np.zeros(2))
        dst = (side - 1, side - 1)
        machine.communicate("p", [Flow.unicast((0, 0), dst, "t", "t")])
        assert machine.trace.comms[-1].max_hops == 2 * (side - 1)

    @settings(max_examples=15, deadline=None)
    @given(side=st.integers(2, 5), seed=st.integers(0, 100))
    def test_gemm_then_gemv_composition(self, side, seed):
        # Chained distributed kernels compose exactly like dense algebra.
        rng = np.random.default_rng(seed)
        a = rng.integers(-3, 4, size=(side, side)).astype(float)
        b = rng.integers(-3, 4, size=(side, side)).astype(float)
        x = rng.integers(-3, 4, size=side).astype(float)
        m1 = MeshMachine(TINY_MESH.submesh(side, side))
        ab = MeshGEMM.run(m1, a, b)
        m2 = MeshMachine(TINY_MESH.submesh(side, side))
        got = MeshGEMV.run(m2, x, ab)
        assert np.array_equal(got, x @ (a @ b))

    @settings(max_examples=15, deadline=None)
    @given(side=st.integers(2, 5), seed=st.integers(0, 100))
    def test_gemm_t_equals_gemm_of_transpose(self, side, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-3, 4, size=(side, side)).astype(float)
        b = rng.integers(-3, 4, size=(side, side)).astype(float)
        m1 = MeshMachine(TINY_MESH.submesh(side, side))
        via_t = MeshGEMMTransposed.run(m1, a, b)
        m2 = MeshMachine(TINY_MESH.submesh(side, side))
        via_gemm = MeshGEMM.run(m2, a, np.ascontiguousarray(b.T))
        assert np.array_equal(via_t, via_gemm)

    def test_memory_returns_to_baseline_after_free(self):
        machine = MeshMachine(TINY_MESH.submesh(4, 4))
        machine.scatter_matrix("m", np.ones((8, 8)), 4, 4)
        machine.free("m")
        assert all(machine.resident_bytes(c) == 0
                   for c in machine.topology.coords())
