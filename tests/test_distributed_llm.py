"""Tests for the distributed transformer: mesh execution vs dense reference."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.llm.checkpoint import synthesize_weights
from repro.llm.config import TINY_GQA, TINY_MHA, TINY_MQA
from repro.llm.distributed import WaferTransformer
from repro.llm.mesh_ops import MeshOpContext
from repro.llm.reference import ReferenceTransformer

TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def weights_by_variant():
    return {
        cfg.name: synthesize_weights(cfg, seed=42)
        for cfg in (TINY_MHA, TINY_GQA, TINY_MQA)
    }


class TestPrefillMatchesReference:
    @pytest.mark.parametrize("name", ["tiny-mha", "tiny-gqa", "tiny-mqa"])
    def test_prefill_logits(self, name, weights_by_variant):
        weights = weights_by_variant[name]
        prompt = np.array([2, 7, 1, 5])
        ref = ReferenceTransformer(weights).forward(prompt)
        dist = WaferTransformer(weights).prefill(prompt)
        assert np.max(np.abs(ref - dist)) < TOLERANCE

    def test_prompt_length_not_multiple_of_grid(self, weights_by_variant):
        weights = weights_by_variant["tiny-gqa"]
        prompt = np.array([1, 2, 3, 4, 5, 6, 7])  # 7 rows on a 4-grid
        ref = ReferenceTransformer(weights).forward(prompt)
        dist = WaferTransformer(weights).prefill(prompt)
        assert np.max(np.abs(ref - dist)) < TOLERANCE

    def test_empty_prompt_rejected(self, weights_by_variant):
        transformer = WaferTransformer(weights_by_variant["tiny-mha"])
        with pytest.raises(ShapeError):
            transformer.prefill(np.array([], dtype=np.int64))

    def test_prefill_after_decode_rejected(self, weights_by_variant):
        transformer = WaferTransformer(weights_by_variant["tiny-mha"])
        transformer.prefill(np.array([1]))
        transformer.decode_step(2)
        with pytest.raises(ConfigurationError):
            transformer.prefill(np.array([1, 2]))


class TestDecodeMatchesReference:
    @pytest.mark.parametrize("name", ["tiny-mha", "tiny-gqa", "tiny-mqa"])
    def test_decode_steps(self, name, weights_by_variant):
        weights = weights_by_variant[name]
        prompt = np.array([3, 1, 4])
        ref = ReferenceTransformer(weights)
        dist = WaferTransformer(weights)
        ref.forward(prompt)
        dist.prefill(prompt)
        for token in (6, 2, 9):
            ref_logits = ref.forward(np.array([token]))[-1]
            dist_logits = dist.decode_step(token)
            assert np.max(np.abs(ref_logits - dist_logits)) < TOLERANCE

    def test_generate_matches_reference(self, weights_by_variant):
        weights = weights_by_variant["tiny-gqa"]
        prompt = np.array([5, 2])
        ref_tokens = ReferenceTransformer(weights).generate(prompt, 6)
        dist_tokens = WaferTransformer(weights).generate(prompt, 6)
        assert np.array_equal(ref_tokens, dist_tokens)

    def test_concat_cache_variant_matches_too(self, weights_by_variant):
        # Both managers are numerically equivalent below capacity.
        weights = weights_by_variant["tiny-mha"]
        prompt = np.array([1, 2, 3])
        shift = WaferTransformer(weights, cache_kind="shift")
        concat = WaferTransformer(weights, cache_kind="concat")
        a = shift.prefill(prompt)
        b = concat.prefill(prompt)
        assert np.max(np.abs(a - b)) < TOLERANCE

    def test_unknown_cache_kind(self, weights_by_variant):
        with pytest.raises(ConfigurationError):
            WaferTransformer(weights_by_variant["tiny-mha"], cache_kind="paged")

    def test_reset_restores_clean_state(self, weights_by_variant):
        weights = weights_by_variant["tiny-gqa"]
        transformer = WaferTransformer(weights)
        first = transformer.prefill(np.array([1, 2]))
        transformer.reset()
        second = transformer.prefill(np.array([1, 2]))
        assert np.array_equal(first, second)


class TestMeshExecutionProperties:
    def test_kernels_actually_launched(self, weights_by_variant):
        transformer = WaferTransformer(weights_by_variant["tiny-mha"])
        transformer.prefill(np.array([1, 2, 3, 4]))
        labels = {label for label, _trace in transformer.ops.traces}
        assert {"meshgemm", "meshgemm-t", "ktree-add", "ktree-max"} <= labels

    def test_decode_uses_gemv_kernels(self, weights_by_variant):
        transformer = WaferTransformer(weights_by_variant["tiny-mha"])
        transformer.prefill(np.array([1]))
        before = transformer.ops.total_kernels()
        transformer.decode_step(2)
        new = [label for label, _t in transformer.ops.traces[before:]]
        assert "meshgemv" in new
        assert "meshgemm" not in new  # decode never falls back to GEMM

    def test_route_colours_bounded_across_whole_run(self, weights_by_variant):
        transformer = WaferTransformer(weights_by_variant["tiny-gqa"])
        transformer.prefill(np.array([1, 2, 3]))
        transformer.decode_step(4)
        # Every kernel stays within the tiny device's routing budget.
        assert transformer.ops.max_paths_per_core() <= 8

    def test_shift_cache_rows_balanced_during_decode(self, weights_by_variant):
        transformer = WaferTransformer(weights_by_variant["tiny-mha"], kv_rows=3)
        transformer.prefill(np.array([1, 2, 3, 4, 5]))
        for token in (1, 2, 3, 4):
            transformer.decode_step(token)
        occupancy = transformer.kv_cache(0).row_occupancy()
        assert max(occupancy) - min(occupancy) <= 1
