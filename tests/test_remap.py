"""Defect maps, logical remapping, and degraded-fabric cost threading.

The contract under test: kernels address a dense logical mesh and stay
bit-exact, while every flow beneath them pays the *physical* route —
remap displacement, dead-link detours, degraded-link bandwidth — and
those costs surface in the trace, the fabric arithmetic, and the
plan-vs-trace reconciler.
"""

import numpy as np
import pytest

from repro.core.device_presets import TINY_MESH
from repro.errors import ConfigurationError, RemapError
from repro.gemm import MeshGEMM
from repro.gemm.base import GemmShape
from repro.mesh.cost_model import CommPhase, ReducePhase
from repro.mesh.machine import MeshMachine
from repro.mesh.reconcile import reconcile, trace_cost
from repro.mesh.remap import (
    DefectMap,
    RemappedTopology,
    build_remap,
    build_remapped_topology,
    normalize_link,
)
from repro.mesh.topology import MeshTopology


class TestDefectMap:
    def test_empty_map_has_no_defects(self):
        defects = DefectMap.empty(4, 4)
        assert defects.num_defects == 0
        assert not defects.has_link_defects
        assert defects.core_ok((0, 0))
        assert defects.link_ok((0, 0), (1, 0))
        assert defects.link_factor((0, 0), (1, 0)) == 1.0

    def test_link_queries_are_orientation_blind(self):
        link = normalize_link((1, 0), (0, 0))
        defects = DefectMap(2, 1, dead_links=frozenset({link}))
        assert not defects.link_ok((0, 0), (1, 0))
        assert not defects.link_ok((1, 0), (0, 0))

    def test_degraded_factor_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            DefectMap(2, 2, degraded_links={((0, 0), (1, 0)): 1.5})
        with pytest.raises(ConfigurationError):
            DefectMap(2, 2, degraded_links={((0, 0), (1, 0)): 0.0})

    def test_dead_and_degraded_conflict_rejected(self):
        link = ((0, 0), (1, 0))
        with pytest.raises(ConfigurationError):
            DefectMap(2, 2, dead_links=frozenset({link}),
                      degraded_links={link: 0.5})

    def test_out_of_fabric_dead_core_rejected(self):
        with pytest.raises(ConfigurationError):
            DefectMap(2, 2, dead_cores=frozenset({(5, 0)}))

    def test_generate_is_seed_deterministic(self):
        kwargs = dict(dead_core_rate=0.1, dead_link_rate=0.05,
                      degraded_link_rate=0.1)
        first = DefectMap.generate(8, 8, seed=11, **kwargs)
        second = DefectMap.generate(8, 8, seed=11, **kwargs)
        assert first.dead_cores == second.dead_cores
        assert first.dead_links == second.dead_links
        assert first.degraded_links == second.degraded_links
        different = DefectMap.generate(8, 8, seed=12, **kwargs)
        assert (
            different.dead_cores != first.dead_cores
            or different.dead_links != first.dead_links
            or different.degraded_links != first.degraded_links
        )


class TestBuildRemap:
    def test_pristine_wafer_maps_identity(self):
        remap = build_remap(MeshTopology(4, 4), DefectMap.empty(4, 4))
        assert remap.is_identity
        assert remap.logical_width == 4 and remap.logical_height == 4

    def test_dead_core_skipped_eastward(self):
        defects = DefectMap(4, 2, dead_cores=frozenset({(1, 0)}))
        remap = build_remap(MeshTopology(4, 2), defects,
                            logical_width=3, logical_height=2)
        # Row 0: logical columns 0,1,2 land on physical 0,2,3.
        assert remap.to_physical((0, 0)) == (0, 0)
        assert remap.to_physical((1, 0)) == (2, 0)
        assert remap.to_physical((2, 0)) == (3, 0)
        # Row 1 is untouched.
        assert remap.to_physical((1, 1)) == (1, 1)
        assert remap.displaced_cores == 2

    def test_overloaded_row_skipped_via_spare(self):
        # Row 1 has two dead cores: it cannot host 3 logical columns, so
        # logical row 1 falls through to physical row 2 (the spare).
        defects = DefectMap(4, 3, dead_cores=frozenset({(0, 1), (2, 1)}))
        remap = build_remap(MeshTopology(4, 3), defects,
                            logical_width=3, logical_height=2)
        assert remap.skipped_rows == (1,)
        assert remap.to_physical((0, 1)) == (0, 2)

    def test_spares_exhausted_raises(self):
        defects = DefectMap(3, 2, dead_cores=frozenset({(0, 0), (1, 1)}))
        with pytest.raises(RemapError, match="spare rows exhausted"):
            build_remap(MeshTopology(3, 2), defects,
                        logical_width=3, logical_height=2)

    def test_auto_dims_shrink_by_worst_row(self):
        defects = DefectMap(5, 3, dead_cores=frozenset({(0, 1), (3, 1)}))
        remap = build_remap(MeshTopology(5, 3), defects)
        assert remap.logical_width == 3
        assert remap.logical_height == 3

    def test_unknown_logical_coordinate_raises(self):
        remap = build_remap(MeshTopology(2, 2), DefectMap.empty(2, 2))
        with pytest.raises(RemapError):
            remap.to_physical((5, 5))


class TestRemappedTopology:
    def test_logical_surface_is_dense(self):
        defects = DefectMap(5, 4, dead_cores=frozenset({(2, 1)}))
        topo = build_remapped_topology(5, 4, defects,
                                       logical_width=4, logical_height=4)
        assert isinstance(topo, RemappedTopology)
        assert topo.width == 4 and topo.height == 4
        assert len(list(topo.coords())) == 16
        assert topo.neighbours((0, 0)) == [(1, 0), (0, 1)]

    def test_hop_distance_at_least_manhattan(self):
        defects = DefectMap.generate(6, 6, seed=5, dead_core_rate=0.08)
        topo = build_remapped_topology(6, 6, defects)
        for dst in [(topo.width - 1, topo.height - 1), (0, topo.height - 1)]:
            manhattan = abs(dst[0]) + abs(dst[1])
            assert topo.hop_distance((0, 0), dst) >= manhattan

    def test_dead_link_detour_adds_two_hops(self):
        defects = DefectMap(
            4, 3, dead_links=frozenset({normalize_link((1, 1), (2, 1))})
        )
        topo = build_remapped_topology(4, 3, defects,
                                       logical_width=4, logical_height=3)
        route = topo.physical_route((0, 1), (3, 1))
        assert len(route) - 1 == 5  # 3 nominal + 2 detour hops
        # The blocked wire never appears in the walked route.
        walked = {normalize_link(a, b) for a, b in zip(route, route[1:])}
        assert normalize_link((1, 1), (2, 1)) not in walked

    def test_detour_prefers_healthy_side(self):
        # Northern substitute is also dead, so the detour must go south.
        defects = DefectMap(4, 3, dead_links=frozenset({
            normalize_link((1, 1), (2, 1)),
            normalize_link((1, 0), (2, 0)),
        }))
        topo = build_remapped_topology(4, 3, defects,
                                       logical_width=4, logical_height=3)
        route = topo.physical_route((1, 1), (2, 1))
        assert (1, 2) in route and (2, 2) in route

    def test_degraded_link_factor_exposed(self):
        link = normalize_link((0, 0), (1, 0))
        defects = DefectMap(3, 3, degraded_links={link: 0.25})
        topo = build_remapped_topology(3, 3, defects,
                                       logical_width=3, logical_height=3)
        assert topo.has_link_defects
        assert topo.link_bandwidth_factor((0, 0), (1, 0)) == 0.25
        assert topo.link_bandwidth_factor((1, 0), (2, 0)) == 1.0


class TestDegradedFabricCosts:
    def _machine(self, defects, logical):
        device = TINY_MESH.submesh(defects.width, defects.height)
        return MeshMachine(device, defects=defects, logical_shape=logical)

    def test_flow_records_carry_bandwidth_factor(self):
        link = normalize_link((0, 0), (1, 0))
        defects = DefectMap(3, 3, degraded_links={link: 0.5})
        machine = self._machine(defects, (3, 3))
        machine.place("t", (0, 0), np.ones(4))
        from repro.mesh.fabric import Flow
        machine.communicate(
            "probe", [Flow.unicast((0, 0), (2, 0), "t", "t.in")]
        )
        comm = machine.trace.comms[-1]
        flow = comm.flows[0]
        assert flow.bw_factor == 0.5
        assert flow.wire_bytes == flow.nbytes / 0.5
        assert comm.min_bw_factor == 0.5

    def test_degraded_route_costs_more_than_clean(self):
        rng = np.random.default_rng(2)
        a = rng.integers(-4, 5, size=(8, 8)).astype(float)
        b = rng.integers(-4, 5, size=(8, 8)).astype(float)
        clean = MeshMachine(TINY_MESH.submesh(4, 4))
        MeshGEMM.run(clean, a, b)
        link = normalize_link((1, 1), (2, 1))
        defects = DefectMap(4, 4, degraded_links={link: 0.25})
        degraded = self._machine(defects, (4, 4))
        MeshGEMM.run(degraded, a, b)
        clean_cost = trace_cost(clean.device, clean.trace)
        slow_cost = trace_cost(degraded.device, degraded.trace)
        assert slow_cost.comm_cycles > clean_cost.comm_cycles

    def test_stream_cycles_validates_and_scales(self):
        machine = MeshMachine(TINY_MESH.submesh(2, 2))
        base = machine.fabric.stream_cycles(2, 1024)
        half = machine.fabric.stream_cycles(2, 1024, bw_factor=0.5)
        head = 2 * machine.device.hop_cycles
        assert half - head == pytest.approx(2 * (base - head))
        with pytest.raises(ConfigurationError):
            machine.fabric.stream_cycles(2, 1024, bw_factor=0.0)

    def test_phase_bw_derate_scales_body_only(self):
        device = TINY_MESH
        full = CommPhase(label="x", hop_distance=4, payload_bytes=4096)
        slow = CommPhase(label="x", hop_distance=4, payload_bytes=4096,
                         bw_derate=0.5)
        head = 4 * device.hop_cycles + full.overhead_cycles
        assert slow.cycles(device) - head == pytest.approx(
            2 * (full.cycles(device) - head)
        )
        with pytest.raises(ConfigurationError):
            CommPhase(label="x", hop_distance=1, payload_bytes=1,
                      bw_derate=1.5)
        with pytest.raises(ConfigurationError):
            ReducePhase(label="x", stages=1, stage_hop_distance=1,
                        payload_bytes=1, stage_add_elems=1, bw_derate=0.0)


class TestReconcileWithDefects:
    def test_plan_tolerances_hold_on_mildly_degraded_fabric(self):
        """The logical plan stays within the default tolerances of a
        trace that pays real physical hops through a mild defect map."""
        rng = np.random.default_rng(7)
        grid = 4
        a = rng.integers(-4, 5, size=(8, 8)).astype(float)
        b = rng.integers(-4, 5, size=(8, 8)).astype(float)
        link = normalize_link((3, 2), (3, 3))
        defects = DefectMap(5, 4, dead_cores=frozenset({(2, 1)}),
                            degraded_links={link: 0.8})
        machine = MeshMachine(TINY_MESH.submesh(5, 4), defects=defects,
                              logical_shape=(grid, grid))
        out = MeshGEMM.run(machine, a, b)
        assert np.array_equal(out, a @ b)
        plan = MeshGEMM.plan(GemmShape.square(8), grid)
        report = reconcile(plan, machine.trace, machine.device,
                           name="meshgemm-defective")
        report.check()
