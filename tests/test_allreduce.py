"""Tests for pipeline / ring / two-way K-tree reductions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.allreduce import (
    broadcast_from_root,
    ktree_group_sizes,
    ktree_reduce,
    pipeline_reduce,
    ring_allreduce,
    two_way_group_reduce,
)
from repro.collectives.plans import ktree_stage_count
from repro.core.device_presets import TINY_MESH
from repro.errors import ConfigurationError, ShapeError
from repro.mesh.machine import MeshMachine


def _machine(side: int) -> MeshMachine:
    return MeshMachine(TINY_MESH.submesh(side, side))


def _scatter_rows(machine, matrix):
    side = machine.topology.width
    machine.scatter_matrix("v", matrix, side, side)
    return [machine.topology.row(y) for y in range(side)]


class TestPipelineReduce:
    def test_sum_correct(self, rng):
        machine = _machine(4)
        matrix = rng.standard_normal((4, 4))
        lines = _scatter_rows(machine, matrix)
        roots = pipeline_reduce(machine, lines, "v")
        for y, root in enumerate(roots):
            assert machine.core(root).load("v") == pytest.approx(matrix[y].sum())

    def test_root_is_tail(self):
        machine = _machine(3)
        lines = _scatter_rows(machine, np.zeros((3, 3)))
        roots = pipeline_reduce(machine, lines, "v")
        assert roots == [(2, 0), (2, 1), (2, 2)]

    def test_stage_count_is_linear(self):
        machine = _machine(6)
        lines = _scatter_rows(machine, np.ones((6, 6)))
        pipeline_reduce(machine, lines, "v", pattern="pipe")
        stages = [r for r in machine.trace.comms if r.pattern == "pipe"]
        assert len(stages) == 5  # N - 1 sequential add stages

    def test_single_core_line(self):
        machine = _machine(1)
        machine.place("v", (0, 0), np.array([3.0]))
        roots = pipeline_reduce(machine, [[(0, 0)]], "v")
        assert machine.core(roots[0]).load("v")[0] == 3.0

    def test_max_op(self):
        machine = _machine(4)
        matrix = np.arange(16.0).reshape(4, 4)
        lines = _scatter_rows(machine, matrix)
        roots = pipeline_reduce(machine, lines, "v", op="max")
        for y, root in enumerate(roots):
            assert machine.core(root).load("v") == matrix[y].max()

    def test_unknown_op(self):
        machine = _machine(2)
        lines = _scatter_rows(machine, np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            pipeline_reduce(machine, lines, "v", op="median")

    def test_mismatched_lines(self):
        machine = _machine(3)
        with pytest.raises(ShapeError):
            pipeline_reduce(machine, [[(0, 0)], [(0, 1), (1, 1)]], "v")


class TestRingAllreduce:
    @pytest.mark.parametrize("side", [2, 3, 4, 5])
    def test_allreduce_everywhere(self, side, rng):
        machine = _machine(side)
        # Vector tiles: each core holds a row-vector of length 6.
        expected = {}
        for y in range(side):
            total = np.zeros(6)
            for x in range(side):
                tile = rng.standard_normal(6)
                machine.place("v", (x, y), tile)
                total += tile
            expected[y] = total
        lines = [machine.topology.row(y) for y in range(side)]
        ring_allreduce(machine, lines, "v")
        for y in range(side):
            for x in range(side):
                assert machine.core((x, y)).load("v") == pytest.approx(expected[y])

    def test_single_core_noop(self):
        machine = _machine(1)
        machine.place("v", (0, 0), np.ones(3))
        ring_allreduce(machine, [[(0, 0)]], "v")
        assert np.array_equal(machine.core((0, 0)).load("v"), np.ones(3))

    def test_round_count(self):
        machine = _machine(4)
        for x in range(4):
            machine.place("v", (x, 0), np.ones(8))
        ring_allreduce(machine, [machine.topology.row(0)], "v", pattern="ring")
        rounds = [r for r in machine.trace.comms if r.pattern == "ring"]
        assert len(rounds) == 2 * (4 - 1)

    def test_wraparound_edge_in_trace(self):
        machine = _machine(5)
        for x in range(5):
            machine.place("v", (x, 0), np.ones(10))
        ring_allreduce(machine, [machine.topology.row(0)], "v", pattern="ring")
        worst = max(r.max_hops for r in machine.trace.comms)
        assert worst == 4  # the ring's closing edge spans the line


class TestKTreeReduce:
    @pytest.mark.parametrize("side,k", [(4, 2), (5, 2), (6, 2), (6, 3), (8, 2)])
    def test_sum_correct(self, side, k, rng):
        machine = _machine(side)
        matrix = rng.standard_normal((side, side))
        lines = _scatter_rows(machine, matrix)
        roots = ktree_reduce(machine, lines, "v", k=k)
        for y, root in enumerate(roots):
            assert machine.core(root).load("v") == pytest.approx(matrix[y].sum())

    def test_columns_direction(self, rng):
        machine = _machine(4)
        matrix = rng.standard_normal((4, 4))
        machine.scatter_matrix("v", matrix, 4, 4)
        columns = [machine.topology.column(x) for x in range(4)]
        roots = ktree_reduce(machine, columns, "v")
        for x, root in enumerate(roots):
            assert machine.core(root).load("v") == pytest.approx(matrix[:, x].sum())

    def test_stage_count_matches_plan(self):
        for side in (4, 6, 8):
            machine = _machine(side)
            lines = _scatter_rows(machine, np.ones((side, side)))
            ktree_reduce(machine, lines, "v", k=2, pattern_prefix="kt")
            stages = [r for r in machine.trace.comms if r.pattern.startswith("kt")]
            assert len(stages) == ktree_stage_count(side, 2)

    def test_fewer_stages_than_pipeline(self):
        side = 8
        tree_machine = _machine(side)
        ktree_reduce(tree_machine, _scatter_rows(tree_machine, np.ones((side, side))),
                     "v", pattern_prefix="kt")
        pipe_machine = _machine(side)
        pipeline_reduce(pipe_machine,
                        _scatter_rows(pipe_machine, np.ones((side, side))),
                        "v", pattern="pipe")
        tree_stages = sum(r.pattern.startswith("kt") for r in tree_machine.trace.comms)
        pipe_stages = sum(r.pattern == "pipe" for r in pipe_machine.trace.comms)
        assert tree_stages < pipe_stages

    def test_route_colours_bounded_by_k_plus_one(self):
        # R property: non-roots use their level's colour; roots at most K+1.
        machine = _machine(8)
        lines = _scatter_rows(machine, np.ones((8, 8)))
        ktree_reduce(machine, lines, "v", k=2)
        assert machine.trace.max_paths_per_core <= 3

    def test_single_core(self):
        machine = _machine(1)
        machine.place("v", (0, 0), np.array([5.0]))
        roots = ktree_reduce(machine, [[(0, 0)]], "v")
        assert roots == [(0, 0)]

    def test_max_op(self, rng):
        machine = _machine(6)
        matrix = rng.standard_normal((6, 6))
        lines = _scatter_rows(machine, matrix)
        roots = ktree_reduce(machine, lines, "v", op="max")
        for y, root in enumerate(roots):
            assert machine.core(root).load("v") == pytest.approx(matrix[y].max())

    @settings(max_examples=25, deadline=None)
    @given(side=st.integers(2, 8), k=st.integers(1, 3), seed=st.integers(0, 99))
    def test_property_sum_any_shape(self, side, k, seed):
        rng = np.random.default_rng(seed)
        machine = _machine(side)
        matrix = rng.integers(-5, 5, size=(side, side)).astype(float)
        lines = _scatter_rows(machine, matrix)
        roots = ktree_reduce(machine, lines, "v", k=k)
        for y, root in enumerate(roots):
            assert machine.core(root).load("v") == matrix[y].sum()


class TestGroupSizesAndBroadcast:
    def test_group_sizes_terminate(self):
        for n in range(1, 300):
            sizes = ktree_group_sizes(n, 2)
            remaining = n
            for g in sizes:
                remaining = -(-remaining // g)
            assert remaining == 1

    def test_group_sizes_k1_is_whole_line(self):
        assert ktree_group_sizes(10, 1) == [10]

    def test_group_sizes_invalid_k(self):
        with pytest.raises(ConfigurationError):
            ktree_group_sizes(10, 0)

    def test_two_way_group_reduce_roots_middle(self):
        machine = _machine(5)
        for x in range(5):
            machine.place("v", (x, 0), np.array([float(x)]))
        roots = two_way_group_reduce(machine, [machine.topology.row(0)], "v", "g")
        assert roots == [(2, 0)]
        assert machine.core((2, 0)).load("v")[0] == 10.0

    def test_broadcast_from_root(self):
        machine = _machine(4)
        lines = _scatter_rows(machine, np.ones((4, 4)))
        roots = ktree_reduce(machine, lines, "v")
        broadcast_from_root(machine, lines, roots, "v")
        for y in range(4):
            for x in range(4):
                assert machine.core((x, y)).load("v") == 4.0

    def test_broadcast_root_count_mismatch(self):
        machine = _machine(2)
        lines = _scatter_rows(machine, np.ones((2, 2)))
        with pytest.raises(ShapeError):
            broadcast_from_root(machine, lines, [(0, 0)], "v")
