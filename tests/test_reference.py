"""Tests for the dense reference transformer and checkpoint handling."""

import os

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.llm.checkpoint import (
    load_checkpoint,
    save_checkpoint,
    synthesize_weights,
)
from repro.llm.config import TINY_GQA, TINY_MHA, QWEN2_72B
from repro.llm.reference import (
    ReferenceTransformer,
    apply_rope,
    rms_norm,
    rope_frequencies,
    softmax,
)


class TestPrimitives:
    def test_rms_norm_unit_scale(self, rng):
        x = rng.standard_normal(64)
        out = rms_norm(x, np.ones(64), eps=0.0)
        assert np.sqrt(np.mean(out ** 2)) == pytest.approx(1.0)

    def test_rms_norm_weight_applied(self, rng):
        x = rng.standard_normal(8)
        weighted = rms_norm(x, 2.0 * np.ones(8), eps=1e-6)
        plain = rms_norm(x, np.ones(8), eps=1e-6)
        assert np.allclose(weighted, 2 * plain)

    def test_softmax_sums_to_one(self, rng):
        probs = softmax(rng.standard_normal((5, 7)))
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_softmax_shift_invariant(self, rng):
        x = rng.standard_normal(10)
        assert np.allclose(softmax(x), softmax(x + 1000.0))

    def test_softmax_handles_neg_inf(self):
        probs = softmax(np.array([0.0, -np.inf, 0.0]))
        assert probs[1] == 0.0
        assert probs.sum() == pytest.approx(1.0)

    def test_rope_preserves_norm(self, rng):
        x = rng.standard_normal((2, 4, 8))
        cos, sin = rope_frequencies(8, np.arange(4), theta=10000.0)
        rotated = apply_rope(x, cos, sin)
        assert np.allclose(np.linalg.norm(rotated, axis=-1),
                           np.linalg.norm(x, axis=-1))

    def test_rope_position_zero_identity(self, rng):
        x = rng.standard_normal((1, 1, 8))
        cos, sin = rope_frequencies(8, np.array([0]), theta=10000.0)
        assert np.allclose(apply_rope(x, cos, sin), x)

    def test_rope_relative_property(self, rng):
        # <rope(q, m), rope(k, n)> depends only on m - n.
        q = rng.standard_normal(8)
        k = rng.standard_normal(8)

        def dot_at(m, n):
            cq, sq = rope_frequencies(8, np.array([m]), 10000.0)
            ck, sk = rope_frequencies(8, np.array([n]), 10000.0)
            return float(apply_rope(q[None], cq, sq)[0]
                         @ apply_rope(k[None], ck, sk)[0])

        assert dot_at(5, 3) == pytest.approx(dot_at(12, 10))

    def test_rope_odd_dim_rejected(self):
        with pytest.raises(ShapeError):
            rope_frequencies(7, np.arange(3), 10000.0)


class TestReferenceTransformer:
    def test_incremental_equals_batch(self):
        # Prefill then single-token decode must equal one big forward.
        weights = synthesize_weights(TINY_GQA, seed=7)
        tokens = np.array([1, 4, 2, 9, 5])

        batch = ReferenceTransformer(weights)
        batch_logits = batch.forward(tokens)

        incremental = ReferenceTransformer(weights)
        incremental.forward(tokens[:3])
        incremental.forward(tokens[3:4])
        step_logits = incremental.forward(tokens[4:5])
        assert np.allclose(step_logits[-1], batch_logits[-1])

    def test_causality(self):
        # Changing a future token cannot affect earlier logits.
        weights = synthesize_weights(TINY_MHA, seed=3)
        a = ReferenceTransformer(weights).forward(np.array([1, 2, 3]))
        b = ReferenceTransformer(weights).forward(np.array([1, 2, 9]))
        assert np.allclose(a[0], b[0])
        assert np.allclose(a[1], b[1])
        assert not np.allclose(a[2], b[2])

    def test_position_tracking_and_reset(self):
        model = ReferenceTransformer(synthesize_weights(TINY_MHA))
        model.forward(np.array([1, 2]))
        assert model.position == 2
        model.reset()
        assert model.position == 0

    def test_generate_deterministic(self):
        weights = synthesize_weights(TINY_GQA, seed=11)
        out1 = ReferenceTransformer(weights).generate(np.array([3, 1]), 5)
        out2 = ReferenceTransformer(weights).generate(np.array([3, 1]), 5)
        assert np.array_equal(out1, out2)
        assert out1.shape == (5,)

    def test_rejects_2d_tokens(self):
        model = ReferenceTransformer(synthesize_weights(TINY_MHA))
        with pytest.raises(ShapeError):
            model.forward(np.zeros((2, 2), dtype=np.int64))


class TestCheckpoint:
    def test_shapes_match_config(self):
        weights = synthesize_weights(TINY_GQA)
        cfg = TINY_GQA
        layer = weights.layers[0]
        assert layer.wq.shape == (cfg.d_model, cfg.d_model)
        assert layer.wk.shape == (cfg.d_model, cfg.kv_dim)
        assert layer.w_gate.shape == (cfg.d_model, cfg.d_ff)
        assert weights.embedding.shape == (cfg.vocab_size, cfg.d_model)

    def test_deterministic_by_seed(self):
        w1 = synthesize_weights(TINY_MHA, seed=5)
        w2 = synthesize_weights(TINY_MHA, seed=5)
        w3 = synthesize_weights(TINY_MHA, seed=6)
        assert np.array_equal(w1.layers[0].wq, w2.layers[0].wq)
        assert not np.array_equal(w1.layers[0].wq, w3.layers[0].wq)

    def test_save_load_roundtrip(self, tmp_path):
        weights = synthesize_weights(TINY_GQA, seed=2)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(weights, path)
        loaded = load_checkpoint(path)
        assert loaded.config.name == TINY_GQA.name
        assert np.array_equal(loaded.layers[1].w_down, weights.layers[1].w_down)
        assert np.array_equal(loaded.lm_head, weights.lm_head)

    def test_roundtrip_preserves_inference(self, tmp_path):
        weights = synthesize_weights(TINY_MHA, seed=4)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(weights, path)
        loaded = load_checkpoint(path)
        tokens = np.array([1, 2, 3])
        original = ReferenceTransformer(weights).forward(tokens)
        reloaded = ReferenceTransformer(loaded).forward(tokens)
        assert np.allclose(original, reloaded)

    def test_layer_subset_roundtrip(self, tmp_path):
        subset = QWEN2_72B.scaled_to_layers(1)
        # Too big to synthesize fully; shrink further for the test.
        small = subset.scaled_to_layers(1)
        assert small.num_layers == 1

    def test_missing_file(self):
        with pytest.raises(ConfigurationError):
            load_checkpoint("/nonexistent/ckpt.npz")
