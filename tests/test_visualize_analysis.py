"""Tests for mesh visualization and whole-model trace analysis."""

import numpy as np
import pytest

from repro.core.device_presets import TINY_MESH
from repro.llm.checkpoint import synthesize_weights
from repro.llm.config import TINY_GQA
from repro.llm.distributed import WaferTransformer
from repro.llm.kvcache import ConcatKVCache, KVCacheGeometry, ShiftKVCache
from repro.llm.trace_analysis import analyze, kernel_mix
from repro.mesh.machine import MeshMachine
from repro.mesh.visualize import (
    memory_heatmap,
    occupancy_bars,
    route_overlay,
    tile_map,
)


@pytest.fixture
def machine():
    return MeshMachine(TINY_MESH.submesh(4, 4))


class TestVisualize:
    def test_heatmap_shape(self, machine):
        machine.place("a", (1, 1), np.zeros(100, dtype=np.float32))
        art = memory_heatmap(machine)
        lines = art.splitlines()
        assert "4x4" in lines[0]
        assert len(lines) == 5
        assert all(len(line) == 4 for line in lines[1:])

    def test_heatmap_highlights_loaded_core(self, machine):
        machine.place("a", (2, 1), np.zeros(100, dtype=np.float32))
        lines = memory_heatmap(machine).splitlines()[1:]
        assert lines[1][2] != " "
        assert lines[0][0] == " "

    def test_heatmap_downsamples_large_mesh(self):
        big = MeshMachine(TINY_MESH)  # 8x8, max_width 4 forces stride 2
        art = memory_heatmap(big, max_width=4)
        assert all(len(line) <= 4 for line in art.splitlines()[1:])

    def test_tile_map(self, machine):
        machine.place("t", (0, 0), np.zeros(1))
        machine.place("t", (3, 3), np.zeros(1))
        lines = tile_map(machine, "t").splitlines()[1:]
        assert lines[0] == "#..."
        assert lines[3] == "...#"

    def test_route_overlay(self, machine):
        art = route_overlay(machine, (0, 0), (2, 2))
        lines = art.splitlines()
        assert "(4 hops)" in lines[0]
        assert lines[1][0] == "S"
        assert lines[3][2] == "D"
        assert lines[1][1] == "o"  # x-first routing

    def test_occupancy_bars_show_kv_skew(self):
        geometry = KVCacheGeometry(grid_width=4, grid_height=4, kv_dim=8,
                                   budget_bytes_per_core=1 << 16)
        concat = ConcatKVCache(geometry)
        shift = ShiftKVCache(geometry)
        machine_c = MeshMachine(TINY_MESH.submesh(4, 4))
        machine_s = MeshMachine(TINY_MESH.submesh(4, 4))
        for step in range(12):
            concat.append(np.zeros(8), np.zeros(8))
            shift.append(np.zeros(8), np.zeros(8))
        # Mirror occupancy into mesh memory for rendering.
        for y, count in enumerate(concat.row_occupancy()):
            for x in range(4):
                if count:
                    machine_c.place("kv", (x, y),
                                    np.zeros(count, dtype=np.float32))
        for y, count in enumerate(shift.row_occupancy()):
            for x in range(4):
                if count:
                    machine_s.place("kv", (x, y),
                                    np.zeros(count, dtype=np.float32))
        skewed = occupancy_bars(machine_c).splitlines()[1:]
        flat = occupancy_bars(machine_s).splitlines()[1:]
        # Concat: only the last row has a bar; shift: all rows do.
        assert "#" in skewed[3] and "#" not in skewed[0]
        assert all("#" in line for line in flat)


class TestTraceAnalysis:
    @pytest.fixture(scope="class")
    def run_report(self):
        weights = synthesize_weights(TINY_GQA, seed=8)
        transformer = WaferTransformer(weights)
        transformer.prefill(np.array([1, 2, 3, 4]))
        transformer.decode_step(5)
        return transformer, analyze(transformer.ops)

    def test_counts_all_kernels(self, run_report):
        transformer, report = run_report
        assert report.total_kernels == transformer.ops.total_kernels()
        assert report.total_kernels == sum(
            s.launches for s in report.kernel_classes)

    def test_kernel_classes_present(self, run_report):
        _transformer, report = run_report
        labels = set(report.by_label())
        assert {"meshgemm", "meshgemm-t", "meshgemv",
                "ktree-add", "ktree-max"} <= labels

    def test_dominant_kernel_is_a_reduction(self, run_report):
        # Norm/softmax reductions dominate launch counts in a tiny model.
        _transformer, report = run_report
        assert report.dominant_kernel() in ("ktree-add", "ktree-max")

    def test_whole_run_routing_compliant(self, run_report):
        _transformer, report = run_report
        assert report.compliant_routing(max_paths=8)
        assert not report.compliant_routing(max_paths=1)

    def test_macs_and_bytes_positive(self, run_report):
        _transformer, report = run_report
        assert report.total_macs > 0
        assert report.total_payload_bytes > 0

    def test_summary_rows_sorted_by_launches(self, run_report):
        _transformer, report = run_report
        rows = report.summary_rows()
        launches = [int(row[1]) for row in rows]
        assert launches == sorted(launches, reverse=True)

    def test_kernel_mix_matches_report(self, run_report):
        transformer, report = run_report
        mix = kernel_mix(transformer.ops)
        assert mix[report.dominant_kernel()] == \
            report.by_label()[report.dominant_kernel()].launches
