"""Guards against stale documentation: EXPERIMENTS.md must match the code.

EXPERIMENTS.md is generated from the live models; if someone edits a
calibration constant without regenerating it, these tests fail.
"""

import os
import re

import pytest

from repro.bench.experiments import run_table6, run_table8

ROOT = os.path.join(os.path.dirname(__file__), "..")


def _read(name: str) -> str:
    path = os.path.join(ROOT, name)
    assert os.path.exists(path), f"{name} missing"
    with open(path) as handle:
        return handle.read()


class TestDocsExist:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md",
        os.path.join("docs", "architecture.md"),
        os.path.join("docs", "calibration.md"),
    ])
    def test_present_and_nontrivial(self, name):
        text = _read(name)
        assert len(text) > 1000, f"{name} suspiciously short"

    def test_design_confirms_paper_identity(self):
        text = _read("DESIGN.md")
        assert "WaferLLM" in text
        assert "matches the WaferLLM paper" in text

    def test_experiments_covers_every_table_and_figure(self):
        text = _read("EXPERIMENTS.md")
        for table in range(2, 9):
            assert f"Table {table}" in text, table
        assert "Figure 9" in text and "Figure 10" in text


class TestExperimentsFreshness:
    def _committed_value(self, label: str) -> float:
        text = _read("EXPERIMENTS.md")
        pattern = re.compile(
            rf"^\| {re.escape(label)} \| ([\d.,]+) \|", re.MULTILINE
        )
        match = pattern.search(text)
        assert match, f"EXPERIMENTS.md has no row for {label!r}"
        return float(match.group(1).replace(",", ""))

    def test_table6_rows_match_live_model(self):
        live = {c.label: c.measured for c in run_table6()}
        for label in ("gemv16K wse_ms", "gemv32K energy_ratio"):
            committed = self._committed_value(label)
            assert committed == pytest.approx(live[label], rel=0.02), label

    def test_table8_rows_match_live_model(self):
        live = {c.label: c.measured for c in run_table8()}
        committed = self._committed_value("llama3-8b wse_tokens_s")
        assert committed == pytest.approx(
            live["llama3-8b wse_tokens_s"], rel=0.02)
