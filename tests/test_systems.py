"""Tests for the system cost models: WaferLLM, T10, Ladder (Tables 2-4)."""

import pytest

from repro.baselines import LadderSystem, T10System
from repro.core import WSE2
from repro.llm.config import LLAMA2_13B, LLAMA3_8B, QWEN2_72B
from repro.llm.ops_schedule import (
    decode_layer_schedule,
    lm_head_schedule,
    prefill_layer_schedule,
    schedule_macs,
)
from repro.llm.system_base import GenerationResult
from repro.llm.wafer_system import WaferLLMSystem


@pytest.fixture(scope="module")
def systems():
    return {
        "waferllm": WaferLLMSystem(WSE2),
        "t10": T10System(WSE2),
        "ladder": LadderSystem(WSE2),
    }


class TestSchedules:
    def test_prefill_macs_match_config(self):
        seq = 2048
        ops = prefill_layer_schedule(LLAMA3_8B, seq)
        per_layer = schedule_macs(ops)
        expected = LLAMA3_8B.prefill_macs(seq) / LLAMA3_8B.num_layers
        assert per_layer == pytest.approx(expected, rel=0.01)

    def test_decode_macs_match_config(self):
        ctx = 1024
        layer = schedule_macs(decode_layer_schedule(LLAMA3_8B, ctx))
        head = schedule_macs(lm_head_schedule(LLAMA3_8B, 1))
        expected = LLAMA3_8B.decode_macs_per_token(ctx)
        assert layer * LLAMA3_8B.num_layers + head == pytest.approx(
            expected, rel=0.01)

    def test_decode_schedule_has_kv_shift(self):
        ops = decode_layer_schedule(LLAMA3_8B, 100)
        assert any(op.name == "kv-shift" for op in ops)

    def test_prefill_uses_gemm_t_for_scores(self):
        from repro.llm.ops_schedule import OpKind
        ops = prefill_layer_schedule(LLAMA3_8B, 128)
        scores = [op for op in ops if op.name == "scores"]
        assert scores[0].kind is OpKind.GEMM_T


class TestOrderingClaims:
    """The paper's qualitative claims must hold at every configuration."""

    @pytest.mark.parametrize("grid", [480, 600, 720])
    def test_prefill_ordering(self, systems, grid):
        rates = {
            name: s.prefill_throughput(LLAMA3_8B, 4096, grid)
            for name, s in systems.items()
        }
        assert rates["waferllm"] > rates["t10"] > rates["ladder"]

    @pytest.mark.parametrize("grid", [420, 540, 660])
    def test_decode_ordering(self, systems, grid):
        rates = {
            name: s.decode_throughput(LLAMA3_8B, 2048, grid)
            for name, s in systems.items()
        }
        assert rates["waferllm"] > rates["t10"] > rates["ladder"]

    def test_prefill_speedup_orders_of_magnitude(self, systems):
        wafer = systems["waferllm"].prefill_throughput(LLAMA3_8B, 4096, 600)
        t10 = systems["t10"].prefill_throughput(LLAMA3_8B, 4096, 600)
        ladder = systems["ladder"].prefill_throughput(LLAMA3_8B, 4096, 600)
        assert 50 < wafer / t10 < 500      # paper: ~160x
        assert 200 < wafer / ladder < 2000  # paper: ~600x

    def test_decode_speedup_factors(self, systems):
        wafer = systems["waferllm"].decode_throughput(LLAMA3_8B, 2048, 420)
        t10 = systems["t10"].decode_throughput(LLAMA3_8B, 2048, 420)
        ladder = systems["ladder"].decode_throughput(LLAMA3_8B, 2048, 420)
        assert 3 < wafer / t10 < 12        # paper: ~6.5x
        assert 80 < wafer / ladder < 600   # paper: ~185x


class TestTrends:
    def test_waferllm_prefill_scales_up(self, systems):
        rates = [systems["waferllm"].prefill_throughput(LLAMA3_8B, 4096, g)
                 for g in (480, 600, 720)]
        assert rates == sorted(rates)

    def test_baseline_prefill_declines(self, systems):
        for name in ("t10", "ladder"):
            rates = [systems[name].prefill_throughput(LLAMA3_8B, 4096, g)
                     for g in (480, 600, 720)]
            assert rates == sorted(rates, reverse=True), name

    def test_decode_declines_with_cores_for_all(self, systems):
        # Table 4: decode throughput decreases as cores increase.
        for name, system in systems.items():
            rates = [system.decode_throughput(LLAMA3_8B, 2048, g)
                     for g in (420, 540, 660)]
            assert rates == sorted(rates, reverse=True), name

    def test_bigger_models_slower(self, systems):
        for system in systems.values():
            assert system.prefill_throughput(LLAMA3_8B, 4096, 600) > \
                system.prefill_throughput(QWEN2_72B, 4096, 600)
            assert system.decode_throughput(LLAMA3_8B, 2048, 540) > \
                system.decode_throughput(QWEN2_72B, 2048, 540)

    def test_decode_cost_grows_with_context(self, systems):
        wafer = systems["waferllm"]
        short = wafer.decode_token_cost(LLAMA3_8B, 128)
        long = wafer.decode_token_cost(LLAMA3_8B, 8192)
        assert long.total_cycles > short.total_cycles


class TestGeneration:
    def test_generation_result_fields(self, systems):
        gen = systems["waferllm"].generation(LLAMA3_8B, 2048, 128, 660, 360)
        assert isinstance(gen, GenerationResult)
        assert gen.total_seconds == pytest.approx(
            gen.prefill_seconds + gen.decode_seconds)
        assert gen.throughput_tokens_per_s == pytest.approx(
            128 / gen.total_seconds)
        assert gen.decode_tokens_per_s == pytest.approx(
            128 / gen.decode_seconds)
        assert gen.tokens_per_joule > 0

    def test_longer_output_amortizes_prefill(self, systems):
        wafer = systems["waferllm"]
        short = wafer.generation(LLAMA3_8B, 2048, 128, 660, 360)
        long = wafer.generation(LLAMA3_8B, 2048, 2048, 660, 360)
        assert long.throughput_tokens_per_s > short.throughput_tokens_per_s

    def test_invalid_generation_args(self, systems):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            systems["waferllm"].generation(LLAMA3_8B, 0, 10)

    def test_default_grids_from_paper(self, systems):
        wafer = systems["waferllm"]
        assert wafer.prefill_grid(LLAMA3_8B) == 660
        assert wafer.decode_grid(LLAMA3_8B) == 360
        assert wafer.prefill_grid(LLAMA2_13B) == 750
        assert wafer.decode_grid(LLAMA2_13B) == 375

    def test_layer_subset_scales_linearly(self, systems):
        full = systems["waferllm"].decode_token_cost(QWEN2_72B, 1024, 420)
        subset = systems["waferllm"].decode_token_cost(
            QWEN2_72B.scaled_to_layers(8), 1024, 420)
        ratio = full.total_cycles / subset.total_cycles
        assert ratio == pytest.approx(80 / 8, rel=0.15)
