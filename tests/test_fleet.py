"""Fleet layer: failover routing under deterministic chaos.

Covers the DESIGN.md §13 contracts: wafer-scoped fault schedules are
pure functions of their seed, two same-seed chaos runs replay identical
fault/failover timelines, a mid-trace wafer loss migrates every live
session with zero lost requests, session affinity pins sessions to one
wafer while it stays healthy, partitions and degradations steer new
dispatches away without touching in-flight work, and the router's loss
accounting fires only after the retry budget is exhausted everywhere.
"""

from pathlib import Path

import pytest

from repro.core.device_presets import PRESETS, WSE2
from repro.errors import ConfigurationError
from repro.fleet import (
    FleetConfig,
    FleetFaultEvent,
    FleetFaultSchedule,
    FleetRouter,
    RouterConfig,
    WaferFleet,
    bursty_trace,
    poisson_trace,
    run_chaos,
    run_smoke,
    sessionize,
)
from repro.llm.config import get_model
from repro.serving import Request

IPU = PRESETS["ipu-like-crossbar"]
TINY = get_model("tiny-gqa")

#: Small-wafer fleet knobs shared by most tests (tiny model, tiny KV).
SMALL = dict(n_wafers=3, chunk_tokens=64, default_context_len=256)


def small_config(seed: int = 0, **overrides) -> FleetConfig:
    kwargs = dict(SMALL, seed=seed)
    kwargs.update(overrides)
    return FleetConfig(**kwargs)


def burst(n: int = 12, seed: int = 0, n_sessions: int = 3):
    """One burst at t=0: keeps wafers busy so faults strike live work."""
    return poisson_trace(
        n, seed=seed, mean_interarrival_s=0.0,
        seq_in_range=(64, 128), seq_out_range=(8, 16),
        n_sessions=n_sessions,
    )


# ----------------------------------------------------------------------
# Wafer-scoped fault schedules
# ----------------------------------------------------------------------

class TestFleetFaultSchedule:
    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            FleetFaultEvent(at_s=0.0, kind="core_dead", wafer=0)
        with pytest.raises(ConfigurationError):
            FleetFaultEvent(at_s=-1.0, kind="wafer_down", wafer=0)
        with pytest.raises(ConfigurationError):
            FleetFaultEvent(at_s=0.0, kind="wafer_down", wafer=-1)
        with pytest.raises(ConfigurationError):
            FleetFaultEvent(at_s=0.0, kind="wafer_down", wafer=0,
                            duration_s=-0.1)

    def test_events_sorted_by_time(self):
        schedule = FleetFaultSchedule(events=[
            FleetFaultEvent(at_s=2.0, kind="wafer_down", wafer=0),
            FleetFaultEvent(at_s=1.0, kind="router_partition", wafer=1),
        ])
        assert [e.at_s for e in schedule.events] == [1.0, 2.0]

    def test_generate_is_seed_deterministic(self):
        kwargs = dict(wafer_down_rate_hz=3.0, wafer_degraded_rate_hz=2.0,
                      partition_rate_hz=1.0)
        a = FleetFaultSchedule.generate(3, 4.0, seed=5, **kwargs)
        b = FleetFaultSchedule.generate(3, 4.0, seed=5, **kwargs)
        c = FleetFaultSchedule.generate(3, 4.0, seed=6, **kwargs)
        assert a.events == b.events
        assert a.events != c.events
        assert sum(a.counts()) == len(a)
        assert all(0 <= e.at_s < 4.0 for e in a.events)
        assert all(0 <= e.wafer < 3 for e in a.events)

    def test_generate_validation(self):
        with pytest.raises(ConfigurationError):
            FleetFaultSchedule.generate(0, 1.0)
        with pytest.raises(ConfigurationError):
            FleetFaultSchedule.generate(3, 0.0)
        with pytest.raises(ConfigurationError):
            FleetFaultSchedule.generate(3, 1.0, wafer_down_rate_hz=-1.0)

    def test_derive_rng_requires_seed(self):
        bare = FleetFaultSchedule(events=[])
        with pytest.raises(ConfigurationError):
            bare.derive_rng("anything")
        seeded = FleetFaultSchedule(events=[], seed=3)
        assert seeded.derive_rng("x").random() == \
            seeded.derive_rng("x").random()
        assert seeded.derive_rng("x").random() != \
            seeded.derive_rng("y").random()


# ----------------------------------------------------------------------
# Fleet composition
# ----------------------------------------------------------------------

class TestWaferFleet:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(n_wafers=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(n_wafers=2, wafer_fault_schedules=[None])

    def test_wafers_run_in_fleet_failover_mode(self):
        fleet = WaferFleet(TINY, IPU, small_config())
        assert all(
            fleet.engine(w).server.fail_on_exhausted_spares
            for w in range(fleet.n_wafers)
        )

    def test_per_wafer_injector_streams_are_independent(self):
        config = small_config(failure_rate=0.5)
        fleet = WaferFleet(TINY, IPU, config)
        fates = [
            [fleet.engine(w).server.faults.step_fails() for _ in range(32)]
            for w in range(3)
        ]
        assert fates[0] != fates[1] or fates[1] != fates[2]

    def test_replace_boots_a_fresh_epoch(self):
        fleet = WaferFleet(TINY, IPU, small_config())
        fleet.engine(0).submit(Request(1, seq_in=64, seq_out=8))
        fleet.retire(0)
        assert not fleet.up[0]
        assert len(fleet.segments[0]) == 1
        eng = fleet.replace(0, at_s=2.5)
        assert fleet.up[0] and fleet.epochs[0] == 1
        assert eng.now == 2.5 and not eng.active


# ----------------------------------------------------------------------
# The failover contract (the PR's acceptance scenario)
# ----------------------------------------------------------------------

class TestFailover:
    def _mid_trace_loss(self, seed=0):
        trace = burst(seed=seed)
        clean = run_chaos(TINY, IPU, trace, small_config(seed))
        horizon = clean.makespan_s
        schedule = FleetFaultSchedule(events=[
            FleetFaultEvent(at_s=horizon * 0.4, kind="wafer_down", wafer=0,
                            duration_s=horizon * 0.3, detail="loss"),
        ], seed=seed)
        return trace, run_chaos(
            TINY, IPU, trace, small_config(seed), schedule=schedule
        )

    def test_wafer_down_migrates_all_sessions_zero_loss(self):
        trace, m = self._mid_trace_loss()
        assert m.finished == len(trace)
        assert m.lost_requests == 0
        assert m.failovers == 1
        assert m.migrations >= 1
        assert m.mttr_s > 0
        assert 0.0 < m.availability < 1.0
        assert any(e.kind == "wafer_down" for e in m.timeline)
        assert any(e.kind == "migration" for e in m.timeline)

    def test_token_conservation_across_migration(self):
        trace, m = self._mid_trace_loss()
        assert m.total_tokens_emitted == sum(r.seq_out for r in trace)

    def test_migrated_sessions_left_the_dead_wafer(self):
        _, m = self._mid_trace_loss()
        migrated = [o for o in m.outcomes if o.migrations > 0]
        assert migrated
        for o in migrated:
            assert o.wafers[0] == 0 or 0 in o.wafers
            assert o.wafers[-1] != 0
            assert o.completed

    def test_same_seed_runs_replay_identical_timelines(self):
        _, a = self._mid_trace_loss(seed=3)
        _, b = self._mid_trace_loss(seed=3)
        assert a.timeline_signature() == b.timeline_signature()
        assert a.summary() == b.summary()
        assert [o.wafers for o in a.outcomes] == \
            [o.wafers for o in b.outcomes]

    def test_different_seeds_diverge(self):
        _, a = self._mid_trace_loss(seed=1)
        _, b = self._mid_trace_loss(seed=2)
        assert a.timeline_signature() != b.timeline_signature()

    def test_readmitted_wafer_rejoins(self):
        trace = burst()
        clean = run_chaos(TINY, IPU, trace, small_config())
        schedule = FleetFaultSchedule(events=[
            FleetFaultEvent(at_s=clean.makespan_s * 0.3, kind="wafer_down",
                            wafer=0, duration_s=clean.makespan_s * 0.1),
        ], seed=0)
        fleet = WaferFleet(TINY, IPU, small_config())
        router = FleetRouter(fleet, schedule=schedule)
        m = router.run(trace)
        assert any(e.kind == "readmit" and e.wafer == 0 for e in m.timeline)
        assert fleet.epochs[0] == 1
        assert fleet.up[0]
        # The rebooted epoch contributes its own metrics segment.
        assert len(m.wafer_segments[0]) == 2

    def test_escalation_exhaustion_triggers_failover(self):
        """A wafer whose spare pool runs dry surfaces as down: its
        sessions fail over instead of degrading in place."""
        from repro.mesh.faults import FaultEvent, FaultSchedule

        trace = burst()
        clean = run_chaos(TINY, IPU, trace, small_config())
        deaths = FaultSchedule(events=[
            FaultEvent(at_s=clean.makespan_s * 0.2, kind="core_dead",
                       detail="d0"),
            FaultEvent(at_s=clean.makespan_s * 0.4, kind="core_dead",
                       detail="d1"),
        ])
        config = small_config(
            spare_regions=1,
            wafer_fault_schedules=[deaths, None, None],
        )
        m = run_chaos(TINY, IPU, trace, config)
        assert m.failovers == 1
        assert m.finished == len(trace)
        assert m.lost_requests == 0
        # The dead wafer's segment records the remap that preceded the
        # terminal escalation.
        assert m.wafer_segments[0][0].remaps == 1


# ----------------------------------------------------------------------
# Routing policy
# ----------------------------------------------------------------------

class TestRoutingPolicy:
    def test_session_affinity_pins_sessions(self):
        trace = poisson_trace(
            12, seed=0, mean_interarrival_s=0.05,
            seq_in_range=(64, 128), seq_out_range=(8, 16), n_sessions=3,
        )
        m = run_chaos(TINY, IPU, trace, small_config())
        by_session = {}
        for o in m.outcomes:
            by_session.setdefault(o.request.session_id, set()).update(
                o.wafers
            )
        # Healthy fleet: every session stayed on exactly one wafer.
        assert all(len(wafers) == 1 for wafers in by_session.values())

    def test_affinity_disabled_spreads_by_load(self):
        trace = burst(n=12)
        config = RouterConfig(session_affinity=False)
        fleet = WaferFleet(TINY, IPU, small_config())
        m = FleetRouter(fleet, config).run(trace)
        used = {w for o in m.outcomes for w in o.wafers}
        assert used == {0, 1, 2}

    def test_partitioned_wafer_gets_no_dispatches(self):
        trace = burst()
        schedule = FleetFaultSchedule(events=[
            FleetFaultEvent(at_s=0.0, kind="router_partition", wafer=1,
                            duration_s=1e9),
        ], seed=0)
        m = run_chaos(TINY, IPU, trace, small_config(), schedule=schedule)
        assert m.finished == len(trace)
        assert all(1 not in o.wafers for o in m.outcomes)

    def test_degraded_wafer_deprioritized(self):
        schedule = FleetFaultSchedule(events=[
            FleetFaultEvent(at_s=0.0, kind="wafer_degraded", wafer=0,
                            duration_s=1e9),
        ], seed=0)
        trace = [Request(0, seq_in=64, seq_out=8, arrival_s=0.01,
                         session_id=0)]
        m = run_chaos(TINY, IPU, trace, small_config(), schedule=schedule)
        assert m.finished == 1
        assert 0 not in m.outcomes[0].wafers

    def test_unroutable_request_is_lost_after_retry_budget(self):
        # KV footprint larger than any wafer's region: every wafer
        # bounces it at admission, and after max_attempts dispatches the
        # router declares it lost instead of looping forever.
        fleet = WaferFleet(TINY, IPU, small_config())
        capacity = fleet.engine(0).server.kv_capacity_tokens
        whale = Request(0, seq_in=capacity + 1, seq_out=8, arrival_s=0.0)
        minnow = Request(1, seq_in=64, seq_out=8, arrival_s=0.0)
        m = FleetRouter(fleet, RouterConfig(max_attempts=3)).run(
            [whale, minnow]
        )
        assert m.lost_requests == 1
        assert m.finished == 1
        whale_outcome = next(o for o in m.outcomes if o.request.request_id == 0)
        assert whale_outcome.lost and not whale_outcome.completed
        assert whale_outcome.dispatches == 3
        assert any(e.kind == "lost" for e in m.timeline)
        assert m.router_retries == 2

    def test_hedged_dispatch_duplicates_and_accounts_waste(self):
        # Affinity pins short-circuit hedging (a pinned session's KV
        # history lives on one wafer), so hedge behaviour is observed
        # with affinity off.
        trace = burst(n=12)
        config = RouterConfig(hedge_threshold_s=1e-9,
                              session_affinity=False)
        fleet = WaferFleet(TINY, IPU, small_config())
        m = FleetRouter(fleet, config).run(trace)
        assert m.hedges >= 1
        assert m.finished == len(trace)
        # Hedge copies burn tokens but never double-credit the client.
        assert m.hedge_wasted_tokens > 0
        assert m.total_tokens_emitted == sum(r.seq_out for r in trace)

    def test_hedging_off_by_default(self):
        m = run_chaos(TINY, IPU, burst(), small_config())
        assert m.hedges == 0 and m.hedge_wasted_tokens == 0


# ----------------------------------------------------------------------
# Chaos harness
# ----------------------------------------------------------------------

class TestChaosHarness:
    def test_sessionize_round_robin(self):
        trace = sessionize(
            [Request(i, seq_in=8, seq_out=4) for i in range(6)], 2
        )
        assert [r.session_id for r in trace] == [0, 1, 0, 1, 0, 1]
        with pytest.raises(ConfigurationError):
            sessionize([], 0)

    def test_bursty_trace_shape(self):
        trace = bursty_trace(8, seed=0, burst_size=4, burst_gap_s=0.5)
        first, second = trace[:4], trace[4:]
        assert all(r.arrival_s < 0.5 * 0.05 for r in first)
        assert all(0.5 <= r.arrival_s < 0.5 + 0.5 * 0.05 for r in second)
        assert trace == bursty_trace(8, seed=0, burst_size=4,
                                     burst_gap_s=0.5)

    def test_run_smoke_contract(self):
        a = run_smoke(0)
        b = run_smoke(0)
        assert a.timeline_signature() == b.timeline_signature()
        assert a.lost_requests == 0
        assert a.failovers >= 1 and a.migrations >= 1

    def test_router_rejects_bad_traces(self):
        fleet = WaferFleet(TINY, IPU, small_config())
        router = FleetRouter(fleet)
        with pytest.raises(ConfigurationError):
            router.run([])
        fleet2 = WaferFleet(TINY, IPU, small_config())
        with pytest.raises(ConfigurationError):
            FleetRouter(fleet2).run(
                [Request(1, seq_in=8, seq_out=4),
                 Request(1, seq_in=8, seq_out=4)]
            )

    def test_fault_beyond_fleet_raises(self):
        schedule = FleetFaultSchedule(events=[
            FleetFaultEvent(at_s=0.0, kind="wafer_down", wafer=7),
        ], seed=0)
        with pytest.raises(ConfigurationError):
            run_chaos(TINY, IPU, burst(n=2), small_config(),
                      schedule=schedule)


# ----------------------------------------------------------------------
# Single-wafer equivalence and lint hygiene
# ----------------------------------------------------------------------

class TestFleetHygiene:
    def test_single_wafer_fleet_matches_lone_server(self):
        """A 1-wafer fleet with no fleet faults must reproduce the lone
        server's serving story for the same trace: same completions,
        same per-request finish times."""
        from repro.serving import WaferServer

        trace = [
            Request(i, seq_in=64, seq_out=8, arrival_s=i * 0.001)
            for i in range(6)
        ]
        lone = WaferServer(TINY, IPU, chunk_tokens=64,
                           default_context_len=256).serve(trace)
        m = run_chaos(TINY, IPU, trace, small_config(n_wafers=1))
        assert m.finished == lone.finished
        lone_finish = sorted(s.finish_s for s in lone.completed)
        fleet_finish = sorted(o.finish_s for o in m.outcomes)
        assert fleet_finish == pytest.approx(lone_finish)

    def test_fleet_sources_pass_unseeded_rng_lint(self):
        from repro.analysis.lint import lint_tree

        root = Path(__file__).resolve().parents[1] / "src/repro/fleet"
        findings = [
            f for f in lint_tree(root)
            if f.rule == "unseeded-rng"
        ]
        assert findings == []
