"""Tests for shift-based vs concat-based KV-cache management (Section 4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CapacityExceeded, ConfigurationError
from repro.llm.config import LLAMA2_13B, LLAMA3_8B
from repro.llm.kvcache import (
    ConcatKVCache,
    KVCacheGeometry,
    ShiftKVCache,
    capacity_geometry,
    kv_budget_per_core,
    measure_max_tokens,
)


def _geometry(rows=4, cols=4, kv_dim=8, budget=256, dtype=2):
    return KVCacheGeometry(
        grid_width=cols, grid_height=rows, kv_dim=kv_dim,
        dtype_bytes=dtype, budget_bytes_per_core=budget,
    )


class TestGeometry:
    def test_bytes_per_token(self):
        geo = _geometry(kv_dim=8, cols=4, dtype=2)
        # 2 features per core * 2 (K,V) * 2 B = 8 B.
        assert geo.bytes_per_token_per_core == 8

    def test_tokens_per_row(self):
        geo = _geometry(budget=256)
        assert geo.tokens_per_row == 32

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            KVCacheGeometry(grid_width=0, grid_height=1, kv_dim=1)


class TestShiftCache:
    def test_append_and_readback(self, rng):
        cache = ShiftKVCache(_geometry())
        ks = [rng.standard_normal(8) for _ in range(10)]
        vs = [rng.standard_normal(8) for _ in range(10)]
        for k, v in zip(ks, vs):
            cache.append(k, v)
        k_all, v_all = cache.all_kv()
        assert np.allclose(k_all, np.stack(ks))
        assert np.allclose(v_all, np.stack(vs))

    def test_balanced_occupancy(self):
        cache = ShiftKVCache(_geometry(rows=4))
        for _ in range(17):
            cache.append(np.zeros(8), np.zeros(8))
        occupancy = cache.row_occupancy()
        assert max(occupancy) - min(occupancy) <= 1

    def test_physical_order_matches_logical(self):
        cache = ShiftKVCache(_geometry(rows=4))
        for _ in range(13):
            cache.append(np.zeros(8), np.zeros(8))
        order = cache.tokens_in_order()
        assert order == sorted(order)

    def test_capacity_uses_all_rows(self):
        geo = _geometry(rows=5, budget=64)  # 8 tokens/row
        cache = ShiftKVCache(geo)
        assert cache.capacity == 5 * 8

    def test_capacity_exceeded_raises(self):
        cache = ShiftKVCache(_geometry(rows=2, budget=16))  # 2/row -> 4
        for _ in range(4):
            cache.append(np.zeros(8), np.zeros(8))
        with pytest.raises(CapacityExceeded):
            cache.append(np.zeros(8), np.zeros(8))

    def test_measured_capacity_matches_property(self):
        geo = _geometry(rows=3, budget=80)
        assert measure_max_tokens(ShiftKVCache(geo)) == ShiftKVCache(geo).capacity

    def test_shift_moves_accounted(self):
        cache = ShiftKVCache(_geometry(rows=4))
        total = 0
        for _ in range(12):
            total += cache.append(np.zeros(8), np.zeros(8))
        assert cache.total_shift_moves == total
        assert total > 0

    def test_max_row_bytes_balanced(self):
        geo = _geometry(rows=4, budget=1 << 20)
        cache = ShiftKVCache(geo)
        for _ in range(40):
            cache.append(np.zeros(8), np.zeros(8))
        assert cache.max_row_bytes() == 10 * geo.bytes_per_token_per_core

    @settings(max_examples=30, deadline=None)
    @given(rows=st.integers(1, 6), appends=st.integers(0, 60))
    def test_invariants_hold_for_any_history(self, rows, appends):
        geo = _geometry(rows=rows, budget=1 << 16)
        cache = ShiftKVCache(geo)
        for i in range(appends):
            cache.append(np.full(8, float(i)), np.zeros(8))
        # No token lost, order preserved, balance within 1.
        assert cache.num_tokens == appends
        order = cache.tokens_in_order()
        assert order == sorted(order) and len(order) == appends
        occ = cache.row_occupancy()
        assert max(occ) - min(occ) <= 1 if appends >= rows else True


class TestConcatCache:
    def test_everything_on_bottom_row(self):
        cache = ConcatKVCache(_geometry(rows=4))
        for _ in range(5):
            cache.append(np.zeros(8), np.zeros(8))
        occupancy = cache.row_occupancy()
        assert occupancy[:-1] == [0, 0, 0]
        assert occupancy[-1] == 5

    def test_capacity_is_one_row(self):
        geo = _geometry(rows=5, budget=64)
        assert ConcatKVCache(geo).capacity == 8

    def test_capacity_exceeded(self):
        cache = ConcatKVCache(_geometry(rows=4, budget=16))
        for _ in range(2):
            cache.append(np.zeros(8), np.zeros(8))
        with pytest.raises(CapacityExceeded):
            cache.append(np.zeros(8), np.zeros(8))

    def test_readback_order(self, rng):
        cache = ConcatKVCache(_geometry(budget=1 << 12))
        ks = [rng.standard_normal(8) for _ in range(6)]
        for k in ks:
            cache.append(k, k)
        k_all, _ = cache.all_kv()
        assert np.allclose(k_all, np.stack(ks))

    def test_skewed_memory_vs_shift(self):
        geo = _geometry(rows=4, budget=1 << 20)
        concat = ConcatKVCache(geo)
        shift = ShiftKVCache(geo)
        for _ in range(40):
            concat.append(np.zeros(8), np.zeros(8))
            shift.append(np.zeros(8), np.zeros(8))
        # The concat bottom row holds ~4x the bytes of any shift row.
        assert concat.max_row_bytes() >= 3 * shift.max_row_bytes()


class TestCapacityModel:
    def test_shift_concat_ratio_equals_rows(self):
        # Table 5's headline: shift supports grid_height x more tokens.
        for model, grid in ((LLAMA3_8B, 360), (LLAMA2_13B, 375)):
            geo = capacity_geometry(model, grid, 48 * 1024, 851_400)
            assert ShiftKVCache(geo).capacity == \
                grid * ConcatKVCache(geo).capacity

    def test_budget_decreases_with_model_size(self):
        small = kv_budget_per_core(LLAMA3_8B, 48 * 1024, 851_400)
        large = kv_budget_per_core(LLAMA2_13B, 48 * 1024, 851_400)
        assert large <= small

    def test_budget_floor(self):
        budget = kv_budget_per_core(LLAMA2_13B, 16 * 1024, 1000)
        assert budget >= 1024

    def test_table5_orders_of_magnitude(self):
        geo8 = capacity_geometry(LLAMA3_8B, 360, 48 * 1024, 851_400)
        geo13 = capacity_geometry(LLAMA2_13B, 375, 48 * 1024, 851_400)
        # Paper: 382 and 137548 for 8B; 16 and 6168 for 13B.
        assert 100 <= ConcatKVCache(geo8).capacity <= 1500
        assert 40_000 <= ShiftKVCache(geo8).capacity <= 500_000
        assert 4 <= ConcatKVCache(geo13).capacity <= 80
        assert 1_500 <= ShiftKVCache(geo13).capacity <= 30_000
