"""Property-based differential tests for the batched flow engine.

Random flow sets — fan-in, fan-out, zero-byte payloads, duplicate
``(src, dst)`` pairs, single-flow phases — are pushed through both the
batched SoA analytics and a naive per-flow reference written directly
from the definitions (independent of the eager implementations in
:mod:`repro.mesh.trace`, which have their own sweep in
``tests/test_flow_engine.py``).  Payload bytes are integers and
bandwidth factors dyadic, so every comparison is exact equality — the
accumulation order of ``np.add.at`` matches the reference walk bit for
bit.  The engine must also never mutate its input arrays.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mesh.flow_engine import (
    FlowBatch,
    PhaseStream,
    PORT_TUPLES,
    encode_ports,
    segment_max,
    validate_batch,
)
from repro.mesh.trace import ingress_port

MESH = 6

coord = st.tuples(st.integers(0, MESH - 1), st.integers(0, MESH - 1))

#: Dyadic bandwidth fractions: binary fractions keep wire-byte division
#: exact, so batched and reference sums are comparable with ``==``.
bw = st.sampled_from([1.0, 0.5, 0.25, 0.125])


class _Flow:
    """Duck-typed stand-in for :class:`repro.mesh.trace.FlowRecord`."""

    def __init__(self, src, dsts, nbytes, hops, bw_factor):
        self.src = src
        self.dsts = tuple(dsts)
        self.nbytes = nbytes
        self.hops = hops
        self.bw_factor = bw_factor


@st.composite
def flow_sets(draw, min_flows=0, max_flows=12, multicast=True):
    """Random flow lists; zero-byte flows and duplicate pairs included."""
    n = draw(st.integers(min_flows, max_flows))
    flows = []
    for _ in range(n):
        src = draw(coord)
        max_dsts = 3 if multicast else 1
        dsts = draw(
            st.lists(coord.filter(lambda c: c != src),
                     min_size=1, max_size=max_dsts)
        )
        flows.append(_Flow(
            src=src,
            dsts=dsts,
            nbytes=draw(st.integers(0, 512)),  # zero-byte flows allowed
            hops=draw(st.integers(0, 10)),
            bw_factor=draw(bw),
        ))
    return flows


class _Phase:
    def __init__(self, flows):
        self.flows = tuple(flows)


def _reference_ingress(flows) -> float:
    """Ingress bottleneck from the definition: per-(dst, port) wire bytes."""
    if not flows:
        return 0.0
    acc = defaultdict(float)
    for f in flows:
        for d in f.dsts:
            acc[(d, ingress_port(f.src, d))] += f.nbytes / f.bw_factor
    per_flow = max(f.nbytes / f.bw_factor for f in flows)
    return max(max(acc.values(), default=0.0), per_flow)


def _snapshot(batch: FlowBatch):
    return tuple(
        arr.copy() for arr in (
            batch.src, batch.nbytes, batch.hops, batch.bw_factor,
            batch.dst, batch.dst_flow,
        )
    )


def _assert_unchanged(batch: FlowBatch, before) -> None:
    after = (batch.src, batch.nbytes, batch.hops, batch.bw_factor,
             batch.dst, batch.dst_flow)
    for a, b in zip(after, before):
        assert np.array_equal(a, b)


class TestIngressProperty:
    @given(flows=flow_sets())
    @settings(max_examples=120, deadline=None)
    def test_batched_equals_reference(self, flows):
        batch = FlowBatch.from_records(flows)
        validate_batch(batch)
        before = _snapshot(batch)
        assert batch.ingress_bottleneck_bytes() == _reference_ingress(flows)
        _assert_unchanged(batch, before)

    @given(
        dst=coord,
        srcs=st.lists(coord, min_size=2, max_size=8),
        nbytes=st.integers(0, 256),
    )
    @settings(max_examples=60, deadline=None)
    def test_fan_in(self, dst, srcs, nbytes):
        flows = [
            _Flow(src=s, dsts=(dst,), nbytes=nbytes, hops=1, bw_factor=1.0)
            for s in srcs if s != dst
        ]
        if not flows:
            return
        batch = FlowBatch.from_records(flows)
        assert batch.ingress_bottleneck_bytes() == _reference_ingress(flows)

    @given(
        src=coord,
        dsts=st.lists(coord, min_size=1, max_size=10, unique=True),
        nbytes=st.integers(1, 256),
        factor=bw,
    )
    @settings(max_examples=60, deadline=None)
    def test_fan_out_multicast(self, src, dsts, nbytes, factor):
        dsts = [d for d in dsts if d != src]
        if not dsts:
            return
        flows = [_Flow(src=src, dsts=tuple(dsts), nbytes=nbytes,
                       hops=3, bw_factor=factor)]
        batch = FlowBatch.from_records(flows)
        assert batch.num_flows == 1
        assert batch.num_dsts == len(dsts)
        assert batch.ingress_bottleneck_bytes() == _reference_ingress(flows)

    @given(src=coord, dst=coord, copies=st.integers(2, 6),
           nbytes=st.integers(0, 128))
    @settings(max_examples=60, deadline=None)
    def test_duplicate_src_dst_pairs_serialize(self, src, dst, copies, nbytes):
        if src == dst:
            return
        flows = [
            _Flow(src=src, dsts=(dst,), nbytes=nbytes, hops=2, bw_factor=1.0)
            for _ in range(copies)
        ]
        batch = FlowBatch.from_records(flows)
        got = batch.ingress_bottleneck_bytes()
        assert got == _reference_ingress(flows)
        assert got == float(copies * nbytes)

    def test_empty_flow_set(self):
        batch = FlowBatch.from_records([])
        assert batch.ingress_bottleneck_bytes() == 0.0
        assert batch.num_flows == 0 and batch.num_dsts == 0


class TestPhaseStreamProperty:
    @given(phases=st.lists(flow_sets(max_flows=6), min_size=0, max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_criticals_equal_per_phase_reference(self, phases):
        records = [_Phase(flows) for flows in phases]
        stream = PhaseStream.from_records(records)
        assert stream.num_phases == len(records)
        before = _snapshot(stream.batch)

        expected_hops = [
            max((f.hops for f in rec.flows), default=0.0)
            for rec in records
        ]
        assert stream.max_hops_per_phase().tolist() == expected_hops

        expected_ingress = [
            _reference_ingress(rec.flows) if rec.flows else 0.0
            for rec in records
        ]
        assert stream.ingress_bottleneck_per_phase().tolist() == (
            expected_ingress
        )

        expected_wire = [
            max((f.nbytes / f.bw_factor for f in rec.flows), default=0.0)
            for rec in records
        ]
        assert stream.max_wire_bytes_per_phase().tolist() == expected_wire
        _assert_unchanged(stream.batch, before)

    @given(flows=flow_sets(min_flows=1, max_flows=1))
    @settings(max_examples=40, deadline=None)
    def test_single_flow_phase(self, flows):
        stream = PhaseStream.from_records([_Phase(flows)])
        f = flows[0]
        assert stream.max_hops_per_phase().tolist() == [float(f.hops)]
        assert stream.ingress_bottleneck_per_phase().tolist() == [
            _reference_ingress(flows)
        ]

    @given(phases=st.lists(flow_sets(max_flows=4), min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_scope_ingress_accumulates_across_phases(self, phases):
        records = [_Phase(flows) for flows in phases]
        stream = PhaseStream.from_records(records)
        acc = defaultdict(int)
        for rec in records:
            for f in rec.flows:
                for d in f.dsts:
                    acc[(d, ingress_port(f.src, d))] += f.nbytes
        expected = max(acc.values(), default=0)
        assert stream.scope_ingress_bytes() == expected


class TestPortEncodingProperty:
    @given(src=coord, dst=coord)
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_ingress_port(self, src, dst):
        if src == dst:
            return
        code = encode_ports(
            np.array([src], dtype=np.int64), np.array([dst], dtype=np.int64)
        )[0]
        assert PORT_TUPLES[code] == ingress_port(src, dst)


class TestSegmentMaxProperty:
    @given(
        data=st.data(),
        num_segments=st.integers(0, 8),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_naive_loop(self, data, num_segments):
        sizes = [
            data.draw(st.integers(0, 5)) for _ in range(num_segments)
        ]
        values = np.array(
            [data.draw(st.integers(-100, 100)) for _ in range(sum(sizes))],
            dtype=np.float64,
        )
        offsets = np.cumsum([0] + sizes[:-1]).astype(np.int64) if sizes \
            else np.zeros(0, dtype=np.int64)
        got = segment_max(values, offsets, num_segments, fill=-7.0)
        start = 0
        for i, size in enumerate(sizes):
            seg = values[start:start + size]
            start += size
            assert got[i] == (seg.max() if size else -7.0)
