"""Tests for op schedules, the error hierarchy, and system-model internals."""

import pytest

from repro import errors
from repro.core import WSE2
from repro.llm.config import LLAMA2_13B, LLAMA3_8B
from repro.llm.ops_schedule import (
    LayerOp,
    OpKind,
    decode_layer_schedule,
    lm_head_schedule,
    prefill_layer_schedule,
    schedule_macs,
)
from repro.llm.wafer_system import WaferLLMSystem, _WEIGHT_OPS
from repro.mesh.cost_model import ComputePhase


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("ConfigurationError", "ShapeError", "PLMRViolation",
                     "PlacementError", "SimulationError", "KVCacheError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_plmr_violations(self):
        for name in ("MemoryCapacityError", "RoutingResourceError",
                     "MessageSizeError"):
            assert issubclass(getattr(errors, name), errors.PLMRViolation)

    def test_memory_error_carries_context(self):
        err = errors.MemoryCapacityError((1, 2), requested=10,
                                         capacity=5, resident=3)
        assert err.coord == (1, 2)
        assert "10 B" in str(err) and "5 B" in str(err)

    def test_routing_error_message(self):
        err = errors.RoutingResourceError((0, 0), requested=9, limit=8)
        assert "9 routing paths" in str(err)

    def test_capacity_exceeded_detail(self):
        err = errors.CapacityExceeded(42, "bottom row full")
        assert err.tokens_stored == 42
        assert "bottom row full" in str(err)


class TestSchedules:
    def test_prefill_op_order_attention_before_ffn(self):
        ops = [op.name for op in prefill_layer_schedule(LLAMA3_8B, 64)]
        assert ops.index("scores") < ops.index("wo") < ops.index("w-gate")

    def test_prefill_has_one_transfer(self):
        ops = prefill_layer_schedule(LLAMA3_8B, 64)
        transfers = [op for op in ops if op.kind is OpKind.TRANSFER]
        assert len(transfers) == 1

    def test_decode_context_dependence(self):
        short = decode_layer_schedule(LLAMA3_8B, 10)
        long = decode_layer_schedule(LLAMA3_8B, 1000)
        score_short = next(op for op in short if op.name == "scores")
        score_long = next(op for op in long if op.name == "scores")
        assert score_long.n == 100 * score_short.n

    def test_decode_rows_equal_heads(self):
        ops = decode_layer_schedule(LLAMA3_8B, 128)
        scores = next(op for op in ops if op.name == "scores")
        assert scores.rows == LLAMA3_8B.n_heads

    def test_lm_head_modes(self):
        gemv = lm_head_schedule(LLAMA3_8B, 1)
        gemm = lm_head_schedule(LLAMA3_8B, 64)
        assert gemv[1].kind is OpKind.GEMV
        assert gemm[1].kind is OpKind.GEMM
        assert gemm[1].m == 64

    def test_elementwise_ops_have_zero_macs(self):
        op = LayerOp(OpKind.ELEMENTWISE, "rope", n=4096)
        assert op.macs == 0.0

    def test_schedule_macs_sums_matrix_ops_only(self):
        ops = [
            LayerOp(OpKind.GEMV, "a", k=10, n=10),
            LayerOp(OpKind.NORM, "b", n=100),
        ]
        assert schedule_macs(ops) == 100.0

    def test_13b_mha_kv_ops_wider_than_8b_gqa(self):
        ops_8b = decode_layer_schedule(LLAMA3_8B, 64)
        ops_13b = decode_layer_schedule(LLAMA2_13B, 64)
        wk_8b = next(op for op in ops_8b if op.name == "wk")
        wk_13b = next(op for op in ops_13b if op.name == "wk")
        assert wk_13b.n == 5120 and wk_8b.n == 1024


class TestWaferSystemInternals:
    @pytest.fixture(scope="class")
    def system(self):
        return WaferLLMSystem(WSE2)

    def test_subgrid_for_heads(self, system):
        assert system._subgrid(660, 32, 4096, 128, 4096) == 110
        assert system._subgrid(660, 1, 4096, 128, 4096) == 128

    def test_subgrid_floors_at_one(self, system):
        assert system._subgrid(4, 32, 10, 10, 10) == 1

    def test_weight_stream_only_on_weight_ops(self, system):
        op = LayerOp(OpKind.GEMM, "scores", m=64, k=64, n=64)
        phases = system.phases_for_op(op, 480, "prefill", LLAMA3_8B)
        assert not any("stream" in p.label for p in phases)
        op = LayerOp(OpKind.GEMM, "wq", m=64, k=4096, n=4096)
        phases = system.phases_for_op(op, 480, "prefill", LLAMA3_8B)
        assert any("stream" in p.label for p in phases)

    def test_decode_never_streams_weights(self, system):
        op = LayerOp(OpKind.GEMV, "wq", k=4096, n=4096)
        phases = system.phases_for_op(op, 360, "decode", LLAMA3_8B)
        assert not any("stream" in p.label for p in phases)

    def test_weight_ops_registry(self):
        assert {"wq", "wk", "wv", "wo", "w-gate", "w-up", "w-down",
                "lm-head"} == _WEIGHT_OPS

    def test_unknown_op_kind_rejected(self, system):
        class FakeKind:
            pass

        op = LayerOp(OpKind.GEMM, "x", m=2, k=2, n=2)
        object.__setattr__(op, "kind", FakeKind())
        with pytest.raises(ValueError):
            system.phases_for_op(op, 100, "prefill", LLAMA3_8B)

    def test_launch_overhead_charged_per_op(self, system):
        op = LayerOp(OpKind.GEMV, "wq", k=4096, n=4096)
        phases = system.phases_for_op(op, 360, "decode", LLAMA3_8B)
        launches = [p for p in phases
                    if isinstance(p, ComputePhase) and "launch" in p.label]
        assert len(launches) == 1
