"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.device_presets import TINY_MESH, WSE2
from repro.mesh.machine import MeshMachine


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test data."""
    return np.random.default_rng(1234)


@pytest.fixture
def mesh4() -> MeshMachine:
    """A 4x4 functional mesh machine with memory enforcement."""
    return MeshMachine(TINY_MESH.submesh(4, 4))


@pytest.fixture
def mesh5() -> MeshMachine:
    """A 5x5 functional mesh machine (odd side exercises INTERLEAVE)."""
    return MeshMachine(TINY_MESH.submesh(5, 5))


@pytest.fixture
def wse2_750():
    """The 750x750 WSE-2 sub-mesh used for kernel estimates."""
    return WSE2.submesh(750)
