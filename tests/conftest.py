"""Shared fixtures for the test suite, plus the slow-test gate.

Setting ``MAX_TEST_SECONDS`` (CI does: 60) fails the session if any
single test's call phase exceeds it — runaway tests surface as a hard
failure instead of silently eroding the suite's turnaround time.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.device_presets import TINY_MESH, WSE2
from repro.mesh.machine import MeshMachine

_MAX_TEST_SECONDS = float(os.environ.get("MAX_TEST_SECONDS", "0") or 0)
_slow_tests: list[tuple[str, float]] = []


def pytest_runtest_logreport(report):
    if (
        _MAX_TEST_SECONDS > 0
        and report.when == "call"
        and report.duration > _MAX_TEST_SECONDS
    ):
        _slow_tests.append((report.nodeid, report.duration))


def pytest_sessionfinish(session, exitstatus):
    if _slow_tests:
        lines = "\n".join(
            f"  {nodeid}: {duration:.1f}s" for nodeid, duration in _slow_tests
        )
        print(
            f"\nERROR: tests exceeded MAX_TEST_SECONDS="
            f"{_MAX_TEST_SECONDS:g}:\n{lines}"
        )
        session.exitstatus = 1


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test data."""
    return np.random.default_rng(1234)


@pytest.fixture
def mesh4() -> MeshMachine:
    """A 4x4 functional mesh machine with memory enforcement."""
    return MeshMachine(TINY_MESH.submesh(4, 4))


@pytest.fixture
def mesh5() -> MeshMachine:
    """A 5x5 functional mesh machine (odd side exercises INTERLEAVE)."""
    return MeshMachine(TINY_MESH.submesh(5, 5))


@pytest.fixture
def wse2_750():
    """The 750x750 WSE-2 sub-mesh used for kernel estimates."""
    return WSE2.submesh(750)
