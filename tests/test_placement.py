"""The placement planner subsystem: plan IR, search, validation, shims.

Property tests drive random defect maps through the planner and assert
the DESIGN.md §12 invariants: no emitted region ever covers a dead
core, every emitted plan replays clean (zero findings), rejections
carry the findings that killed them, and the search is a pure function
of its seed.
"""

import json

import pytest

from repro.core.device_presets import PRESETS, WSE2
from repro.errors import ConfigurationError, PlacementError
from repro.llm.config import get_model
from repro.llm.kvcache import region_token_capacity
from repro.llm.wafer_system import WaferLLMSystem
from repro.mesh.remap import DefectMap
from repro.placement import (
    FabricView,
    PlacementPlanner,
    PlannerConfig,
    RegionCarveOut,
    ValidationBudgets,
    coarse_then_refine,
    decode_carve_for_grid,
    min_decode_grid,
    paper_default_plan,
    plan_placement,
    reshard_cost,
    stretched_seconds,
    validate_plan,
)

IPU = PRESETS["ipu-like-crossbar"]
TINY = get_model("tiny-gqa")

#: Fast planner knobs for the 48x31 fabric (same scale as ``place --smoke``).
FAST = dict(coarse_step=8, seq_len=256, context_len=64)


def tiny_defects(seed: int, **overrides) -> DefectMap:
    kwargs = dict(dead_core_rate=0.01, dead_link_rate=0.01,
                  degraded_link_rate=0.02, degraded_factor=0.5)
    kwargs.update(overrides)
    return DefectMap.generate(IPU.mesh_width, IPU.mesh_height, seed=seed,
                              **kwargs)


# ----------------------------------------------------------------------
# Region carve-outs (the IR's geometry primitive)
# ----------------------------------------------------------------------

class TestRegionCarveOut:
    def test_geometry(self):
        r = RegionCarveOut("r", 2, 3, 4, 5, role="decode")
        assert r.num_cores == 20
        assert r.grid == 4
        assert r.contains((2, 3)) and r.contains((5, 7))
        assert not r.contains((6, 3)) and not r.contains((2, 8))
        assert len(list(r.coords())) == 20
        assert r.fits(6, 8) and not r.fits(5, 8)

    def test_overlap_is_symmetric(self):
        a = RegionCarveOut("a", 0, 0, 4, 4)
        b = RegionCarveOut("b", 3, 3, 4, 4, role="spare")
        c = RegionCarveOut("c", 4, 0, 4, 4, role="spare")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RegionCarveOut("bad", 0, 0, 0, 4)
        with pytest.raises(ConfigurationError):
            RegionCarveOut("bad", -1, 0, 4, 4)
        with pytest.raises(ConfigurationError):
            RegionCarveOut("bad", 0, 0, 4, 4, role="magic")

    def test_decode_carve_for_grid(self):
        r = decode_carve_for_grid(6)
        assert (r.x, r.y, r.width, r.height) == (0, 0, 6, 6)
        assert r.role == "decode"
        with pytest.raises(ConfigurationError):
            decode_carve_for_grid(0)


# ----------------------------------------------------------------------
# min_decode_grid: the loop-invariant bug is fixed (satellite 1)
# ----------------------------------------------------------------------

class TestMinDecodeGrid:
    def test_capacity_binds_per_grid(self):
        """The KV-capacity check now varies with the candidate grid.

        Pre-fix, the budget was computed from ``device.num_cores`` —
        loop-invariant — and compared against a floor it was clamped
        to, so only the stage bound ever rejected a grid.  llama2-13b
        is the regression witness: its floor is set by context
        capacity, not stages.
        """
        model = get_model("llama2-13b")
        floor = min_decode_grid(model, WSE2)
        assert floor == 208
        # One coarse step below the floor, capacity (not stages) fails.
        below = floor - 4
        tokens = region_token_capacity(
            model, below, WSE2.core_memory_bytes, WSE2.num_cores
        )
        assert tokens < 2048
        assert region_token_capacity(
            model, floor, WSE2.core_memory_bytes, WSE2.num_cores
        ) >= 2048

    def test_monotone_in_context(self):
        model = get_model("llama2-13b")
        assert min_decode_grid(model, WSE2, 8192) > min_decode_grid(
            model, WSE2, 2048
        )

    def test_paper_grids_respect_floors(self):
        system = WaferLLMSystem(WSE2)
        for name in ("llama3-8b", "llama2-13b"):
            model = get_model(name)
            assert system.decode_grid(model) >= min_decode_grid(model, WSE2)


# ----------------------------------------------------------------------
# Sweep driver
# ----------------------------------------------------------------------

class TestCoarseThenRefine:
    def test_finds_interior_peak(self):
        # coarse_step 10 -> fine_step 1, so refinement lands exactly.
        sweep = coarse_then_refine(lambda g: -(g - 137) ** 2, 8, 300, 10)
        assert sweep.best == 137
        assert sweep.evaluated[137] == 0

    def test_coarse_winner_within_one_step(self):
        # With fine_step 6 the peak at 137 is bracketed, not hit: the
        # legacy semantics land within one fine step of the optimum.
        sweep = coarse_then_refine(lambda g: -(g - 137) ** 2, 8, 300, 60)
        assert abs(sweep.best - 137) <= 6

    def test_ranked_is_best_first(self):
        sweep = coarse_then_refine(lambda g: -(g - 137) ** 2, 8, 300, 60)
        ranked = sweep.ranked()
        assert ranked[0] == sweep.best
        values = [sweep.evaluated[g] for g in ranked]
        assert values == sorted(values, reverse=True)

    def test_endpoint_always_measured(self):
        sweep = coarse_then_refine(lambda g: float(g), 8, 97, 60)
        assert 97 in sweep.evaluated
        assert sweep.best == 97


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------

class TestStretchedSeconds:
    def test_identity_at_unit_stretch(self):
        system = WaferLLMSystem(WSE2)
        model = get_model("llama3-8b")
        cost = system.decode_token_cost(model, grid=360, context_len=2048)
        assert stretched_seconds(cost, 1.0) == cost.seconds

    def test_stretch_only_inflates_comm(self):
        system = WaferLLMSystem(WSE2)
        model = get_model("llama3-8b")
        cost = system.decode_token_cost(model, grid=360, context_len=2048)
        assert stretched_seconds(cost, 1.5) > cost.seconds


# ----------------------------------------------------------------------
# Planner properties on random defect maps (satellite 3)
# ----------------------------------------------------------------------

class TestPlannerProperties:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_no_region_over_dead_core(self, seed):
        defects = tiny_defects(seed)
        result = plan_placement(TINY, IPU, defects,
                                PlannerConfig(seed=seed, **FAST))
        view = FabricView(IPU, defects)
        for region in result.plan.regions():
            for coord in region.coords():
                phys = view.to_physical(coord)
                assert defects.core_ok(phys), (
                    f"{region.name} covers dead core {phys} (seed {seed})"
                )

    @pytest.mark.parametrize("seed", [1, 7])
    def test_search_is_deterministic(self, seed):
        defects_a = tiny_defects(11)
        defects_b = tiny_defects(11)
        a = plan_placement(TINY, IPU, defects_a,
                           PlannerConfig(seed=seed, **FAST))
        b = plan_placement(TINY, IPU, defects_b,
                           PlannerConfig(seed=seed, **FAST))
        assert a.plan.to_dict() == b.plan.to_dict()

    def test_emitted_plan_is_validated_clean(self):
        result = plan_placement(TINY, IPU, tiny_defects(9),
                                PlannerConfig(seed=0, **FAST))
        plan = result.plan
        assert plan.is_validated
        assert plan.validation.findings == []
        assert plan.validation.reconcile_ok
        assert plan.validation.sanitize_ok
        assert plan.validation.budgets_ok

    def test_planner_at_least_paper_on_degraded_fabric(self):
        defects = tiny_defects(5)
        cfg = PlannerConfig(seed=0, **FAST)
        plan = plan_placement(TINY, IPU, defects, cfg).plan
        paper = paper_default_plan(TINY, IPU, defects, cfg)
        assert plan.decode_tokens_per_s >= paper.decode_tokens_per_s

    def test_spares_disjoint_from_live_regions(self):
        plan = plan_placement(TINY, IPU, tiny_defects(3),
                              PlannerConfig(seed=0, spare_count=2,
                                            **FAST)).plan
        for spare in plan.spare_regions:
            assert not spare.overlaps(plan.decode_region)
        for i, a in enumerate(plan.spare_regions):
            for b in plan.spare_regions[i + 1:]:
                assert not a.overlaps(b)

    def test_too_small_fabric_rejected(self):
        with pytest.raises(ConfigurationError):
            PlacementPlanner(TINY, WSE2.submesh(6, 6))


# ----------------------------------------------------------------------
# Rejection: findings travel with the killed candidate (satellite 3)
# ----------------------------------------------------------------------

class TestRejection:
    def test_budget_breach_is_a_finding(self):
        planner = PlacementPlanner(TINY, IPU, tiny_defects(9),
                                   PlannerConfig(seed=0, **FAST))
        plan = planner._assemble(16, 8, 2, evals=0)
        validation = validate_plan(
            plan, planner.view, TINY,
            ValidationBudgets(min_kv_tokens=10 ** 9, probe_side=4),
        )
        assert not validation.ok
        assert any(f.rule == "memory-budget" for f in validation.findings)

    def test_search_rejections_carry_findings(self, monkeypatch):
        """A killed candidate's RejectedPlan records *why* it died."""
        import repro.placement.search as search_mod

        real_validate = search_mod.validate_plan
        calls = {"n": 0}

        def flaky_validate(plan, view, model, budgets):
            calls["n"] += 1
            if calls["n"] == 1:
                return real_validate(
                    plan, view, model,
                    ValidationBudgets(min_kv_tokens=10 ** 9,
                                      probe_side=budgets.probe_side),
                )
            return real_validate(plan, view, model, budgets)

        monkeypatch.setattr(search_mod, "validate_plan", flaky_validate)
        result = plan_placement(TINY, IPU, tiny_defects(9),
                                PlannerConfig(seed=0, **FAST))
        assert result.plan.is_validated
        assert len(result.rejected) == 1
        rejection = result.rejected[0]
        assert rejection.findings, "rejection must carry its findings"
        assert any(f.rule == "memory-budget" for f in rejection.findings)
        assert "failed validation" in rejection.reason

    def test_all_candidates_dead_raises_placement_error(self):
        cfg = PlannerConfig(seed=0, context_len=10 ** 9, coarse_step=8,
                            seq_len=256, max_validation_attempts=2)
        with pytest.raises(PlacementError) as err:
            plan_placement(TINY, IPU, tiny_defects(9), cfg)
        assert "memory-budget" in str(err.value)


# ----------------------------------------------------------------------
# Plan threading: system, transformer, serving
# ----------------------------------------------------------------------

class TestPlanThreading:
    @pytest.fixture(scope="class")
    def plan(self):
        return plan_placement(TINY, IPU, tiny_defects(5),
                              PlannerConfig(seed=0, **FAST)).plan

    def test_system_answers_from_plan(self, plan):
        system = WaferLLMSystem(IPU, plan=plan)
        assert system.prefill_grid(TINY) == min(plan.prefill_grid,
                                                min(IPU.mesh_width,
                                                    IPU.mesh_height))
        assert system.decode_grid(TINY) == plan.decode_grid
        # Other models still fall back to the paper tables.
        other = get_model("tiny-mha")
        assert system.decode_grid(other) != plan.decode_grid or \
            not plan.matches(other.name)

    def test_transformer_uses_probe_grid(self, plan):
        from repro.llm.checkpoint import synthesize_weights
        from repro.llm.distributed import WaferTransformer

        weights = synthesize_weights(TINY, seed=42)
        wt = WaferTransformer(weights, plan=plan)
        assert wt.ops.grid == plan.functional_grid

    def test_server_takes_region_and_spares_from_plan(self, plan):
        from repro.serving import WaferServer

        server = WaferServer(TINY, IPU, plan=plan)
        assert server.region is plan.decode_region
        assert [r.name for r in server._spare_pool] == [
            r.name for r in plan.spare_regions
        ]

    def test_server_rejects_mismatched_plan(self, plan):
        from repro.serving import WaferServer

        with pytest.raises(ConfigurationError):
            WaferServer(get_model("tiny-mha"), IPU, plan=plan)

    def test_plan_matches_quantized_variants(self, plan):
        assert plan.matches("tiny-gqa")
        assert plan.matches("tiny-gqa[int8]")
        assert not plan.matches("tiny-mha")


# ----------------------------------------------------------------------
# Legacy shims (acceptance: old imports still work)
# ----------------------------------------------------------------------

class TestShims:
    def test_autotune_shim_importable(self):
        from repro.llm.autotune import (  # noqa: F401
            AutotuneResult,
            autotune,
            compare_with_paper_configs,
        )

    def test_unimodal_search_shim(self):
        from repro.llm.autotune import _unimodal_search

        best, value, evals = _unimodal_search(
            lambda g: -(g - 137) ** 2, 8, 300, 10
        )
        assert best == 137 and value == 0 and evals > 20

    def test_region_reshard_cost_delegates(self):
        from repro.runtime.placement import region_reshard_cost

        model = get_model("llama3-8b")
        legacy = region_reshard_cost(model, WSE2, 360)
        region = decode_carve_for_grid(360)
        assert legacy.total_cycles == reshard_cost(
            model, WSE2, region
        ).total_cycles
        with pytest.raises(ConfigurationError):
            region_reshard_cost(model, WSE2, 0)


# ----------------------------------------------------------------------
# CLI (satellite 5's CI gate, exercised in-process)
# ----------------------------------------------------------------------

class TestPlaceCLI:
    def test_smoke_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["place", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "valid" in out

    def test_smoke_json_payload(self, capsys):
        from repro.cli import main

        assert main(["place", "--smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["validation"]["ok"] is True
        assert payload["plan"]["decode_tokens_per_s"] > \
            payload["paper"]["decode_tokens_per_s"]


# ----------------------------------------------------------------------
# Lint rule (satellite 5)
# ----------------------------------------------------------------------

class TestCarveOutLintRule:
    CODE = (
        "from repro.placement.plan import RegionCarveOut\n"
        "r = RegionCarveOut('r', 0, 0, 4, 4)\n"
    )

    def _rules(self, rel_path):
        from repro.analysis.lint import lint_source

        return {f.rule for f in lint_source(self.CODE, rel_path)}

    def test_flags_outside_planner(self):
        assert "region-carveout-outside-planner" in self._rules(
            "src/repro/serving/fake.py"
        )

    def test_silent_inside_planner(self):
        assert "region-carveout-outside-planner" not in self._rules(
            "src/repro/placement/fake.py"
        )

    def test_silent_outside_src(self):
        assert "region-carveout-outside-planner" not in self._rules(
            "tools/fake.py"
        )

    def test_shims_carry_inline_allowances(self):
        """The whole tree lints clean: the two legacy shims suppress the
        rule inline (``# plmr: allow=``) so the baseline stays empty."""
        from repro.analysis.lint import lint_tree
        from repro.analysis.lint.baseline import load_baseline
        from repro.analysis.lint.engine import REPO_ROOT

        findings = [f for f in lint_tree()
                    if f.rule == "region-carveout-outside-planner"]
        assert findings == []
        assert load_baseline() == set()
        for shim in ("src/repro/llm/autotune.py",
                     "src/repro/runtime/placement.py"):
            source = (REPO_ROOT / shim).read_text(encoding="utf-8")
            assert "plmr: allow=region-carveout-outside-planner" in source
