"""Tests for the Section 8 future-direction projections."""

import pytest

from repro.core import DOJO_LIKE, TENSTORRENT_LIKE, WSE2, WSE3
from repro.errors import ConfigurationError
from repro.llm.config import LLAMA2_13B, LLAMA3_8B
from repro.llm.projections import (
    cross_device_kernels,
    resident_decode_projection,
    sow_density_projection,
    wider_variant,
    width_study,
)


class TestResidentDecode:
    def test_13b_reaches_paper_projection(self):
        # Section 8: "potentially reaching 10,000 tokens per second for
        # Llama-13B on a single chip".
        projection = resident_decode_projection(LLAMA2_13B, WSE2, 375)
        assert 6_000 < projection.projected_tokens_per_s < 16_000
        assert projection.speedup == projection.stages

    def test_8b_speedup_matches_stage_count(self):
        projection = resident_decode_projection(LLAMA3_8B, WSE2, 360)
        assert projection.stages >= 4
        assert projection.projected_tokens_per_s > \
            projection.current_tokens_per_s


class TestWiderModels:
    def test_parameter_count_roughly_preserved(self):
        wide = wider_variant(LLAMA3_8B, 4.0)
        assert wide.total_params == pytest.approx(
            LLAMA3_8B.total_params, rel=0.35)

    def test_width_and_depth_move_oppositely(self):
        wide = wider_variant(LLAMA3_8B, 4.0)
        assert wide.d_model > LLAMA3_8B.d_model
        assert wide.num_layers < LLAMA3_8B.num_layers

    def test_head_dim_preserved(self):
        wide = wider_variant(LLAMA3_8B, 2.0)
        assert wide.head_dim == LLAMA3_8B.head_dim

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            wider_variant(LLAMA3_8B, 0.5)

    def test_wider_decodes_faster_on_wafer(self):
        # The paper's model-design thesis: fewer, wider layers suit the
        # wafer (shorter sequential chain per token).
        rows = width_study(LLAMA3_8B, WSE2, grid=360,
                           factors=(1.0, 2.0, 4.0))
        rates = [row["decode_tok_s"] for row in rows]
        assert rates == sorted(rates)
        assert rates[-1] > 1.5 * rates[0]


class TestCrossDevice:
    def test_mesh_kernels_never_worse_at_scale(self):
        # Section 8's claim targets large meshes; on wafer-class fabrics
        # the mesh kernels strictly win.
        rows = cross_device_kernels([WSE2, WSE3, DOJO_LIKE])
        for row in rows:
            assert row["meshgemm"] <= row["cannon"] * 1.001, row["device"]
            assert row["meshgemm"] <= row["summa"] * 1.001, row["device"]
            assert row["meshgemv"] <= row["pipeline_gemv"] * 1.001, row["device"]

    def test_tiny_mesh_chip_within_noise(self):
        # On a 14x10-core chip the algorithms converge: hop counts are
        # single-digit, so overheads dominate and "at least not worse"
        # holds only within a small tolerance.
        row = cross_device_kernels([TENSTORRENT_LIKE])[0]
        assert row["meshgemm"] <= row["summa"] * 1.15
        assert row["meshgemv"] <= row["pipeline_gemv"] * 1.25

    def test_wse3_faster_than_wse2(self):
        rows = {r["device"]: r for r in cross_device_kernels([WSE2, WSE3])}
        assert rows["cerebras-wse3"]["meshgemm"] < \
            rows["cerebras-wse2"]["meshgemm"]


class TestSoWScaling:
    def test_density_scales_cores(self):
        projection = sow_density_projection(WSE2, LLAMA3_8B, 40.0)
        assert projection["future_cores"] == pytest.approx(
            40 * projection["base_cores"], rel=0.05)

    def test_prefill_benefits_from_density(self):
        projection = sow_density_projection(WSE2, LLAMA3_8B, 16.0)
        assert projection["future_prefill_tok_s"] > \
            projection["base_prefill_tok_s"]

    def test_latency_variance_grows_with_side(self):
        projection = sow_density_projection(WSE2, LLAMA3_8B, 4.0)
        assert projection["future_latency_variance"] > WSE2.latency_variance

    def test_invalid_density(self):
        with pytest.raises(ConfigurationError):
            sow_density_projection(WSE2, LLAMA3_8B, 0.5)
