"""Tests for tensor layouts and transitions (the paper's E_x F_y notation)."""

import pytest

from repro.core import WSE2
from repro.errors import PlacementError
from repro.llm.tensor_layout import (
    AxisMap,
    TensorLayout,
    activation_decode_layout,
    activation_prefill_layout,
    weight_layout,
    weight_layout_decode,
)


class TestLayoutBasics:
    def test_both_dims_same_axis_rejected(self):
        with pytest.raises(PlacementError):
            TensorLayout(4, 4, AxisMap.PARTITION_X, AxisMap.PARTITION_X)

    def test_invalid_dims(self):
        with pytest.raises(PlacementError):
            TensorLayout(0, 4, AxisMap.PARTITION_X, AxisMap.PARTITION_Y)

    def test_tile_shape_full_partition(self):
        layout = weight_layout(4096, 14336)
        assert layout.tile_shape(660, 660) == (7, 22)

    def test_tile_shape_with_replication(self):
        layout = activation_decode_layout(4096)  # E_y, L replicated
        assert layout.tile_shape(360, 360) == (12, 1)

    def test_bytes_per_core(self):
        layout = weight_layout(100, 100)
        assert layout.bytes_per_core(10, 10) == 10 * 10 * 2

    def test_replication_factor(self):
        assert weight_layout(8, 8).replication_factor(4, 4) == 1
        assert activation_decode_layout(8).replication_factor(4, 4) == 4

    def test_total_bytes(self):
        assert weight_layout(10, 10).total_bytes() == 200


class TestNotation:
    def test_prefill_activation_notation(self):
        layout = activation_prefill_layout(4096, 4096)
        assert layout.notation("L", "E") == "L_y E_x"

    def test_decode_activation_notation(self):
        layout = activation_decode_layout(4096)
        assert layout.notation("E", "L") == "E_y L^x"

    def test_weight_notation(self):
        assert weight_layout(8, 8).notation("E", "F") == "E_y F_x"
        assert weight_layout_decode(8, 8).notation("E", "F") == "E_x F_y"


class TestTransitions:
    def test_same_layout_cheap(self):
        layout = weight_layout(4096, 4096)
        cost = layout.transition_cost(layout, WSE2)
        assert cost.total_cycles > 0  # still streams once in this model

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PlacementError):
            weight_layout(4, 4).transition_cost(weight_layout(8, 8), WSE2)

    def test_transition_much_cheaper_than_decode_token(self):
        # Section 4.4: the prefill->decode transition "completes
        # instantly" relative to generation.  One W_O re-placement must
        # be far below a decode step (~0.4 ms).
        pre = weight_layout(4096, 4096)
        dec = weight_layout_decode(4096, 4096)
        cost = pre.transition_cost(dec, WSE2)
        assert cost.seconds < 1e-4

    def test_bigger_tensors_cost_more(self):
        small = weight_layout(1024, 1024)
        big = weight_layout(8192, 8192)
        assert big.transition_cost(weight_layout_decode(8192, 8192), WSE2).total_cycles > \
            small.transition_cost(weight_layout_decode(1024, 1024), WSE2).total_cycles
