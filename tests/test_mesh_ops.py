"""Tests for the padded mesh-op wrappers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.llm.mesh_ops import MeshOpContext


@pytest.fixture
def ops() -> MeshOpContext:
    return MeshOpContext(grid=4)


class TestMatrixOps:
    def test_gemm_odd_shapes(self, ops, rng):
        a = rng.standard_normal((5, 7))
        b = rng.standard_normal((7, 3))
        assert np.allclose(ops.gemm(a, b), a @ b)

    def test_gemm_shape_mismatch(self, ops):
        with pytest.raises(ShapeError):
            ops.gemm(np.zeros((2, 3)), np.zeros((4, 2)))

    def test_gemm_t(self, ops, rng):
        a = rng.standard_normal((5, 6))
        b = rng.standard_normal((9, 6))
        assert np.allclose(ops.gemm_t(a, b), a @ b.T)

    def test_gemm_t_mismatch(self, ops):
        with pytest.raises(ShapeError):
            ops.gemm_t(np.zeros((2, 3)), np.zeros((4, 5)))

    def test_gemv(self, ops, rng):
        a = rng.standard_normal(10)
        b = rng.standard_normal((10, 6))
        assert np.allclose(ops.gemv(a, b), a @ b)

    def test_gemv_rejects_matrix(self, ops):
        with pytest.raises(ShapeError):
            ops.gemv(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_small_grid_context(self, rng):
        ops = MeshOpContext(grid=2)
        a = rng.standard_normal((3, 3))
        assert np.allclose(ops.gemm(a, a), a @ a)


class TestReductionOps:
    def test_reduce_sum(self, ops, rng):
        x = rng.standard_normal(37)
        assert ops.reduce_sum(x) == pytest.approx(x.sum())

    def test_reduce_max(self, ops, rng):
        x = rng.standard_normal(23)
        assert ops.reduce_max(x) == pytest.approx(x.max())

    def test_rms_norm_matches_dense(self, ops, rng):
        from repro.llm.reference import rms_norm
        x = rng.standard_normal(16)
        w = rng.standard_normal(16)
        assert np.allclose(ops.rms_norm(x, w, 1e-5), rms_norm(x, w, 1e-5))

    def test_softmax_matches_dense(self, ops, rng):
        from repro.llm.reference import softmax
        x = rng.standard_normal(11)
        assert np.allclose(ops.softmax(x), softmax(x))

    def test_softmax_with_mask(self, ops):
        x = np.array([0.5, -np.inf, 0.5, -np.inf])
        probs = ops.softmax(x)
        assert probs[1] == 0.0 and probs[3] == 0.0
        assert probs.sum() == pytest.approx(1.0)

    def test_softmax_fully_masked_rejected(self, ops):
        with pytest.raises(ShapeError):
            ops.softmax(np.array([-np.inf, -np.inf]))

    def test_row_variants(self, ops, rng):
        from repro.llm.reference import rms_norm, softmax
        x = rng.standard_normal((3, 8))
        w = np.ones(8)
        assert np.allclose(ops.rms_norm_rows(x, w, 1e-5), rms_norm(x, w, 1e-5))
        assert np.allclose(ops.softmax_rows(x), softmax(x, axis=-1))


class TestAccounting:
    def test_traces_accumulate(self, ops, rng):
        before = ops.total_kernels()
        ops.gemm(rng.standard_normal((4, 4)), rng.standard_normal((4, 4)))
        ops.reduce_sum(np.ones(8))
        assert ops.total_kernels() == before + 2

    def test_max_paths_empty(self):
        assert MeshOpContext().max_paths_per_core() == 0
