"""Invariants of the chunked-prefill serving loop.

Each test serves a seeded trace and checks a property that must hold on
*every* schedule: request conservation, the KV budget, monotone
per-request timelines, priority ordering under contention, and
bit-for-bit determinism.  Both modes are covered — the invariants are
mode-independent even though the schedules differ.
"""

from __future__ import annotations

import pytest

from repro.core import WSE2
from repro.llm import LLAMA3_8B
from repro.mesh import FaultInjector
from repro.serving import Request, WaferServer, compare_modes, synthetic_trace

MODES = ("chunked", "exclusive")


def _trace(**overrides):
    spec = dict(
        num_requests=12, seed=99, mean_interarrival_s=0.02,
        seq_in_range=(128, 1024), seq_out_range=(16, 64),
        ttft_slo_s=1.0, tpot_slo_s=0.05,
    )
    spec.update(overrides)
    return synthetic_trace(**spec)


def _serve(mode, requests, **kwargs):
    server = WaferServer(LLAMA3_8B, WSE2, mode=mode, max_batch=8, **kwargs)
    return server.serve(requests)


class TestConservation:
    @pytest.mark.parametrize("mode", MODES)
    def test_every_request_accounted_for(self, mode):
        requests = _trace()
        metrics = _serve(mode, requests)
        # The loop only returns once nothing is in flight, so
        # submitted = finished + rejected exactly.
        assert metrics.submitted == len(requests)
        assert metrics.finished + len(metrics.rejected) == metrics.submitted
        finished_ids = {s.request.request_id for s in metrics.completed}
        rejected_ids = {r.request_id for r in metrics.rejected}
        assert finished_ids.isdisjoint(rejected_ids)
        assert finished_ids | rejected_ids == {
            r.request_id for r in requests
        }

    @pytest.mark.parametrize("mode", MODES)
    def test_decode_tokens_match_completions(self, mode):
        metrics = _serve(mode, _trace())
        assert metrics.total_decode_tokens == sum(
            s.request.seq_out for s in metrics.completed
        )


class TestKVBudget:
    @pytest.mark.parametrize("mode", MODES)
    def test_never_exceeded_at_any_event(self, mode):
        metrics = _serve(mode, _trace())
        assert metrics.events
        assert all(
            e.kv_tokens <= metrics.kv_capacity_tokens for e in metrics.events
        )
        assert 0 < metrics.peak_kv_tokens <= metrics.kv_capacity_tokens
        assert metrics.peak_kv_tokens == max(
            e.kv_tokens for e in metrics.events
        )


class TestTimelines:
    @pytest.mark.parametrize("mode", MODES)
    def test_monotone_per_request(self, mode):
        metrics = _serve(mode, _trace())
        assert metrics.completed
        for s in metrics.completed:
            assert s.request.arrival_s <= s.prefill_start_s
            assert s.prefill_start_s <= s.decode_start_s
            assert s.decode_start_s < s.first_token_s
            assert s.first_token_s <= s.finish_s
            assert s.prefill_chunks >= 1

    @pytest.mark.parametrize("mode", MODES)
    def test_events_cover_makespan_without_overlap(self, mode):
        metrics = _serve(mode, _trace())
        events = metrics.events
        for prev, cur in zip(events, events[1:]):
            assert prev.end_s <= cur.start_s + 1e-12
        assert events[-1].end_s == pytest.approx(metrics.makespan_s)


class TestPriorityOrdering:
    def test_high_priority_preempts_and_finishes_first(self):
        # Background prompt hogs the prefill slot; an urgent arrival
        # must preempt it at a chunk boundary and finish first.
        requests = [
            Request(0, seq_in=2048, seq_out=64, arrival_s=0.0, priority=0),
            Request(1, seq_in=256, seq_out=16, arrival_s=0.001, priority=1),
        ]
        metrics = _serve("chunked", requests)
        stats = {s.request.request_id: s for s in metrics.completed}
        assert metrics.preemptions >= 1
        assert stats[0].preemptions >= 1
        assert stats[1].finish_s < stats[0].finish_s

    def test_equal_priority_is_deadline_ordered(self):
        # Same priority, no contention trickery: the tighter deadline
        # gets the slot first despite arriving at the same instant.
        requests = [
            Request(0, seq_in=512, seq_out=16, arrival_s=0.0,
                    priority=0, ttft_slo_s=5.0),
            Request(1, seq_in=512, seq_out=16, arrival_s=0.0,
                    priority=0, ttft_slo_s=2.0),
        ]
        metrics = _serve("chunked", requests)
        stats = {s.request.request_id: s for s in metrics.completed}
        assert stats[1].prefill_start_s <= stats[0].prefill_start_s


class TestDeterminism:
    @pytest.mark.parametrize("mode", MODES)
    def test_same_seed_same_metrics(self, mode):
        first = _serve(mode, _trace())
        second = _serve(mode, _trace())
        assert first.makespan_s == second.makespan_s
        assert first.goodput_tokens_per_s == second.goodput_tokens_per_s
        assert first.events == second.events
        assert [s.finish_s for s in first.completed] == [
            s.finish_s for s in second.completed
        ]

    def test_compare_modes_is_reproducible(self):
        trace = _trace(num_requests=8)
        a = compare_modes(LLAMA3_8B, WSE2, trace, max_batch=8,
                          failure_rate=0.1, seed=5)
        b = compare_modes(LLAMA3_8B, WSE2, trace, max_batch=8,
                          failure_rate=0.1, seed=5)
        for mode in MODES:
            assert a[mode].makespan_s == b[mode].makespan_s
            assert a[mode].retries == b[mode].retries


class TestFaultRetry:
    @pytest.mark.parametrize("mode", MODES)
    def test_trace_completes_under_faults(self, mode):
        injector = FaultInjector(0.2, seed=3)
        requests = _trace(num_requests=8, ttft_slo_s=None, tpot_slo_s=None)
        metrics = _serve(mode, requests, fault_injector=injector)
        assert metrics.retries > 0
        assert metrics.retries == sum(
            1 for e in metrics.events if e.kind == "retry"
        )
        assert metrics.finished == len(requests)
        assert injector.steps_killed == metrics.retries

    def test_faults_only_add_latency(self):
        requests = _trace(num_requests=8, ttft_slo_s=None, tpot_slo_s=None)
        clean = _serve("chunked", requests)
        faulty = _serve("chunked", requests,
                        fault_injector=FaultInjector(0.2, seed=3))
        assert faulty.makespan_s > clean.makespan_s
        assert faulty.finished == clean.finished
