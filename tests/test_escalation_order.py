"""Escalation-ladder ordering properties and health-ledger bounds.

Property tests for the serving layer's fault escalation contract:

* spare regions are promoted strictly in the planner's ranked order
  (``PlacementPlan.spare_regions``) — the plan's cheapest spare absorbs
  the first death, and so on down the list;
* with ``fail_on_exhausted_spares=True``,
  :class:`~repro.errors.SpareExhaustionError` fires on exactly the
  first death past the spare budget — never before, never instead of a
  remap that still had a spare to use;
* ``WaferServer.serve`` and incremental :class:`ServeEngine` stepping
  are the same simulation — any ``advance_to`` slicing of the clock
  reproduces the closed-form run bit for bit;
* the :class:`HealthMonitor` fault log is a bounded ring buffer whose
  aggregate counters keep counting past eviction.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.device_presets import PRESETS
from repro.errors import (
    ConfigurationError,
    FaultEscalationError,
    SpareExhaustionError,
)
from repro.llm.config import get_model
from repro.mesh.faults import FaultEvent, FaultSchedule
from repro.placement import PlannerConfig, plan_placement
from repro.mesh.remap import DefectMap
from repro.serving import (
    HealthMonitor,
    Request,
    ServeEngine,
    WaferServer,
    synthetic_trace,
)

IPU = PRESETS["ipu-like-crossbar"]
TINY = get_model("tiny-gqa")


def small_server(**kwargs) -> WaferServer:
    defaults = dict(chunk_tokens=64, default_context_len=256)
    defaults.update(kwargs)
    return WaferServer(TINY, IPU, **defaults)


def small_trace(n: int = 8, seed: int = 0):
    return synthetic_trace(
        n, seed=seed, mean_interarrival_s=0.0,
        seq_in_range=(64, 128), seq_out_range=(8, 16),
    )


def death_schedule(makespan_s: float, n_deaths: int) -> FaultSchedule:
    """Deaths spread across the busy window, one per step window."""
    return FaultSchedule(events=[
        FaultEvent(at_s=makespan_s * (0.15 + 0.12 * k), kind="core_dead",
                   detail=f"death#{k}")
        for k in range(n_deaths)
    ])


@pytest.fixture(scope="module")
def clean_makespan() -> float:
    return small_server().serve(small_trace()).makespan_s


# ----------------------------------------------------------------------
# Spare promotion order
# ----------------------------------------------------------------------

class TestSparePromotionOrder:
    @pytest.fixture(scope="class")
    def plan(self):
        defects = DefectMap.generate(
            IPU.mesh_width, IPU.mesh_height, seed=5,
            dead_core_rate=0.01, dead_link_rate=0.01,
            degraded_link_rate=0.02, degraded_factor=0.5,
        )
        config = PlannerConfig(seed=0, coarse_step=8, seq_len=256,
                               context_len=64, spare_count=2)
        return plan_placement(TINY, IPU, defects, config).plan

    def test_planner_emits_ranked_spares(self, plan):
        assert len(plan.spare_regions) == 2

    def test_deaths_consume_spares_in_planner_order(self, plan,
                                                    clean_makespan):
        """Each core death promotes the next spare the planner ranked,
        in exactly the order ``plan.spare_regions`` lists them."""
        server = small_server(
            plan=plan, fault_schedule=death_schedule(clean_makespan, 2),
        )
        engine = ServeEngine(server, small_trace())
        promoted = []
        region = engine.live_region
        while engine.active:
            engine.step()
            if engine.live_region is not region:
                promoted.append(engine.live_region.name)
                region = engine.live_region
        metrics = engine.finish()
        assert metrics.remaps == 2
        assert promoted == [r.name for r in plan.spare_regions]

    def test_remap_log_records_the_promoted_spare(self, plan,
                                                  clean_makespan):
        server = small_server(
            plan=plan, fault_schedule=death_schedule(clean_makespan, 1),
        )
        metrics = server.serve(small_trace())
        remap_entries = [e for e in metrics.fault_log if e.action == "remap"]
        assert len(remap_entries) == 1
        assert remap_entries[0].detail.endswith(
            f"-> {plan.spare_regions[0].name}"
        )


# ----------------------------------------------------------------------
# Exhaustion timing (the hypothesis property)
# ----------------------------------------------------------------------

class TestSpareExhaustionTiming:
    @settings(max_examples=25, deadline=None)
    @given(spares=st.integers(0, 2), deaths=st.integers(0, 4))
    def test_error_fires_exactly_when_pool_exhausted(
        self, spares, deaths, clean_makespan
    ):
        """In fleet mode the ladder raises on precisely death number
        ``spares + 1``: every earlier death remaps, and a run with
        ``deaths <= spares`` finishes with one remap per death."""
        server = small_server(
            spare_regions=spares,
            fail_on_exhausted_spares=True,
            fault_schedule=death_schedule(clean_makespan, deaths),
        )
        if deaths <= spares:
            metrics = server.serve(small_trace())
            assert metrics.finished == 8
            assert metrics.remaps == deaths
            assert metrics.degradations == 0
        else:
            with pytest.raises(SpareExhaustionError) as err:
                server.serve(small_trace())
            assert err.value.deaths == spares + 1
            assert err.value.spares_used == spares

    def test_exhaustion_is_an_escalation_error(self):
        # The fleet catches FaultEscalationError; spare exhaustion must
        # arrive through that contract.
        assert issubclass(SpareExhaustionError, FaultEscalationError)

    def test_lone_wafer_degrades_instead(self, clean_makespan):
        """Without the fleet flag the same schedule degrades in place —
        the pre-fleet behaviour is untouched."""
        server = small_server(
            spare_regions=1,
            fault_schedule=death_schedule(clean_makespan, 2),
        )
        metrics = server.serve(small_trace())
        assert metrics.remaps == 1
        assert metrics.degradations == 1


# ----------------------------------------------------------------------
# serve() == stepping
# ----------------------------------------------------------------------

class TestServeEngineEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), slices=st.integers(1, 7))
    def test_any_clock_slicing_matches_closed_form(self, seed, slices):
        trace = small_trace(6, seed=seed)
        closed = small_server().serve(trace)
        engine = ServeEngine(small_server(), trace)
        dt = max(closed.makespan_s / slices, 1e-9)
        target = 0.0
        while engine.active:
            target += dt
            engine.advance_to(target)
        sliced = engine.finish()
        assert sliced.makespan_s == closed.makespan_s
        assert sliced.total_decode_tokens == closed.total_decode_tokens
        assert [s.finish_s for s in sliced.completed] == \
            [s.finish_s for s in closed.completed]
        assert len(sliced.events) == len(closed.events)

    def test_submit_mid_run_is_admitted_at_engine_clock(self):
        engine = ServeEngine(small_server(), small_trace(4))
        while engine.active and engine.now <= 0:
            engine.step()
        late = Request(99, seq_in=64, seq_out=8, arrival_s=0.0)
        engine.submit(late)
        metrics = engine.run()
        stats = next(
            s for s in metrics.completed if s.request.request_id == 99
        )
        assert stats.finish_s > 0

    def test_drained_engine_refuses_submissions(self):
        engine = ServeEngine(small_server(), small_trace(4))
        engine.step()
        snapshots = engine.drain()
        assert snapshots and engine.drained
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            engine.submit(Request(99, seq_in=64, seq_out=8))

    def test_drain_conserves_requests(self):
        trace = small_trace(6)
        engine = ServeEngine(small_server(), trace)
        for _ in range(3):
            engine.step()
        snapshots = engine.drain()
        metrics = engine.finish()
        assert len(metrics.completed) + len(metrics.rejected) == len(trace)
        assert {s.request.request_id for s in snapshots} <= \
            {r.request_id for r in metrics.rejected}


# ----------------------------------------------------------------------
# Health ledger ring buffer
# ----------------------------------------------------------------------

class TestHealthRingBuffer:
    def test_log_bounded_with_dropped_counter(self):
        monitor = HealthMonitor(max_log_entries=4)
        for k in range(7):
            monitor.record_fault(float(k), "transient", "retry",
                                 downtime_s=0.1, detail=f"f{k}")
        assert len(monitor.log) == 4
        assert monitor.dropped_entries == 3
        assert [e.detail for e in monitor.log] == ["f3", "f4", "f5", "f6"]

    def test_aggregates_survive_eviction(self):
        monitor = HealthMonitor(max_log_entries=2)
        for k in range(6):
            monitor.record_fault(float(k), "transient", "retry",
                                 downtime_s=0.5)
        assert monitor.incidents == 6
        assert monitor.downtime_s == pytest.approx(3.0)
        assert monitor.mttr_s == pytest.approx(0.5)
        assert monitor.action_counts() == {"retry": 6}

    def test_unbounded_when_configured(self):
        monitor = HealthMonitor(max_log_entries=None)
        for k in range(5000):
            monitor.record_fault(float(k), "transient", "retry")
        assert len(monitor.log) == 5000
        assert monitor.dropped_entries == 0

    def test_bound_validation(self):
        with pytest.raises(ConfigurationError):
            HealthMonitor(max_log_entries=0)

    def test_serving_run_respects_small_bound(self, clean_makespan):
        monitor = HealthMonitor(max_log_entries=1)
        server = small_server(
            health=monitor,
            fault_schedule=death_schedule(clean_makespan, 2),
        )
        metrics = server.serve(small_trace())
        assert len(monitor.log) == 1
        assert monitor.dropped_entries >= 1
        # The metrics report carries only the retained window, but the
        # downtime ledger kept the full story.
        assert len(metrics.fault_log) == 1
        assert metrics.remaps + metrics.degradations == 2
        assert monitor.incidents == 2
