"""Compiled execution: capture/replay, vectorized compute, copy elision.

The differential sweep at the heart of this file holds the compiled
layer to one standard: a replayed (or vectorized, or cached) run must be
**bit-exact** with the eager reference and leave behind a trace the
sanitizer and the plan reconciler accept unchanged — on a clean fabric
and on a remapped/degraded one.
"""

import numpy as np
import pytest

from repro.analysis.sanitize import policy_for_machine, sanitize_trace
from repro.core.device_presets import TINY_MESH
from repro.errors import SimulationError
from repro.gemm.base import GemmShape
from repro.gemm.gemm_t import MeshGEMMTransposed
from repro.gemm.meshgemm import MeshGEMM
from repro.gemv.base import GemvShape
from repro.gemv.meshgemv import MeshGEMV
from repro.llm.checkpoint import synthesize_weights
from repro.llm.config import TINY_MHA
from repro.llm.distributed import WaferTransformer
from repro.llm.mesh_ops import MeshOpContext
from repro.mesh.fabric import Flow
from repro.mesh.machine import MeshMachine
from repro.mesh.program import ProgramReplayError
from repro.mesh.reconcile import reconcile
from repro.mesh.remap import DefectMap, normalize_link

GRID = 4
DIM = 8  # divisible by GRID; 2x2 tiles


def _clean_machine(vectorize: bool = False) -> MeshMachine:
    return MeshMachine(TINY_MESH.submesh(GRID, GRID), vectorize=vectorize)


def _defective_machine(vectorize: bool = False) -> MeshMachine:
    """A 5x5 physical fabric remapped down to the 4x4 logical grid."""
    defects = DefectMap(
        GRID + 1, GRID + 1,
        dead_cores=frozenset({(2, 2)}),
        dead_links=frozenset({normalize_link((0, 1), (1, 1))}),
        degraded_links={normalize_link((3, 0), (3, 1)): 0.5},
    )
    return MeshMachine(
        TINY_MESH.submesh(GRID + 1, GRID + 1),
        defects=defects,
        logical_shape=(GRID, GRID),
        vectorize=vectorize,
    )


def _operands(rng, kernel):
    if kernel is MeshGEMV:
        return (rng.integers(-4, 5, size=(1, DIM)).astype(np.float64),
                rng.integers(-4, 5, size=(DIM, DIM)).astype(np.float64))
    return (rng.integers(-4, 5, size=(DIM, DIM)).astype(np.float64),
            rng.integers(-4, 5, size=(DIM, DIM)).astype(np.float64))


KERNELS = [MeshGEMM, MeshGEMV, MeshGEMMTransposed]


def _trace_signature(trace):
    """Everything observable about a trace, for structural comparison."""
    return (
        trace.comms,
        trace.computes,
        trace.barriers,
        trace._scopes,
        trace._next_seq,
        trace._next_group,
        trace.peak_memory_bytes,
        trace.core_peak_bytes,
    )


# ---------------------------------------------------------------------------
# Differential sweep: replayed == captured == eager, trace and all
# ---------------------------------------------------------------------------
class TestCaptureReplayDifferential:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("make_machine",
                             [_clean_machine, _defective_machine],
                             ids=["clean", "remapped"])
    def test_bit_exact_and_trace_identical(self, rng, kernel, make_machine):
        a, b = _operands(rng, kernel)
        eager = make_machine()
        expected = kernel.run(eager, a, b)

        captured_machine = make_machine()
        captured, program = kernel.capture_run(captured_machine, a, b)
        assert np.array_equal(captured, expected)

        a2, b2 = _operands(rng, kernel)
        expected2 = kernel.run(make_machine(), a2, b2)
        replay_machine = make_machine()
        replayed = kernel.replay_run(replay_machine, program, a2, b2)
        assert np.array_equal(replayed, expected2)

        reference = make_machine()
        kernel.run(reference, a2, b2)
        assert _trace_signature(replay_machine.trace) == _trace_signature(
            reference.trace
        )

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_replayed_trace_passes_sanitizer(self, rng, kernel):
        a, b = _operands(rng, kernel)
        machine = _clean_machine()
        _, program = kernel.capture_run(machine, a, b)
        replay_machine = _clean_machine()
        kernel.replay_run(replay_machine, program, a, b)
        report = sanitize_trace(
            replay_machine.trace,
            policy_for_machine(replay_machine),
            subject=f"replay:{kernel.name}",
        )
        assert not report.findings, [f.message for f in report.findings]

    @pytest.mark.parametrize(
        "kernel, plan",
        [
            (MeshGEMM, lambda: MeshGEMM.plan(GemmShape.square(DIM, 8), GRID)),
            (MeshGEMV, lambda: MeshGEMV.plan(GemvShape.square(DIM, 8), GRID)),
        ],
    )
    def test_replayed_trace_reconciles_with_plan(self, rng, kernel, plan):
        a, b = _operands(rng, kernel)
        _, program = kernel.capture_run(_clean_machine(), a, b)
        replay_machine = _clean_machine()
        kernel.replay_run(replay_machine, program, a, b)
        report = reconcile(plan(), replay_machine.trace,
                           replay_machine.device, name=kernel.name)
        assert report.ok, report.render()

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_defects_invalidate_clean_programs(self, rng, kernel):
        """A program captured on a clean fabric must not replay on a
        remapped one (routes, hops, and bandwidth factors all lie)."""
        a, b = _operands(rng, kernel)
        _, program = kernel.capture_run(_clean_machine(), a, b)
        degraded = _defective_machine()
        assert not program.compatible(degraded)
        with pytest.raises(ProgramReplayError):
            kernel.replay_run(degraded, program, a, b)

    def test_shape_change_rejected(self, rng):
        a, b = _operands(rng, MeshGEMV)
        _, program = MeshGEMV.capture_run(_clean_machine(), a, b)
        wide = np.concatenate([b, b], axis=1)
        with pytest.raises(ProgramReplayError):
            MeshGEMV.replay_run(_clean_machine(), program, a, wide)


# ---------------------------------------------------------------------------
# Vectorized tile compute
# ---------------------------------------------------------------------------
class TestVectorizedCompute:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("make_machine",
                             [_clean_machine, _defective_machine],
                             ids=["clean", "remapped"])
    def test_bit_exact_vs_scalar(self, rng, kernel, make_machine):
        a, b = _operands(rng, kernel)
        expected = kernel.run(make_machine(False), a, b)
        scalar_trace = make_machine(False)
        kernel.run(scalar_trace, a, b)
        vectorized = make_machine(True)
        assert np.array_equal(kernel.run(vectorized, a, b), expected)
        # Same MAC accounting, same phase structure.
        assert [c.macs for c in vectorized.trace.computes] == [
            c.macs for c in scalar_trace.trace.computes
        ]

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_capture_replay_composes_with_vectorize(self, rng, kernel):
        a, b = _operands(rng, kernel)
        expected = kernel.run(_clean_machine(False), a, b)
        _, program = kernel.capture_run(_clean_machine(True), a, b)
        replayed = kernel.replay_run(_clean_machine(True), program, a, b)
        assert np.array_equal(replayed, expected)


# ---------------------------------------------------------------------------
# Compiled MeshOpContext: decode/attention path end to end
# ---------------------------------------------------------------------------
class TestCompiledOpsContext:
    def test_transformer_prefill_decode_bit_exact(self):
        weights = synthesize_weights(TINY_MHA, seed=42)
        prompt = np.array([2, 7, 1, 5])
        eager = WaferTransformer(weights, ops=MeshOpContext())
        compiled = WaferTransformer(
            weights, ops=MeshOpContext(compiled=True, vectorize=True)
        )
        assert np.array_equal(compiled.prefill(prompt), eager.prefill(prompt))
        for token in (3, 1, 4):
            assert np.array_equal(
                compiled.decode_step(token), eager.decode_step(token)
            )

    def test_program_cache_reused_across_model_instances(self):
        weights = synthesize_weights(TINY_MHA, seed=42)
        ops = MeshOpContext(compiled=True)
        prompt = np.array([2, 7, 1, 5])
        first = WaferTransformer(weights, ops=ops)
        first.prefill(prompt)
        first.decode_step(3)
        stats = ops.program_cache_stats()
        assert stats["programs"] >= 1
        # A second model over the same weights and shapes replays the
        # cached programs — not a single new capture.
        second = WaferTransformer(weights, ops=ops)
        second.prefill(prompt)
        second.decode_step(3)
        assert ops.program_cache_stats() == stats

    def test_weight_stationary_gemv_multi_token(self, rng):
        weights = rng.standard_normal((DIM, DIM)).astype(np.float64)
        eager = MeshOpContext(grid=GRID)
        compiled = MeshOpContext(grid=GRID, compiled=True)
        for _ in range(5):
            vec = rng.standard_normal(DIM).astype(np.float64)
            assert np.array_equal(
                compiled.gemv(vec, weights), eager.gemv(vec, weights)
            )

    def test_reset_trace_forbidden_inside_capture(self):
        machine = _clean_machine()
        with pytest.raises(SimulationError):
            with machine.capture():
                machine.reset_trace()


# ---------------------------------------------------------------------------
# Multicast delivery: copy elision must never alias receivers
# ---------------------------------------------------------------------------
class TestMulticastIsolation:
    def test_receivers_never_alias(self):
        machine = _clean_machine()
        src = (0, 0)
        dsts = [(1, 0), (2, 0), (3, 0)]
        payload = np.arange(4.0)
        machine.place("t", src, payload)
        machine.communicate(
            "bcast", [Flow.multicast(src, dsts, "t", "t.in")]
        )
        tiles = [machine.core(d).load("t.in") for d in dsts]
        tiles[0][:] = -1.0  # in-place mutation on one receiver
        assert np.array_equal(tiles[1], np.arange(4.0))
        assert np.array_equal(tiles[2], np.arange(4.0))
        assert np.array_equal(machine.core(src).load("t"), np.arange(4.0))
        assert not np.shares_memory(tiles[0], payload)

    def test_shift_elision_transfers_ownership_once(self):
        """A permutation whose sources are overwritten in-phase may move
        buffers instead of copying, but only to the *first* destination
        and only for exclusively owned tiles."""
        machine = _clean_machine()
        coords = [(x, 0) for x in range(GRID)]
        for i, c in enumerate(coords):
            machine.place("ring", c, np.full(2, float(i)))
        # place() stores host views (non-exclusive): the first shift
        # must copy.  Deliveries store exclusively, so the second
        # shift's sources are elision-eligible.
        for step in range(2):
            flows = [
                Flow.unicast(coords[i], coords[(i + 1) % GRID],
                             "ring", "ring")
                for i in range(GRID)
            ]
            machine.communicate(f"shift-{step}", flows)
        values = [machine.core(c).load("ring") for c in coords]
        for i, c in enumerate(coords):
            assert np.array_equal(values[i], np.full(2, float((i - 2) % GRID)))
        # Mutating one core's buffer must not leak to any other.
        values[0][:] = 99.0
        for other in values[1:]:
            assert not np.array_equal(other, np.full(2, 99.0))

    def test_multicast_with_self_delivery_keeps_source_intact(self):
        machine = _clean_machine()
        src = (1, 1)
        machine.place("t", src, np.arange(3.0))
        machine.communicate(
            "fan", [Flow.multicast(src, [(1, 2), (1, 3)], "t", "t.in")]
        )
        a = machine.core((1, 2)).load("t.in")
        b = machine.core((1, 3)).load("t.in")
        assert not np.shares_memory(a, b)


# ---------------------------------------------------------------------------
# Bench harness
# ---------------------------------------------------------------------------
class TestBenchHarness:
    def test_smoke_bench_cli_writes_report(self, tmp_path):
        from repro.bench import simbench
        from repro.cli import main

        out = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--out", str(out),
                     "--baseline", str(out)]) == 0
        report = simbench.load_report(out)
        assert report is not None and report["smoke"] is True
        marks = report["benchmarks"]
        assert set(marks) == {"decode_gemv", "prefill_gemm", "allreduce"}
        for label, (bench, key) in simbench.RATIO_KEYS.items():
            assert marks[bench][key] > 0, label

    def test_regression_check_compares_ratios(self):
        from repro.bench import simbench

        baseline = {"benchmarks": {"decode_gemv": {
            "replay_vs_capture": 4.0, "replay_vs_eager": 3.0}}}
        good = {"benchmarks": {"decode_gemv": {
            "replay_vs_capture": 3.5, "replay_vs_eager": 2.9}}}
        bad = {"benchmarks": {"decode_gemv": {
            "replay_vs_capture": 2.0, "replay_vs_eager": 2.9}}}
        assert simbench.compare_to_baseline(good, baseline) == []
        warnings = simbench.compare_to_baseline(bad, baseline)
        assert len(warnings) == 1 and "replay_vs_capture" in warnings[0]

    def test_committed_report_is_current_schema(self):
        from pathlib import Path

        from repro.bench import simbench

        committed = Path(__file__).resolve().parents[1] / simbench.BENCH_FILENAME
        report = simbench.load_report(committed)
        assert report is not None, "BENCH_simulator.json missing at repo root"
        assert report["schema"] == simbench.SCHEMA_VERSION
        dec = report["benchmarks"]["decode_gemv"]
        assert dec["replay_vs_capture"] >= 3.0
