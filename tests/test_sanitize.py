"""The trace sanitizer: seeded-bad traces flagged, clean kernels silent."""

import numpy as np
import pytest

from repro.analysis.kernels import (
    INTENTIONAL_VIOLATORS,
    clean_kernel_names,
    run_kernel_checks,
    sanitize_attention,
    sanitize_clean_suite,
    sanitize_kernel,
    sanitize_kernel_remapped,
    _remapped_machine,
)
from repro.analysis.sanitize import (
    SanitizePolicy,
    physical_shift_bound,
    policy_for_machine,
    sanitize_machine,
    sanitize_trace,
)
from repro.core import PRESETS
from repro.mesh.machine import MeshMachine
from repro.mesh.trace import FlowRecord, Trace


def _comm(trace, step, pattern, flows, register=True):
    """Record one comm phase; ``register=False`` skips colour forwarding."""
    touched = {}
    if register:
        for flow in flows:
            touched.setdefault(flow.src, set()).add(pattern)
            for dst in flow.dsts:
                touched.setdefault(dst, set()).add(pattern)
    trace.record_comm(  # plmr: allow=raw-trace-record
        step, pattern,
        [f.hops for f in flows], [f.nbytes for f in flows],
        touched, flows=flows,
    )


def _rules(report):
    return {f.rule for f in report.findings}


# ----------------------------------------------------------------------
# seeded-bad traces: each violation class must be flagged
# ----------------------------------------------------------------------

def test_oversized_shift_flagged():
    trace = Trace()
    _comm(trace, 0, "bad-shift", [
        FlowRecord(src=(0, 0), dsts=((5, 0),), hops=5, nbytes=64,
                   src_name="t", dst_name="t"),
    ])
    report = sanitize_trace(trace, SanitizePolicy())
    assert "hop-bound" in _rules(report)
    assert "5 hops" in report.findings[0].message


def test_shift_within_bound_clean():
    trace = Trace()
    _comm(trace, 0, "good-shift", [
        FlowRecord(src=(0, 0), dsts=((2, 0),), hops=2, nbytes=64,
                   src_name="t", dst_name="t"),
    ])
    assert sanitize_trace(trace, SanitizePolicy()).ok


def test_non_shift_pattern_exempt_from_hop_bound():
    # Alignment skews legitimately span the line; only shift-like
    # patterns bind to the 2-hop INTERLEAVE bound.
    trace = Trace()
    _comm(trace, 0, "gemm-align-A", [
        FlowRecord(src=(0, 0), dsts=((7, 0),), hops=7, nbytes=64,
                   src_name="t", dst_name="t"),
    ])
    assert sanitize_trace(trace, SanitizePolicy()).ok


def test_memory_capacity_breach_flagged():
    trace = Trace()
    trace.note_memory(100_000, (1, 2))
    policy = SanitizePolicy(core_memory_bytes=48 * 1024)
    report = sanitize_trace(trace, policy)
    assert _rules(report) == {"memory-capacity"}
    assert "(1, 2)" in report.findings[0].message


def test_memory_within_budget_clean():
    trace = Trace()
    trace.note_memory(40_000, (1, 2))
    assert sanitize_trace(trace, SanitizePolicy(core_memory_bytes=48 * 1024)).ok


def test_routing_fanin_breach_flagged():
    trace = Trace()
    for i in range(4):
        _comm(trace, i, f"colour-{i}", [
            FlowRecord(src=(0, 0), dsts=((1, 0),), hops=1, nbytes=8,
                       src_name="t", dst_name="t"),
        ])
    report = sanitize_trace(trace, SanitizePolicy(max_paths_per_core=3))
    assert "routing-fanin" in _rules(report)
    assert sanitize_trace(trace, SanitizePolicy(max_paths_per_core=4)).ok


def test_unregistered_pattern_flagged():
    trace = Trace()
    _comm(trace, 0, "ghost", [
        FlowRecord(src=(0, 0), dsts=((1, 0),), hops=1, nbytes=8,
                   src_name="t", dst_name="t"),
    ], register=False)
    report = sanitize_trace(trace, SanitizePolicy())
    assert "unregistered-pattern" in _rules(report)
    # The same trace against an explicit registered set is clean.
    policy = SanitizePolicy(registered_patterns={"ghost"})
    assert sanitize_trace(trace, policy).ok


def test_missing_barrier_hazard_flagged():
    trace = Trace()
    scope = trace.begin_phase("ov", kind="overlap")
    _comm(trace, 0, "feed", [
        FlowRecord(src=(0, 0), dsts=((1, 0),), hops=1, nbytes=8,
                   src_name="t.out", dst_name="t.in"),
    ])
    trace.record_compute(0, "consume", [1.0], reads=("t.in",), writes=("acc",))  # plmr: allow=raw-trace-record
    trace.end_phase(scope)
    report = sanitize_trace(trace, SanitizePolicy())
    assert "barrier-hazard" in _rules(report)


def test_barrier_between_flow_and_compute_clears_hazard():
    trace = Trace()
    scope = trace.begin_phase("ov", kind="overlap")
    _comm(trace, 0, "feed", [
        FlowRecord(src=(0, 0), dsts=((1, 0),), hops=1, nbytes=8,
                   src_name="t.out", dst_name="t.in"),
    ])
    trace.record_barrier(0, "sync")  # plmr: allow=raw-trace-record
    trace.record_compute(0, "consume", [1.0], reads=("t.in",), writes=("acc",))  # plmr: allow=raw-trace-record
    trace.end_phase(scope)
    assert sanitize_trace(trace, SanitizePolicy()).ok


def test_compute_before_flow_is_not_a_hazard():
    # The sanctioned compute-shift ordering: the compute reads this
    # step's tiles while the shift delivers the *next* step's.
    trace = Trace()
    scope = trace.begin_phase("ov", kind="overlap")
    trace.record_compute(0, "mac", [1.0], reads=("a", "b"), writes=("c",))  # plmr: allow=raw-trace-record
    _comm(trace, 0, "loop-shift", [
        FlowRecord(src=(0, 0), dsts=((1, 0),), hops=1, nbytes=8,
                   src_name="a", dst_name="a"),
    ])
    trace.end_phase(scope)
    assert sanitize_trace(trace, SanitizePolicy()).ok


def test_deadlock_cycle_flagged():
    # Two communicate() calls in one overlap scope, each sourcing the
    # tile the other delivers: a cyclic wait.
    trace = Trace()
    scope = trace.begin_phase("exchange", kind="overlap")
    _comm(trace, 0, "east", [
        FlowRecord(src=(0, 0), dsts=((1, 0),), hops=1, nbytes=8,
                   src_name="t", dst_name="t"),
    ])
    _comm(trace, 0, "west", [
        FlowRecord(src=(1, 0), dsts=((0, 0),), hops=1, nbytes=8,
                   src_name="t", dst_name="t"),
    ])
    trace.end_phase(scope)
    report = sanitize_trace(trace, SanitizePolicy())
    assert "deadlock-cycle" in _rules(report)
    assert "east" in report.findings[0].message


def test_single_record_ring_exchange_sanctioned():
    # The same exchange issued as ONE communicate() call is safe: the
    # machine reads every source before writing any destination.
    trace = Trace()
    scope = trace.begin_phase("exchange", kind="overlap")
    _comm(trace, 0, "ring", [
        FlowRecord(src=(0, 0), dsts=((1, 0),), hops=1, nbytes=8,
                   src_name="t", dst_name="t"),
        FlowRecord(src=(1, 0), dsts=((0, 0),), hops=1, nbytes=8,
                   src_name="t", dst_name="t"),
    ])
    trace.end_phase(scope)
    assert sanitize_trace(trace, SanitizePolicy()).ok


def test_disjoint_tiles_no_deadlock():
    trace = Trace()
    scope = trace.begin_phase("mixed", kind="overlap")
    _comm(trace, 0, "shift-A", [
        FlowRecord(src=(0, 0), dsts=((1, 0),), hops=1, nbytes=8,
                   src_name="a", dst_name="a"),
    ])
    _comm(trace, 0, "shift-B", [
        FlowRecord(src=(1, 0), dsts=((0, 0),), hops=1, nbytes=8,
                   src_name="b", dst_name="b"),
    ])
    trace.end_phase(scope)
    assert sanitize_trace(trace, SanitizePolicy()).ok


# ----------------------------------------------------------------------
# kernel zoo: clean suite silent, intentional violators flagged
# ----------------------------------------------------------------------

def test_clean_kernel_suite_zero_findings():
    reports = sanitize_clean_suite(grid=4)
    assert len(reports) == len(clean_kernel_names())
    noisy = [r for r in reports if not r.ok]
    pretty = "\n".join(r.render() for r in noisy)
    assert not noisy, f"sanitizer findings on the clean suite:\n{pretty}"


def test_attention_path_zero_findings():
    reports = sanitize_attention(grid=4)
    assert reports  # the forward pass actually launched kernels
    assert all(r.ok for r in reports)


@pytest.mark.parametrize("name", sorted(
    INTENTIONAL_VIOLATORS & {"cannon", "ring-allreduce", "ring-gemv"}))
def test_intentional_violators_flagged(name):
    report = sanitize_kernel(name, grid=4)
    assert "hop-bound" in _rules(report), (
        f"{name} is a documented L violator; the sanitizer must see it")


def test_clean_suite_excludes_every_violator():
    assert not set(clean_kernel_names()) & INTENTIONAL_VIOLATORS


def test_registration_check_holds_on_machine_runs():
    # Every communicate() goes through fabric.register, so a real
    # machine's trace never contains unregistered patterns.
    report = sanitize_kernel("meshgemm", grid=4)
    assert "unregistered-pattern" not in _rules(report)


# ----------------------------------------------------------------------
# remapped fabrics: detours widen the bound, teleports still flagged
# ----------------------------------------------------------------------

def test_physical_shift_bound_widens_on_defective_fabric():
    machine = _remapped_machine(4)
    assert physical_shift_bound(machine.topology) > 2
    healthy = MeshMachine(PRESETS["cerebras-wse2"].submesh(4, 4))
    assert physical_shift_bound(healthy.topology) == 2


@pytest.mark.parametrize("name", ["meshgemm", "meshgemv"])
def test_remapped_kernels_sanitize_clean(name):
    report = sanitize_kernel_remapped(name, grid=4)
    assert report.ok, report.render()


def test_remapped_policy_still_catches_teleports():
    machine = _remapped_machine(4)
    policy = policy_for_machine(machine)
    trace = Trace()
    _comm(trace, 0, "tele-shift", [
        FlowRecord(src=(0, 0), dsts=((3, 3),), hops=policy.shift_hop_bound + 1,
                   nbytes=8, src_name="t", dst_name="t"),
    ])
    report = sanitize_trace(trace, policy)
    assert "hop-bound" in _rules(report)


# ----------------------------------------------------------------------
# machine integration: per-core peaks and fabric registration surface
# ----------------------------------------------------------------------

def test_machine_records_per_core_memory_peaks():
    machine = MeshMachine(PRESETS["cerebras-wse2"].submesh(2, 2))
    machine.place("t", (1, 0), np.zeros(16))
    assert machine.trace.core_peak_bytes[(1, 0)] == 16 * 8


def test_fabric_exposes_registered_patterns():
    machine = MeshMachine(PRESETS["cerebras-wse2"].submesh(2, 2))
    machine.place("t", (0, 0), np.zeros(4))
    from repro.mesh.fabric import Flow

    machine.communicate("hop", [Flow.unicast((0, 0), (1, 0), "t", "t")])
    assert "hop" in machine.fabric.registered_patterns()
    assert sanitize_machine(machine).ok


def test_full_kernel_sweep_matches_cli_surface():
    reports = run_kernel_checks(grid=4)
    subjects = [r.subject for r in reports]
    assert any(s.startswith("meshgemm@4x4") for s in subjects)
    assert any(s.startswith("attention:") for s in subjects)
    assert any("remapped" in s for s in subjects)
    assert all(r.ok for r in reports)


# ----------------------------------------------------------------------
# the CLI: repro check
# ----------------------------------------------------------------------

def test_cli_check_strict_lint_only(capsys):
    from repro.cli import main

    rc = main(["check", "--strict", "--skip-sanitize"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "check: OK" in out


def test_cli_check_json_single_kernel(capsys):
    import json

    from repro.cli import main

    rc = main(["check", "--strict", "--json", "--skip-lint",
               "--kernels", "meshgemv", "--grid", "4", "--no-remapped"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["ok"] is True
    assert payload["kernels_checked"] == ["meshgemv@4x4"]


def test_cli_check_strict_fails_on_violator(capsys):
    from repro.cli import main

    rc = main(["check", "--strict", "--skip-lint",
               "--kernels", "cannon", "--grid", "4", "--no-remapped"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "hop-bound" in out
