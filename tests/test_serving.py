"""Tests for the continuous-batching serving layer."""

import pytest

from repro.core import WSE2
from repro.errors import ConfigurationError
from repro.llm.config import LLAMA3_8B
from repro.serving import ContinuousBatchingServer, Request


@pytest.fixture(scope="module")
def server() -> ContinuousBatchingServer:
    return ContinuousBatchingServer(LLAMA3_8B, WSE2, max_batch=8)


class TestRequestValidation:
    def test_valid_request(self):
        request = Request(1, seq_in=128, seq_out=64, arrival_s=0.5)
        assert request.seq_out == 64

    @pytest.mark.parametrize("kwargs", [
        {"seq_in": 0, "seq_out": 1},
        {"seq_in": 1, "seq_out": 0},
        {"seq_in": 1, "seq_out": 1, "arrival_s": -1.0},
    ])
    def test_invalid_requests(self, kwargs):
        with pytest.raises(ConfigurationError):
            Request(1, **kwargs)


class TestBatchedStep:
    def test_step_grows_sublinearly(self, server):
        t1 = server.batched_step_seconds(1, 2048)
        t8 = server.batched_step_seconds(8, 2048)
        assert t8 > t1
        assert t8 < 8 * t1  # the fixed skeleton is shared

    def test_throughput_scales_with_batch(self, server):
        r1 = server.throughput_at_batch(1)
        r8 = server.throughput_at_batch(8)
        assert r8 > 2 * r1

    def test_kv_bound_batch_positive(self, server):
        assert server.kv_bounded_batch() >= 1

    def test_single_stream_matches_table4_shape(self, server):
        # Batch 1 must agree with the single-stream decode model.
        single = server.system.decode_throughput(
            LLAMA3_8B, 2048, server.decode_grid)
        assert server.throughput_at_batch(1) == pytest.approx(single, rel=0.01)


class TestServe:
    def test_single_request_timeline(self, server):
        report = server.serve([Request(0, seq_in=512, seq_out=32)])
        stat = report.completed[0]
        assert stat.prefill_start_s == 0.0
        assert stat.decode_start_s > 0.0
        assert stat.finish_s > stat.decode_start_s
        assert report.total_tokens == 32

    def test_all_requests_complete(self, server):
        requests = [Request(i, 256, 16, arrival_s=0.001 * i) for i in range(6)]
        report = server.serve(requests)
        assert len(report.completed) == 6
        assert report.total_tokens == 6 * 16
        assert all(s.finish_s > 0 for s in report.completed)

    def test_batching_beats_serial(self, server):
        # Long decodes with short prompts: streams overlap in the batch.
        requests = [Request(i, 64, 1024) for i in range(8)]
        batched = server.serve(requests)
        serial = ContinuousBatchingServer(LLAMA3_8B, WSE2, max_batch=1)
        serial_report = serial.serve(requests)
        assert batched.makespan_s < serial_report.makespan_s
        assert batched.peak_batch > 1
        assert serial_report.peak_batch == 1

    def test_batch_cap_respected(self):
        server = ContinuousBatchingServer(LLAMA3_8B, WSE2, max_batch=3)
        report = server.serve([Request(i, 64, 1024) for i in range(9)])
        assert report.peak_batch <= 3

    def test_late_arrivals_wait(self, server):
        report = server.serve([
            Request(0, 256, 8, arrival_s=0.0),
            Request(1, 256, 8, arrival_s=100.0),
        ])
        late = next(s for s in report.completed if s.request.request_id == 1)
        assert late.prefill_start_s >= 100.0
        assert report.makespan_s >= 100.0

    def test_queueing_measured(self):
        server = ContinuousBatchingServer(LLAMA3_8B, WSE2, max_batch=1)
        report = server.serve([
            Request(0, 4096, 8), Request(1, 4096, 8),
        ])
        second = next(s for s in report.completed if s.request.request_id == 1)
        assert second.queueing_s > 0

    def test_latency_stats(self, server):
        report = server.serve([Request(i, 128, 16) for i in range(5)])
        assert report.p99_latency_s >= report.mean_latency_s > 0

    def test_empty_request_list_rejected(self, server):
        with pytest.raises(ConfigurationError):
            server.serve([])

    def test_invalid_max_batch(self):
        with pytest.raises(ConfigurationError):
            ContinuousBatchingServer(LLAMA3_8B, WSE2, max_batch=0)
