"""Additional tests: report formatting edges and experiment runner options."""

import pytest

from repro.bench.experiments import run_figure9, run_figure10, run_table6
from repro.bench.reporting import Comparison, _fmt, comparison_table
from repro.core import WSE2, WSE3


class TestFormatting:
    @pytest.mark.parametrize("value,expected", [
        (0, "0"),
        (1234.5, "1,234"),
        (56.78, "56.8"),
        (0.1234, "0.123"),
        (0.004567, "0.00457"),
    ])
    def test_fmt_ranges(self, value, expected):
        assert _fmt(value) == expected

    def test_comparison_zero_paper(self):
        assert Comparison("x", 1.0, 0.0).ratio is None

    def test_comparison_row_with_unit(self):
        row = Comparison("case", 2.0, 4.0, unit="ms").row()
        assert row[0] == "case"
        assert row[-1] == "ms"
        assert "0.50x" in row[3]

    def test_table_contains_every_case(self):
        comparisons = [Comparison(f"c{i}", float(i + 1)) for i in range(5)]
        text = comparison_table("T", comparisons)
        for i in range(5):
            assert f"c{i}" in text


class TestRunnerOptions:
    def test_figure9_custom_sweep(self):
        cells = run_figure9(sizes=(4096,), grids=(240,))
        assert len(cells) == 3
        assert all("gemm4K@240" in c.label for c in cells)

    def test_figure10_grid_capped_by_dim(self):
        cells = run_figure10(sizes=(128,), grids=(720,))
        # grid must be clamped to the matrix dimension.
        assert all("@128" in c.label for c in cells)

    def test_device_override(self):
        wse2 = {c.label: c.measured for c in run_table6(WSE2)}
        wse3 = {c.label: c.measured for c in run_table6(WSE3)}
        # WSE-3's faster cores shrink the wafer GEMV latency.
        assert wse3["gemv16K wse_ms"] < wse2["gemv16K wse_ms"]
        # The GPU column is device-independent.
        assert wse3["gemv16K a100_ms"] == wse2["gemv16K a100_ms"]


class TestSystemGuards:
    def test_grid_outside_fabric_rejected(self):
        from repro.errors import ConfigurationError
        from repro.llm.config import LLAMA3_8B
        from repro.llm.wafer_system import WaferLLMSystem
        system = WaferLLMSystem(WSE2)
        with pytest.raises(ConfigurationError):
            system.prefill_throughput(LLAMA3_8B, 4096, 2000)
        with pytest.raises(ConfigurationError):
            system.decode_throughput(LLAMA3_8B, 2048, 0)
