"""Tests for the memory audit and the distributed argmax kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import WSE2
from repro.core.device_presets import TINY_MESH
from repro.errors import ShapeError
from repro.llm.config import (
    CODELLAMA_34B,
    LLAMA2_13B,
    LLAMA3_8B,
    QWEN2_72B,
)
from repro.mesh.machine import MeshMachine
from repro.ops import distributed_argmax
from repro.runtime.memory_audit import (
    admissible_models,
    audit_model,
    required_layer_subset,
)


class TestMemoryAudit:
    """The paper's admission decision: 8B/13B run end-to-end, 34B/72B
    exceed WSE-2 memory (Section 7.1)."""

    def test_8b_and_13b_fit(self):
        assert audit_model(LLAMA3_8B, WSE2).fits_end_to_end
        assert audit_model(LLAMA2_13B, WSE2).fits_end_to_end

    def test_34b_and_72b_do_not_fit(self):
        assert not audit_model(CODELLAMA_34B, WSE2).fits_end_to_end
        assert not audit_model(QWEN2_72B, WSE2).fits_end_to_end

    def test_admissible_models_matches_table2(self):
        admitted = admissible_models(
            [LLAMA3_8B, LLAMA2_13B, CODELLAMA_34B, QWEN2_72B], WSE2
        )
        assert admitted == ["llama3-8b", "llama2-13b"]

    def test_72b_weights_alone_overflow(self):
        audit = audit_model(QWEN2_72B, WSE2)
        assert not audit.fits_weights
        assert audit.utilization > 1.0

    def test_layer_subset_for_large_models(self):
        # The paper evaluates a *subset of layers* for 34B/72B.
        subset_34b = required_layer_subset(CODELLAMA_34B, WSE2)
        subset_72b = required_layer_subset(QWEN2_72B, WSE2)
        assert 1 <= subset_34b < CODELLAMA_34B.num_layers
        assert 1 <= subset_72b < QWEN2_72B.num_layers
        assert subset_72b < subset_34b  # bigger layers -> fewer fit

    def test_small_models_keep_all_layers(self):
        assert required_layer_subset(LLAMA3_8B, WSE2) == \
            LLAMA3_8B.num_layers

    def test_summary_strings(self):
        assert "fits end-to-end" in audit_model(LLAMA3_8B, WSE2).summary()
        assert "DOES NOT FIT" in audit_model(QWEN2_72B, WSE2).summary()

    def test_generation_ceiling_positive_for_fitting_models(self):
        audit = audit_model(LLAMA3_8B, WSE2, decode_grid=360)
        assert audit.min_generation_tokens > 1000


class TestDistributedArgmax:
    def _machine(self, side=6):
        return MeshMachine(TINY_MESH.submesh(side, side))

    @pytest.mark.parametrize("n", [1, 2, 5, 13, 40, 100])
    def test_matches_numpy(self, n, rng):
        values = rng.standard_normal(n)
        idx, val = distributed_argmax(self._machine(), values)
        assert idx == int(np.argmax(values))
        assert val == values[idx]

    def test_tie_breaks_toward_smaller_index(self):
        values = np.array([0.0, 7.0, 7.0, 7.0])
        idx, _val = distributed_argmax(self._machine(4), values)
        assert idx == 1

    def test_negative_values(self):
        values = np.array([-5.0, -2.0, -9.0])
        idx, val = distributed_argmax(self._machine(4), values)
        assert (idx, val) == (1, -2.0)

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            distributed_argmax(self._machine(), np.array([]))

    def test_rejects_matrix(self):
        with pytest.raises(ShapeError):
            distributed_argmax(self._machine(), np.zeros((2, 2)))

    def test_routing_budget_bounded(self, rng):
        machine = self._machine(8)
        distributed_argmax(machine, rng.standard_normal(64))
        assert machine.trace.max_paths_per_core <= 4

    def test_cleans_up(self, rng):
        machine = self._machine()
        distributed_argmax(machine, rng.standard_normal(12))
        for x in range(6):
            assert not machine.core((x, 0)).has("argmax.v")

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 80), seed=st.integers(0, 500),
           side=st.integers(2, 8))
    def test_property_matches_numpy(self, n, seed, side):
        rng = np.random.default_rng(seed)
        values = rng.integers(-10, 11, size=n).astype(float)
        machine = MeshMachine(TINY_MESH.submesh(side, side))
        idx, val = distributed_argmax(machine, values)
        assert idx == int(np.argmax(values))
        assert val == values[idx]
