"""Property-based tests: cost-model monotonicity and conservation laws.

The analytic model must behave like physics: more work never costs less,
bigger payloads never transfer faster, energy scales with time, and the
kernel estimators inherit these properties end to end.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import WSE2, PLMRDevice
from repro.gemm import CannonGEMM, MeshGEMM, SummaGEMM
from repro.gemm.base import GemmShape
from repro.gemv import MeshGEMV, PipelineGEMV
from repro.mesh.cost_model import CommPhase, ComputePhase, ReducePhase


DEVICE = WSE2


class TestPhaseMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(macs=st.floats(1, 1e9), extra=st.floats(1, 1e9))
    def test_compute_monotone_in_macs(self, macs, extra):
        small = ComputePhase("c", macs_per_core=macs)
        large = ComputePhase("c", macs_per_core=macs + extra)
        assert large.cycles(DEVICE) > small.cycles(DEVICE)

    @settings(max_examples=30, deadline=None)
    @given(payload=st.floats(1, 1e9), hops=st.floats(0, 2000),
           extra=st.floats(1, 1e6))
    def test_comm_monotone_in_payload_and_hops(self, payload, hops, extra):
        base = CommPhase("m", hop_distance=hops, payload_bytes=payload)
        more_bytes = CommPhase("m", hop_distance=hops,
                               payload_bytes=payload + extra)
        more_hops = CommPhase("m", hop_distance=hops + extra,
                              payload_bytes=payload)
        assert more_bytes.cycles(DEVICE) > base.cycles(DEVICE)
        assert more_hops.cycles(DEVICE) > base.cycles(DEVICE)

    @settings(max_examples=30, deadline=None)
    @given(stages=st.integers(1, 1000), extra=st.integers(1, 100))
    def test_reduce_monotone_in_stages(self, stages, extra):
        base = ReducePhase("r", stages=stages, stage_hop_distance=1,
                           payload_bytes=64, stage_add_elems=16)
        more = ReducePhase("r", stages=stages + extra, stage_hop_distance=1,
                           payload_bytes=64, stage_add_elems=16)
        assert more.cycles(DEVICE) > base.cycles(DEVICE)

    @settings(max_examples=20, deadline=None)
    @given(stages=st.integers(1, 500))
    def test_pipelined_never_slower_than_rounds(self, stages):
        kwargs = dict(stages=stages, stage_hop_distance=2.0,
                      payload_bytes=128.0, stage_add_elems=32.0)
        assert ReducePhase("r", **kwargs).cycles(DEVICE) <= \
            ReducePhase("r", pipelined=False, **kwargs).cycles(DEVICE)


class TestKernelMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(dim=st.sampled_from([1024, 2048, 4096, 8192]),
           grid=st.sampled_from([120, 240, 480, 720]))
    def test_gemm_cost_monotone_in_problem_size(self, dim, grid):
        small = MeshGEMM.estimate(DEVICE, GemmShape.square(dim), grid)
        large = MeshGEMM.estimate(DEVICE, GemmShape.square(2 * dim), grid)
        assert large.total_cycles > small.total_cycles

    @settings(max_examples=15, deadline=None)
    @given(dim=st.sampled_from([2048, 4096, 8192, 16384]),
           grid=st.sampled_from([120, 240, 480, 720]))
    def test_gemv_cost_monotone_in_problem_size(self, dim, grid):
        small = MeshGEMV.estimate(DEVICE, rows=dim, cols=dim, grid=grid)
        large = MeshGEMV.estimate(DEVICE, rows=2 * dim, cols=2 * dim,
                                  grid=grid)
        assert large.total_cycles > small.total_cycles

    @settings(max_examples=10, deadline=None)
    @given(grid=st.sampled_from([120, 240, 480, 720]))
    def test_compute_work_conserved_across_kernels(self, grid):
        # All GEMM variants perform identical arithmetic per core.
        shape = GemmShape.square(4096)
        costs = [k.estimate(DEVICE, shape, grid).compute_cycles
                 for k in (MeshGEMM, CannonGEMM)]
        assert costs[0] == pytest.approx(costs[1], rel=0.02)

    @settings(max_examples=10, deadline=None)
    @given(grid=st.sampled_from([60, 120, 240, 480]))
    def test_pipeline_reduce_dominates_ktree_in_comm(self, grid):
        mesh = MeshGEMV.estimate(DEVICE, rows=8192, cols=8192, grid=grid)
        pipe = PipelineGEMV.estimate(DEVICE, rows=8192, cols=8192, grid=grid)
        assert pipe.comm_cycles >= mesh.comm_cycles

    def test_energy_proportional_to_time(self):
        a = MeshGEMM.estimate(DEVICE, GemmShape.square(4096), 480)
        b = MeshGEMM.estimate(DEVICE, GemmShape.square(8192), 480)
        assert b.energy_joules / a.energy_joules == \
            pytest.approx(b.seconds / a.seconds)

    def test_faster_clock_scales_everything(self):
        slow = PLMRDevice(mesh_width=100, mesh_height=100, clock_hz=1e9)
        fast = PLMRDevice(mesh_width=100, mesh_height=100, clock_hz=2e9)
        shape = GemmShape.square(2048)
        t_slow = MeshGEMM.estimate(slow, shape, 100).seconds
        t_fast = MeshGEMM.estimate(fast, shape, 100).seconds
        assert t_fast == pytest.approx(t_slow / 2)

    def test_dtype_bytes_affect_comm_not_compute(self):
        fp16 = MeshGEMV.estimate(DEVICE, rows=16384, cols=16384, grid=720,
                                 dtype_bytes=2)
        int8 = MeshGEMV.estimate(DEVICE, rows=16384, cols=16384, grid=720,
                                 dtype_bytes=1)
        assert int8.comm_cycles < fp16.comm_cycles
        assert int8.compute_cycles == pytest.approx(fp16.compute_cycles)
