"""Tests for the fabric (NoC) model: flows, route colours, R enforcement."""

import pytest

from repro.core.device_presets import TINY_MESH
from repro.errors import MessageSizeError, RoutingResourceError
from repro.mesh.fabric import FabricModel, Flow
from repro.mesh.topology import MeshTopology


@pytest.fixture
def fabric() -> FabricModel:
    device = TINY_MESH.submesh(6, 6)
    return FabricModel(device, MeshTopology(6, 6))


class TestFlows:
    def test_unicast_factory(self):
        flow = Flow.unicast((0, 0), (1, 0), "a", "b")
        assert flow.dsts == ((1, 0),)

    def test_multicast_factory(self):
        flow = Flow.multicast((0, 0), [(1, 0), (2, 0)], "a", "a")
        assert len(flow.dsts) == 2

    def test_flow_hops_unicast(self, fabric):
        assert fabric.flow_hops(Flow.unicast((0, 0), (3, 2), "a", "a")) == 5

    def test_flow_hops_multicast_is_farthest(self, fabric):
        flow = Flow.multicast((0, 0), [(1, 0), (5, 5)], "a", "a")
        assert fabric.flow_hops(flow) == 10

    def test_flow_hops_empty_dsts(self, fabric):
        assert fabric.flow_hops(Flow((0, 0), (), "a", "a")) == 0

    def test_route_cores_include_endpoints_and_path(self, fabric):
        flow = Flow.unicast((0, 0), (2, 0), "a", "a")
        assert fabric.route_cores(flow) == {(0, 0), (1, 0), (2, 0)}


class TestColours:
    def test_register_counts_patterns_once(self, fabric):
        flow = Flow.unicast((0, 0), (1, 0), "a", "a")
        fabric.register("p1", [flow])
        fabric.register("p1", [flow])
        assert fabric.paths_at((0, 0)) == 1

    def test_distinct_patterns_accumulate(self, fabric):
        flow = Flow.unicast((0, 0), (1, 0), "a", "a")
        for i in range(4):
            fabric.register(f"p{i}", [flow])
        assert fabric.paths_at((0, 0)) == 4
        assert fabric.max_paths_per_core == 4

    def test_pass_through_cores_counted(self, fabric):
        fabric.register("p", [Flow.unicast((0, 0), (4, 0), "a", "a")])
        assert fabric.paths_at((2, 0)) == 1

    def test_untouched_core_has_zero_paths(self, fabric):
        fabric.register("p", [Flow.unicast((0, 0), (1, 0), "a", "a")])
        assert fabric.paths_at((5, 5)) == 0

    def test_enforcement_raises_past_budget(self):
        device = TINY_MESH.submesh(6, 6)  # max_paths_per_core == 6
        fabric = FabricModel(device, MeshTopology(6, 6), enforce=True)
        flow = Flow.unicast((0, 0), (1, 0), "a", "a")
        for i in range(device.max_paths_per_core):
            fabric.register(f"p{i}", [flow])
        with pytest.raises(RoutingResourceError) as err:
            fabric.register("one-too-many", [flow])
        assert err.value.limit == device.max_paths_per_core

    def test_no_enforcement_by_default(self, fabric):
        flow = Flow.unicast((0, 0), (1, 0), "a", "a")
        for i in range(20):
            fabric.register(f"p{i}", [flow])
        assert fabric.max_paths_per_core == 20


class TestMessaging:
    def test_message_size_ok(self, fabric):
        fabric.check_message(4)

    def test_message_size_violation(self, fabric):
        with pytest.raises(MessageSizeError):
            fabric.check_message(64)

    def test_stream_cycles(self, fabric):
        # 5 hops of head latency + 100 B at 4 B/cycle.
        assert fabric.stream_cycles(5, 100) == pytest.approx(5 + 25)
