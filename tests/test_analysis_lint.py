"""The AST lint framework: rules, suppression, baseline, and the shim."""

import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.findings import Finding
from repro.analysis.lint import (
    SOURCE_ROOT,
    all_rules,
    apply_baseline,
    fingerprint,
    lint_source,
    lint_tree,
    rule_ids,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))


def _lint(code: str, rel_path: str = "src/repro/gemm/fake.py"):
    return lint_source(textwrap.dedent(code), rel_path)


def _rules_hit(code: str, rel_path: str = "src/repro/gemm/fake.py"):
    return {f.rule for f in _lint(code, rel_path)}


# ----------------------------------------------------------------------
# rule registry
# ----------------------------------------------------------------------

def test_initial_rule_catalogue_registered():
    ids = set(rule_ids())
    assert {"raw-trace-record", "unseeded-rng",
            "non-neighbour-shift", "bare-advance-step"} <= ids
    # The determinism conformance rules register through the same engine.
    assert {"wall-clock-read", "unordered-iteration",
            "object-identity-ordering", "mutable-module-state",
            "hashseed-dependent"} <= ids
    assert len(all_rules()) == len(ids)


# ----------------------------------------------------------------------
# raw-trace-record
# ----------------------------------------------------------------------

def test_raw_record_flagged_outside_machine():
    code = """
    def bad(machine):
        machine.trace.record_comm(0, "p", [], [], {})
        machine.trace.record_compute(0, "c", [1.0])
        machine.trace.record_barrier(0, "b")
    """
    findings = [f for f in _lint(code) if f.rule == "raw-trace-record"]
    assert len(findings) == 3
    assert all(f.line is not None for f in findings)


def test_raw_record_allowed_in_machine_and_trace_modules():
    code = "def ok(self):\n    self.trace.record_comm(0, 'p', [], [], {})\n"
    for allowed in ("src/repro/mesh/machine.py", "src/repro/mesh/trace.py"):
        assert not lint_source(code, allowed)


def test_raw_record_not_fooled_by_docstrings_and_comments():
    # The regex lint this rule replaced flagged these.
    code = '''
    def documented():
        """Example: trace.record_comm(0, "p", [], [], {}) is forbidden."""
        # never call trace.record_compute(...) directly
        return 1
    '''
    assert "raw-trace-record" not in _rules_hit(code)


# ----------------------------------------------------------------------
# unseeded-rng
# ----------------------------------------------------------------------

def test_unseeded_stdlib_random_flagged():
    code = """
    import random
    x = random.random()
    r = random.Random()
    """
    findings = [f for f in _lint(code) if f.rule == "unseeded-rng"]
    assert len(findings) == 2


def test_seeded_random_allowed():
    code = """
    import random
    r = random.Random(1234)
    x = r.random()
    """
    assert "unseeded-rng" not in _rules_hit(code)


def test_unseeded_numpy_rng_flagged():
    code = """
    import numpy as np
    g = np.random.default_rng()
    x = np.random.rand(3)
    np.random.seed(0)
    """
    findings = [f for f in _lint(code) if f.rule == "unseeded-rng"]
    assert len(findings) == 3


def test_seeded_numpy_rng_allowed():
    code = """
    import numpy as np
    g = np.random.default_rng(42)
    x = g.standard_normal(3)
    """
    assert "unseeded-rng" not in _rules_hit(code)


def test_rng_rule_only_binds_src_repro():
    code = "import random\nx = random.random()\n"
    assert lint_source(code, "src/repro/mod.py")
    assert not lint_source(code, "benchmarks/helper.py")


# ----------------------------------------------------------------------
# non-neighbour-shift
# ----------------------------------------------------------------------

def test_far_literal_unicast_flagged_in_kernel_modules():
    code = """
    from repro.mesh.fabric import Flow
    flow = Flow.unicast((0, 0), (5, 0), "a", "a")
    """
    assert "non-neighbour-shift" in _rules_hit(code)
    # Same code outside kernel modules is not this rule's business.
    assert "non-neighbour-shift" not in _rules_hit(
        code, "src/repro/mesh/testing.py")


def test_neighbour_literals_allowed():
    code = """
    from repro.mesh.fabric import Flow
    a = Flow.unicast((0, 0), (1, 0), "a", "a")
    b = Flow.unicast((2, 2), (1, 1), "a", "a")
    """
    assert "non-neighbour-shift" not in _rules_hit(code)


def test_far_literal_shift_named_mapping_flagged():
    code = """
    def bad(machine):
        machine.shift_named("p", {(0, 0): (0, 3), (0, 3): (0, 0)}, "t", "t")
    """
    findings = [f for f in _lint(code) if f.rule == "non-neighbour-shift"]
    assert len(findings) == 2


# ----------------------------------------------------------------------
# bare-advance-step
# ----------------------------------------------------------------------

def test_bare_advance_step_flagged():
    code = """
    def bad(machine):
        machine.communicate("p", [])
        machine.advance_step()
    """
    assert "bare-advance-step" in _rules_hit(code)


def test_advance_step_allowed_in_machine_module():
    code = "def step(self):\n    return self.advance_step()\n"
    assert not lint_source(code, "src/repro/mesh/machine.py")


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------

def test_allow_comment_suppresses_named_rule():
    code = """
    def tolerated(machine):
        machine.advance_step()  # plmr: allow=bare-advance-step
    """
    assert not _lint(code)


def test_allow_comment_is_rule_specific():
    code = """
    def tolerated(machine):
        machine.advance_step()  # plmr: allow=unseeded-rng
    """
    assert "bare-advance-step" in _rules_hit(code)


def test_allow_star_suppresses_everything_on_the_line():
    code = """
    def tolerated(machine):
        machine.advance_step()  # plmr: allow=*
    """
    assert not _lint(code)


def test_allow_comment_inside_string_does_not_count():
    code = """
    def bad(machine):
        note = "# plmr: allow=bare-advance-step"
        machine.advance_step()
    """
    assert "bare-advance-step" in _rules_hit(code)


def test_allow_comment_multi_rule_list():
    code = """
    import time

    def tolerated(machine):
        machine.advance_step(); t = time.time()  # plmr: allow=bare-advance-step, wall-clock-read
    """
    assert not _lint(code)
    # Dropping one id from the list resurfaces that rule only.
    partial = code.replace(", wall-clock-read", "")
    assert _rules_hit(partial) == {"wall-clock-read"}


def test_allow_comment_inside_decorated_def():
    # Decorators shift nothing: findings inside a stacked-decorator
    # function still anchor at their own line, so a suppression there
    # holds and one on the decorator line does not leak onto the body.
    import textwrap

    body = """
    import functools
    import time

    @functools.wraps(print)  # plmr: allow=wall-clock-read
    def stamped():
        return time.time()
    """
    findings = _lint(body)
    assert [f.rule for f in findings] == ["wall-clock-read"]
    call_line = textwrap.dedent(body).splitlines().index(
        "    return time.time()") + 1
    assert findings[0].line == call_line
    suppressed = body.replace(
        "return time.time()",
        "return time.time()  # plmr: allow=wall-clock-read",
    )
    assert not _lint(suppressed)


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    finding = Finding(rule="demo-rule", message="m", path="src/demo.py", line=3)
    path = tmp_path / "baseline.json"
    write_baseline([finding], path)
    from repro.analysis.lint import load_baseline

    baseline = load_baseline(path)
    assert fingerprint(finding) in baseline
    assert apply_baseline([finding], baseline) == []
    other = Finding(rule="other-rule", message="m", path="src/demo.py", line=3)
    assert apply_baseline([other], baseline) == [other]


def test_missing_baseline_is_empty():
    from repro.analysis.lint import load_baseline

    assert load_baseline(Path("/nonexistent/baseline.json")) == set()


def test_repo_baseline_is_empty():
    # The placement deprecation shims that used to be baselined now
    # carry inline ``# plmr: allow=region-carveout-outside-planner``
    # comments, so the committed baseline holds no fingerprints at all:
    # every new finding fails immediately.
    from repro.analysis.lint import BASELINE_PATH, load_baseline

    assert BASELINE_PATH.is_file()
    assert load_baseline() == set()


def test_baseline_version_mismatch_discarded(tmp_path):
    import json

    from repro.analysis.lint import load_baseline
    from repro.analysis.lint.baseline import BASELINE_VERSION

    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": BASELINE_VERSION - 1,
        "fingerprints": ["deadbeef"],
    }))
    assert load_baseline(path) == set()


def test_fingerprint_stable_across_file_moves():
    # Identity is (rule, basename, offending line): relocating a module
    # to another directory must not invalidate its baseline entry.
    a = Finding(rule="r", message="m", path="src/repro/old/mod.py",
                line=None)
    b = Finding(rule="r", message="m", path="src/repro/new/deep/mod.py",
                line=None)
    assert fingerprint(a, context="x = 1") == fingerprint(b, context="x = 1")
    c = Finding(rule="r", message="m", path="src/repro/new/other.py",
                line=None)
    assert fingerprint(a, context="x = 1") != fingerprint(c, context="x = 1")
    assert fingerprint(a, context="x = 1") != fingerprint(a, context="x = 2")


# ----------------------------------------------------------------------
# the real tree + the shim
# ----------------------------------------------------------------------

def test_repo_tree_lints_clean():
    from repro.analysis.lint import load_baseline

    findings = apply_baseline(lint_tree(), load_baseline())
    pretty = "\n".join(f.render() for f in findings)
    assert not findings, f"lint findings in src/repro:\n{pretty}"


def test_source_root_sanity():
    assert (SOURCE_ROOT / "mesh" / "machine.py").is_file()
    assert len(list(SOURCE_ROOT.rglob("*.py"))) > 50


def test_extended_sweep_is_clean_and_skips_fixtures():
    from repro.analysis.lint import load_baseline
    from repro.analysis.lint.engine import DEFAULT_ROOTS, lint_repo

    findings = apply_baseline(lint_repo(), load_baseline())
    pretty = "\n".join(f.render() for f in findings)
    assert not findings, f"lint findings in extended sweep:\n{pretty}"
    # The sweep covers more than src/ ...
    roots = {r.name for r in DEFAULT_ROOTS}
    assert {"tests", "tools", "benchmarks"} <= roots
    # ... but never the seeded fixtures, which violate rules on purpose.
    assert not any(
        "tests/fixtures" in (f.path or "") for f in lint_repo()
    )


def test_legacy_shim_stays_green():
    from lint_trace_api import find_violations

    assert find_violations() == []


def test_legacy_shim_reports_seeded_violation(tmp_path):
    bad = tmp_path / "kernel.py"
    bad.write_text(
        "def f(machine):\n"
        "    machine.trace.record_comm(0, 'p', [], [], {})\n",
        encoding="utf-8",
    )
    from lint_trace_api import find_violations

    violations = find_violations(tmp_path)
    assert len(violations) == 1
    path, lineno, line = violations[0]
    assert lineno == 2
    assert "record_comm" in line


def test_syntax_error_reported_not_crashed():
    findings = lint_source("def broken(:\n", "src/repro/x.py")
    assert findings and findings[0].rule == "syntax-error"
