"""Tests for the A100 roofline / vLLM baseline model."""

import pytest

from repro.baselines.gpu import A100, H100, VLLM_OVERHEAD_S, GPUModel, GPUSpec
from repro.errors import ConfigurationError
from repro.llm.config import LLAMA2_13B, LLAMA3_8B


@pytest.fixture
def gpu() -> GPUModel:
    return GPUModel(A100)


class TestCublasKernels:
    def test_gemv_16k_matches_paper(self, gpu):
        # Paper Table 6: 0.336 ms.
        assert gpu.gemv_seconds(16384, 16384) * 1e3 == pytest.approx(0.336, rel=0.05)

    def test_gemv_32k_matches_paper(self, gpu):
        # Paper: 1.231 ms.
        assert gpu.gemv_seconds(32768, 32768) * 1e3 == pytest.approx(1.231, rel=0.15)

    def test_gemm_16k_matches_paper(self, gpu):
        # Paper Table 7: 34.4 ms.
        assert gpu.gemm_seconds(16384, 16384, 16384) * 1e3 == pytest.approx(34.4, rel=0.05)

    def test_gemm_32k_matches_paper(self, gpu):
        assert gpu.gemm_seconds(32768, 32768, 32768) * 1e3 == pytest.approx(282.1, rel=0.05)

    def test_gemv_scales_with_bytes(self, gpu):
        assert gpu.gemv_seconds(32768, 32768) == pytest.approx(
            4 * gpu.gemv_seconds(16384, 16384))

    def test_small_gemm_memory_bound(self, gpu):
        # A skinny GEMM must fall back to the bandwidth bound.
        seconds = gpu.gemm_seconds(1, 4096, 4096)
        memory_bound = (4096 * 4096 * 2 + 2 * 4096 * 2) / (2e12 * 0.8)
        assert seconds >= memory_bound * 0.99

    def test_invalid_dims(self, gpu):
        with pytest.raises(ConfigurationError):
            gpu.gemv_seconds(0, 5)
        with pytest.raises(ConfigurationError):
            gpu.gemm_seconds(1, 0, 1)

    def test_energy(self, gpu):
        assert gpu.energy_joules(2.0) == pytest.approx(2 * A100.power_w)


class TestVLLM:
    def test_decode_8b_matches_paper(self, gpu):
        # Paper Table 8: 78.36 tok/s at 4096/4096.
        rate = gpu.vllm_decode_throughput(LLAMA3_8B, 4096, 4096)
        assert rate == pytest.approx(78.36, rel=0.2)

    def test_decode_13b_matches_paper(self, gpu):
        rate = gpu.vllm_decode_throughput(LLAMA2_13B, 4096, 4096)
        assert rate == pytest.approx(47.86, rel=0.2)

    def test_decode_is_weight_stream_bound(self, gpu):
        per_token = gpu.vllm_decode_seconds_per_token(LLAMA3_8B, 128)
        stream_floor = LLAMA3_8B.weight_bytes / (2e12 * 0.8)
        assert per_token >= stream_floor

    def test_kv_growth_slows_decode(self, gpu):
        short = gpu.vllm_decode_seconds_per_token(LLAMA2_13B, 128)
        long = gpu.vllm_decode_seconds_per_token(LLAMA2_13B, 8192)
        assert long > short

    def test_prefill_compute_bound(self, gpu):
        seconds = gpu.vllm_prefill_seconds(LLAMA3_8B, 4096)
        flops = 2 * LLAMA3_8B.prefill_macs(4096)
        assert seconds >= flops / (A100.fp16_flops * A100.gemm_efficiency)

    def test_generation_combines_phases(self, gpu):
        total = gpu.vllm_generation_seconds(LLAMA3_8B, 1024, 256)
        prefill = gpu.vllm_prefill_seconds(LLAMA3_8B, 1024)
        assert total > prefill

    def test_overhead_floor(self, gpu):
        tiny = gpu.vllm_decode_seconds_per_token(
            LLAMA3_8B.scaled_to_layers(1), 1)
        assert tiny >= VLLM_OVERHEAD_S


class TestSpecs:
    def test_h100_faster_than_a100(self):
        a, h = GPUModel(A100), GPUModel(H100)
        assert h.gemv_seconds(16384, 16384) < a.gemv_seconds(16384, 16384)
        assert h.gemm_seconds(8192, 8192, 8192) < a.gemm_seconds(8192, 8192, 8192)

    def test_spec_is_frozen(self):
        with pytest.raises(Exception):
            A100.power_w = 1.0  # type: ignore[misc]

    def test_custom_spec(self):
        spec = GPUSpec(name="x", fp16_flops=1e12, hbm_bytes_per_s=1e11,
                       power_w=100, gemm_efficiency=1.0, gemv_efficiency=1.0,
                       onchip_bytes=1)
        model = GPUModel(spec)
        assert model.gemv_seconds(1000, 1000) == pytest.approx(2e6 / 1e11)
