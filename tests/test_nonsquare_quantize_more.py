"""Additional coverage: non-square GEMM properties, int4, projections."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import WSE2
from repro.core.device_presets import TINY_MESH
from repro.gemm import LogicalGrid, MeshGEMM, MeshGEMMNonSquare
from repro.gemm.base import GemmShape
from repro.llm.checkpoint import synthesize_weights
from repro.llm.config import LLAMA3_8B, TINY_MHA
from repro.llm.projections import wider_variant
from repro.llm.quantize import quantize_weights
from repro.llm.reference import ReferenceTransformer
from repro.mesh.machine import MeshMachine


class TestNonSquareProperties:
    @settings(max_examples=12, deadline=None)
    @given(nh=st.integers(2, 4), nw=st.integers(2, 4),
           seed=st.integers(0, 100))
    def test_property_matches_numpy(self, nh, nw, seed):
        rng = np.random.default_rng(seed)
        grid = LogicalGrid(nh, nw)
        n = grid.n
        a = rng.integers(-3, 4, size=(n, n)).astype(float)
        b = rng.integers(-3, 4, size=(n, n)).astype(float)
        machine = MeshMachine(TINY_MESH.submesh(nw, nh))
        assert np.array_equal(MeshGEMMNonSquare.run(machine, a, b), a @ b)

    def test_square_fold_degenerates_to_meshgemm(self, rng):
        # On a square mesh the fold hosts one slot per core; results
        # must agree with the square kernel exactly.
        side = 4
        a = rng.integers(-3, 4, size=(side, side)).astype(float)
        b = rng.integers(-3, 4, size=(side, side)).astype(float)
        m1 = MeshMachine(TINY_MESH.submesh(side, side))
        m2 = MeshMachine(TINY_MESH.submesh(side, side))
        assert np.array_equal(
            MeshGEMMNonSquare.run(m1, a, b), MeshGEMM.run(m2, a, b)
        )

    def test_slots_per_core_balanced(self):
        grid = LogicalGrid(3, 4)
        counts = {}
        for i in range(grid.n):
            for j in range(grid.n):
                coord = grid.physical((i, j))
                counts[coord] = counts.get(coord, 0) + 1
        values = set(counts.values())
        assert values == {grid.rows_per_core * grid.cols_per_core}

    def test_nonsquare_estimate_close_to_square_equivalent(self):
        # A 300x480 fabric (144k cores) should price a GEMM within ~2x
        # of a square fabric with the same core count (379^2).
        shape = GemmShape.square(4096)
        rect = MeshGEMMNonSquare.estimate(WSE2.submesh(480, 300), shape)
        square = MeshGEMM.estimate(WSE2, shape, grid=379)
        ratio = rect.total_cycles / square.total_cycles
        assert 0.5 < ratio < 2.5


class TestInt4:
    def test_int4_still_roughly_works(self):
        weights = synthesize_weights(TINY_MHA, seed=44)
        restored = quantize_weights(weights, 4).dequantize()
        tokens = np.array([2, 5, 1])
        exact = ReferenceTransformer(weights).forward(tokens)
        coarse = ReferenceTransformer(restored).forward(tokens)
        scale = np.max(np.abs(exact))
        # int4 is lossy but bounded.
        assert np.max(np.abs(exact - coarse)) / scale < 0.5

    def test_int4_worse_than_int8(self):
        from repro.llm.quantize import quantization_error
        weights = synthesize_weights(TINY_MHA, seed=44)
        assert quantization_error(weights, 4) > quantization_error(weights, 8)


class TestWiderVariantEdges:
    def test_factor_one_identity_shape(self):
        wide = wider_variant(LLAMA3_8B, 1.0)
        assert wide.d_model == LLAMA3_8B.d_model
        assert wide.num_layers == LLAMA3_8B.num_layers

    def test_kv_heads_always_divide(self):
        for factor in (1.5, 2.0, 3.0, 4.0, 8.0):
            wide = wider_variant(LLAMA3_8B, factor)
            assert wide.n_heads % wide.n_kv_heads == 0

    def test_extreme_width_single_layer_floor(self):
        wide = wider_variant(LLAMA3_8B, 64.0)
        assert wide.num_layers >= 1
