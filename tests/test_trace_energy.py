"""Tests for execution traces and energy accounting."""

import pytest

from repro.core import WSE2
from repro.mesh.energy import (
    activity_energy,
    energy_ratio,
    wall_clock_energy,
)
from repro.mesh.trace import Trace


class TestTrace:
    def test_empty_trace_metrics(self):
        trace = Trace()
        assert trace.max_paths_per_core == 0
        assert trace.critical_path_hops == 0
        assert trace.total_steps == 0
        assert trace.total_payload_bytes == 0
        assert trace.total_macs == 0.0

    def test_comm_aggregation(self):
        trace = Trace()
        trace.record_comm(0, "a", [3, 5], [10, 20], {(0, 0): {"a"}})  # plmr: allow=raw-trace-record
        trace.record_comm(1, "b", [2], [30], {(0, 0): {"b"}, (1, 0): {"b"}})  # plmr: allow=raw-trace-record
        assert trace.critical_path_hops == 5
        assert trace.total_payload_bytes == 60
        assert trace.max_paths_per_core == 2
        assert trace.patterns() == {"a", "b"}

    def test_compute_aggregation(self):
        trace = Trace()
        trace.record_compute(0, "mac", [10.0, 20.0, 5.0])  # plmr: allow=raw-trace-record
        assert trace.computes[0].max_macs == 20.0
        assert trace.total_macs == 35.0
        assert trace.computes[0].num_cores == 3

    def test_empty_compute_ignored(self):
        trace = Trace()
        trace.record_compute(0, "noop", [])  # plmr: allow=raw-trace-record
        assert not trace.computes

    def test_memory_high_water_mark(self):
        trace = Trace()
        trace.note_memory(100)
        trace.note_memory(50)
        assert trace.peak_memory_bytes == 100

    def test_step_counting(self):
        trace = Trace()
        trace.record_comm(0, "a", [1], [1], {})  # plmr: allow=raw-trace-record
        trace.record_comm(0, "b", [1], [1], {})  # plmr: allow=raw-trace-record
        trace.record_compute(1, "c", [1.0])  # plmr: allow=raw-trace-record
        assert trace.total_steps == 2

    def test_summary_keys(self):
        summary = Trace().summary()
        assert {"steps", "critical_path_hops", "max_paths_per_core",
                "total_macs", "peak_memory_bytes"} <= set(summary)


class TestEnergy:
    def test_wall_clock(self):
        assert wall_clock_energy(WSE2, 2.0) == pytest.approx(30000.0)

    def test_activity_breakdown(self):
        breakdown = activity_energy(WSE2, macs=1e12, noc_bit_hops=1e12,
                                    sram_bits=1e12)
        assert breakdown.compute_j == pytest.approx(WSE2.mac_pj)
        assert breakdown.noc_j == pytest.approx(WSE2.noc_pj_per_bit_per_hop)
        assert breakdown.sram_j == pytest.approx(WSE2.sram_pj_per_bit)
        assert breakdown.total_j == pytest.approx(
            breakdown.compute_j + breakdown.noc_j + breakdown.sram_j)

    def test_wafer_noc_cheaper_than_pcb(self):
        # Table 1: on-wafer links ~0.1 pJ/bit vs ~10 pJ/bit over PCB.
        assert WSE2.noc_pj_per_bit_per_hop < 1.0

    def test_energy_ratio(self):
        assert energy_ratio(20.0, 2.0) == pytest.approx(10.0)

    def test_energy_ratio_requires_positive(self):
        with pytest.raises(ValueError):
            energy_ratio(1.0, 0.0)
