"""Property-based differential tests: mesh kernels vs numpy, bit-exact.

Shapes, mesh sizes, and operand values are drawn from seeded stdlib
``random`` streams (no extra test deps), covering odd grids and
non-square fabrics.  Operands are integer-valued, so every summation
order produces the identical float — the assertion is
``np.array_equal``, not ``allclose``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.device_presets import TINY_MESH
from repro.gemm import LogicalGrid, MeshGEMM, MeshGEMMNonSquare
from repro.gemv import MeshGEMV
from repro.mesh.machine import MeshMachine

#: Non-square fabrics to sample (width, height); the logical grid is the
#: LCM of the two sides, so these keep operand sizes test-friendly.
RECT_MESHES = [(2, 3), (3, 2), (2, 4), (4, 2), (3, 4)]


def _machine(width: int, height: int | None = None) -> MeshMachine:
    return MeshMachine(TINY_MESH.submesh(width, height or width))


def _int_matrix(rnd: random.Random, rows: int, cols: int) -> np.ndarray:
    """Integer-valued float matrix from a stdlib random stream."""
    data = [[float(rnd.randint(-8, 8)) for _ in range(cols)]
            for _ in range(rows)]
    return np.array(data, dtype=np.float64)


class TestMeshGEMMProperty:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_numpy_bit_exact(self, seed):
        rnd = random.Random(1000 + seed)
        grid = rnd.choice([2, 3, 4, 5])  # odd grids included
        tm, tk, tn = (rnd.randint(1, 3) for _ in range(3))
        a = _int_matrix(rnd, grid * tm, grid * tk)
        b = _int_matrix(rnd, grid * tk, grid * tn)
        machine = _machine(grid)
        assert np.array_equal(MeshGEMM.run(machine, a, b), a @ b)

    def test_single_core_degenerate_grid(self):
        rnd = random.Random(42)
        a = _int_matrix(rnd, 3, 2)
        b = _int_matrix(rnd, 2, 4)
        machine = _machine(1)
        assert np.array_equal(MeshGEMM.run(machine, a, b), a @ b)


class TestMeshGEMMNonSquareProperty:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_numpy_bit_exact(self, seed):
        rnd = random.Random(2000 + seed)
        width, height = rnd.choice(RECT_MESHES)
        n = LogicalGrid(height, width).n  # lcm of the two sides
        tm, tk, tn = (rnd.randint(1, 2) for _ in range(3))
        a = _int_matrix(rnd, n * tm, n * tk)
        b = _int_matrix(rnd, n * tk, n * tn)
        machine = _machine(width, height)
        assert np.array_equal(MeshGEMMNonSquare.run(machine, a, b), a @ b)

    def test_square_fabric_special_case(self):
        # On a square fabric the LCM grid degenerates to the plain mesh.
        rnd = random.Random(7)
        n = LogicalGrid(3, 3).n
        assert n == 3
        a = _int_matrix(rnd, n * 2, n)
        b = _int_matrix(rnd, n, n * 2)
        machine = _machine(3)
        assert np.array_equal(MeshGEMMNonSquare.run(machine, a, b), a @ b)


class TestMeshGEMVProperty:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_numpy_bit_exact(self, seed):
        rnd = random.Random(3000 + seed)
        grid = rnd.choice([2, 3, 4, 5, 6])  # odd grids included
        tk, tn = rnd.randint(1, 3), rnd.randint(1, 3)
        a = _int_matrix(rnd, 1, grid * tk)
        b = _int_matrix(rnd, grid * tk, grid * tn)
        machine = _machine(grid)
        result = MeshGEMV.run(machine, a, b)
        assert np.array_equal(result, (a @ b)[0])

    @pytest.mark.parametrize("seed", range(6))
    def test_flat_vector_and_broadcast(self, seed):
        rnd = random.Random(4000 + seed)
        grid = rnd.choice([2, 3, 4, 5])
        tk = rnd.randint(1, 2)
        a = _int_matrix(rnd, 1, grid * tk)[0]  # 1-D vector input
        b = _int_matrix(rnd, grid * tk, grid)
        machine = _machine(grid)
        result = MeshGEMV.run(machine, a, b, broadcast=True)
        expected = a @ b
        assert np.array_equal(result, expected)
        # Broadcast leaves every column's chunk on every core in it.
        for x in range(grid):
            for y in range(grid):
                chunk = machine.core((x, y)).load("gemv.c")
                assert np.array_equal(chunk, expected[x:x + 1])
