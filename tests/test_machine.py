"""Tests for the functional mesh machine."""

import numpy as np
import pytest

from repro.core.device_presets import TINY_MESH
from repro.errors import (
    MemoryCapacityError,
    PlacementError,
    ShapeError,
    SimulationError,
)
from repro.mesh.fabric import Flow
from repro.mesh.machine import MeshMachine


class TestPlacement:
    def test_place_and_read(self, mesh4):
        mesh4.place("a", (1, 1), np.arange(4.0))
        assert np.array_equal(mesh4.core((1, 1)).load("a"), np.arange(4.0))

    def test_place_outside_mesh(self, mesh4):
        with pytest.raises(PlacementError):
            mesh4.place("a", (4, 0), np.zeros(1))

    def test_scatter_gather_roundtrip(self, mesh4, rng):
        matrix = rng.standard_normal((8, 12))
        mesh4.scatter_matrix("m", matrix, 4, 4)
        assert np.array_equal(mesh4.gather_matrix("m", 4, 4), matrix)

    def test_scatter_block_convention(self, mesh4):
        # Block (i, j) lands on core (x=j, y=i).
        matrix = np.arange(16.0).reshape(4, 4)
        mesh4.scatter_matrix("m", matrix, 4, 4)
        assert mesh4.core((3, 0)).load("m")[0, 0] == matrix[0, 3]

    def test_scatter_indivisible_raises(self, mesh4):
        with pytest.raises(ShapeError):
            mesh4.scatter_matrix("m", np.zeros((5, 8)), 4, 4)

    def test_scatter_grid_too_large(self, mesh4):
        grid = [[np.zeros(1)] * 5 for _ in range(5)]
        with pytest.raises(PlacementError):
            mesh4.scatter_grid("m", grid)

    def test_scatter_grid_ragged(self, mesh4):
        grid = [[np.zeros(1)] * 2, [np.zeros(1)] * 3]
        with pytest.raises(ShapeError):
            mesh4.scatter_grid("m", grid)

    def test_free_everywhere(self, mesh4):
        mesh4.scatter_matrix("m", np.zeros((4, 4)), 4, 4)
        mesh4.free("m")
        assert not any(mesh4.cores[c].has("m") for c in mesh4.topology.coords())


class TestCommunication:
    def test_unicast_moves_copy(self, mesh4):
        mesh4.place("a", (0, 0), np.array([1.0, 2.0]))
        mesh4.communicate("p", [Flow.unicast((0, 0), (3, 3), "a", "b")])
        received = mesh4.core((3, 3)).load("b")
        assert np.array_equal(received, [1.0, 2.0])
        # In-flight payloads are copies: mutating source later is safe.
        mesh4.core((0, 0)).load("a")[0] = 99.0
        assert received[0] == 1.0

    def test_permutation_simultaneous(self, mesh4):
        # A 3-cycle of tiles must rotate without overwriting.
        mesh4.place("t", (0, 0), np.array([0.0]))
        mesh4.place("t", (1, 0), np.array([1.0]))
        mesh4.place("t", (2, 0), np.array([2.0]))
        mapping = {(0, 0): (1, 0), (1, 0): (2, 0), (2, 0): (0, 0)}
        mesh4.shift_named("rot", mapping, "t", "t")
        assert mesh4.core((1, 0)).load("t")[0] == 0.0
        assert mesh4.core((2, 0)).load("t")[0] == 1.0
        assert mesh4.core((0, 0)).load("t")[0] == 2.0

    def test_non_injective_mapping_rejected(self, mesh4):
        mesh4.place("t", (0, 0), np.zeros(1))
        mesh4.place("t", (1, 0), np.zeros(1))
        mapping = {(0, 0): (2, 0), (1, 0): (2, 0)}
        with pytest.raises(SimulationError, match="not injective"):
            mesh4.shift_named("bad", mapping, "t", "t")

    def test_multicast(self, mesh4):
        mesh4.place("a", (0, 0), np.array([7.0]))
        dsts = [(1, 0), (2, 0), (3, 0)]
        mesh4.communicate("b", [Flow.multicast((0, 0), dsts, "a", "a")])
        for dst in dsts:
            assert mesh4.core(dst).load("a")[0] == 7.0

    def test_empty_flow_list_is_noop(self, mesh4):
        mesh4.communicate("p", [])
        assert not mesh4.trace.comms

    def test_memory_enforced_on_receive(self):
        machine = MeshMachine(TINY_MESH.submesh(2, 2))
        big = np.zeros(10_000, dtype=np.float64)  # 80 KB > 64 KB budget
        machine.cores[(0, 0)].capacity_bytes = 2**30  # roomy source
        machine.place("a", (0, 0), big)
        with pytest.raises(MemoryCapacityError):
            machine.communicate("p", [Flow.unicast((0, 0), (1, 0), "a", "a")])

    def test_enforcement_disabled(self):
        machine = MeshMachine(TINY_MESH.submesh(2, 2), enforce_memory=False)
        machine.place("a", (0, 0), np.zeros(100_000))
        machine.communicate("p", [Flow.unicast((0, 0), (1, 0), "a", "a")])


class TestComputeAndTrace:
    def test_compute_records_macs(self, mesh4):
        mesh4.place("x", (0, 0), np.ones(3))

        def work(core):
            core.store("y", core.load("x") * 2)
            return 3.0

        mesh4.compute("double", [(0, 0)], work)
        assert mesh4.trace.computes[-1].max_macs == 3.0
        assert np.array_equal(mesh4.core((0, 0)).load("y"), [2, 2, 2])

    def test_compute_all_covers_mesh(self, mesh4):
        mesh4.compute_all("noop", lambda core: 1.0)
        assert mesh4.trace.computes[-1].num_cores == 16

    def test_steps_advance(self, mesh4):
        assert mesh4.step == 0
        mesh4.advance_step()  # plmr: allow=bare-advance-step
        assert mesh4.step == 1

    def test_trace_comm_metrics(self, mesh4):
        mesh4.place("a", (0, 0), np.zeros(4, dtype=np.float32))
        mesh4.communicate("p", [Flow.unicast((0, 0), (3, 0), "a", "a")])
        record = mesh4.trace.comms[-1]
        assert record.max_hops == 3
        assert record.max_payload_bytes == 16

    def test_peak_memory_tracked(self, mesh4):
        mesh4.place("a", (0, 0), np.zeros(1024, dtype=np.float32))
        assert mesh4.peak_memory_bytes() >= 4096
