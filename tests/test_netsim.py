"""Tests for the fluid NoC simulator and its cost-model cross-checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.device_presets import TINY_MESH, WSE2
from repro.errors import ConfigurationError
from repro.mesh.netsim import (
    FlowSpec,
    allgather_incast_slowdown,
    cannon_wraparound_slowdown,
    phase_makespan,
    simulate_flows,
)


@pytest.fixture
def device():
    return TINY_MESH.submesh(8, 8)


class TestSingleFlow:
    def test_matches_closed_form(self, device):
        result = simulate_flows(device, [FlowSpec((0, 0), (4, 0), 40.0)])[0]
        # 4 hops + 40 B / 4 B-per-cycle = 14 cycles.
        assert result.completion_cycles == pytest.approx(14.0)
        assert result.slowdown == pytest.approx(1.0)

    def test_xy_route_hops(self, device):
        result = simulate_flows(device, [FlowSpec((0, 0), (3, 2), 4.0)])[0]
        assert result.hops == 5

    def test_local_flow_zero_hops(self, device):
        result = simulate_flows(device, [FlowSpec((2, 2), (2, 2), 8.0)])[0]
        assert result.hops == 0
        assert result.completion_cycles == pytest.approx(2.0)

    def test_invalid_payload(self):
        with pytest.raises(ConfigurationError):
            FlowSpec((0, 0), (1, 0), 0.0)


class TestContention:
    def test_shared_link_halves_rate(self, device):
        flows = [FlowSpec((0, 0), (2, 0), 40.0),
                 FlowSpec((0, 0), (2, 0), 40.0)]
        results = simulate_flows(device, flows)
        for result in results:
            assert result.completion_cycles == pytest.approx(2 + 20)
            assert result.slowdown == pytest.approx(22 / 12)

    def test_disjoint_flows_do_not_interact(self, device):
        flows = [FlowSpec((0, 0), (3, 0), 40.0),
                 FlowSpec((0, 5), (3, 5), 40.0)]
        for result in simulate_flows(device, flows):
            assert result.slowdown == pytest.approx(1.0)

    def test_opposite_directions_full_duplex(self, device):
        flows = [FlowSpec((0, 0), (3, 0), 40.0),
                 FlowSpec((3, 0), (0, 0), 40.0)]
        for result in simulate_flows(device, flows):
            assert result.slowdown == pytest.approx(1.0)

    def test_max_min_fairness_short_flow_releases_capacity(self, device):
        # A short flow shares a link with a long one; once it drains the
        # long flow speeds up, finishing sooner than a constant half-rate.
        flows = [FlowSpec((0, 0), (2, 0), 8.0),
                 FlowSpec((0, 0), (2, 0), 80.0)]
        results = simulate_flows(device, flows)
        long_flow = max(results, key=lambda r: r.spec.payload_bytes)
        assert long_flow.completion_cycles < 2 + 80 / 2
        assert long_flow.completion_cycles > 2 + 80 / 4

    def test_makespan_is_max(self, device):
        flows = [FlowSpec((0, 0), (1, 0), 4.0),
                 FlowSpec((0, 1), (7, 1), 400.0)]
        makespan = phase_makespan(device, flows)
        worst = max(r.completion_cycles for r in simulate_flows(device, flows))
        assert makespan == pytest.approx(worst)

    def test_empty_phase(self, device):
        assert phase_makespan(device, []) == 0.0

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 6), payload=st.floats(4.0, 400.0))
    def test_conservation_property(self, n, payload):
        # Total delivered bytes / makespan never exceeds aggregate
        # capacity of the links actually used.
        device = TINY_MESH.submesh(8, 8)
        flows = [FlowSpec((0, y), (7, y), payload) for y in range(n)]
        results = simulate_flows(device, flows)
        for result in results:
            assert result.average_rate <= device.link_bytes_per_cycle + 1e-9


class TestKernelScenarios:
    def test_cannon_wraparound_is_latency_not_bandwidth(self):
        # Full-duplex links: the wraparound suffers ~no contention.
        slowdown = cannon_wraparound_slowdown(WSE2, 100, 1000.0)
        assert slowdown == pytest.approx(1.0, abs=0.05)

    def test_allgather_incast_serializes(self):
        # The tail's single link serializes ~ (N-1) tiles.
        n = 16
        slowdown = allgather_incast_slowdown(WSE2, n, 1000.0)
        assert slowdown > (n - 1) * 0.5
        assert slowdown < (n - 1) * 1.5

    def test_incast_grows_with_row_length(self):
        s8 = allgather_incast_slowdown(WSE2, 8, 500.0)
        s32 = allgather_incast_slowdown(WSE2, 32, 500.0)
        assert s32 > s8

    def test_scenario_input_validation(self):
        with pytest.raises(ConfigurationError):
            cannon_wraparound_slowdown(WSE2, 2, 10.0)
        with pytest.raises(ConfigurationError):
            allgather_incast_slowdown(TINY_MESH, 100, 10.0)
