"""Tests for weight quantization and its system-level effects."""

import numpy as np
import pytest

from repro.core import WSE2
from repro.errors import ConfigurationError
from repro.llm.checkpoint import synthesize_weights
from repro.llm.config import LLAMA2_13B, QWEN2_72B, TINY_GQA
from repro.llm.kvcache import capacity_geometry
from repro.llm.quantize import (
    quantization_error,
    quantize_tensor,
    quantize_weights,
    quantized_config,
)
from repro.llm.reference import ReferenceTransformer
from repro.llm.wafer_system import WaferLLMSystem
from repro.runtime.memory_audit import audit_model


class TestTensorQuantization:
    def test_roundtrip_error_small_int8(self, rng):
        weight = rng.standard_normal((64, 32)) * 0.05
        restored = quantize_tensor(weight, 8).dequantize()
        rel = np.linalg.norm(weight - restored) / np.linalg.norm(weight)
        assert rel < 0.01

    def test_int16_tighter_than_int8_tighter_than_int4(self, rng):
        weight = rng.standard_normal((64, 32))
        errors = {}
        for bits in (4, 8, 16):
            restored = quantize_tensor(weight, bits).dequantize()
            errors[bits] = np.linalg.norm(weight - restored)
        assert errors[16] < errors[8] < errors[4]

    def test_zero_column_safe(self):
        weight = np.zeros((8, 4))
        weight[:, 0] = 1.0
        restored = quantize_tensor(weight, 8).dequantize()
        assert np.allclose(restored[:, 1:], 0.0)
        assert np.allclose(restored[:, 0], 1.0, atol=0.02)

    def test_codes_within_range(self, rng):
        quantized = quantize_tensor(rng.standard_normal((16, 16)), 8)
        assert quantized.data.dtype == np.int8
        assert np.abs(quantized.data).max() <= 127

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            quantize_tensor(np.zeros((2, 2)), 7)

    def test_requires_matrix(self):
        with pytest.raises(ConfigurationError):
            quantize_tensor(np.zeros(8), 8)


class TestModelQuantization:
    @pytest.fixture(scope="class")
    def weights(self):
        return synthesize_weights(TINY_GQA, seed=21)

    def test_storage_roughly_halves(self, weights):
        quantized = quantize_weights(weights, 8)
        fp16_bytes = weights.config.total_params * 2
        assert quantized.weight_bytes < 0.8 * fp16_bytes

    def test_worst_relative_error_small(self, weights):
        assert quantization_error(weights, 8) < 0.01

    def test_inference_logits_close(self, weights):
        tokens = np.array([3, 9, 1, 4])
        exact = ReferenceTransformer(weights).forward(tokens)
        restored = ReferenceTransformer(
            quantize_weights(weights, 8).dequantize()).forward(tokens)
        scale = np.max(np.abs(exact))
        assert np.max(np.abs(exact - restored)) / scale < 0.05

    def test_greedy_tokens_usually_match(self, weights):
        prompt = np.array([5, 2, 8])
        exact = ReferenceTransformer(weights).generate(prompt, 6)
        restored = ReferenceTransformer(
            quantize_weights(weights, 8).dequantize()).generate(prompt, 6)
        matches = int(np.sum(exact == restored))
        assert matches >= 4  # int8 may flip a near-tie occasionally

    def test_dequantized_config_marks_width(self, weights):
        restored = quantize_weights(weights, 8).dequantize()
        assert restored.config.dtype_bytes == 1
        assert restored.config.name.endswith("-int8")


class TestSystemEffects:
    def test_int8_13b_relieves_memory_pressure(self):
        fp16 = audit_model(LLAMA2_13B, WSE2)
        int8 = audit_model(quantized_config(LLAMA2_13B, 8), WSE2)
        assert int8.weights_per_core == pytest.approx(
            fp16.weights_per_core / 2)
        assert int8.kv_budget_per_core > fp16.kv_budget_per_core

    def test_int8_does_not_rescue_72b(self):
        # Even int8 QWen2-72B exceeds the WSE-2 (72 GB > 40 GB SRAM).
        assert not audit_model(quantized_config(QWEN2_72B, 8),
                               WSE2).fits_end_to_end

    def test_kv_capacity_doubles(self):
        fp16_geo = capacity_geometry(LLAMA2_13B, 375,
                                     WSE2.core_memory_bytes, WSE2.num_cores)
        int8_geo = capacity_geometry(quantized_config(LLAMA2_13B, 8), 375,
                                     WSE2.core_memory_bytes, WSE2.num_cores)
        assert int8_geo.tokens_per_row > 2 * fp16_geo.tokens_per_row

    def test_prefill_speeds_up_with_narrower_weights(self):
        system = WaferLLMSystem(WSE2)
        fp16 = system.prefill_throughput(LLAMA2_13B, 4096, 600)
        int8 = system.prefill_throughput(quantized_config(LLAMA2_13B, 8),
                                         4096, 600)
        assert int8 > 1.3 * fp16

    def test_pipeline_stages_shrink(self):
        from repro.runtime import PipelineSchedule
        fp16 = PipelineSchedule(LLAMA2_13B, WSE2, 375)
        int8 = PipelineSchedule(quantized_config(LLAMA2_13B, 8), WSE2, 375)
        assert int8.num_stages < fp16.num_stages
