"""The double-run replay auditor: same-seed identity over real
scenarios, phase-granular signatures, and divergence localization."""

import pytest

from repro.analysis.determinism import (
    SCENARIOS,
    AuditEvent,
    ScenarioRun,
    audit_all,
    audit_scenario,
    run_scenario,
)
from repro.analysis.determinism.audit import _locate_divergence


# ----------------------------------------------------------------------
# scenario identity (the acceptance gate)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scenario", ["serve", "fleet", "kernel"])
def test_same_seed_runs_are_identical(scenario):
    report = audit_scenario(scenario, seed=0, runs=2)
    assert report.ok, report.render()
    assert report.divergence is None
    sigs = [run.signature() for run in report.runs]
    assert sigs[0] == sigs[1]
    assert report.findings() == []


def test_signatures_stable_across_separate_processes_shape():
    # Two independent invocations (fresh model/device/trace stacks)
    # must reproduce the same signature — nothing in the pipeline may
    # depend on object identity or interpreter state.
    a = run_scenario("kernel", seed=3)
    b = run_scenario("kernel", seed=3)
    assert a.signature() == b.signature()
    assert a.phase_signatures() == b.phase_signatures()


def test_different_seeds_differ():
    a = run_scenario("kernel", seed=0)
    b = run_scenario("kernel", seed=1)
    assert a.signature() != b.signature()


def test_audit_all_covers_every_scenario():
    reports = audit_all(seed=0, runs=2, scenarios=["kernel"])
    assert [r.scenario for r in reports] == ["kernel"]
    assert set(SCENARIOS) == {"serve", "fleet", "kernel"}
    payload = reports[0].to_dict()
    assert payload["ok"] is True
    assert payload["scenario"] == "kernel"
    assert payload["runs"] == 2
    assert payload["divergence"] is None
    assert payload["phases"]


def test_unknown_scenario_and_bad_run_count_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        run_scenario("nope", seed=0)
    with pytest.raises(ConfigurationError):
        audit_scenario("kernel", seed=0, runs=1)


# ----------------------------------------------------------------------
# divergence localization
# ----------------------------------------------------------------------

def test_injected_divergence_is_localized():
    def perturb(events):
        mutated = list(events)
        for i, ev in enumerate(mutated):
            if ev.phase == "meshgemm-compute-shift":
                mutated[i] = AuditEvent(
                    phase=ev.phase, payload=ev.payload + "|tampered"
                )
                break
        return mutated

    report = audit_scenario("kernel", seed=0, runs=2, perturb=perturb)
    assert not report.ok
    div = report.divergence
    assert div is not None
    assert div.phase == "meshgemm-compute-shift"
    assert div.left != div.right
    assert div.right.endswith("|tampered")
    rendered = div.render()
    assert "first divergence" in rendered
    assert "run A:" in rendered and "run B:" in rendered
    findings = report.findings()
    assert len(findings) == 1
    assert findings[0].rule == "replay-divergence"
    assert findings[0].source == "audit"


def test_dropped_event_divergence_located():
    def perturb(events):
        mutated = [e for e in events if e.phase != "meshgemm-align"]
        return mutated

    report = audit_scenario("kernel", seed=0, runs=2, perturb=perturb)
    assert not report.ok
    assert report.divergence is not None
    assert report.divergence.phase == "meshgemm-align"


def test_bisect_points_at_first_divergent_event():
    left = ScenarioRun(
        scenario="synthetic", seed=0,
        events=tuple(
            AuditEvent(phase="p", payload=f"event-{i}") for i in range(64)
        ),
    )
    mutated = [
        AuditEvent(phase="p", payload=f"event-{i}") for i in range(64)
    ]
    mutated[41] = AuditEvent(phase="p", payload="event-41-corrupt")
    right = ScenarioRun(scenario="synthetic", seed=0, events=tuple(mutated))
    div = _locate_divergence(left, right)
    assert div is not None
    assert div.phase == "p"
    assert div.index == 41
    assert div.left == "event-41"
    assert div.right == "event-41-corrupt"
    # Context shows the matching events just before the split.
    assert any("event-40" in line for line in div.context)


def test_phase_signatures_keep_first_appearance_order():
    events = tuple(
        AuditEvent(phase=ph, payload=str(i))
        for i, ph in enumerate(["warm", "steady", "warm", "drain"])
    )
    run = ScenarioRun(scenario="s", seed=0, events=events)
    assert run.phases() == ["warm", "steady", "drain"]
    assert list(run.phase_signatures()) == ["warm", "steady", "drain"]
