"""Golden-trace regression fixtures for the flow engine and cost model.

Each fixture in ``tests/golden/`` freezes one deterministic workload —
MeshGEMV/MeshGEMM with seeded integer operands on a clean or a
bandwidth-degraded 4x4 fabric — as a canonical phase stream (every
flow's src/dsts/nbytes/hops/bw_factor), the batched per-phase ingress
bottlenecks, the cost-model cycle totals, the phase timeline, and the
numeric result.  Operands are integers and degradation factors dyadic,
so every float in the fixture is exact and the comparison is ``==``,
not approx: any change to routing, contention accounting, phase
structure, or the cost model shows up as a diff against the committed
JSON rather than a silent drift.

Regenerate after an *intentional* semantic change with::

    PYTHONPATH=src python tests/test_golden_traces.py --regenerate

and review the fixture diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.sanitize import policy_for_machine, sanitize_trace
from repro.core.device_presets import TINY_MESH
from repro.gemm.base import GemmShape
from repro.gemm.meshgemm import MeshGEMM
from repro.gemv.base import GemvShape
from repro.gemv.meshgemv import MeshGEMV
from repro.mesh import PhaseStream
from repro.mesh.machine import MeshMachine
from repro.mesh.reconcile import reconcile, trace_cost, trace_timeline
from repro.mesh.remap import DefectMap, normalize_link
from repro.mesh.trace import CommRecord, FlowRecord

GRID = 4
DIM = 8
SEED = 20260807

GOLDEN_DIR = Path(__file__).parent / "golden"


def _clean_machine(vectorize: bool = False) -> MeshMachine:
    return MeshMachine(TINY_MESH.submesh(GRID, GRID), vectorize=vectorize)


def _degraded_machine(vectorize: bool = False) -> MeshMachine:
    """Full-size fabric, no remap — only dyadic bandwidth degradation."""
    defects = DefectMap(
        GRID, GRID,
        degraded_links={
            normalize_link((1, 0), (2, 0)): 0.5,
            normalize_link((0, 2), (0, 3)): 0.25,
        },
    )
    return MeshMachine(
        TINY_MESH.submesh(GRID, GRID),
        defects=defects,
        logical_shape=(GRID, GRID),
        vectorize=vectorize,
    )


WORKLOADS = {
    "meshgemv_clean": (MeshGEMV, _clean_machine),
    "meshgemv_degraded": (MeshGEMV, _degraded_machine),
    "meshgemm_clean": (MeshGEMM, _clean_machine),
    "meshgemm_degraded": (MeshGEMM, _degraded_machine),
}

WORKLOAD_IDS = sorted(WORKLOADS)


def _operands(kernel):
    rng = np.random.default_rng(SEED)
    if kernel is MeshGEMV:
        return (rng.integers(-4, 5, size=(1, DIM)).astype(np.float64),
                rng.integers(-4, 5, size=(DIM, DIM)).astype(np.float64))
    return (rng.integers(-4, 5, size=(DIM, DIM)).astype(np.float64),
            rng.integers(-4, 5, size=(DIM, DIM)).astype(np.float64))


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------
def _flow_json(flow: FlowRecord) -> dict:
    return {
        "src": [int(c) for c in flow.src],
        "dsts": [[int(c) for c in d] for d in flow.dsts],
        "nbytes": int(flow.nbytes),
        "hops": int(flow.hops),
        "bw": float(flow.bw_factor),
        "src_name": flow.src_name,
        "dst_name": flow.dst_name,
    }


def _phase_json(rec: CommRecord) -> dict:
    return {
        "step": int(rec.step),
        "pattern": rec.pattern,
        "phase": rec.phase,
        "num_flows": int(rec.num_flows),
        "max_hops": int(rec.max_hops),
        "total_hops": int(rec.total_hops),
        "max_payload_bytes": int(rec.max_payload_bytes),
        "total_payload_bytes": int(rec.total_payload_bytes),
        "min_bw_factor": float(rec.min_bw_factor),
        # Derived criticals, computed through the batched engine at
        # serialization time — the regression surface of DESIGN.md §11.
        "ingress_bytes": float(rec.ingress_bottleneck_bytes),
        "max_wire_bytes": max(
            (float(f.nbytes) / f.bw_factor for f in rec.flows), default=0.0
        ),
        "flows": [_flow_json(f) for f in rec.flows],
    }


def _compute_json(rec) -> dict:
    return {
        "step": int(rec.step),
        "label": rec.label,
        "phase": rec.phase,
        "num_cores": int(rec.num_cores),
        "max_macs": float(rec.max_macs),
        "total_macs": float(rec.total_macs),
        "macs": [float(m) for m in rec.macs],
        "reads": list(rec.reads),
        "writes": list(rec.writes),
    }


def _serialize(machine: MeshMachine, result: np.ndarray, name: str) -> dict:
    trace = machine.trace
    cost = trace_cost(machine.device, trace, name=name)
    timeline = trace_timeline(trace, machine.device)
    return {
        "schema": 1,
        "workload": name,
        "grid": GRID,
        "dim": DIM,
        "seed": SEED,
        "phases": [_phase_json(rec) for rec in trace.comms],
        "computes": [_compute_json(rec) for rec in trace.computes],
        "num_barriers": len(trace.barriers),
        "peak_memory_bytes": int(trace.peak_memory_bytes),
        "core_peak_bytes": sorted(
            [int(x), int(y), int(nbytes)]
            for (x, y), nbytes in trace.core_peak_bytes.items()
        ),
        "cost": {
            "compute_cycles": float(cost.compute_cycles),
            "comm_cycles": float(cost.comm_cycles),
            "total_cycles": float(cost.total_cycles),
        },
        "timeline": [
            {
                "label": row.label,
                "kind": row.kind,
                "step": int(row.step),
                "events": int(row.events),
                "compute_cycles": float(row.compute_cycles),
                "comm_cycles": float(row.comm_cycles),
                "total_cycles": float(row.total_cycles),
            }
            for row in timeline
        ],
        "output_shape": list(result.shape),
        "output": [float(v) for v in np.asarray(result).ravel()],
    }


def _golden_payload(name: str) -> dict:
    kernel, make_machine = WORKLOADS[name]
    a, b = _operands(kernel)
    machine = make_machine()
    result = kernel.run(machine, a, b)
    return _serialize(machine, result, name)


def _load(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.json"
    return json.loads(path.read_text())


def _comm_from_json(phase: dict) -> CommRecord:
    flows = tuple(
        FlowRecord(
            src=tuple(f["src"]),
            dsts=tuple(tuple(d) for d in f["dsts"]),
            hops=f["hops"],
            nbytes=f["nbytes"],
            bw_factor=f["bw"],
            src_name=f["src_name"],
            dst_name=f["dst_name"],
        )
        for f in phase["flows"]
    )
    return CommRecord(
        step=phase["step"],
        pattern=phase["pattern"],
        num_flows=phase["num_flows"],
        max_hops=phase["max_hops"],
        total_hops=phase["total_hops"],
        max_payload_bytes=phase["max_payload_bytes"],
        total_payload_bytes=phase["total_payload_bytes"],
        phase=phase["phase"],
        flows=flows,
        min_bw_factor=phase["min_bw_factor"],
    )


# ---------------------------------------------------------------------------
# Regression: fresh runs reproduce the committed fixtures exactly
# ---------------------------------------------------------------------------
class TestGoldenTraces:
    @pytest.mark.parametrize("name", WORKLOAD_IDS)
    def test_fixture_exists_and_matches_schema(self, name):
        golden = _load(name)
        assert golden["schema"] == 1
        assert golden["workload"] == name
        assert (golden["grid"], golden["dim"], golden["seed"]) == (
            GRID, DIM, SEED
        )
        assert golden["phases"], "fixture must freeze at least one phase"

    @pytest.mark.parametrize("name", WORKLOAD_IDS)
    def test_fresh_eager_run_matches_golden(self, name):
        assert _golden_payload(name) == _load(name)

    @pytest.mark.parametrize("name", WORKLOAD_IDS)
    def test_batched_replay_reproduces_golden(self, name):
        """Capture→replay through the compiled/superfused path must leave
        behind the exact trace (and result) the fixture froze from the
        eager run."""
        kernel, make_machine = WORKLOADS[name]
        a, b = _operands(kernel)
        _, program = kernel.capture_run(make_machine(vectorize=True), a, b)
        replay_machine = make_machine(vectorize=True)
        out = kernel.replay_run(replay_machine, program, a, b)
        assert _serialize(replay_machine, out, name) == _load(name)


# ---------------------------------------------------------------------------
# Deserialized streams: batched criticals recomputed from the JSON agree
# ---------------------------------------------------------------------------
class TestDeserializedStream:
    @pytest.mark.parametrize("name", WORKLOAD_IDS)
    def test_batched_criticals_match_fixture(self, name):
        golden = _load(name)
        records = [_comm_from_json(p) for p in golden["phases"]]
        stream = PhaseStream.from_records(records)
        assert stream.num_phases == len(records)
        assert stream.max_hops_per_phase().tolist() == [
            float(p["max_hops"]) for p in golden["phases"]
        ]
        assert stream.ingress_bottleneck_per_phase().tolist() == [
            p["ingress_bytes"] for p in golden["phases"]
        ]
        assert stream.max_wire_bytes_per_phase().tolist() == [
            p["max_wire_bytes"] for p in golden["phases"]
        ]

    @pytest.mark.parametrize("name", WORKLOAD_IDS)
    def test_record_batched_equals_eager_on_deserialized(self, name):
        """Records rebuilt from JSON take the lazy ``from_records`` path;
        batched and eager ingress must still agree flow for flow."""
        for p in _load(name)["phases"]:
            rec = _comm_from_json(p)
            assert rec.ingress_bottleneck_bytes == p["ingress_bytes"]
            assert (rec.ingress_bottleneck_bytes
                    == rec.ingress_bottleneck_bytes_eager())


# ---------------------------------------------------------------------------
# Acceptance: replayed traces pass the sanitizer and the reconciler
# ---------------------------------------------------------------------------
class TestReplayAcceptance:
    @pytest.mark.parametrize("name", WORKLOAD_IDS)
    def test_sanitizer_zero_findings(self, name):
        kernel, make_machine = WORKLOADS[name]
        a, b = _operands(kernel)
        _, program = kernel.capture_run(make_machine(vectorize=True), a, b)
        replay_machine = make_machine(vectorize=True)
        kernel.replay_run(replay_machine, program, a, b)
        report = sanitize_trace(
            replay_machine.trace,
            policy_for_machine(replay_machine),
            subject=f"golden:{name}",
        )
        assert not report.findings, [f.message for f in report.findings]

    @pytest.mark.parametrize(
        "name, plan",
        [
            ("meshgemv_clean",
             lambda: MeshGEMV.plan(GemvShape.square(DIM, 8), GRID)),
            ("meshgemm_clean",
             lambda: MeshGEMM.plan(GemmShape.square(DIM, 8), GRID)),
        ],
    )
    def test_reconciler_accepts_replayed_trace(self, name, plan):
        kernel, make_machine = WORKLOADS[name]
        a, b = _operands(kernel)
        _, program = kernel.capture_run(make_machine(vectorize=True), a, b)
        replay_machine = make_machine(vectorize=True)
        kernel.replay_run(replay_machine, program, a, b)
        report = reconcile(plan(), replay_machine.trace,
                           replay_machine.device, name=kernel.name)
        assert report.ok, report.render()


# ---------------------------------------------------------------------------
# Regeneration (manual, reviewed like code)
# ---------------------------------------------------------------------------
def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in WORKLOAD_IDS:
        path = GOLDEN_DIR / f"{name}.json"
        payload = _golden_payload(name)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path} ({len(payload['phases'])} phases)")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
