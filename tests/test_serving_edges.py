"""Edge cases and regressions for the serving layer's building blocks.

These are the boundary conditions the invariant suite can't reach on a
realistic trace: single-token requests, a batch exactly filling the KV
budget, zero remaining budget, infeasible configurations, and the
validation surfaces of every serving component.
"""

from __future__ import annotations

import pytest

from repro.core import TINY_MESH, WSE2
from repro.errors import CapacityExceeded, ConfigurationError
from repro.llm import LLAMA3_8B, KVTokenLedger, region_token_capacity
from repro.llm.wafer_system import (
    MAX_RESIDENT_CHUNK_TOKENS,
    WaferLLMSystem,
)
from repro.mesh import FaultInjector
from repro.runtime import PipelineSchedule
from repro.serving import (
    ContinuousBatchingServer,
    Request,
    SLOAdmission,
    WaferServer,
    backlog_tokens,
    percentile,
    synthetic_trace,
)


class TestRequestEdges:
    def test_single_token_prompt_and_output_serve(self):
        # seq_in=1, seq_out=1: one prefill chunk, one decode token.
        server = WaferServer(LLAMA3_8B, WSE2, max_batch=4)
        metrics = server.serve([Request(0, seq_in=1, seq_out=1)])
        assert metrics.finished == 1
        stats = metrics.completed[0]
        assert stats.prefill_chunks == 1
        assert stats.first_token_s == stats.finish_s
        assert stats.ttft_s > 0
        assert metrics.total_decode_tokens == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Request(0, seq_in=0, seq_out=8)
        with pytest.raises(ConfigurationError):
            Request(0, seq_in=8, seq_out=0)
        with pytest.raises(ConfigurationError):
            Request(0, seq_in=8, seq_out=8, arrival_s=-1.0)
        with pytest.raises(ConfigurationError):
            Request(0, seq_in=8, seq_out=8, ttft_slo_s=0.0)
        with pytest.raises(ConfigurationError):
            Request(0, seq_in=8, seq_out=8, tpot_slo_s=-0.1)

    def test_deadline_defaults_to_infinity(self):
        request = Request(0, seq_in=8, seq_out=8, arrival_s=2.0)
        assert request.ttft_deadline_s == float("inf")
        assert Request(0, 8, 8, arrival_s=2.0,
                       ttft_slo_s=1.5).ttft_deadline_s == 3.5


class TestKVTokenLedger:
    def test_exact_fill_is_accepted(self):
        ledger = KVTokenLedger(100)
        assert ledger.can_reserve(100)
        ledger.reserve("a", 100)
        assert ledger.free_tokens == 0

    def test_zero_remaining_budget_rejects(self):
        ledger = KVTokenLedger(100)
        ledger.reserve("a", 100)
        assert not ledger.can_reserve(1)
        with pytest.raises(CapacityExceeded):
            ledger.reserve("b", 1)

    def test_one_over_rejects(self):
        ledger = KVTokenLedger(100)
        ledger.reserve("a", 99)
        assert not ledger.can_reserve(2)
        assert ledger.can_reserve(1)

    def test_release_returns_budget(self):
        ledger = KVTokenLedger(50)
        ledger.reserve("a", 50)
        ledger.release("a")
        assert ledger.free_tokens == 50
        ledger.reserve("a", 10)  # holder may come back

    def test_bad_reservations(self):
        ledger = KVTokenLedger(50)
        with pytest.raises(ConfigurationError):
            ledger.reserve("a", 0)
        ledger.reserve("a", 10)
        with pytest.raises(ConfigurationError):
            ledger.reserve("a", 10)  # duplicate holder
        with pytest.raises(ConfigurationError):
            ledger.release("ghost")


class TestKVBoundedBatch:
    def test_zero_when_capacity_below_context(self):
        server = WaferServer(LLAMA3_8B, WSE2, max_batch=4)
        assert server.kv_bounded_batch(server.kv_capacity_tokens + 1) == 0
        assert server.kv_bounded_batch(server.kv_capacity_tokens) == 1

    def test_legacy_server_matches(self):
        server = ContinuousBatchingServer(LLAMA3_8B, WSE2, max_batch=4)
        capacity = region_token_capacity(
            LLAMA3_8B, server.decode_grid,
            WSE2.core_memory_bytes, WSE2.num_cores,
        )
        assert server.kv_bounded_batch(capacity + 1) == 0
        assert server.kv_bounded_batch(capacity) == 1
        with pytest.raises(ConfigurationError):
            server.kv_bounded_batch(0)

    def test_request_exactly_filling_budget_serves(self):
        # A request whose KV footprint equals the region budget to the
        # token is admitted and served; one token more is rejected (see
        # test_oversized_request_is_rejected_not_served).
        server = WaferServer(LLAMA3_8B, WSE2, max_batch=4)
        capacity = server.kv_capacity_tokens
        metrics = server.serve([Request(0, seq_in=capacity - 8, seq_out=8)])
        assert metrics.finished == 1
        assert metrics.peak_kv_tokens == capacity

    def test_batch_filling_budget_serves(self):
        # Four requests that jointly cover the whole budget all finish,
        # and the ledger never overshoots even at full occupancy.
        server = WaferServer(LLAMA3_8B, WSE2, max_batch=4)
        per_request = server.kv_capacity_tokens // 4
        requests = [
            Request(i, seq_in=per_request - 256, seq_out=256)
            for i in range(4)
        ]
        metrics = server.serve(requests)
        assert metrics.finished == 4
        assert per_request <= metrics.peak_kv_tokens \
            <= metrics.kv_capacity_tokens

    def test_oversized_request_is_rejected_not_served(self):
        server = WaferServer(LLAMA3_8B, WSE2, max_batch=4)
        big = Request(0, seq_in=server.kv_capacity_tokens, seq_out=1)
        small = Request(1, seq_in=64, seq_out=8)
        metrics = server.serve([big, small])
        assert [r.request_id for r in metrics.rejected] == [0]
        assert metrics.finished == 1


class TestSLOAdmission:
    def test_best_effort_only_rejected_for_size(self):
        admission = SLOAdmission(1000, optimistic_prefill_s_per_token=1.0)
        assert admission.check(Request(0, 500, 100), 0.0, 10**9).admitted
        decision = admission.check(Request(0, 900, 101), 0.0, 0)
        assert not decision.admitted
        assert "capacity" in decision.reason

    def test_hopeless_deadline_rejected(self):
        admission = SLOAdmission(10**6, optimistic_prefill_s_per_token=0.01)
        hopeless = Request(0, 200, 10, ttft_slo_s=1.0)  # needs >= 2s
        decision = admission.check(hopeless, 0.0, 0)
        assert not decision.admitted
        assert "SLO" in decision.reason
        feasible = Request(0, 50, 10, ttft_slo_s=1.0)
        assert admission.check(feasible, 0.0, 0).admitted
        # Backlog at equal-or-higher priority pushes it over the edge.
        assert not admission.check(feasible, 0.0, 200).admitted

    def test_backlog_respects_priority_floor(self):
        waiting = [
            Request(0, 100, 1, priority=0),
            Request(1, 200, 1, priority=1),
            Request(2, 400, 1, priority=2),
        ]
        assert backlog_tokens(waiting, 0, priority_floor=1) == 600
        assert backlog_tokens(waiting, 50, priority_floor=2) == 450
        assert backlog_tokens([], 0, priority_floor=0) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SLOAdmission(-1, 0.1)
        with pytest.raises(ConfigurationError):
            SLOAdmission(100, -0.1)


class TestFaultInjector:
    def test_zero_rate_never_fails(self):
        injector = FaultInjector(0.0)
        assert not any(injector.step_fails() for _ in range(100))
        assert injector.steps_attempted == 100
        assert injector.steps_killed == 0

    def test_seeded_rate_is_deterministic(self):
        first = FaultInjector(0.3, seed=7)
        second = FaultInjector(0.3, seed=7)
        a = [first.step_fails() for _ in range(50)]
        b = [second.step_fails() for _ in range(50)]
        assert a == b
        assert any(a) and not all(a)
        assert first.steps_killed == sum(a)

    def test_backoff_doubles_then_caps(self):
        injector = FaultInjector(0.5, base_backoff_s=1e-4, max_backoff_s=1e-3)
        assert injector.backoff_s(1) == pytest.approx(1e-4)
        assert injector.backoff_s(2) == pytest.approx(2e-4)
        assert injector.backoff_s(10) == pytest.approx(1e-3)
        with pytest.raises(ConfigurationError):
            injector.backoff_s(0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(1.0)
        with pytest.raises(ConfigurationError):
            FaultInjector(-0.1)
        with pytest.raises(ConfigurationError):
            FaultInjector(0.1, base_backoff_s=2.0, max_backoff_s=1.0)


class TestPercentile:
    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.5) == 20.0
        assert percentile(values, 0.99) == 40.0
        assert percentile(values, 0.0) == 10.0
        assert percentile([5.0], 0.99) == 5.0
        assert percentile([], 0.5) == 0.0


class TestStepCostValidation:
    def test_fused_step_cost_bounds(self):
        system = WaferLLMSystem(WSE2)
        with pytest.raises(ConfigurationError):
            system.fused_step_cost(LLAMA3_8B, 2048, 0, 0)
        with pytest.raises(ConfigurationError):
            system.fused_step_cost(LLAMA3_8B, 2048, -1, 0)
        with pytest.raises(ConfigurationError):
            system.fused_step_cost(
                LLAMA3_8B, 2048, 1, MAX_RESIDENT_CHUNK_TOKENS + 1
            )

    def test_fused_step_is_affine_in_batch(self):
        system = WaferLLMSystem(WSE2)
        t1 = system.fused_step_cost(LLAMA3_8B, 2048, 1).seconds
        t2 = system.fused_step_cost(LLAMA3_8B, 2048, 2).seconds
        t3 = system.fused_step_cost(LLAMA3_8B, 2048, 3).seconds
        assert t2 - t1 == pytest.approx(t3 - t2, rel=1e-9)
        assert t2 > t1

    def test_tiny_chunk_bounded_by_decode_path(self):
        # Regression: a chunk can always run token-by-token through the
        # decode path, so a 1-token chunk costs one decode step — not a
        # degenerate 1-wide GEMM pass (which priced it at ~6 s).
        system = WaferLLMSystem(WSE2)
        one = system.chunked_prefill_cost(LLAMA3_8B, 1).seconds
        assert one == pytest.approx(
            system.decode_token_cost(LLAMA3_8B, 1).seconds
        )
        for chunk_len in (1, 8, 64, 256, 1024):
            chunk = system.chunked_prefill_cost(LLAMA3_8B, chunk_len)
            fallback = system.decode_token_cost(LLAMA3_8B, chunk_len)
            assert chunk.seconds <= fallback.seconds * chunk_len * (1 + 1e-9)

    def test_piggybacked_chunk_cheaper_than_standalone(self):
        system = WaferLLMSystem(WSE2)
        decode_only = system.fused_step_cost(LLAMA3_8B, 2048, 8, 0).seconds
        fused = system.fused_step_cost(LLAMA3_8B, 2048, 8, 256).seconds
        standalone = system.fused_step_cost(LLAMA3_8B, 2048, 0, 256).seconds
        assert fused > decode_only
        assert fused - decode_only < standalone


class TestWaferServerValidation:
    def test_bad_mode_and_chunk(self):
        with pytest.raises(ConfigurationError):
            WaferServer(LLAMA3_8B, WSE2, mode="priority")
        with pytest.raises(ConfigurationError):
            WaferServer(LLAMA3_8B, WSE2, chunk_tokens=0)
        with pytest.raises(ConfigurationError):
            WaferServer(
                LLAMA3_8B, WSE2,
                chunk_tokens=MAX_RESIDENT_CHUNK_TOKENS + 1,
            )

    def test_infeasible_default_batch_raises(self):
        # The tiny test mesh cannot hold a 4096-token stream, so the
        # constructor must refuse instead of clamping to batch 1.
        with pytest.raises(ConfigurationError):
            WaferServer(LLAMA3_8B, TINY_MESH, grid=4)

    def test_serve_rejects_bad_input(self):
        server = WaferServer(LLAMA3_8B, WSE2, max_batch=4)
        with pytest.raises(ConfigurationError):
            server.serve([])
        with pytest.raises(ConfigurationError):
            server.serve([Request(0, 8, 8), Request(0, 16, 8)])


class TestTraceAndSchedule:
    def test_trace_is_deterministic_and_validated(self):
        a = synthetic_trace(6, seed=3)
        b = synthetic_trace(6, seed=3)
        assert a == b
        assert a != synthetic_trace(6, seed=4)
        assert a[0].arrival_s == 0.0
        with pytest.raises(ConfigurationError):
            synthetic_trace(0)
        with pytest.raises(ConfigurationError):
            synthetic_trace(4, seq_in_range=(8, 4))
        with pytest.raises(ConfigurationError):
            synthetic_trace(4, priorities=())

    def test_streams_for_utilization_inverts_utilization(self):
        schedule = PipelineSchedule(LLAMA3_8B, WSE2, 360)
        for target in (0.5, 0.8, 0.95):
            streams = schedule.streams_for_utilization(target)
            assert schedule.utilization(streams) >= target
            if streams > 1:
                # Minimal: one stream fewer falls at or below the target.
                assert schedule.utilization(streams - 1) <= target
        with pytest.raises(ConfigurationError):
            schedule.streams_for_utilization(1.0)
        with pytest.raises(ConfigurationError):
            schedule.streams_for_utilization(0.0)
