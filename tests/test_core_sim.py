"""Tests for the per-core memory model (the M property made executable)."""

import numpy as np
import pytest

from repro.errors import MemoryCapacityError, SimulationError
from repro.mesh.core_sim import Core


@pytest.fixture
def core() -> Core:
    return Core((1, 2), capacity_bytes=1024)


class TestStorage:
    def test_store_and_load(self, core):
        tile = np.arange(10, dtype=np.float32)
        core.store("a", tile)
        assert np.array_equal(core.load("a"), tile)

    def test_load_missing_raises(self, core):
        with pytest.raises(SimulationError, match="no tile named"):
            core.load("ghost")

    def test_load_optional_missing(self, core):
        assert core.load_optional("ghost") is None

    def test_replace_updates_accounting(self, core):
        core.store("a", np.zeros(100, dtype=np.float32))
        core.store("a", np.zeros(10, dtype=np.float32))
        assert core.resident_bytes == 40

    def test_free(self, core):
        core.store("a", np.zeros(10, dtype=np.float32))
        core.free("a")
        assert core.resident_bytes == 0
        assert not core.has("a")

    def test_free_missing_is_noop(self, core):
        core.free("ghost")

    def test_rename(self, core):
        core.store("a", np.ones(4))
        core.rename("a", "b")
        assert core.has("b") and not core.has("a")
        assert core.resident_bytes == 32

    def test_tile_names_sorted(self, core):
        core.store("z", np.zeros(1))
        core.store("a", np.zeros(1))
        assert list(core.tile_names()) == ["a", "z"]


class TestCapacity:
    def test_capacity_enforced(self, core):
        with pytest.raises(MemoryCapacityError) as err:
            core.store("big", np.zeros(2048, dtype=np.float32))
        assert err.value.coord == (1, 2)
        assert err.value.capacity == 1024

    def test_cumulative_capacity(self, core):
        core.store("a", np.zeros(128, dtype=np.float32))  # 512 B
        core.store("b", np.zeros(100, dtype=np.float32))  # 400 B
        with pytest.raises(MemoryCapacityError):
            core.store("c", np.zeros(100, dtype=np.float32))

    def test_exact_fit_allowed(self, core):
        core.store("a", np.zeros(256, dtype=np.float32))  # exactly 1024
        assert core.free_bytes == 0

    def test_replacement_within_capacity(self, core):
        core.store("a", np.zeros(200, dtype=np.float32))
        # Shrinking an existing tile must always succeed.
        core.store("a", np.zeros(256, dtype=np.float32))
        assert core.resident_bytes == 1024

    def test_failed_store_leaves_state_intact(self, core):
        core.store("a", np.zeros(10, dtype=np.float32))
        before = core.resident_bytes
        with pytest.raises(MemoryCapacityError):
            core.store("b", np.zeros(10_000, dtype=np.float32))
        assert core.resident_bytes == before
        assert not core.has("b")

    def test_peak_tracking(self, core):
        core.store("a", np.zeros(128, dtype=np.float32))
        core.free("a")
        core.store("b", np.zeros(16, dtype=np.float32))
        assert core.peak_bytes == 512

    def test_free_bytes(self, core):
        core.store("a", np.zeros(64, dtype=np.float32))
        assert core.free_bytes == 1024 - 256
