"""Differential sweep: horizon-batched vs reference serving loops.

The macro-compiled serving loop (``ServeEngine(horizon=True)``) claims
*bit-identity* with the per-event reference loop, not statistical
agreement.  Every test here runs the same seeded workload through both
and asserts field-exact equality of the resulting metrics — clocks,
step events, per-request stats, fault logs, fleet timelines — across
serve modes, fault regimes, sliced stepping, and the whole fleet chaos
ladder.
"""

from __future__ import annotations

import pytest

from repro.core.device_presets import get_device
from repro.fleet.chaos import bursty_trace, poisson_trace, run_chaos
from repro.fleet.faults import FleetFaultEvent, FleetFaultSchedule
from repro.fleet.fleet import FleetConfig
from repro.llm.config import get_model
from repro.mesh.faults import FaultInjector, FaultSchedule
from repro.serving.chunked import ServeEngine, WaferServer
from repro.serving.trace import synthetic_trace

DEVICE = get_device("ipu-like-crossbar")
MODEL = get_model("tiny-gqa")


def _trace(n=12, seed=0, **kwargs):
    defaults = dict(
        mean_interarrival_s=0.005, seq_in_range=(64, 256),
        seq_out_range=(16, 64), ttft_slo_s=5.0, tpot_slo_s=0.5,
    )
    defaults.update(kwargs)
    return synthetic_trace(n, seed=seed, **defaults)


def _run(mode, horizon, schedule=None, failure_rate=0.0, trace=None,
         **server_kwargs):
    kwargs = dict(mode=mode, chunk_tokens=64, default_context_len=512)
    kwargs.update(server_kwargs)
    if schedule is not None:
        kwargs["fault_schedule"] = schedule
    if failure_rate > 0.0:
        kwargs["fault_injector"] = FaultInjector(failure_rate, seed=7)
    server = WaferServer(MODEL, DEVICE, **kwargs)
    engine = ServeEngine(server, trace if trace is not None else _trace(),
                         horizon=horizon)
    metrics = engine.run()
    return metrics, server


def _assert_serve_identical(mode, schedule_factory=None, failure_rate=0.0,
                            trace=None):
    ref, ref_server = _run(
        mode, horizon=False,
        schedule=schedule_factory() if schedule_factory else None,
        failure_rate=failure_rate, trace=trace,
    )
    fast, fast_server = _run(
        mode, horizon=True,
        schedule=schedule_factory() if schedule_factory else None,
        failure_rate=failure_rate, trace=trace,
    )
    # Field-exact dataclass equality: completed stats, rejections,
    # clocks, step events (via StepEventLog.__eq__), fault log, peaks.
    assert fast == ref
    # The fault-injector attempt ledger must match too: note_steps on
    # the fast path counts exactly what per-step fate draws would have.
    assert fast_server.faults.steps_attempted \
        == ref_server.faults.steps_attempted
    assert fast_server.faults.steps_killed == ref_server.faults.steps_killed
    return ref, fast


class TestServeModes:
    @pytest.mark.parametrize("mode", ["chunked", "exclusive"])
    def test_clean_trace(self, mode):
        ref, fast = _assert_serve_identical(mode)
        assert ref.finished > 0

    @pytest.mark.parametrize("mode", ["chunked", "exclusive"])
    def test_typed_fault_schedule(self, mode):
        # Transients, retrains, and a core death interleave with decode:
        # the horizon must stop strictly before every scheduled event.
        # Rates are sized to the trace's ~0.07s makespan so events
        # actually strike live steps.
        def schedule():
            return FaultSchedule.generate(
                0.06, seed=5, transient_rate_hz=150.0,
                retrain_rate_hz=60.0, core_dead_rate_hz=15.0,
            )

        ref, _ = _assert_serve_identical(mode, schedule_factory=schedule)
        assert ref.fault_log  # the regime actually exercised faults

    def test_bernoulli_fault_injection(self):
        # A nonzero failure rate gates the fast path off entirely; both
        # engines must walk the identical per-step fate sequence.
        ref, _ = _assert_serve_identical("chunked", failure_rate=0.2)
        assert ref.retries > 0

    def test_decode_heavy_trace(self):
        # Long outputs maximise horizon-run length (the regime the fast
        # path is built for).
        trace = _trace(8, seed=3, seq_out_range=(128, 256))
        _assert_serve_identical("chunked", trace=trace)

    def test_burst_arrivals_interrupt_horizon(self):
        # Arrivals landing mid-decode bound every horizon run; the
        # admission clocks must not shift by one step.
        trace = _trace(16, seed=11, mean_interarrival_s=0.0005)
        _assert_serve_identical("chunked", trace=trace)


class TestSlicedStepping:
    def test_advance_to_slicing_matches_closed_run(self):
        closed, _ = _run("chunked", horizon=True)
        server = WaferServer(MODEL, DEVICE, mode="chunked", chunk_tokens=64,
                             default_context_len=512)
        engine = ServeEngine(server, _trace(), horizon=True)
        t = 0.0
        while engine.active:
            t += 0.003
            engine.advance_to(t)
        assert engine.finish() == closed

    def test_horizon_stops_at_advance_bound(self):
        server = WaferServer(MODEL, DEVICE, mode="chunked", chunk_tokens=64,
                             default_context_len=512)
        engine = ServeEngine(server, _trace(), horizon=True)
        engine.advance_to(0.01)
        assert engine.now <= 0.01 or not engine.active


FLEET_SEED = 0


def _fleet_config(horizon):
    return FleetConfig(n_wafers=3, chunk_tokens=64, default_context_len=512,
                       seed=FLEET_SEED, horizon=horizon)


def _fleet_trace():
    return poisson_trace(
        12, seed=FLEET_SEED, mean_interarrival_s=0.003,
        seq_in_range=(64, 256), seq_out_range=(16, 64), n_sessions=3,
    )


def _chaos_ladder():
    """(name, trace, schedule factory) for every ladder scenario."""
    trace = _fleet_trace()
    clean = run_chaos(MODEL, DEVICE, trace, _fleet_config(False))
    horizon_s = clean.makespan_s

    def down_mid():
        return FleetFaultSchedule(events=[FleetFaultEvent(
            at_s=horizon_s * 0.4, kind="wafer_down", wafer=0,
            duration_s=horizon_s * 0.2, detail="mid-trace loss",
        )], seed=FLEET_SEED)

    def churn():
        return FleetFaultSchedule.generate(
            3, horizon_s, seed=FLEET_SEED,
            wafer_down_rate_hz=4.0 / horizon_s,
            wafer_degraded_rate_hz=2.0 / horizon_s,
            down_duration_s=horizon_s * 0.1,
            degraded_duration_s=horizon_s * 0.2,
        )

    def partition():
        return FleetFaultSchedule(events=[FleetFaultEvent(
            at_s=horizon_s * 0.2, kind="router_partition", wafer=1,
            duration_s=horizon_s * 0.3, detail="partition",
        )], seed=FLEET_SEED)

    bursts = bursty_trace(
        12, seed=FLEET_SEED, seq_in_range=(64, 256),
        seq_out_range=(64, 128), n_sessions=3,
    )
    return [
        ("clean", trace, None),
        ("wafer_down", trace, down_mid),
        ("churn", trace, churn),
        ("partition", trace, partition),
        ("bursty", bursts, down_mid),
    ]


class TestFleetChaosLadder:
    @pytest.mark.parametrize(
        "name,trace,schedule_factory", _chaos_ladder(),
        ids=[s[0] for s in _chaos_ladder()],
    )
    def test_ladder_scenario_bit_identical(self, name, trace,
                                           schedule_factory):
        ref = run_chaos(
            MODEL, DEVICE, trace, _fleet_config(False),
            schedule=schedule_factory() if schedule_factory else None,
        )
        fast = run_chaos(
            MODEL, DEVICE, trace, _fleet_config(True),
            schedule=schedule_factory() if schedule_factory else None,
        )
        assert fast.timeline_signature() == ref.timeline_signature()
        assert fast.summary() == ref.summary()
        assert fast.outcomes == ref.outcomes
        assert fast.wafer_segments == ref.wafer_segments
