"""Property tests: every kernel is bit-exact on a remapped logical mesh.

The remap contract is total transparency: a kernel running on a dense
logical mesh carved out of a defective fabric (dead cores skipped
eastward, overloaded rows replaced by spares, dead links detoured) must
produce the *identical* bits it produces on a pristine mesh of the same
logical shape.  Operands are integer-valued floats from seeded stdlib
``random`` streams so every summation order yields the same float —
assertions are ``np.array_equal``, never ``allclose``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.collectives import line_allgather, ring_allreduce
from repro.core.device_presets import TINY_MESH
from repro.gemm import MeshGEMM
from repro.gemv import MeshGEMV
from repro.mesh.machine import MeshMachine
from repro.mesh.remap import DefectMap, normalize_link


def _int_matrix(rnd: random.Random, rows: int, cols: int) -> np.ndarray:
    data = [[float(rnd.randint(-8, 8)) for _ in range(cols)]
            for _ in range(rows)]
    return np.array(data, dtype=np.float64)


def _defective_machine(grid: int, seed: int) -> MeshMachine:
    """A logical ``grid x grid`` mesh over a fabric with seeded defects.

    The physical fabric gets one spare column and one spare row; the
    defect map kills one core per sampled row (forcing eastward skips),
    overloads one row (forcing a spare-row skip) on odd seeds, and kills
    one interior link (forcing a detour).
    """
    rnd = random.Random(9000 + seed)
    pw, ph = grid + 1, grid + 1
    dead_cores = {(rnd.randrange(pw), rnd.randrange(ph))}
    if seed % 2:
        # Overload one row with two dead cores: it cannot host the
        # logical width, so the spare row takes over.
        y = rnd.randrange(ph)
        dead_cores.update({(0, y), (2 % pw, y)})
    dead_links = frozenset({
        normalize_link((grid // 2, grid // 2), (grid // 2 + 1, grid // 2)),
    })
    defects = DefectMap(
        pw, ph,
        dead_cores=frozenset(dead_cores),
        dead_links=dead_links,
        degraded_links={normalize_link((0, 0), (0, 1)): 0.5},
    )
    device = TINY_MESH.submesh(pw, ph)
    return MeshMachine(device, defects=defects, logical_shape=(grid, grid))


class TestGEMMOnRemappedMesh:
    @pytest.mark.parametrize("seed", range(8))
    def test_bit_exact_vs_dense_mesh(self, seed):
        rnd = random.Random(100 + seed)
        grid = rnd.choice([2, 3, 4, 5])  # odd and even grids
        tm, tk, tn = (rnd.randint(1, 3) for _ in range(3))
        a = _int_matrix(rnd, grid * tm, grid * tk)
        b = _int_matrix(rnd, grid * tk, grid * tn)
        dense = MeshMachine(TINY_MESH.submesh(grid, grid))
        remapped = _defective_machine(grid, seed)
        expected = MeshGEMM.run(dense, a, b)
        actual = MeshGEMM.run(remapped, a, b)
        assert np.array_equal(actual, expected)
        assert np.array_equal(actual, a @ b)

    def test_remapped_trace_pays_more_hops(self):
        rnd = random.Random(77)
        grid = 4
        a = _int_matrix(rnd, grid * 2, grid * 2)
        b = _int_matrix(rnd, grid * 2, grid * 2)
        dense = MeshMachine(TINY_MESH.submesh(grid, grid))
        remapped = _defective_machine(grid, 1)
        MeshGEMM.run(dense, a, b)
        MeshGEMM.run(remapped, a, b)
        dense_hops = sum(c.total_hops for c in dense.trace.comms)
        remapped_hops = sum(c.total_hops for c in remapped.trace.comms)
        assert remapped_hops > dense_hops


class TestGEMVOnRemappedMesh:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("broadcast", [False, True])
    def test_bit_exact_vs_dense_mesh(self, seed, broadcast):
        rnd = random.Random(300 + seed)
        grid = rnd.choice([2, 3, 4, 5])
        tk, tn = rnd.randint(1, 3), rnd.randint(1, 3)
        a = _int_matrix(rnd, 1, grid * tk)
        b = _int_matrix(rnd, grid * tk, grid * tn)
        dense = MeshMachine(TINY_MESH.submesh(grid, grid))
        remapped = _defective_machine(grid, seed)
        expected = MeshGEMV.run(dense, a, b, broadcast=broadcast)
        actual = MeshGEMV.run(remapped, a, b, broadcast=broadcast)
        assert np.array_equal(actual, expected)
        assert np.array_equal(actual, (a @ b)[0])


class TestCollectivesOnRemappedMesh:
    @pytest.mark.parametrize("grid", [3, 4, 5])
    def test_ring_allreduce_bit_exact(self, grid):
        rnd = random.Random(500 + grid)
        dense = MeshMachine(TINY_MESH.submesh(grid, grid))
        remapped = _defective_machine(grid, grid)
        for machine in (dense, remapped):
            for idx, coord in enumerate(machine.topology.coords()):
                rnd_core = random.Random(600 + idx)
                machine.place(
                    "v", coord,
                    np.array([float(rnd_core.randint(-8, 8))
                              for _ in range(grid * 2)]),
                )
            lines = [machine.topology.row(y) for y in range(grid)]
            ring_allreduce(machine, lines, "v")
        for coord in dense.topology.coords():
            assert np.array_equal(
                remapped.core(coord).load("v"), dense.core(coord).load("v")
            )

    @pytest.mark.parametrize("grid", [2, 3, 4])
    def test_line_allgather_bit_exact(self, grid):
        dense = MeshMachine(TINY_MESH.submesh(grid, grid))
        remapped = _defective_machine(grid, grid + 1)
        for machine in (dense, remapped):
            for idx, coord in enumerate(machine.topology.coords()):
                machine.place("t", coord, np.full(3, float(idx)))
            lines = [machine.topology.row(y) for y in range(grid)]
            line_allgather(machine, lines, "t", "t.g")
        for coord in dense.topology.coords():
            for i in range(grid):
                assert np.array_equal(
                    remapped.core(coord).load(f"t.g.{i}"),
                    dense.core(coord).load(f"t.g.{i}"),
                )
