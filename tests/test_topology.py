"""Tests for mesh topology math."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, PlacementError
from repro.mesh.topology import MeshTopology, line_positions


class TestBasics:
    def test_num_cores(self):
        assert MeshTopology(7, 5).num_cores == 35

    def test_coords_row_major(self):
        coords = list(MeshTopology(2, 2).coords())
        assert coords == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            MeshTopology(0, 5)

    def test_contains(self):
        topo = MeshTopology(3, 3)
        assert topo.contains((2, 2))
        assert not topo.contains((3, 0))
        assert not topo.contains((-1, 0))

    def test_validate_raises(self):
        with pytest.raises(PlacementError):
            MeshTopology(3, 3).validate((0, 3))


class TestDistances:
    def test_hop_distance_manhattan(self):
        topo = MeshTopology(10, 10)
        assert topo.hop_distance((0, 0), (3, 4)) == 7
        assert topo.hop_distance((9, 9), (0, 0)) == 18

    def test_hop_distance_self(self):
        assert MeshTopology(4, 4).hop_distance((2, 2), (2, 2)) == 0

    def test_max_hops(self):
        assert MeshTopology(10, 7).max_hops == 15

    def test_max_axis_hops(self):
        assert MeshTopology(10, 7).max_axis_hops == 9

    @given(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7),
           st.integers(0, 7))
    def test_hop_distance_symmetric(self, x1, y1, x2, y2):
        topo = MeshTopology(8, 8)
        assert topo.hop_distance((x1, y1), (x2, y2)) == \
            topo.hop_distance((x2, y2), (x1, y1))


class TestRoutes:
    def test_xy_route_goes_x_first(self):
        route = MeshTopology(5, 5).xy_route((0, 0), (2, 2))
        assert route == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_xy_route_length_matches_hops(self):
        topo = MeshTopology(6, 6)
        for src, dst in [((0, 0), (5, 5)), ((3, 1), (1, 4)), ((2, 2), (2, 2))]:
            route = topo.xy_route(src, dst)
            assert len(route) - 1 == topo.hop_distance(src, dst)

    def test_xy_route_westward(self):
        route = MeshTopology(5, 5).xy_route((3, 0), (1, 0))
        assert route == [(3, 0), (2, 0), (1, 0)]

    @given(st.tuples(st.integers(0, 5), st.integers(0, 5)),
           st.tuples(st.integers(0, 5), st.integers(0, 5)))
    def test_xy_route_stays_in_mesh(self, src, dst):
        topo = MeshTopology(6, 6)
        for coord in topo.xy_route(src, dst):
            assert topo.contains(coord)


class TestLines:
    def test_row(self):
        assert MeshTopology(3, 2).row(1) == [(0, 1), (1, 1), (2, 1)]

    def test_column(self):
        assert MeshTopology(3, 2).column(2) == [(2, 0), (2, 1)]

    def test_row_out_of_range(self):
        with pytest.raises(PlacementError):
            MeshTopology(3, 2).row(2)

    def test_column_out_of_range(self):
        with pytest.raises(PlacementError):
            MeshTopology(3, 2).column(3)

    def test_neighbours_interior(self):
        assert len(MeshTopology(5, 5).neighbours((2, 2))) == 4

    def test_neighbours_corner(self):
        assert sorted(MeshTopology(5, 5).neighbours((0, 0))) == [(0, 1), (1, 0)]

    def test_neighbours_edge(self):
        assert len(MeshTopology(5, 5).neighbours((0, 2))) == 3

    def test_line_positions(self):
        assert line_positions(4) == [0, 1, 2, 3]

    def test_line_positions_invalid(self):
        with pytest.raises(ConfigurationError):
            line_positions(0)
