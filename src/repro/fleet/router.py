"""The fleet router: dispatch, retry, hedging, and cross-wafer failover.

The router is the client-facing control loop of the fleet.  It runs a
single deterministic event queue in global time (a heap keyed on
``(time, seq)`` — the monotone sequence number breaks ties, so two
same-seed runs pop events in the same order) and processes four event
kinds:

* **dispatch** — route one request (an original arrival, a retry, a
  migrated continuation, or a hedge copy) to a wafer and submit it to
  that wafer's :class:`~repro.serving.chunked.ServeEngine`;
* **fleet_fault** — apply a wafer-scoped event from the
  :class:`~repro.fleet.faults.FleetFaultSchedule` (``wafer_down``
  drains and retires the wafer; ``wafer_degraded`` deprioritizes it;
  ``router_partition`` hides it from new dispatches);
* **readmit** — boot a fresh epoch of a previously-failed wafer after
  its recovery window plus the readmission cooldown;
* **harvest** ticks happen implicitly: every time the router advances a
  wafer's clock it collects new completions and rejections from that
  wafer and reacts (first-completion accounting, retry-with-backoff).

Routing policy: session affinity first (a session's KV history lives on
its pinned wafer — keep it there while that wafer is healthy), then
least-estimated-wait among healthy wafers, where the wait estimate is
the wafer's unprocessed prefill backlog costed at the admission
controller's optimistic per-token prefill rate.  Degraded wafers sort
behind healthy ones; partitioned and down wafers are not candidates at
all.

Failure handling is layered, innermost first:

1. **Per-wafer escalation** (PR 3's ladder) — retries, remaps,
   degradations happen inside the engine and the router never sees them.
2. **Router retry** — a request the wafer *rejects* (admission shed, or
   shed during capacity degradation) is re-dispatched after a seeded
   decorrelated-jitter backoff, excluding the wafer that bounced it;
   after ``max_attempts`` total dispatches it is declared **lost**.
3. **Hedged dispatch** — optionally, when the best wait estimate
   exceeds ``hedge_threshold_s`` a duplicate rides the second-best
   wafer; the first copy to finish wins, the loser's tokens are
   accounted as hedge waste (the simulation has no cancellation —
   mirroring real routers whose hedges run to completion once started).
4. **Cross-wafer failover** — when a wafer dies
   (:class:`~repro.errors.SpareExhaustionError` from an exhausted spare
   pool, or a scheduled ``wafer_down``), the router drains it into
   :class:`~repro.serving.chunked.SessionSnapshot` records and
   re-dispatches each as a *continuation* on a healthy wafer: the
   continuation's prompt is the session's full live context
   (``seq_in + generated`` tokens — the KV that must be rebuilt, billed
   naturally through the target's chunked prefill), its decode budget
   is the ``seq_out - generated`` tokens still owed, and it carries no
   SLOs (a refugee must not be bounced by admission for blowing a
   deadline the fault already blew).  Client-visible latency still
   judges the *original* SLOs in :class:`SessionOutcome.met_slo`.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, FaultEscalationError
from repro.fleet.faults import FleetFaultEvent, FleetFaultSchedule
from repro.fleet.fleet import WaferFleet
from repro.fleet.metrics import (
    FleetMetrics,
    FleetTimelineEntry,
    SessionOutcome,
)
from repro.mesh.faults import derive_seed
from repro.serving.chunked import ServeEngine, SessionSnapshot
from repro.serving.request import Request


@dataclass
class RouterConfig:
    """Knobs of the dispatch / retry / failover policy."""

    session_affinity: bool = True
    #: Total dispatches allowed per logical request (1 primary + retries).
    max_attempts: int = 4
    retry_base_backoff_s: float = 1e-3
    retry_max_backoff_s: float = 0.25
    #: Estimated-wait ceiling; above it the router keeps the request
    #: queued (with backoff) instead of dispatching — None disables.
    dispatch_timeout_s: Optional[float] = None
    #: Estimated-wait level that triggers a duplicate dispatch on the
    #: second-best wafer — None disables hedging.
    hedge_threshold_s: Optional[float] = None
    #: Lag between draining a dead wafer and re-dispatching its sessions
    #: (detection + snapshot shipping).
    failover_delay_s: float = 1e-3
    #: Recovery time before a wafer that died of spare exhaustion may
    #: rejoin (scheduled ``wafer_down`` events carry their own duration).
    recovery_s: float = 0.05
    #: Extra cooldown after recovery before the router trusts the wafer.
    readmit_cooldown_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.retry_base_backoff_s <= 0:
            raise ConfigurationError("retry_base_backoff_s must be > 0")
        if self.retry_max_backoff_s < self.retry_base_backoff_s:
            raise ConfigurationError(
                "retry_max_backoff_s must be >= retry_base_backoff_s"
            )
        for name in (
            "failover_delay_s", "recovery_s", "readmit_cooldown_s",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")


@dataclass
class _Dispatch:
    """One dispatch attempt of a logical request."""

    outcome: SessionOutcome
    request: Request          # what actually runs (continuation on migrate)
    attempt: int              # 1-based count of dispatches so far
    exclude: Set[int]         # wafers not to route to (just bounced us)
    kind: str = "primary"     # primary | retry | migration | hedge


class FleetRouter:
    """Health-checked load balancer over a :class:`WaferFleet`."""

    def __init__(
        self,
        fleet: WaferFleet,
        config: Optional[RouterConfig] = None,
        schedule: Optional[FleetFaultSchedule] = None,
    ):
        self.fleet = fleet
        self.config = config or RouterConfig()
        self.schedule = schedule
        # Retry jitter derives from the fleet fault schedule's seed when
        # it has one, else from the fleet seed — either way one root
        # seed pins the entire reaction timeline.
        root_seed = (
            schedule.seed
            if schedule is not None and schedule.seed is not None
            else fleet.config.seed
        )
        self._retry_rng = random.Random(
            derive_seed(root_seed, "router-retry-jitter")
        )
        self._prev_backoff = 0.0
        # Wafer state the router tracks on top of fleet.up.
        n = fleet.n_wafers
        self._degraded_until = [0.0] * n
        self._partitioned_until = [0.0] * n
        self._affinity: Dict[int, int] = {}      # session_id -> wafer
        # local request id -> (outcome, dispatch kind); local ids are
        # globally unique across the fleet so harvests map back exactly.
        self._inflight: Dict[int, Tuple[SessionOutcome, str]] = {}
        self._local_ids = itertools.count(1)
        # Per-wafer high-water marks into the engine's completion log
        # and rejected list: a harvest reads only the suffix, instead of
        # re-scanning every stat the wafer ever produced.
        self._completions_seen = [0] * n
        self._rejects_seen = [0] * n
        # Bookkeeping for the rollup.
        self.timeline: List[FleetTimelineEntry] = []
        self.failovers = 0
        self.migrations = 0
        self.router_retries = 0
        self.hedges = 0
        self.hedge_wasted_tokens = 0
        self.down_windows: List[Tuple[float, float, int]] = []
        self._seq = itertools.count()
        self._heap: List[Tuple[float, int, str, object]] = []

    # -- event queue ----------------------------------------------------
    def _push(self, at_s: float, kind: str, payload: object) -> None:
        heapq.heappush(self._heap, (at_s, next(self._seq), kind, payload))

    def _retry_backoff(self) -> float:
        """Seeded decorrelated-jitter pause before a router retry."""
        cfg = self.config
        if self._prev_backoff <= 0:
            pause = cfg.retry_base_backoff_s
        else:
            pause = self._retry_rng.uniform(
                cfg.retry_base_backoff_s, self._prev_backoff * 3.0
            )
        pause = min(pause, cfg.retry_max_backoff_s)
        self._prev_backoff = pause
        return pause

    # -- wafer state ----------------------------------------------------
    def _advance_wafer(self, wafer: int, t_s: float) -> None:
        """Advance one wafer's clock, catching ladder exhaustion."""
        eng = self.fleet.engines[wafer]
        if eng is None:
            return
        try:
            eng.advance_to(t_s)
        except FaultEscalationError as exc:
            self._fail_wafer(
                wafer, eng.now, self.config.recovery_s, str(exc)
            )
            return
        self._harvest(wafer)

    def _advance_all(self, t_s: float) -> None:
        for wafer in range(self.fleet.n_wafers):
            if self.fleet.up[wafer]:
                self._advance_wafer(wafer, t_s)

    def _candidates(self, t_s: float) -> List[int]:
        return [
            w for w in range(self.fleet.n_wafers)
            if self.fleet.up[w] and t_s >= self._partitioned_until[w]
        ]

    def _est_wait_s(self, wafer: int) -> float:
        """Expected queueing before new work starts on this wafer."""
        eng = self.fleet.engines[wafer]
        if eng is None:
            return math.inf
        rate = eng.server.admission.optimistic_prefill_s_per_token
        return eng.backlog_prefill_tokens() * rate

    def _choose_wafer(
        self, t_s: float, dispatch: _Dispatch
    ) -> Tuple[Optional[int], Optional[int]]:
        """(target, hedge_target) for a dispatch, or (None, None).

        ``None`` target means *no wafer can take this now* — the caller
        requeues with backoff (or, on the final attempt, force-routes to
        the least-loaded candidate so a loaded-but-alive fleet never
        loses a request to its own timeout policy).
        """
        cfg = self.config
        candidates = [
            w for w in self._candidates(t_s) if w not in dispatch.exclude
        ]
        if not candidates:
            # Everything eligible just bounced us (or is down): retry
            # anywhere that is at least alive.
            candidates = self._candidates(t_s)
        if not candidates:
            return None, None
        session = dispatch.request.session_id
        if cfg.session_affinity and session is not None:
            pinned = self._affinity.get(session)
            if pinned is not None and pinned in candidates:
                return pinned, None
        ranked = sorted(
            candidates,
            key=lambda w: (
                t_s < self._degraded_until[w],
                self._est_wait_s(w),
                w,
            ),
        )
        best = ranked[0]
        best_wait = self._est_wait_s(best)
        if (
            cfg.dispatch_timeout_s is not None
            and best_wait > cfg.dispatch_timeout_s
            and dispatch.attempt < cfg.max_attempts
        ):
            return None, None
        hedge = None
        if (
            cfg.hedge_threshold_s is not None
            and dispatch.kind == "primary"
            and best_wait > cfg.hedge_threshold_s
            and len(ranked) > 1
        ):
            hedge = ranked[1]
        return best, hedge

    # -- dispatch / harvest ---------------------------------------------
    def _submit(
        self, t_s: float, wafer: int, dispatch: _Dispatch
    ) -> None:
        """Materialize a dispatch as a local request on one wafer."""
        eng = self.fleet.engine(wafer)
        # Local ids are globally unique across the fleet, so harvests
        # map back to outcomes exactly even under hedged duplicates.
        local = replace(
            dispatch.request,
            request_id=next(self._local_ids),
            arrival_s=t_s,
        )
        eng.submit(local)
        self._inflight[local.request_id] = (dispatch.outcome, dispatch.kind)
        dispatch.outcome.dispatches += 1
        dispatch.outcome.wafers.append(wafer)
        session = dispatch.request.session_id
        if session is not None and dispatch.kind != "hedge":
            self._affinity[session] = wafer

    def _dispatch(self, t_s: float, dispatch: _Dispatch) -> None:
        cfg = self.config
        self._advance_all(t_s)
        target, hedge = self._choose_wafer(t_s, dispatch)
        if target is None:
            # No wafer can take this now: everything is down or
            # partitioned, or the best wait estimate blows the dispatch
            # timeout.  Requeue with backoff — a down wafer always has a
            # readmit event pending, so the queue can never stall empty
            # with work parked.
            if not any(self.fleet.up):
                requeue_at = t_s + cfg.recovery_s
            else:
                requeue_at = t_s + self._retry_backoff()
            self._push(requeue_at, "dispatch", dispatch)
            return
        self._submit(t_s, target, dispatch)
        if hedge is not None:
            self.hedges += 1
            dispatch.outcome.hedges += 1
            hedge_copy = _Dispatch(
                outcome=dispatch.outcome,
                request=dispatch.request,
                attempt=dispatch.attempt,
                exclude=set(dispatch.exclude),
                kind="hedge",
            )
            self._submit(t_s, hedge, hedge_copy)

    def _harvest(self, wafer: int) -> None:
        """Collect new completions/rejections from one wafer's engine."""
        eng = self.fleet.engines[wafer]
        if eng is None:
            return
        cfg = self.config
        # Completions stream off the engine's append-only finish log in
        # finish order — the order the docstring's "first copy to finish
        # wins" rule wants — so a harvest is O(new completions), not
        # O(everything this wafer ever served).
        log = eng.completed_log
        new_completions = log[self._completions_seen[wafer]:]
        self._completions_seen[wafer] = len(log)
        for request_id in new_completions:
            stats = eng.stats[request_id]
            entry = self._inflight.pop(request_id, None)
            if entry is None:
                continue
            outcome, kind = entry
            if outcome.completed:
                # A slower hedge copy finishing after the winner: its
                # tokens were burned, not delivered.
                self.hedge_wasted_tokens += stats.request.seq_out
                continue
            outcome.completed = True
            outcome.finish_s = stats.finish_s
            first = stats.first_token_s or stats.decode_start_s
            if kind == "migration" and outcome.first_token_s > 0:
                # The client saw its first token on the dead wafer;
                # the continuation's "first token" is mid-stream.
                first = outcome.first_token_s
            outcome.first_token_s = (
                min(outcome.first_token_s, first)
                if outcome.first_token_s > 0 else first
            )
            outcome.tokens_emitted += stats.request.seq_out
        # Rejections: admission shed or capacity-degradation shed.
        rejects = eng.rejected
        new = rejects[self._rejects_seen[wafer]:]
        if eng.drained:
            # drain() appended every unfinished session to rejected for
            # per-wafer conservation; those are handled by failover, not
            # by the retry path.  _fail_wafer resets the counter.
            return
        self._rejects_seen[wafer] = len(rejects)
        for request in new:
            entry = self._inflight.pop(request.request_id, None)
            if entry is None:
                continue
            outcome, kind = entry
            if outcome.completed:
                continue
            if kind == "hedge":
                # A bounced hedge copy just disappears; the primary is
                # still in flight somewhere.
                continue
            attempt = outcome.dispatches
            if attempt >= cfg.max_attempts:
                outcome.lost = True
                self.timeline.append(FleetTimelineEntry(
                    at_s=eng.now, kind="lost", wafer=wafer,
                    detail=f"request {outcome.request.request_id} "
                           f"exhausted {attempt} attempts",
                ))
                continue
            self.router_retries += 1
            outcome.retries += 1
            retry = _Dispatch(
                outcome=outcome,
                request=request,
                attempt=attempt + 1,
                exclude={wafer},
                kind="retry",
            )
            self._push(
                eng.now + self._retry_backoff(), "dispatch", retry
            )

    # -- failover -------------------------------------------------------
    def _fail_wafer(
        self, wafer: int, t_s: float, recovery_s: float, detail: str = ""
    ) -> None:
        """Drain a dead wafer, migrate its sessions, schedule readmit."""
        cfg = self.config
        eng = self.fleet.engines[wafer]
        if eng is None:
            return
        self._harvest(wafer)
        snapshots = eng.drain()
        self.fleet.retire(wafer)
        self.failovers += 1
        self.timeline.append(FleetTimelineEntry(
            at_s=t_s, kind="wafer_down", wafer=wafer, detail=detail,
        ))
        rejoin_at = t_s + recovery_s + cfg.readmit_cooldown_s
        self.down_windows.append((t_s, rejoin_at, wafer))
        self._push(rejoin_at, "readmit", wafer)
        # Sessions pinned here must re-home.
        self._affinity = {
            s: w for s, w in self._affinity.items() if w != wafer
        }
        for snap in snapshots:
            entry = self._inflight.pop(snap.request.request_id, None)
            if entry is None:
                continue
            outcome, kind = entry
            if outcome.completed:
                continue
            if kind == "hedge":
                continue
            continuation = self._continuation(snap, outcome)
            if continuation is None:
                continue
            if snap.started:
                self.migrations += 1
                outcome.migrations += 1
                self.timeline.append(FleetTimelineEntry(
                    at_s=t_s, kind="migration", wafer=wafer,
                    detail=(
                        f"request {outcome.request.request_id}: "
                        f"{snap.context} ctx tokens re-prefill, "
                        f"{snap.remaining_out} decode tokens owed"
                    ),
                ))
            self._push(
                t_s + cfg.failover_delay_s, "dispatch",
                _Dispatch(
                    outcome=outcome,
                    request=continuation,
                    attempt=outcome.dispatches,
                    exclude={wafer},
                    kind="migration",
                ),
            )
        self._completions_seen[wafer] = 0
        self._rejects_seen[wafer] = 0

    def _continuation(
        self, snap: SessionSnapshot, outcome: SessionOutcome
    ) -> Optional[Request]:
        """Build the re-dispatch request for a drained session.

        The continuation re-prefills the session's full live context
        (prompt progress + generated tokens — the KV to rebuild) and
        decodes only the tokens still owed.  Tokens the client already
        received stay received: ``outcome.tokens_emitted`` was not
        credited for the dead wafer (it never completed there), so the
        continuation's ``seq_out`` is what completion will credit.
        """
        local = snap.request
        seq_in = local.seq_in + snap.generated
        seq_out = local.seq_out - snap.generated
        if seq_out < 1:
            return None
        if snap.generated > 0:
            # Tokens already streamed to the client count now — the
            # continuation will only be credited its own seq_out.
            outcome.tokens_emitted += snap.generated
            if outcome.first_token_s <= 0 and snap.stats.first_token_s > 0:
                outcome.first_token_s = snap.stats.first_token_s
        return Request(
            request_id=local.request_id,   # replaced at submit time
            seq_in=seq_in,
            seq_out=seq_out,
            arrival_s=local.arrival_s,     # replaced at submit time
            priority=local.priority,
            ttft_slo_s=None,               # refugees are best-effort
            tpot_slo_s=None,
            session_id=local.session_id,
        )

    # -- fleet faults ---------------------------------------------------
    def _apply_fleet_fault(self, event: FleetFaultEvent) -> None:
        wafer = event.wafer
        if wafer >= self.fleet.n_wafers:
            raise ConfigurationError(
                f"fault targets wafer {wafer} but the fleet has "
                f"{self.fleet.n_wafers}"
            )
        t = event.at_s
        if event.kind == "wafer_down":
            if not self.fleet.up[wafer]:
                return  # already down; the window is subsumed
            self._advance_wafer(wafer, t)
            if self.fleet.up[wafer]:
                self._fail_wafer(wafer, t, event.duration_s, event.detail)
        elif event.kind == "wafer_degraded":
            self._degraded_until[wafer] = max(
                self._degraded_until[wafer], t + event.duration_s
            )
            self.timeline.append(FleetTimelineEntry(
                at_s=t, kind="wafer_degraded", wafer=wafer,
                detail=event.detail,
            ))
        elif event.kind == "router_partition":
            self._partitioned_until[wafer] = max(
                self._partitioned_until[wafer], t + event.duration_s
            )
            self.timeline.append(FleetTimelineEntry(
                at_s=t, kind="router_partition", wafer=wafer,
                detail=event.detail,
            ))

    # -- main loop ------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> FleetMetrics:
        """Serve a trace through the fleet under the fault schedule."""
        if not requests:
            raise ConfigurationError("no requests to route")
        if len({r.request_id for r in requests}) != len(requests):
            raise ConfigurationError("request ids must be unique")
        # Fault events go on the queue first: at equal timestamps the
        # sequence tie-break then applies the fault before the dispatch,
        # so a partition at time t already governs routing at time t.
        if self.schedule is not None:
            for event in self.schedule.events:
                self._push(event.at_s, "fleet_fault", event)
        outcomes: List[SessionOutcome] = []
        for request in sorted(
            requests, key=lambda r: (r.arrival_s, r.request_id)
        ):
            outcome = SessionOutcome(request=request)
            outcomes.append(outcome)
            self._push(request.arrival_s, "dispatch", _Dispatch(
                outcome=outcome, request=request, attempt=1, exclude=set(),
            ))

        while self._heap:
            while self._heap:
                t_s, _, kind, payload = heapq.heappop(self._heap)
                if kind == "dispatch":
                    self._dispatch(t_s, payload)
                elif kind == "fleet_fault":
                    self._apply_fleet_fault(payload)
                elif kind == "readmit":
                    wafer = payload
                    self.fleet.replace(wafer, t_s)
                    self.timeline.append(FleetTimelineEntry(
                        at_s=t_s, kind="readmit", wafer=wafer,
                    ))
            # Queue drained: run every live wafer dry.  This can raise
            # new events (escalation failovers, rejections to retry),
            # so loop until the heap stays empty.
            for wafer in range(self.fleet.n_wafers):
                if self.fleet.up[wafer]:
                    self._advance_wafer(wafer, math.inf)

        self.fleet.finalize()
        makespan = self.fleet.makespan_s()
        for entry in self.timeline:
            makespan = max(makespan, entry.at_s)
        for outcome in outcomes:
            makespan = max(makespan, outcome.finish_s)
        return FleetMetrics(
            n_wafers=self.fleet.n_wafers,
            outcomes=outcomes,
            wafer_segments=[list(s) for s in self.fleet.segments],
            timeline=list(self.timeline),
            makespan_s=makespan,
            failovers=self.failovers,
            migrations=self.migrations,
            router_retries=self.router_retries,
            hedges=self.hedges,
            hedge_wasted_tokens=self.hedge_wasted_tokens,
            down_windows=list(self.down_windows),
        )
