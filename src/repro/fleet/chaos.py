"""Deterministic chaos harness: seeded arrival × fault sweeps.

The fleet claims are availability claims, and availability numbers mean
nothing without the failure story that produced them being replayable.
Every sweep here is a pure function of one seed: the arrival trace, the
wafer-scoped fault schedule, the per-wafer Bernoulli streams, and both
jitter streams (escalation backoff, router retry) all derive from it,
so two runs with the same seed replay the identical fault *and* reaction
timeline — :meth:`FleetMetrics.timeline_signature` is the proof the
determinism tests assert.

The ladder mirrors the single-wafer fault sweep (``run_fault_sweep``):
run the clean fleet first, reuse its makespan as every chaos scenario's
fault horizon, then walk scenarios of increasing unpleasantness —
a planned mid-trace wafer loss, seeded wafer churn, a router partition,
and bursty arrivals colliding with a wafer loss.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.core.plmr import PLMRDevice
from repro.errors import ConfigurationError
from repro.fleet.faults import FleetFaultEvent, FleetFaultSchedule
from repro.fleet.fleet import FleetConfig, WaferFleet
from repro.fleet.metrics import FleetMetrics
from repro.fleet.router import FleetRouter, RouterConfig
from repro.llm.config import ModelConfig
from repro.mesh.faults import derive_seed
from repro.serving.request import Request
from repro.serving.trace import synthetic_trace


def sessionize(
    requests: Sequence[Request], n_sessions: int
) -> List[Request]:
    """Assign session ids round-robin so affinity has something to pin."""
    if n_sessions < 1:
        raise ConfigurationError("n_sessions must be >= 1")
    return [
        replace(r, session_id=r.request_id % n_sessions) for r in requests
    ]


def poisson_trace(
    num_requests: int,
    seed: int,
    mean_interarrival_s: float,
    n_sessions: int = 4,
    **kwargs,
) -> List[Request]:
    """Poisson arrivals with session ids (the default fleet workload)."""
    return sessionize(
        synthetic_trace(
            num_requests, seed=seed,
            mean_interarrival_s=mean_interarrival_s, **kwargs,
        ),
        n_sessions,
    )


def bursty_trace(
    num_requests: int,
    seed: int,
    burst_size: int = 4,
    burst_gap_s: float = 0.5,
    n_sessions: int = 4,
    **kwargs,
) -> List[Request]:
    """Closed bursts: ``burst_size`` near-simultaneous arrivals per gap.

    Models the flash-crowd pattern that defeats per-request smoothing:
    within a burst, arrivals land within a small seeded jitter of the
    burst instant, so the router must spread them across wafers rather
    than rely on arrival spacing.
    """
    if burst_size < 1:
        raise ConfigurationError("burst_size must be >= 1")
    base = synthetic_trace(
        num_requests, seed=seed, mean_interarrival_s=0.0, **kwargs
    )
    rng = random.Random(derive_seed(seed, "bursty-jitter"))
    shaped: List[Request] = []
    for request in base:
        burst = request.request_id // burst_size
        arrival = burst * burst_gap_s + rng.uniform(0.0, burst_gap_s * 0.05)
        shaped.append(replace(request, arrival_s=arrival))
    return sessionize(shaped, n_sessions)


def run_chaos(
    model: ModelConfig,
    device: PLMRDevice,
    requests: Sequence[Request],
    fleet_config: FleetConfig,
    router_config: Optional[RouterConfig] = None,
    schedule: Optional[FleetFaultSchedule] = None,
) -> FleetMetrics:
    """One chaos run: fresh fleet, fresh router, one trace, one schedule."""
    fleet = WaferFleet(model, device, fleet_config)
    router = FleetRouter(fleet, router_config, schedule)
    return router.run(list(requests))


def chaos_sweep(
    model: ModelConfig,
    device: PLMRDevice,
    n_wafers: int = 3,
    n_requests: int = 24,
    seed: int = 0,
    mean_interarrival_s: float = 0.02,
    seq_in_range: Tuple[int, int] = (256, 1024),
    seq_out_range: Tuple[int, int] = (32, 128),
    default_context_len: int = 2048,
    chunk_tokens: int = 256,
) -> List[Tuple[str, FleetMetrics]]:
    """The canonical fleet chaos ladder: one trace, five scenarios.

    Runs the clean fleet first and reuses its makespan as the fault
    horizon for every scenario, exactly like the single-wafer fault
    sweep — the whole ladder is a pure function of ``seed``.
    """
    trace = poisson_trace(
        n_requests, seed=seed, mean_interarrival_s=mean_interarrival_s,
        seq_in_range=seq_in_range, seq_out_range=seq_out_range,
        ttft_slo_s=5.0, tpot_slo_s=0.5,
    )

    def config() -> FleetConfig:
        return FleetConfig(
            n_wafers=n_wafers, chunk_tokens=chunk_tokens,
            default_context_len=default_context_len, seed=seed,
        )

    baseline = run_chaos(model, device, trace, config())
    horizon = baseline.makespan_s
    scenarios: List[Tuple[str, FleetMetrics]] = [("clean fleet", baseline)]

    down_mid = FleetFaultSchedule(events=[
        FleetFaultEvent(
            at_s=horizon * 0.4, kind="wafer_down", wafer=0,
            duration_s=horizon * 0.2, detail="planned mid-trace loss",
        ),
    ], seed=seed)
    scenarios.append((
        "wafer down mid-trace",
        run_chaos(model, device, trace, config(), schedule=down_mid),
    ))

    churn = FleetFaultSchedule.generate(
        n_wafers, horizon, seed=seed,
        wafer_down_rate_hz=4.0 / horizon,
        wafer_degraded_rate_hz=2.0 / horizon,
        down_duration_s=horizon * 0.1,
        degraded_duration_s=horizon * 0.2,
    )
    scenarios.append((
        "wafer churn",
        run_chaos(model, device, trace, config(), schedule=churn),
    ))

    partition = FleetFaultSchedule(events=[
        FleetFaultEvent(
            at_s=horizon * 0.2, kind="router_partition", wafer=1,
            duration_s=horizon * 0.3, detail="planned partition",
        ),
    ], seed=seed)
    scenarios.append((
        "router partition",
        run_chaos(model, device, trace, config(), schedule=partition),
    ))

    bursts = bursty_trace(
        n_requests, seed=seed,
        seq_in_range=seq_in_range, seq_out_range=seq_out_range,
        ttft_slo_s=5.0, tpot_slo_s=0.5,
    )
    scenarios.append((
        "bursty arrivals + wafer down",
        run_chaos(model, device, bursts, config(), schedule=down_mid),
    ))
    return scenarios


def fleet_rows(
    scenarios: Sequence[Tuple[str, FleetMetrics]]
) -> List[List[str]]:
    """Render ``chaos_sweep`` output as the shared fleet-table rows."""
    rows: List[List[str]] = []
    for label, m in scenarios:
        rows.append([
            label,
            str(m.finished), str(m.lost_requests),
            str(m.failovers), str(m.migrations), str(m.router_retries),
            f"{m.availability:.4f}",
            f"{m.mttr_s * 1e3:.2f}",
            f"{m.p99_ttft_s * 1e3:.1f}",
            f"{m.goodput_tokens_per_s:,.0f}",
        ])
    return rows


def run_smoke(seed: int = 0) -> FleetMetrics:
    """Tiny fixed-seed failover check for CI (``repro fleet --smoke``).

    Three small wafers, a short Poisson trace, one mid-trace
    ``wafer_down``; asserts the failover contract — availability dips
    below 1 but stays positive, at least one failover fires, and no
    admitted request is lost.
    """
    from repro.core.device_presets import get_device
    from repro.llm.config import get_model

    device = get_device("ipu-like-crossbar")
    model = get_model("tiny-gqa")
    # One burst at t=0 keeps every wafer busy until the work is done, so
    # a fault placed mid-window is guaranteed to strike live sessions.
    trace = poisson_trace(
        12, seed=seed, mean_interarrival_s=0.0,
        seq_in_range=(64, 128), seq_out_range=(8, 16),
        n_sessions=3,
    )

    def config() -> FleetConfig:
        return FleetConfig(
            n_wafers=3, chunk_tokens=64, default_context_len=256, seed=seed,
        )

    clean = run_chaos(model, device, trace, config())
    horizon = clean.makespan_s
    schedule = FleetFaultSchedule(events=[
        FleetFaultEvent(
            at_s=horizon * 0.4, kind="wafer_down", wafer=0,
            duration_s=horizon * 0.3, detail="smoke wafer loss",
        ),
    ], seed=seed)
    metrics = run_chaos(model, device, trace, config(), schedule=schedule)
    if metrics.failovers < 1:
        raise AssertionError("smoke: expected at least one failover")
    if metrics.migrations < 1:
        raise AssertionError(
            "smoke: expected live sessions to migrate off the dead wafer"
        )
    if metrics.lost_requests != 0:
        raise AssertionError(
            f"smoke: {metrics.lost_requests} requests lost in failover"
        )
    if not 0.0 < metrics.availability <= 1.0:
        raise AssertionError(
            f"smoke: availability {metrics.availability} out of range"
        )
    if metrics.finished != len(trace):
        raise AssertionError(
            f"smoke: {metrics.finished}/{len(trace)} requests finished"
        )
    return metrics
