"""Fleet-level rollups over per-wafer serving metrics.

One wafer's :class:`~repro.serving.metrics.ServingMetrics` answers "what
did this region do with the requests it was handed".  A fleet run has to
answer a different question — "what did the *client* experience" — and
the two diverge precisely when failover happens: a session that started
on wafer 0, died with it, and finished as a continuation on wafer 2 is
one client request but two per-wafer records (a shed session there, a
completion here).

:class:`SessionOutcome` is the client-side ledger entry: it follows one
original request across every dispatch, retry, hedge, and migration, and
judges latency against the *original* arrival time and SLOs — a failover
does not reset the clock the client is watching.

:class:`FleetMetrics` aggregates outcomes plus the per-wafer segment
reports (each wafer epoch between boots contributes one segment) into
the headline numbers of the EXPERIMENTS fleet table: fleet goodput, p99
TTFT, availability (wafer-seconds up over wafer-seconds total), failover
count, and MTTR.  :meth:`timeline_signature` hashes the ordered
fault/failover timeline so determinism tests can assert that two
same-seed runs replayed the exact same story.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.serving.metrics import ServingMetrics
from repro.serving.request import Request
from repro.serving.stats import percentile_sorted


@dataclass
class SessionOutcome:
    """Client-side fate of one original request across the fleet.

    ``wafers`` lists every wafer the session touched, in dispatch order
    (duplicates possible under retry).  ``tokens_emitted`` counts tokens
    the client actually received — re-prefilled context on a failover
    target is *not* emitted again, so a migrated session still delivers
    exactly ``seq_out`` tokens in total.
    """

    request: Request
    dispatches: int = 0
    migrations: int = 0
    hedges: int = 0
    retries: int = 0
    first_token_s: float = 0.0
    finish_s: float = 0.0
    completed: bool = False
    lost: bool = False
    tokens_emitted: int = 0
    wafers: List[int] = field(default_factory=list)

    @property
    def ttft_s(self) -> float:
        """Original arrival to first token the client saw."""
        return self.first_token_s - self.request.arrival_s

    @property
    def latency_s(self) -> float:
        """Original arrival to last token, across all migrations."""
        return self.finish_s - self.request.arrival_s

    @property
    def tpot_s(self) -> float:
        """Mean inter-token interval of the client-visible stream."""
        if self.request.seq_out <= 1:
            return 0.0
        return (self.finish_s - self.first_token_s) / (
            self.request.seq_out - 1
        )

    @property
    def met_slo(self) -> bool:
        """Whether the *original* SLOs held end-to-end.

        Judged against the request's own targets from its original
        arrival: a failover does not grant a fresh deadline.
        """
        if not self.completed:
            return False
        if (
            self.request.ttft_slo_s is not None
            and self.ttft_s > self.request.ttft_slo_s
        ):
            return False
        if (
            self.request.tpot_slo_s is not None
            and self.tpot_s > self.request.tpot_slo_s
        ):
            return False
        return True


@dataclass(frozen=True)
class FleetTimelineEntry:
    """One fleet-visible event: a fault, failover, migration, or loss."""

    at_s: float
    kind: str
    wafer: int
    detail: str = ""


@dataclass
class FleetMetrics:
    """Aggregate outcome of one fleet chaos run.

    ``wafer_segments[i]`` holds one :class:`ServingMetrics` per epoch of
    wafer ``i`` (a wafer that died and rebooted contributes a segment
    per life).  ``down_windows`` records ``(start_s, end_s, wafer)``
    intervals during which a wafer was out of service.
    """

    n_wafers: int
    outcomes: List[SessionOutcome]
    wafer_segments: List[List[ServingMetrics]]
    timeline: List[FleetTimelineEntry]
    makespan_s: float
    failovers: int = 0
    migrations: int = 0
    router_retries: int = 0
    hedges: int = 0
    hedge_wasted_tokens: int = 0
    down_windows: List[Tuple[float, float, int]] = field(default_factory=list)
    # Sorted TTFT sample cache keyed on the outcome count, so growing
    # the ledger invalidates stale entries through the key itself.
    # Derived state: excluded from equality and repr.
    _pct_cache: Dict[Tuple[str, int], List[float]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def _sorted_ttft(self) -> List[float]:
        """Completed-session TTFTs, sorted once per ledger length."""
        key = ("ttft", len(self.outcomes))
        ordered = self._pct_cache.get(key)
        if ordered is None:
            ordered = sorted(
                o.ttft_s for o in self.outcomes if o.completed
            )
            self._pct_cache[key] = ordered
        return ordered

    # -- conservation ---------------------------------------------------
    @property
    def submitted(self) -> int:
        return len(self.outcomes)

    @property
    def completed_outcomes(self) -> List[SessionOutcome]:
        return [o for o in self.outcomes if o.completed]

    @property
    def finished(self) -> int:
        return len(self.completed_outcomes)

    @property
    def lost_requests(self) -> int:
        """Admitted requests the fleet failed to finish anywhere."""
        return sum(1 for o in self.outcomes if o.lost)

    @property
    def rejected(self) -> int:
        """Requests that never completed and were not declared lost.

        With retry budgets these normally drain to zero or get marked
        lost; a nonzero value means admission bounced them everywhere.
        """
        return sum(
            1 for o in self.outcomes if not o.completed and not o.lost
        )

    # -- availability / recovery ----------------------------------------
    @property
    def unavailable_wafer_seconds(self) -> float:
        """Wafer-seconds lost to down windows and intra-wafer faults."""
        down = sum(
            max(0.0, min(end, self.makespan_s) - min(start, self.makespan_s))
            for start, end, _ in self.down_windows
        )
        intra = sum(
            seg.downtime_s
            for segments in self.wafer_segments
            for seg in segments
        )
        return down + intra

    @property
    def availability(self) -> float:
        """Fraction of fleet wafer-seconds spent in service."""
        if self.makespan_s <= 0 or self.n_wafers <= 0:
            return 1.0
        total = self.n_wafers * self.makespan_s
        return max(0.0, 1.0 - self.unavailable_wafer_seconds / total)

    @property
    def incidents(self) -> int:
        """Down windows plus intra-wafer incidents that cost time."""
        intra = sum(
            1
            for segments in self.wafer_segments
            for seg in segments
            for e in seg.fault_log
            if e.downtime_s > 0
        )
        return len(self.down_windows) + intra

    @property
    def mttr_s(self) -> float:
        """Mean time-to-recovery over every unavailability incident."""
        if self.incidents == 0:
            return 0.0
        return self.unavailable_wafer_seconds / self.incidents

    # -- latency / goodput ----------------------------------------------
    @property
    def p50_ttft_s(self) -> float:
        return percentile_sorted(self._sorted_ttft(), 0.50)

    @property
    def p99_ttft_s(self) -> float:
        return percentile_sorted(self._sorted_ttft(), 0.99)

    @property
    def mean_latency_s(self) -> float:
        done = self.completed_outcomes
        if not done:
            return 0.0
        return sum(o.latency_s for o in done) / len(done)

    @property
    def slo_attainment(self) -> float:
        done = self.completed_outcomes
        if not done:
            return 0.0
        return sum(1 for o in done if o.met_slo) / len(done)

    @property
    def total_tokens_emitted(self) -> int:
        return sum(o.tokens_emitted for o in self.outcomes)

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.total_tokens_emitted / self.makespan_s

    @property
    def goodput_tokens_per_s(self) -> float:
        """Client-visible tokens from SLO-compliant sessions, per second."""
        if self.makespan_s <= 0:
            return 0.0
        good = sum(
            o.request.seq_out for o in self.completed_outcomes if o.met_slo
        )
        return good / self.makespan_s

    # -- determinism ----------------------------------------------------
    def timeline_signature(self) -> str:
        """Order-sensitive digest of the fault/failover timeline.

        Two runs with the same seed must produce the same signature;
        times are rounded to nanoseconds so the digest is robust to
        repr formatting but not to any real divergence.
        """
        h = hashlib.sha256()
        for entry in self.timeline:
            h.update(
                f"{entry.at_s:.9f}|{entry.kind}|{entry.wafer}|{entry.detail}\n"
                .encode()
            )
        return h.hexdigest()

    def summary(self) -> Dict[str, float]:
        """Flat numeric summary for tables and smoke gates."""
        return {
            "submitted": float(self.submitted),
            "finished": float(self.finished),
            "lost": float(self.lost_requests),
            "availability": self.availability,
            "mttr_s": self.mttr_s,
            "failovers": float(self.failovers),
            "migrations": float(self.migrations),
            "router_retries": float(self.router_retries),
            "hedges": float(self.hedges),
            "p50_ttft_s": self.p50_ttft_s,
            "p99_ttft_s": self.p99_ttft_s,
            "goodput_tokens_per_s": self.goodput_tokens_per_s,
            "slo_attainment": self.slo_attainment,
            "makespan_s": self.makespan_s,
        }
