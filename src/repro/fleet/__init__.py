"""Multi-wafer fleet serving: failover routing under deterministic chaos.

One wafer is a failure domain; WaferLLM at datacenter scale is a *fleet*
of them behind a router.  This package grows the single-wafer serving
stack (PR 3's escalation ladder, PR 6's placement plans) into a cluster:

* :mod:`repro.fleet.fleet` — :class:`WaferFleet`, N wafers each running
  the resumable :class:`~repro.serving.chunked.ServeEngine`, with
  epoch-tracked reboots;
* :mod:`repro.fleet.router` — :class:`FleetRouter`, health-checked load
  balancing with session affinity, seeded retry/hedging, and cross-wafer
  failover that re-prefills drained sessions on healthy replicas;
* :mod:`repro.fleet.faults` — wafer-scoped fault taxonomy
  (``wafer_down`` / ``wafer_degraded`` / ``router_partition``) in a
  seeded :class:`FleetFaultSchedule`;
* :mod:`repro.fleet.metrics` — client-side :class:`SessionOutcome`
  ledger and the :class:`FleetMetrics` rollup (availability, MTTR,
  fleet goodput, p99 TTFT, failover count);
* :mod:`repro.fleet.chaos` — the deterministic chaos harness behind
  ``repro fleet`` and the EXPERIMENTS.md fleet table.
"""

from repro.fleet.chaos import (
    bursty_trace,
    chaos_sweep,
    fleet_rows,
    poisson_trace,
    run_chaos,
    run_smoke,
    sessionize,
)
from repro.fleet.faults import (
    FLEET_FAULT_KINDS,
    FleetFaultEvent,
    FleetFaultSchedule,
)
from repro.fleet.fleet import FleetConfig, WaferFleet
from repro.fleet.metrics import (
    FleetMetrics,
    FleetTimelineEntry,
    SessionOutcome,
)
from repro.fleet.router import FleetRouter, RouterConfig

__all__ = [
    "FLEET_FAULT_KINDS",
    "FleetConfig",
    "FleetFaultEvent",
    "FleetFaultSchedule",
    "FleetMetrics",
    "FleetRouter",
    "FleetTimelineEntry",
    "RouterConfig",
    "SessionOutcome",
    "WaferFleet",
    "bursty_trace",
    "chaos_sweep",
    "fleet_rows",
    "poisson_trace",
    "run_chaos",
    "run_smoke",
    "sessionize",
]
