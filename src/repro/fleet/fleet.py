"""Fleet composition: N wafers, each a resumable serving engine.

:class:`WaferFleet` owns the replica set.  Each wafer is one
:class:`~repro.serving.chunked.WaferServer` configured with
``fail_on_exhausted_spares=True`` — in a fleet a wafer whose escalation
ladder runs out of spares must surface as *down* (so the router can
evacuate its sessions) rather than degrade in place the way a lone wafer
would.  Each live wafer runs as a :class:`ServeEngine`, the stepping
form of the serving loop, which lets the router advance every wafer's
clock to a common event time, submit requests mid-run, and drain
unfinished sessions when a wafer dies.

Wafers live in *epochs*: when the router retires a dead wafer and later
readmits it, :meth:`replace` boots a fresh server (empty KV, clean
health ledger, a fresh per-epoch fault-injector stream derived from the
fleet seed) whose engine clock starts at the readmission time.  Every
retired epoch contributes one :class:`ServingMetrics` segment to the
fleet rollup, so the per-wafer accounting stays exact across reboots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.plmr import PLMRDevice
from repro.errors import ConfigurationError
from repro.llm.config import ModelConfig
from repro.mesh.faults import FaultInjector, FaultSchedule, derive_seed
from repro.serving.chunked import ServeEngine, WaferServer
from repro.serving.metrics import ServingMetrics


@dataclass
class FleetConfig:
    """Shape of the replica set and of each wafer in it.

    ``wafer_fault_schedules`` optionally gives wafer ``i`` its own
    intra-wafer :class:`FaultSchedule` (transients, retrains, core
    deaths); it applies to epoch 0 only — a rebooted wafer starts with a
    clean fabric.  ``plans`` optionally pins a placement plan per wafer.
    ``failure_rate`` seeds an independent Bernoulli step-killer per
    wafer and epoch, derived from the fleet ``seed``.  ``horizon``
    selects the macro-stepped serving loop on every engine (the
    default); ``False`` pins the per-event reference loop, which the
    differential sweep uses as its bit-identity oracle.
    """

    n_wafers: int = 3
    mode: str = "chunked"
    chunk_tokens: int = 256
    max_batch: Optional[int] = None
    grid: Optional[int] = None
    default_context_len: int = 4096
    spare_regions: Optional[int] = None
    max_retries: Optional[int] = None
    failure_rate: float = 0.0
    seed: int = 0
    plans: Optional[Sequence] = None
    wafer_fault_schedules: Optional[Sequence[Optional[FaultSchedule]]] = None
    horizon: bool = True

    def __post_init__(self) -> None:
        if self.n_wafers < 1:
            raise ConfigurationError("n_wafers must be >= 1")
        if self.plans is not None and len(self.plans) != self.n_wafers:
            raise ConfigurationError(
                f"plans must have one entry per wafer "
                f"({len(self.plans)} != {self.n_wafers})"
            )
        if (
            self.wafer_fault_schedules is not None
            and len(self.wafer_fault_schedules) != self.n_wafers
        ):
            raise ConfigurationError(
                f"wafer_fault_schedules must have one entry per wafer "
                f"({len(self.wafer_fault_schedules)} != {self.n_wafers})"
            )


class WaferFleet:
    """The replica set: engines, epochs, and retired-segment ledger."""

    def __init__(
        self,
        model: ModelConfig,
        device: PLMRDevice,
        config: Optional[FleetConfig] = None,
    ):
        self.model = model
        self.device = device
        self.config = config or FleetConfig()
        n = self.config.n_wafers
        self.epochs: List[int] = [0] * n
        self.up: List[bool] = [True] * n
        self.segments: List[List[ServingMetrics]] = [[] for _ in range(n)]
        self.engines: List[Optional[ServeEngine]] = []
        for wafer in range(n):
            server = self._make_server(wafer, epoch=0)
            self.engines.append(
                ServeEngine(server, start_s=0.0,
                            horizon=self.config.horizon)
            )

    @property
    def n_wafers(self) -> int:
        return self.config.n_wafers

    def _make_server(self, wafer: int, epoch: int) -> WaferServer:
        """Build one wafer's server for the given epoch.

        The Bernoulli injector gets an independent stream per wafer and
        epoch, derived from the fleet seed — same seed, same fleet-wide
        failure story.  The intra-wafer fault schedule applies to epoch
        0 only: a rebooted wafer starts on a clean fabric.
        """
        cfg = self.config
        injector = FaultInjector(
            cfg.failure_rate,
            seed=derive_seed(cfg.seed, f"wafer{wafer}-epoch{epoch}-faults"),
        )
        schedule = None
        if epoch == 0 and cfg.wafer_fault_schedules is not None:
            schedule = cfg.wafer_fault_schedules[wafer]
        kwargs = dict(
            mode=cfg.mode,
            chunk_tokens=cfg.chunk_tokens,
            max_batch=cfg.max_batch,
            grid=cfg.grid,
            fault_injector=injector,
            default_context_len=cfg.default_context_len,
            fault_schedule=schedule,
            plan=cfg.plans[wafer] if cfg.plans is not None else None,
            fail_on_exhausted_spares=True,
        )
        if cfg.max_retries is not None:
            kwargs["max_retries"] = cfg.max_retries
        if cfg.spare_regions is not None:
            kwargs["spare_regions"] = cfg.spare_regions
        return WaferServer(self.model, self.device, **kwargs)

    # ------------------------------------------------------------------
    def engine(self, wafer: int) -> ServeEngine:
        """The live engine of wafer ``wafer`` (must be up)."""
        eng = self.engines[wafer]
        if eng is None:
            raise ConfigurationError(f"wafer {wafer} is retired")
        return eng

    def retire(self, wafer: int) -> None:
        """Close a dead wafer's books; it stops advancing until replaced."""
        eng = self.engines[wafer]
        if eng is None:
            return
        self.segments[wafer].append(eng.finish())
        self.engines[wafer] = None
        self.up[wafer] = False

    def replace(self, wafer: int, at_s: float) -> ServeEngine:
        """Boot a fresh epoch of wafer ``wafer`` at fleet time ``at_s``."""
        self.epochs[wafer] += 1
        server = self._make_server(wafer, epoch=self.epochs[wafer])
        eng = ServeEngine(server, start_s=at_s, horizon=self.config.horizon)
        self.engines[wafer] = eng
        self.up[wafer] = True
        return eng

    def finalize(self) -> None:
        """Close every still-live engine into its segment list."""
        for wafer, eng in enumerate(self.engines):
            if eng is not None:
                self.segments[wafer].append(eng.finish())
                self.engines[wafer] = None

    def makespan_s(self) -> float:
        """Latest wafer clock across live engines and closed segments."""
        latest = 0.0
        for segments in self.segments:
            for seg in segments:
                latest = max(latest, seg.makespan_s)
        for eng in self.engines:
            if eng is not None and math.isfinite(eng.now):
                latest = max(latest, eng.now)
        return latest
