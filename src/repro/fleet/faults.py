"""Wafer-scoped fault taxonomy for the fleet layer.

PR 3's :class:`~repro.mesh.faults.FaultSchedule` injects faults *inside*
one wafer (transient upsets, link retrains, core deaths).  A fleet adds
a coarser failure domain — the wafer itself and the network between the
router and it:

* ``wafer_down`` — the whole wafer drops out (host link loss, power
  trip, a fabric-wide brown-out).  Every session on it must fail over;
  the wafer rejoins, rebooted and empty, after ``duration_s`` plus the
  router's readmission cooldown.
* ``wafer_degraded`` — the wafer keeps serving but at reduced health
  (e.g. running post-remap on stretched routes).  The router
  deprioritizes it for new dispatches for ``duration_s`` without
  draining it.
* ``router_partition`` — the router loses contact with the wafer for
  ``duration_s``: no new dispatches land there, but work already on the
  wafer keeps running (the wafer itself is healthy).

:class:`FleetFaultSchedule` mirrors the single-wafer schedule contract:
a time-ordered event list that is a pure function of its seed, with
:meth:`derive_rng` handing consumers (the router's retry jitter, the
escalation ladder's backoff) child RNG streams pinned to the same root
seed — one seed reproduces the entire fault *and* reaction timeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.mesh.faults import derive_seed

#: The wafer-scoped fault kinds the fleet router understands.
FLEET_FAULT_KINDS = ("wafer_down", "wafer_degraded", "router_partition")


@dataclass(frozen=True)
class FleetFaultEvent:
    """One wafer-scoped fault at a point in fleet time."""

    at_s: float
    kind: str
    wafer: int
    duration_s: float = 0.0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FLEET_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fleet fault kind {self.kind!r}; "
                f"expected one of {FLEET_FAULT_KINDS}"
            )
        if self.at_s < 0:
            raise ConfigurationError(
                f"fault time must be >= 0, got {self.at_s}"
            )
        if self.wafer < 0:
            raise ConfigurationError("wafer index must be >= 0")
        if self.duration_s < 0:
            raise ConfigurationError("fault duration must be >= 0")


@dataclass
class FleetFaultSchedule:
    """A time-ordered sequence of wafer-scoped fault events.

    Hand-built for tests, or drawn by :meth:`generate` as independent
    Poisson arrival processes per kind with a uniformly-chosen target
    wafer — fully determined by the seed, which is recorded so every
    other RNG stream of the run can derive from it.
    """

    events: List[FleetFaultEvent] = field(default_factory=list)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.events = sorted(
            self.events, key=lambda e: (e.at_s, e.wafer, e.kind)
        )

    def __len__(self) -> int:
        return len(self.events)

    def derive_rng(self, label: str) -> random.Random:
        """A seeded child RNG stream for ``label`` (requires a seed)."""
        if self.seed is None:
            raise ConfigurationError(
                "schedule has no recorded seed to derive RNG streams from"
            )
        return random.Random(derive_seed(self.seed, label))

    def counts(self) -> Tuple[int, int, int]:
        """(wafer_down, wafer_degraded, router_partition) totals."""
        kinds = [e.kind for e in self.events]
        return (
            kinds.count("wafer_down"),
            kinds.count("wafer_degraded"),
            kinds.count("router_partition"),
        )

    @classmethod
    def generate(
        cls,
        n_wafers: int,
        horizon_s: float,
        seed: int = 0,
        wafer_down_rate_hz: float = 0.0,
        wafer_degraded_rate_hz: float = 0.0,
        partition_rate_hz: float = 0.0,
        down_duration_s: float = 0.1,
        degraded_duration_s: float = 0.2,
        partition_duration_s: float = 0.05,
    ) -> "FleetFaultSchedule":
        """Draw a seeded wafer-fault schedule over ``[0, horizon_s)``.

        Each kind arrives as an independent Poisson process; each event
        strikes a uniformly-drawn wafer.  The whole schedule is a pure
        function of the seed and the rates.
        """
        if n_wafers < 1:
            raise ConfigurationError("n_wafers must be >= 1")
        if horizon_s <= 0:
            raise ConfigurationError("horizon_s must be positive")
        for name, rate in (
            ("wafer_down_rate_hz", wafer_down_rate_hz),
            ("wafer_degraded_rate_hz", wafer_degraded_rate_hz),
            ("partition_rate_hz", partition_rate_hz),
        ):
            if rate < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {rate}")
        rng = random.Random(derive_seed(seed, "fleet-fault-schedule"))
        events: List[FleetFaultEvent] = []

        def arrivals(rate_hz: float) -> List[float]:
            times: List[float] = []
            t = 0.0
            while rate_hz > 0:
                t += rng.expovariate(rate_hz)
                if t >= horizon_s:
                    break
                times.append(t)
            return times

        for kind, rate, duration in (
            ("wafer_down", wafer_down_rate_hz, down_duration_s),
            ("wafer_degraded", wafer_degraded_rate_hz, degraded_duration_s),
            ("router_partition", partition_rate_hz, partition_duration_s),
        ):
            for idx, t in enumerate(arrivals(rate)):
                events.append(FleetFaultEvent(
                    at_s=t, kind=kind, wafer=rng.randrange(n_wafers),
                    duration_s=duration, detail=f"{kind}#{idx}",
                ))
        return cls(events=events, seed=seed)
