"""Command-line interface: ``python -m repro <command>``.

Everything the benchmark harness computes is reachable from the shell::

    python -m repro devices
    python -m repro compliance
    python -m repro table 2              # any of 2..8
    python -m repro figure 9             # 9 or 10
    python -m repro gemm --dim 16384 --kernel meshgemm --grid 750
    python -m repro gemv --dim 16384
    python -m repro llm --model llama3-8b --seq-in 4096 --seq-out 4096
    python -m repro autotune --model llama3-8b
    python -m repro serve --model llama3-8b --requests 16 --batch 8
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import experiments
from repro.bench.reporting import Comparison, comparison_table, format_table
from repro.core import PRESETS, WSE2, compliance_table, get_device
from repro.errors import ReproError
from repro.gemm import GEMM_KERNELS
from repro.gemm.base import GemmShape
from repro.gemv import GEMV_KERNELS
from repro.llm.config import MODELS, get_model
from repro.llm.projections import resident_decode_projection, width_study
from repro.llm.quantize import quantized_config
from repro.mesh.faults import FaultInjector
from repro.placement import (
    PlannerConfig,
    compare_with_paper_configs,
    paper_default_plan,
    plan_placement,
)
from repro.runtime.memory_audit import audit_model, required_layer_subset
from repro.llm.wafer_system import WaferLLMSystem
from repro.serving import (
    ContinuousBatchingServer,
    Request,
    ServingMetrics,
    WaferServer,
)

TABLE_RUNNERS = {
    2: experiments.run_table2,
    3: experiments.run_table3,
    4: experiments.run_table4,
    5: experiments.run_table5,
    6: experiments.run_table6,
    7: experiments.run_table7,
    8: experiments.run_table8,
}
FIGURE_RUNNERS = {9: experiments.run_figure9, 10: experiments.run_figure10}


def _print_cells(title: str, cells) -> None:
    comparisons = [Comparison(c.label, c.measured, c.paper) for c in cells]
    print(comparison_table(title, comparisons))


def cmd_devices(_args) -> int:
    rows = []
    for device in PRESETS.values():
        summary = device.describe()
        rows.append([
            summary["name"], f"{summary['P (cores)']:,}",
            summary["L (max axis hops)"],
            f"{summary['M (bytes/core)'] // 1024} KiB",
            summary["R (paths/core)"],
            f"{summary['total memory (GB)']:.1f} GB",
        ])
    print(format_table("PLMR device presets",
                       ["device", "P", "L", "M", "R", "memory"], rows))
    return 0


def cmd_compliance(args) -> int:
    device = get_device(args.device)
    rows = []
    for report in compliance_table(device):
        rows.append([
            report.algorithm,
            f"{report.paths_per_core:.0f}",
            f"{report.critical_path_hops:.0f}",
            f"{report.memory_factor:.0f}",
            report.verdict_string().split(": ", 1)[1],
        ])
    print(format_table(f"PLMR compliance on {device.name} (Figures 6+8)",
                       ["algorithm", "paths/core", "critical hops",
                        "mem factor", "verdict"], rows))
    return 0


def cmd_table(args) -> int:
    runner = TABLE_RUNNERS.get(args.number)
    if runner is None:
        print(f"unknown table {args.number}; choose from 2-8", file=sys.stderr)
        return 2
    _print_cells(f"Table {args.number} (measured vs paper)", runner())
    return 0


def cmd_figure(args) -> int:
    runner = FIGURE_RUNNERS.get(args.number)
    if runner is None:
        print(f"unknown figure {args.number}; choose 9 or 10", file=sys.stderr)
        return 2
    cells = runner()
    rows = [[c.label, f"{c.measured:,.0f}",
             f"{c.extra['compute_cycles']:,.0f}",
             f"{c.extra['comm_cycles']:,.0f}"] for c in cells]
    print(format_table(f"Figure {args.number} (cycles)",
                       ["case", "total", "compute", "comm"], rows))
    return 0


def cmd_gemm(args) -> int:
    device = get_device(args.device)
    kernel = GEMM_KERNELS.get(args.kernel)
    if kernel is None:
        print(f"unknown kernel {args.kernel}; choose from "
              f"{sorted(GEMM_KERNELS)}", file=sys.stderr)
        return 2
    grid = args.grid or min(device.mesh_width, device.mesh_height, args.dim)
    cost = kernel.estimate(device, GemmShape.square(args.dim), grid)
    print(f"{kernel.name} {args.dim}x{args.dim} on {grid}x{grid} "
          f"{device.name}: {cost.milliseconds:.4f} ms "
          f"({cost.compute_cycles:,.0f} compute / "
          f"{cost.comm_cycles:,.0f} comm cycles, "
          f"{cost.energy_joules:.2f} J)")
    return 0


def cmd_gemv(args) -> int:
    device = get_device(args.device)
    kernel = GEMV_KERNELS.get(args.kernel)
    if kernel is None:
        print(f"unknown kernel {args.kernel}; choose from "
              f"{sorted(GEMV_KERNELS)}", file=sys.stderr)
        return 2
    grid = args.grid or min(device.mesh_width, device.mesh_height, args.dim)
    cost = kernel.estimate(device, rows=args.dim, cols=args.dim, grid=grid)
    print(f"{kernel.name} [1,{args.dim}]x[{args.dim},{args.dim}] on "
          f"{grid}x{grid} {device.name}: {cost.seconds * 1e6:.3f} us "
          f"({cost.energy_joules * 1e3:.3f} mJ)")
    return 0


def cmd_llm(args) -> int:
    device = get_device(args.device)
    model = get_model(args.model)
    system = WaferLLMSystem(device)
    result = system.generation(model, args.seq_in, args.seq_out)
    rows = [
        ["prefill", f"{result.prefill_seconds * 1e3:.1f} ms"],
        ["decode", f"{result.decode_seconds:.3f} s"],
        ["throughput", f"{result.throughput_tokens_per_s:.1f} tok/s"],
        ["decode rate", f"{result.decode_tokens_per_s:.1f} tok/s"],
        ["energy", f"{result.energy_joules:.1f} J "
                   f"({result.tokens_per_joule:.4f} tok/J)"],
    ]
    print(format_table(
        f"{model.name} {args.seq_in}/{args.seq_out} on {device.name}",
        ["metric", "value"], rows))
    return 0


def cmd_autotune(args) -> int:
    device = get_device(args.device)
    model = get_model(args.model)
    report = compare_with_paper_configs(model, device)
    rows = []
    for source in ("paper", "autotuned"):
        entry = report[source]
        rows.append([
            source, entry["prefill_grid"], entry["decode_grid"],
            f"{entry['prefill_tok_s']:,.0f}", f"{entry['decode_tok_s']:,.0f}",
        ])
    print(format_table(f"parallelism configuration for {model.name}",
                       ["source", "prefill grid", "decode grid",
                        "prefill tok/s", "decode tok/s"], rows))
    return 0


def _place_defects(args, device):
    from repro.mesh.remap import DefectMap

    if not (args.dead_cores or args.dead_links or args.degraded_links):
        return None
    return DefectMap.generate(
        device.mesh_width, device.mesh_height, seed=args.seed,
        dead_core_rate=args.dead_cores,
        dead_link_rate=args.dead_links,
        degraded_link_rate=args.degraded_links,
        degraded_factor=args.degraded_factor,
    )


def _region_row(label, region, stretch):
    return [
        label, region.name,
        f"({region.x},{region.y})", f"{region.width}x{region.height}",
        f"{stretch:.4f}",
    ]


def cmd_place(args) -> int:
    import json

    if args.smoke:
        # Small fabric, injected defects, strict sanitizer: the CI gate.
        device = get_device("ipu-like-crossbar")
        model = get_model("tiny-gqa")
        config = PlannerConfig(seed=args.seed, coarse_step=8,
                               seq_len=256, context_len=64,
                               spare_count=args.spares)
        from repro.mesh.remap import DefectMap

        defects = DefectMap.generate(
            device.mesh_width, device.mesh_height, seed=args.seed or 7,
            dead_core_rate=0.01, dead_link_rate=0.01,
            degraded_link_rate=0.02, degraded_factor=0.5,
        )
    else:
        device = get_device(args.device)
        model = get_model(args.model)
        config = PlannerConfig(seed=args.seed, spare_count=args.spares,
                               seq_len=args.seq_len,
                               context_len=args.context_len)
        defects = _place_defects(args, device)

    result = plan_placement(model, device, defects, config)
    plan = result.plan
    paper = None
    if args.compare_paper or args.smoke:
        paper = paper_default_plan(model, device, defects, config)

    if args.json:
        payload = {"plan": plan.to_dict()}
        if paper is not None:
            payload["paper"] = paper.to_dict()
        if args.explain:
            payload["rejected"] = [r.to_dict() for r in result.rejected]
        print(json.dumps(payload, indent=2))
    else:
        rows = [
            _region_row("prefill", plan.prefill_region,
                        plan.prefill_comm_stretch),
            _region_row("decode", plan.decode_region,
                        plan.decode_comm_stretch),
        ]
        for spare in plan.spare_regions:
            rows.append(_region_row("spare", spare, 1.0))
        print(format_table(
            f"placement for {model.name} on {device.name} "
            f"({plan.logical_width}x{plan.logical_height} logical, "
            f"{plan.num_defects} defects)",
            ["role", "region", "anchor", "shape", "comm stretch"], rows))
        print(f"  ktree K={plan.ktree_k}  "
              f"prefill {plan.prefill_tokens_per_s:,.0f} tok/s  "
              f"decode {plan.decode_tokens_per_s:,.0f} tok/s  "
              f"({plan.candidates_evaluated} candidates)")
        if plan.validation is not None:
            print(f"  validation: {plan.validation.render()}")
        if paper is not None:
            ratio = plan.decode_tokens_per_s / paper.decode_tokens_per_s
            print(
                f"  paper default: grids {paper.prefill_grid}/"
                f"{paper.decode_grid}, decode "
                f"{paper.decode_tokens_per_s:,.0f} tok/s "
                f"(planner {ratio:.3f}x)"
            )
        if args.explain:
            if not result.rejected:
                print("  rejected candidates: none")
            for rej in result.rejected:
                print(f"  rejected: {rej.reason}")
                for finding in rej.findings:
                    print(f"    {finding.render()}")

    if not plan.is_validated:
        return 1
    if args.smoke and paper is not None and (
            plan.decode_tokens_per_s < paper.decode_tokens_per_s):
        print("smoke FAILED: planner does not beat the paper default")
        return 1
    return 0


def cmd_audit(args) -> int:
    device = get_device(args.device)
    rows = []
    for name in sorted(MODELS):
        if name.startswith("tiny"):
            continue
        model = get_model(name)
        if args.int8:
            model = quantized_config(model, 8)
        audit = audit_model(model, device)
        rows.append([
            model.name,
            f"{audit.weights_per_core / 1024:.1f} KiB",
            f"{audit.kv_budget_per_core / 1024:.1f} KiB",
            "yes" if audit.fits_end_to_end else
            f"no ({required_layer_subset(model, device)} layers fit)",
        ])
    print(format_table(f"memory audit on {device.name}",
                       ["model", "weights/core", "KV budget/core",
                        "fits end-to-end"], rows))
    return 0


def cmd_project(args) -> int:
    device = get_device(args.device)
    model = get_model(args.model)
    projection = resident_decode_projection(model, device,
                                            args.region or 375)
    rows = [
        ["decode today", f"{projection.current_tokens_per_s:,.0f} tok/s"],
        ["pipeline stages", str(projection.stages)],
        ["resident projection",
         f"{projection.projected_tokens_per_s:,.0f} tok/s"],
    ]
    for row in width_study(model, device, args.region or 375,
                           factors=(2.0, 4.0)):
        rows.append([
            f"wider {row['factor']:g}x ({row['layers']} layers)",
            f"{row['decode_tok_s']:,.0f} tok/s",
        ])
    print(format_table(f"Section 8 projections for {model.name}",
                       ["scenario", "value"], rows))
    return 0


def _serving_rows(metrics: ServingMetrics) -> List[List[str]]:
    return [
        ["submitted", str(metrics.submitted)],
        ["rejected (admission)", str(len(metrics.rejected))],
        ["finished", str(metrics.finished)],
        ["peak batch", str(metrics.peak_batch)],
        ["peak queue depth", str(metrics.peak_queue_depth)],
        ["peak KV occupancy",
         f"{metrics.peak_kv_tokens:,} / {metrics.kv_capacity_tokens:,} tok "
         f"({metrics.peak_kv_fraction:.0%})"],
        ["makespan", f"{metrics.makespan_s:.3f} s"],
        ["throughput", f"{metrics.throughput_tokens_per_s:,.0f} tok/s"],
        ["goodput (SLO-met)", f"{metrics.goodput_tokens_per_s:,.0f} tok/s"],
        ["SLO attainment", f"{metrics.slo_attainment:.0%}"],
        ["TTFT p50 / p99",
         f"{metrics.p50_ttft_s:.3f} / {metrics.p99_ttft_s:.3f} s"],
        ["TPOT mean / p99",
         f"{metrics.mean_tpot_s * 1e3:.2f} / {metrics.p99_tpot_s * 1e3:.2f} ms"],
        ["p99 latency", f"{metrics.p99_latency_s:.3f} s"],
        ["decode stall time", f"{metrics.decode_stall_s:.3f} s"],
        ["preemptions", str(metrics.preemptions)],
        ["fault retries", str(metrics.retries)],
    ]


def _serve_trace(args) -> List[Request]:
    return [
        Request(i, seq_in=args.seq_in, seq_out=args.seq_out,
                arrival_s=i * args.interval, priority=i % args.priorities,
                ttft_slo_s=args.ttft_slo, tpot_slo_s=args.tpot_slo)
        for i in range(args.requests)
    ]


def cmd_serve(args) -> int:
    device = get_device(args.device)
    model = get_model(args.model)
    requests = _serve_trace(args)
    if args.mode == "legacy":
        server = ContinuousBatchingServer(model, device, max_batch=args.batch)
        report = server.serve(requests)
        rows = [
            ["requests", str(args.requests)],
            ["peak batch", str(report.peak_batch)],
            ["makespan", f"{report.makespan_s:.2f} s"],
            ["throughput", f"{report.throughput_tokens_per_s:,.0f} tok/s"],
            ["mean latency", f"{report.mean_latency_s:.2f} s"],
            ["p99 latency", f"{report.p99_latency_s:.2f} s"],
        ]
        print(format_table(f"serving {model.name} on {device.name} (legacy)",
                           ["metric", "value"], rows))
        return 0

    modes = ("chunked", "exclusive") if args.compare else (args.mode,)
    for mode in modes:
        server = WaferServer(
            model, device, mode=mode, chunk_tokens=args.chunk,
            max_batch=args.batch,
            fault_injector=FaultInjector(args.fault_rate, seed=args.seed),
            max_retries=args.max_retries,
            spare_regions=args.spares,
        )
        metrics = server.serve(requests)
        print(format_table(
            f"serving {model.name} on {device.name} "
            f"({mode} prefill, chunk={args.chunk})",
            ["metric", "value"], _serving_rows(metrics)))
    return 0


def cmd_faults(args) -> int:
    """Seeded fault sweep: availability / MTTR / goodput per scenario.

    Runs the same request trace through the chunked server under a
    ladder of fault scenarios — clean fabric, transient upsets, link
    retrains, a core death absorbed by a spare region, and core deaths
    past the spare budget — and prints the fault-tolerance table
    EXPERIMENTS.md records.  Every scenario is a pure function of
    ``--seed``.
    """
    from repro.bench.experiments import fault_sweep_rows, run_fault_sweep

    device = get_device(args.device)
    model = get_model(args.model)
    if args.smoke:
        n_requests, seq_in, seq_out = 6, 512, 64
    else:
        n_requests, seq_in, seq_out = args.requests, args.seq_in, args.seq_out
    scenarios = run_fault_sweep(
        device, model_name=args.model,
        n_requests=n_requests, seq_in=seq_in, seq_out=seq_out,
        interval_s=args.interval, chunk_tokens=args.chunk, seed=args.seed,
    )
    print(format_table(
        f"fault sweep: {model.name} on {device.name} "
        f"({n_requests} requests, seed={args.seed})",
        ["scenario", "done", "shed", "retries", "remaps", "degr",
         "availability", "MTTR ms", "goodput tok/s"],
        fault_sweep_rows(scenarios)))
    return 0


def cmd_fleet(args) -> int:
    """Seeded multi-wafer chaos sweep: the fleet availability table.

    Routes one request trace through an N-wafer fleet under a ladder of
    wafer-scoped fault scenarios (clean, mid-trace wafer loss, churn,
    router partition, bursty arrivals + loss) and prints the fleet
    table EXPERIMENTS.md records.  ``--smoke`` runs the CI gate: a
    tiny 3-wafer fleet with one injected ``wafer_down`` that must
    fail over with zero lost requests.
    """
    from repro.fleet import chaos_sweep, fleet_rows, run_smoke

    if args.smoke:
        metrics = run_smoke(seed=args.seed)
        s = metrics.summary()
        print(format_table(
            f"fleet smoke (seed={args.seed})",
            ["metric", "value"],
            [[k, f"{v:.6g}"] for k, v in s.items()]))
        print(f"  timeline signature: {metrics.timeline_signature()[:16]}")
        return 0

    device = get_device(args.device)
    model = get_model(args.model)
    scenarios = chaos_sweep(
        model, device,
        n_wafers=args.wafers, n_requests=args.requests, seed=args.seed,
        mean_interarrival_s=args.interval, chunk_tokens=args.chunk,
    )
    print(format_table(
        f"fleet chaos sweep: {args.wafers}x {model.name} on {device.name} "
        f"({args.requests} requests, seed={args.seed})",
        ["scenario", "done", "lost", "failovers", "migr", "retries",
         "availability", "MTTR ms", "p99 TTFT ms", "goodput tok/s"],
        fleet_rows(scenarios)))
    if any(m.lost_requests for _, m in scenarios):
        print("warning: requests lost — retry budget exhausted somewhere")
        return 1
    return 0


def cmd_profile(args) -> int:
    from repro.profiling import all_kernel_names, build_case, timeline_case
    from repro.mesh.reconcile import reconcile

    if args.kernel not in all_kernel_names():
        print(f"unknown kernel {args.kernel}; choose from "
              f"{all_kernel_names()}", file=sys.stderr)
        return 2
    case = build_case(args.kernel, args.grid, dim=args.dim,
                      height=args.height)
    machine, timeline = timeline_case(case, args.device)

    # Consecutive steps of the same phase (e.g. a compute-shift loop)
    # collapse into one table row so the output mirrors Figure 9/10.
    rows: List[list] = []
    for row in timeline:
        if rows and rows[-1][0] == row.label and rows[-1][1] == row.kind:
            last = rows[-1]
            last[2] += 1
            last[3] += row.events
            last[4] += row.compute_cycles
            last[5] += row.comm_cycles
            last[6] += row.total_cycles
        else:
            rows.append([row.label, row.kind, 1, row.events,
                         row.compute_cycles, row.comm_cycles,
                         row.total_cycles])
    totals = [sum(r[i] for r in rows) for i in (4, 5, 6)]
    cells = [[r[0], r[1], str(r[2]), str(r[3]),
              f"{r[4]:,.0f}", f"{r[5]:,.0f}", f"{r[6]:,.0f}"] for r in rows]
    cells.append(["TOTAL", "", "", "",
                  f"{totals[0]:,.0f}", f"{totals[1]:,.0f}",
                  f"{totals[2]:,.0f}"])
    width, height = case.mesh
    print(format_table(
        f"{case.name} dim={case.dim} on {width}x{height} {args.device} "
        f"(trace replay)",
        ["phase", "kind", "steps", "events", "compute", "comm", "cycles"],
        cells))

    if args.reconcile:
        report = reconcile(case.planner(), machine.trace, machine.device,
                           name=case.name)
        print(report.render())
        return 0 if report.ok else 1
    return 0


def cmd_check(args) -> int:
    """PLMR conformance check: AST lint + cache-key dataflow + trace
    sanitizer over the zoo, with an optional replay audit.

    ``--strict`` exits non-zero on any finding; ``--json`` emits the
    machine-readable report the CI job archives.  ``--determinism``
    additionally runs each serve / fleet / kernel scenario twice from
    one seed and fails on any phase-signature divergence
    (``--inject-divergence`` perturbs the final run to prove the
    auditor localizes a real one).  ``--update-baseline`` sweeps the
    extended lint roots *and* the dataflow pass, records the findings
    as accepted, and prints the delta versus the previous baseline.
    """
    import json as _json

    from repro.analysis.checker import run_check
    from repro.analysis.lint.baseline import (
        BASELINE_PATH,
        fingerprint,
        load_baseline,
        write_baseline,
    )
    from repro.analysis.lint.engine import lint_repo

    if args.update_baseline:
        from repro.analysis.determinism.cachekeys import check_cache_keys

        findings = lint_repo() + check_cache_keys()
        before = load_baseline()
        data = write_baseline(findings)
        after = set(data["fingerprints"])
        added, dropped = len(after - before), len(before - after)
        print(f"baseline: {len(after)} fingerprint(s) "
              f"written to {BASELINE_PATH} "
              f"(+{added} new, -{dropped} cleared)")
        return 0

    kernels = args.kernels.split(",") if args.kernels else None
    scenarios = args.scenario.split(",") if args.scenario else None
    report = run_check(
        lint=not args.skip_lint,
        sanitize=not args.skip_sanitize,
        determinism=args.determinism,
        grid=args.grid,
        kernels=kernels,
        remapped=not args.no_remapped,
        audit_seed=args.audit_seed,
        audit_runs=args.runs,
        scenarios=scenarios,
    )
    if args.determinism and args.inject_divergence:
        from repro.analysis.determinism.audit import audit_scenario

        name = scenarios[0] if scenarios else "kernel"

        def _perturb(events):
            if not events:
                return events
            mutated = list(events)
            victim = mutated[len(mutated) // 2]
            mutated[len(mutated) // 2] = type(victim)(
                phase=victim.phase, payload=victim.payload + "|perturbed"
            )
            return mutated

        audit = audit_scenario(
            name, seed=args.audit_seed, runs=args.runs, perturb=_perturb
        )
        report.audits.append(audit)
        report.audit_findings.extend(audit.findings())
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    if args.strict:
        return 0 if report.ok else 1
    return 0


def cmd_bench(args) -> int:
    """Wall-clock benchmarks of the simulator and the serving loop.

    ``--suite simulator`` (the default) times the functional simulator
    itself (not the modeled wafer): repeated decode-step GEMV (eager /
    capture / replay), prefill GEMM (scalar vs vectorized tile
    compute), and the K-tree allreduce; it writes
    ``BENCH_simulator.json``.  ``--suite serving`` times whole serving
    traces and fleet chaos scenarios through the macro-compiled loop
    against the per-event reference loop — asserting both are
    bit-identical — and writes ``BENCH_serving.json``.  With
    ``--baseline`` either suite additionally warns — without failing —
    when any speedup ratio degraded more than 20% versus the committed
    report (ratios, not milliseconds, so the check is
    machine-independent).
    """
    if args.suite == "serving":
        return _bench_serving(args)
    return _bench_simulator(args)


def _bench_simulator(args) -> int:
    from pathlib import Path

    from repro.bench import simbench

    report = simbench.run_benchmarks(smoke=args.smoke)
    rows = []
    marks = report["benchmarks"]
    dec = marks["decode_gemv"]
    rows.append(["decode GEMV replay vs capture",
                 f"{dec['replay_ms']:.3f} ms",
                 f"{dec['capture_ms']:.3f} ms",
                 f"{dec['replay_vs_capture']:.2f}x"])
    rows.append(["decode GEMV replay vs eager",
                 f"{dec['replay_ms']:.3f} ms",
                 f"{dec['eager_ms']:.3f} ms",
                 f"{dec['replay_vs_eager']:.2f}x"])
    rows.append(["decode GEMV batched vs eager",
                 f"{dec['replay_ms']:.3f} ms",
                 f"{dec['eager_ms']:.3f} ms",
                 f"{dec['batched_vs_eager']:.2f}x"])
    gem = marks["prefill_gemm"]
    rows.append(["prefill GEMM replay vs eager",
                 f"{gem['replay_ms']:.3f} ms",
                 f"{gem['eager_ms']:.3f} ms",
                 f"{gem['replay_vs_eager']:.2f}x"])
    rows.append(["prefill GEMM vectorized vs scalar",
                 f"{gem['vectorized_ms']:.3f} ms",
                 f"{gem['eager_ms']:.3f} ms",
                 f"{gem['vectorized_vs_scalar']:.2f}x"])
    red = marks["allreduce"]
    rows.append(["allreduce replay vs eager",
                 f"{red['replay_ms']:.3f} ms",
                 f"{red['eager_ms']:.3f} ms",
                 f"{red['replay_vs_eager']:.2f}x"])
    print(format_table("simulator micro-benchmarks"
                       + (" (smoke)" if args.smoke else ""),
                       ["benchmark", "fast", "slow", "speedup"], rows))

    out = Path(args.out) if args.out else Path(simbench.BENCH_FILENAME)
    simbench.write_report(report, out)
    print(f"report written to {out}")

    if args.baseline:
        baseline = simbench.load_report(Path(args.baseline))
        if baseline is None:
            print(f"warning: baseline {args.baseline} missing or unreadable",
                  file=sys.stderr)
        else:
            warnings = simbench.compare_to_baseline(report, baseline)
            for warning in warnings:
                print(f"warning: perf regression: {warning}",
                      file=sys.stderr)
            if not warnings:
                print("no ratio regressed more than "
                      f"{simbench.REGRESSION_TOLERANCE:.0%} vs baseline")
    return 0


def _bench_serving(args) -> int:
    from pathlib import Path

    from repro.bench import servebench

    report = servebench.run_benchmarks(smoke=args.smoke)
    rows = []
    for name, mark in report["benchmarks"].items():
        rows.append([
            name,
            f"{mark['horizon_ms']:.2f} ms",
            f"{mark['reference_ms']:.2f} ms",
            f"{mark['horizon_rps']:,.0f}",
            f"{mark['horizon_vs_reference']:.2f}x",
        ])
    print(format_table(
        "serving throughput (horizon vs reference, bit-identical)"
        + (" (smoke)" if args.smoke else ""),
        ["scenario", "horizon", "reference", "req/s", "speedup"], rows))

    out = Path(args.out) if args.out else Path(servebench.BENCH_FILENAME)
    servebench.write_report(report, out)
    print(f"report written to {out}")

    if args.baseline:
        baseline = servebench.load_report(Path(args.baseline))
        if baseline is None:
            print(f"warning: baseline {args.baseline} missing or unreadable",
                  file=sys.stderr)
        else:
            warnings = servebench.compare_to_baseline(report, baseline)
            for warning in warnings:
                print(f"warning: perf regression: {warning}",
                      file=sys.stderr)
            if not warnings:
                print("no ratio regressed more than "
                      f"{servebench.REGRESSION_TOLERANCE:.0%} vs baseline")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="WaferLLM reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list PLMR device presets") \
        .set_defaults(func=cmd_devices)

    p = sub.add_parser("compliance", help="Figure 6/8 compliance analysis")
    p.add_argument("--device", default=WSE2.name)
    p.set_defaults(func=cmd_compliance)

    p = sub.add_parser("table", help="regenerate a paper table (2-8)")
    p.add_argument("number", type=int)
    p.set_defaults(func=cmd_table)

    p = sub.add_parser("figure", help="regenerate a paper figure (9/10)")
    p.add_argument("number", type=int)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("gemm", help="estimate a distributed GEMM")
    p.add_argument("--dim", type=int, default=16384)
    p.add_argument("--grid", type=int, default=None)
    p.add_argument("--kernel", default="meshgemm")
    p.add_argument("--device", default=WSE2.name)
    p.set_defaults(func=cmd_gemm)

    p = sub.add_parser("gemv", help="estimate a distributed GEMV")
    p.add_argument("--dim", type=int, default=16384)
    p.add_argument("--grid", type=int, default=None)
    p.add_argument("--kernel", default="meshgemv")
    p.add_argument("--device", default=WSE2.name)
    p.set_defaults(func=cmd_gemv)

    p = sub.add_parser("llm", help="estimate end-to-end LLM inference")
    p.add_argument("--model", default="llama3-8b")
    p.add_argument("--seq-in", type=int, default=4096)
    p.add_argument("--seq-out", type=int, default=4096)
    p.add_argument("--device", default=WSE2.name)
    p.set_defaults(func=cmd_llm)

    p = sub.add_parser("autotune", help="search parallelism configuration")
    p.add_argument("--model", default="llama3-8b")
    p.add_argument("--device", default=WSE2.name)
    p.set_defaults(func=cmd_autotune)

    p = sub.add_parser(
        "place",
        help="defect-aware placement search (plan regions + spares)",
    )
    p.add_argument("--model", default="llama3-8b")
    p.add_argument("--device", default="cerebras-wse2")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dead-cores", type=float, default=0.0,
                   help="dead-core rate for an injected defect map")
    p.add_argument("--dead-links", type=float, default=0.0)
    p.add_argument("--degraded-links", type=float, default=0.0)
    p.add_argument("--degraded-factor", type=float, default=0.5)
    p.add_argument("--spares", type=int, default=1)
    p.add_argument("--seq-len", type=int, default=4096)
    p.add_argument("--context-len", type=int, default=2048)
    p.add_argument("--json", action="store_true")
    p.add_argument("--explain", action="store_true",
                   help="show rejected candidates and their findings")
    p.add_argument("--compare-paper", action="store_true",
                   help="score the paper-default layout on the same fabric")
    p.add_argument("--smoke", action="store_true",
                   help="CI gate: small defective fabric, strict sanitizer")
    p.set_defaults(func=cmd_place)

    p = sub.add_parser("audit", help="memory audit of the paper's models")
    p.add_argument("--device", default=WSE2.name)
    p.add_argument("--int8", action="store_true",
                   help="audit int8-quantized variants")
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("project", help="Section 8 future projections")
    p.add_argument("--model", default="llama2-13b")
    p.add_argument("--device", default=WSE2.name)
    p.add_argument("--region", type=int, default=None)
    p.set_defaults(func=cmd_project)

    p = sub.add_parser(
        "profile",
        help="replay a kernel's execution trace into a phase timeline")
    p.add_argument("--kernel", default="meshgemm")
    p.add_argument("--grid", type=int, default=8,
                   help="fabric side (width for non-square kernels)")
    p.add_argument("--height", type=int, default=None,
                   help="fabric height for non-square kernels")
    p.add_argument("--dim", type=int, default=None,
                   help="problem dimension (defaults per kernel family)")
    p.add_argument("--device", default="cerebras-wse2",
                   help="device preset providing per-core parameters")
    p.add_argument("--reconcile", action="store_true",
                   help="also reconcile the analytic plan against the trace")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("serve", help="simulate multi-request serving")
    p.add_argument("--model", default="llama3-8b")
    p.add_argument("--device", default=WSE2.name)
    p.add_argument("--mode", default="chunked",
                   choices=["chunked", "exclusive", "legacy"])
    p.add_argument("--requests", type=int, default=8)
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--seq-in", type=int, default=1024)
    p.add_argument("--seq-out", type=int, default=256)
    p.add_argument("--interval", type=float, default=0.05)
    p.add_argument("--chunk", type=int, default=256,
                   help="prefill chunk size in tokens")
    p.add_argument("--priorities", type=int, default=2,
                   help="number of priority classes to cycle through")
    p.add_argument("--ttft-slo", type=float, default=None,
                   help="per-request TTFT SLO in seconds")
    p.add_argument("--tpot-slo", type=float, default=None,
                   help="per-request TPOT SLO in seconds")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="per-step failure probability")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-retries", type=int, default=64,
                   help="consecutive step retries before escalating")
    p.add_argument("--spares", type=int, default=1,
                   help="spare regions available for core-death remaps")
    p.add_argument("--compare", action="store_true",
                   help="run chunked and exclusive on the same trace")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "faults",
        help="seeded fault sweep: availability / MTTR / goodput table")
    p.add_argument("--model", default="llama3-8b")
    p.add_argument("--device", default=WSE2.name)
    p.add_argument("--requests", type=int, default=16)
    p.add_argument("--seq-in", type=int, default=1024)
    p.add_argument("--seq-out", type=int, default=256)
    p.add_argument("--interval", type=float, default=0.05)
    p.add_argument("--chunk", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--smoke", action="store_true",
                   help="tiny fast sweep for CI")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "fleet",
        help="multi-wafer chaos sweep: availability / failover table")
    p.add_argument("--model", default="llama3-8b")
    p.add_argument("--device", default=WSE2.name)
    p.add_argument("--wafers", type=int, default=3)
    p.add_argument("--requests", type=int, default=24)
    p.add_argument("--interval", type=float, default=0.02)
    p.add_argument("--chunk", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--smoke", action="store_true",
                   help="tiny 3-wafer failover gate for CI")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "check",
        help="PLMR conformance: AST lint + trace sanitizer over the kernels")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on any finding")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON")
    p.add_argument("--skip-lint", action="store_true",
                   help="run only the trace sanitizer")
    p.add_argument("--skip-sanitize", action="store_true",
                   help="run only the source lint")
    p.add_argument("--kernels", default=None,
                   help="comma-separated kernel names to sanitize "
                        "(default: the clean suite + attention path)")
    p.add_argument("--grid", type=int, default=4,
                   help="mesh side for the sanitizer kernels")
    p.add_argument("--no-remapped", action="store_true",
                   help="skip the remapped/degraded-fabric sweep")
    p.add_argument("--update-baseline", action="store_true",
                   help="accept current lint + dataflow findings into "
                        "the baseline (extended sweep) and print the delta")
    p.add_argument("--determinism", action="store_true",
                   help="run the double-run replay audit (serve / fleet "
                        "/ kernel scenarios)")
    p.add_argument("--scenario", default=None,
                   help="comma-separated audit scenarios "
                        "(default: serve,fleet,kernel)")
    p.add_argument("--audit-seed", type=int, default=0,
                   help="seed every audited run starts from")
    p.add_argument("--runs", type=int, default=2,
                   help="same-seed runs to compare per scenario")
    p.add_argument("--inject-divergence", action="store_true",
                   help="perturb the final run to demonstrate divergence "
                        "localization (makes the check fail)")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "bench",
        help="wall-clock benchmarks (simulator kernels, serving loop)")
    p.add_argument("--suite", choices=("simulator", "serving"),
                   default="simulator",
                   help="simulator: compiled-vs-eager kernel timings; "
                        "serving: horizon-vs-reference loop throughput")
    p.add_argument("--smoke", action="store_true",
                   help="small shapes / few rounds for CI")
    p.add_argument("--out", default=None,
                   help="output JSON path (default: BENCH_<suite>.json "
                        "at the repo root)")
    p.add_argument("--baseline", default=None,
                   help="committed report to compare speedup ratios against "
                        "(warnings only, never fails)")
    p.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
