"""Shared machinery for distributed GEMM kernels.

All GEMM kernels here operate on a square ``n x n`` core grid with the
operand matrices partitioned into ``n x n`` tiles.  A *placement*
permutation maps logical grid positions to physical mesh coordinates —
the identity for Cannon and SUMMA, the INTERLEAVE folding for MeshGEMM —
and these helpers scatter/gather matrices through that permutation so
kernels only ever reason about logical tiles.

The logical tile ``(i, j)`` (block-row ``i``, block-column ``j``) lives at
physical core ``(placement_x[j], placement_y[i])``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plmr import PLMRDevice
from repro.errors import ShapeError
from repro.mesh.cost_model import KernelCost
from repro.mesh.machine import MeshMachine
from repro.mesh.trace import Trace


@dataclass(frozen=True)
class GemmShape:
    """Problem shape for ``C[m, n] = A[m, k] @ B[k, n]``."""

    m: int
    k: int
    n: int
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) < 1:
            raise ShapeError(f"GEMM dims must be positive: {self}")
        if self.dtype_bytes < 1:
            raise ShapeError("dtype_bytes must be at least 1")

    @property
    def total_macs(self) -> float:
        """MACs of the dense product."""
        return float(self.m) * self.k * self.n

    def tiles(self, grid: int) -> Tuple[int, int, int]:
        """Per-core tile dims ``(tm, tk, tn)`` on a ``grid x grid`` mesh.

        Dimensions are padded up to the next multiple of ``grid``; cost
        models always charge for the padded tiles, exactly as a real
        launcher would zero-pad the operands.
        """
        tm = math.ceil(self.m / grid)
        tk = math.ceil(self.k / grid)
        tn = math.ceil(self.n / grid)
        return tm, tk, tn

    def tile_bytes(self, grid: int) -> Tuple[int, int, int]:
        """Bytes of the A, B and C tiles on a ``grid x grid`` mesh."""
        tm, tk, tn = self.tiles(grid)
        return (
            tm * tk * self.dtype_bytes,
            tk * tn * self.dtype_bytes,
            tm * tn * self.dtype_bytes,
        )

    def macs_per_core(self, grid: int) -> float:
        """MACs one core performs over the whole kernel (all variants
        perform the same arithmetic, only communication differs)."""
        tm, tk, tn = self.tiles(grid)
        return float(tm) * tk * tn * grid

    @staticmethod
    def square(dim: int, dtype_bytes: int = 2) -> "GemmShape":
        """Square problem ``dim x dim x dim`` (the paper's benchmark unit)."""
        return GemmShape(m=dim, k=dim, n=dim, dtype_bytes=dtype_bytes)


@dataclass
class GemmRun:
    """Outcome of a functional GEMM execution."""

    result: np.ndarray
    trace: Trace


def require_square_grid(machine: MeshMachine) -> int:
    """GEMM kernels need a square core grid; return its side."""
    if machine.topology.width != machine.topology.height:
        raise ShapeError(
            f"square core grid required, got "
            f"{machine.topology.width}x{machine.topology.height}"
        )
    return machine.topology.width


def check_partitionable(a: np.ndarray, b: np.ndarray, grid: int) -> None:
    """Validate operand shapes divide into a ``grid x grid`` tiling."""
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError("GEMM operands must be 2-D")
    if a.shape[1] != b.shape[0]:
        raise ShapeError(f"inner dims differ: {a.shape} @ {b.shape}")
    for dim in (a.shape[0], a.shape[1], b.shape[1]):
        if dim % grid:
            raise ShapeError(
                f"dimension {dim} not divisible by grid {grid}; pad operands"
            )


def scatter_with_placement(
    machine: MeshMachine,
    name: str,
    matrix: np.ndarray,
    placement_x: Sequence[int],
    placement_y: Sequence[int],
) -> Tuple[int, int]:
    """Scatter ``matrix`` so logical tile (i, j) lands on its physical core."""
    grid = len(placement_x)
    rows, cols = matrix.shape
    tr, tc = rows // grid, cols // grid
    for i in range(grid):
        for j in range(grid):
            tile = matrix[i * tr:(i + 1) * tr, j * tc:(j + 1) * tc]
            machine.place(name, (placement_x[j], placement_y[i]), tile)
    return tr, tc


def gather_with_placement(
    machine: MeshMachine,
    name: str,
    placement_x: Sequence[int],
    placement_y: Sequence[int],
) -> np.ndarray:
    """Reassemble a matrix whose logical tile (i, j) sits at its physical core."""
    grid = len(placement_x)
    rows = []
    for i in range(grid):
        tiles = [
            machine.core((placement_x[j], placement_y[i])).load(name)
            for j in range(grid)
        ]
        rows.append(np.concatenate(tiles, axis=1))
    return np.concatenate(rows, axis=0)


def best_grid(device: PLMRDevice, shape: GemmShape) -> int:
    """Largest square grid the device fabric allows for this problem.

    The grid cannot exceed the fabric's shorter side nor any matrix
    dimension (a tile must hold at least one element).
    """
    side = min(device.mesh_width, device.mesh_height)
    return max(1, min(side, shape.m, shape.k, shape.n))


class GemmKernel:
    """Base class for distributed GEMM kernels.

    Subclasses provide:

    * ``name`` — kernel identifier;
    * ``profile`` — the symbolic PLMR scaling profile (Figure 6);
    * ``run(machine, a, b)`` — functional execution on a mesh machine,
      returning the dense result;
    * ``plan(shape, grid)`` — the analytic phase list mirroring ``run``.

    ``estimate`` is shared: evaluate the plan on a device.
    """

    name: str = "gemm"
    profile = None  # type: ignore[assignment]

    @classmethod
    def plan(cls, shape: GemmShape, grid: int) -> List:
        raise NotImplementedError

    @classmethod
    def run(cls, machine: MeshMachine, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @classmethod
    def estimate(
        cls,
        device: PLMRDevice,
        shape: GemmShape,
        grid: Optional[int] = None,
    ) -> KernelCost:
        """Cycle/energy estimate of this kernel for ``shape`` on ``device``."""
        from repro.mesh.cost_model import estimate as _estimate

        if grid is None:
            grid = best_grid(device, shape)
        if grid > min(device.mesh_width, device.mesh_height):
            raise ShapeError(
                f"grid {grid} exceeds device fabric "
                f"{device.mesh_width}x{device.mesh_height}"
            )
        return _estimate(f"{cls.name}[{grid}x{grid}]", device, cls.plan(shape, grid))
