"""Transposed distributed GEMM (dist-GEMM-T) — ``C = A @ B^T`` without
transposing B on the mesh (paper Sections 4.1 and 5.4).

A mesh transpose would stream every tile to its diagonally opposite
position — corner-to-corner traffic with an O(N) critical path, the worst
possible pattern under the L property.  dist-GEMM-T avoids it entirely:

* A (``M x K``) and B (``N x K``) are tiled ``n x n`` with the *same*
  column partitioning of K, so no operand ever changes orientation;
* there is **no alignment step**;
* the loop runs ``n`` steps: shift B one logical position along Y
  (two hops under INTERLEAVE), compute the outer partial
  ``P = A_sub @ B_sub^T`` — the tile-level transpose is free, it is just
  the local loop order — and **ReduceAdd P along the X axis** (using the
  two-way K-tree) into the core that owns that block of C.

At step ``s`` the row holding logical block-row ``i`` of A holds logical
block-row ``r = (i + s) mod n`` of B, so the reduction over the row's
``j`` tiles yields exactly ``C(i, r) = sum_j A(i,j) @ B(r,j)^T``; over
``n`` steps every block of C is produced once.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.collectives.allreduce import ktree_reduce
from repro.collectives.interleave import interleave_placement, inverse_placement
from repro.collectives.plans import ktree_reduce_plan
from repro.collectives.primitives import column_ring_shift
from repro.core.compliance import MESHGEMM
from repro.errors import ShapeError
from repro.gemm.base import (
    GemmKernel,
    GemmShape,
    gather_with_placement,
    require_square_grid,
    scatter_with_placement,
)
from repro.mesh.cost_model import (
    CommPhase,
    ComputePhase,
    LoopPhase,
    Phase,
    ReducePhase,
)
from repro.mesh.core_sim import Core
from repro.mesh.fabric import Flow
from repro.mesh.machine import MeshMachine


class MeshGEMMTransposed(GemmKernel):
    """MeshGEMM variant computing ``A @ B^T`` with B in untransposed layout."""

    name = "meshgemm-t"
    profile = MESHGEMM  # same cyclic-shift compliance class

    _NAMES = ("gemmt.A", "gemmt.B", "gemmt.P", "gemmt.C")

    @classmethod
    def bind_operands(
        cls, machine: MeshMachine, a: np.ndarray, b: np.ndarray
    ) -> List[int]:
        """Validate shapes and scatter A/B; returns the placement."""
        grid = require_square_grid(machine)
        if a.ndim != 2 or b.ndim != 2:
            raise ShapeError("operands must be 2-D")
        if a.shape[1] != b.shape[1]:
            raise ShapeError(f"K dims differ: {a.shape} vs {b.shape} (B untransposed)")
        if a.shape[0] % grid or a.shape[1] % grid or b.shape[0] % grid:
            raise ShapeError("dims must divide the grid; pad operands")
        placement = interleave_placement(grid)
        a_name, b_name, _p_name, _c_name = cls._NAMES
        scatter_with_placement(machine, a_name, a, placement, placement)
        scatter_with_placement(machine, b_name, b, placement, placement)
        return placement

    @classmethod
    def _body(cls, machine: MeshMachine, placement: List[int]) -> None:
        """The compute-shift-reduce-place loop over bound operands."""
        grid = require_square_grid(machine)
        logical_at = inverse_placement(placement)
        a_name, b_name, p_name, c_name = cls._NAMES
        rows = [machine.topology.row(y) for y in range(grid)]

        def outer_partial(core: Core) -> float:
            a_tile = core.load(a_name)
            b_tile = core.load(b_name)
            core.store(p_name, a_tile @ b_tile.T)
            return float(a_tile.shape[0] * a_tile.shape[1] * b_tile.shape[0])

        def outer_partial_stacked(stacks):
            a_stack = stacks[a_name]
            b_stack = stacks[b_name]
            out = np.matmul(a_stack, b_stack.transpose(0, 2, 1))
            macs = float(
                a_stack.shape[1] * a_stack.shape[2] * b_stack.shape[1]
            )
            return {p_name: out}, macs

        for step in range(grid):
            # The outer product overlaps the B shift feeding the *next*
            # step (independent tile names), so both live in one overlap
            # scope; the row reduction of P then follows serially.
            with machine.phase("gemmt-compute-shift", overlap=True):
                if machine.vectorize:
                    machine.compute_stacked(
                        "gemmt-outer",
                        machine.topology.coords(),
                        outer_partial_stacked,
                        reads=(a_name, b_name),
                        writes=(p_name,),
                        fallback=outer_partial,
                    )
                else:
                    machine.compute_all(
                        "gemmt-outer",
                        outer_partial,
                        reads=(a_name, b_name),
                        writes=(p_name,),
                    )
                if step < grid - 1:
                    column_ring_shift(
                        machine, "gemmt-shift-B", b_name, placement, offset=-1
                    )
            roots = ktree_reduce(
                machine, rows, p_name, k=2, pattern_prefix="gemmt-reduce"
            )
            # Deliver each row's reduced block to the core owning C(i, r).
            flows = []
            for py, root in zip(range(grid), roots):
                i = logical_at[py]
                r = (i + step) % grid
                target = (placement[r], py)
                if target == root:
                    machine.copy_tile(root, p_name, c_name)
                else:
                    flows.append(Flow.unicast(root, target, p_name, c_name))
            if flows:
                with machine.phase("gemmt-place"):
                    machine.communicate("gemmt-place", flows)
            machine.free(p_name)

    @classmethod
    def run(cls, machine: MeshMachine, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Functional execution; returns the dense ``a @ b.T``.

        ``a`` has shape ``(M, K)``; ``b`` has shape ``(N, K)``.
        """
        placement = cls.bind_operands(machine, a, b)
        cls._body(machine, placement)
        c_name = cls._NAMES[3]
        return gather_with_placement(machine, c_name, placement, placement)

    @classmethod
    def capture_run(
        cls, machine: MeshMachine, a: np.ndarray, b: np.ndarray
    ):
        """Like :meth:`run`, additionally capturing a replayable program."""
        from repro.mesh.program import MeshProgram  # noqa: F401 (docs)

        placement = cls.bind_operands(machine, a, b)
        with machine.capture() as program:
            cls._body(machine, placement)
        program.meta["placement"] = placement
        program.meta["operand_shapes"] = (a.shape, b.shape)
        c_name = cls._NAMES[3]
        return gather_with_placement(machine, c_name, placement, placement), program

    @classmethod
    def replay_run(cls, machine: MeshMachine, program, a, b) -> np.ndarray:
        """Run :meth:`run` semantics through a captured program."""
        from repro.mesh.program import ProgramReplayError

        if program.meta.get("operand_shapes") != (a.shape, b.shape):
            raise ProgramReplayError(
                f"program captured for shapes "
                f"{program.meta.get('operand_shapes')} cannot replay "
                f"{(a.shape, b.shape)}"
            )
        with machine.quiet_memory():
            cls.bind_operands(machine, a, b)
        program.replay(machine)
        placement = program.meta["placement"]
        c_name = cls._NAMES[3]
        return gather_with_placement(machine, c_name, placement, placement)

    @classmethod
    def plan(cls, shape: GemmShape, grid: int) -> List[Phase]:
        """Analytic phases for ``C[m, n] = A[m, k] @ B[n, k]^T``.

        ``shape`` follows the product's dims: ``m x k`` times ``k x n``
        with B stored as ``n x k``.  Each step overlaps the tile outer
        product with the two-hop B shift, then pays a K-tree row
        reduction of the partial C tile plus its delivery hop.
        """
        tm, tk, tn = shape.tiles(grid)
        b_tile_bytes = tk * tn * shape.dtype_bytes
        p_bytes = float(tm * tn * shape.dtype_bytes)
        p_elems = float(tm * tn)
        phases: List[Phase] = [
            LoopPhase(
                label="gemmt-compute-shift",
                steps=grid,
                compute=ComputePhase(
                    label="gemmt-outer", macs_per_core=float(tm * tk * tn)
                ),
                comm=CommPhase(
                    label="gemmt-shift-B",
                    hop_distance=2.0 if grid > 2 else 1.0,
                    payload_bytes=float(b_tile_bytes),
                ),
                overlap=True,
            )
        ]
        for reduce_phase in ktree_reduce_plan(grid, p_bytes, p_elems, k=2):
            assert isinstance(reduce_phase, ReducePhase)
            phases.append(
                ReducePhase(
                    label=reduce_phase.label,
                    stages=reduce_phase.stages,
                    stage_hop_distance=reduce_phase.stage_hop_distance,
                    payload_bytes=reduce_phase.payload_bytes,
                    stage_add_elems=reduce_phase.stage_add_elems,
                    repeats=grid,
                )
            )
        if grid > 1:
            phases.append(
                CommPhase(
                    label="gemmt-place",
                    hop_distance=float(grid - 1),
                    payload_bytes=p_bytes,
                    repeats=grid,
                )
            )
        return phases
