"""Distributed GEMM kernels: MeshGEMM and the paper's baselines."""

from repro.gemm.base import (
    GemmKernel,
    GemmShape,
    best_grid,
    gather_with_placement,
    scatter_with_placement,
)
from repro.gemm.meshgemm import MeshGEMM
from repro.gemm.cannon import CannonGEMM
from repro.gemm.summa import SummaGEMM
from repro.gemm.allgather_gemm import AllgatherGEMM
from repro.gemm.gemm_t import MeshGEMMTransposed
from repro.gemm.nonsquare import LogicalGrid, MeshGEMMNonSquare

#: Kernels compared in Figure 9 (plus allgather from Figure 6).
GEMM_KERNELS = {
    kernel.name: kernel
    for kernel in (MeshGEMM, CannonGEMM, SummaGEMM, AllgatherGEMM)
}

__all__ = [
    "GemmKernel",
    "GemmShape",
    "best_grid",
    "scatter_with_placement",
    "gather_with_placement",
    "MeshGEMM",
    "CannonGEMM",
    "SummaGEMM",
    "AllgatherGEMM",
    "MeshGEMMTransposed",
    "MeshGEMMNonSquare",
    "LogicalGrid",
    "GEMM_KERNELS",
]
