"""Allgather-GEMM — the GPU/TPU-pod scheme (Figure 6, case 1).

Each core first gathers the *entire* block-row strip of A from its row
and the entire block-column strip of B from its column, then computes its
C tile in one local GEMM.  On pods with fat routers and large memories
this is the default; on a PLMR device it violates everything at once:

* R — each core needs a route colour per line member: O(N) paths;
* L — the gather reaches the far edge of the row/column: O(N) hops;
* M — the working set inflates from ``O(1/N^2)`` of the problem to
  ``O(1/N)``.  On a memory-enforced mesh the gather simply *fails* with
  :class:`~repro.errors.MemoryCapacityError` once strips outgrow SRAM —
  run the machine with ``enforce_memory=False`` to study the scheme
  anyway.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.collectives.allgather import line_allgather
from repro.core.compliance import ALLGATHER_GEMM
from repro.gemm.base import (
    GemmKernel,
    GemmShape,
    check_partitionable,
    require_square_grid,
)
from repro.mesh.cost_model import CommPhase, ComputePhase, Phase
from repro.mesh.core_sim import Core
from repro.mesh.machine import MeshMachine


class AllgatherGEMM(GemmKernel):
    """Gather-then-compute distributed GEMM."""

    name = "allgather-gemm"
    profile = ALLGATHER_GEMM

    @classmethod
    def run(cls, machine: MeshMachine, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Functional execution; returns the dense ``a @ b``."""
        grid = require_square_grid(machine)
        check_partitionable(a, b, grid)
        a_name, b_name, c_name = "ag.A", "ag.B", "ag.C"
        machine.scatter_matrix(a_name, a, grid, grid)
        machine.scatter_matrix(b_name, b, grid, grid)

        rows = [machine.topology.row(y) for y in range(grid)]
        cols = [machine.topology.column(x) for x in range(grid)]
        line_allgather(machine, rows, a_name, "ag.Arow", pattern_prefix="ag-A")
        line_allgather(machine, cols, b_name, "ag.Bcol", pattern_prefix="ag-B")

        def local_gemm(core: Core) -> float:
            a_strip = np.concatenate(
                [core.load(f"ag.Arow.{j}") for j in range(grid)], axis=1
            )
            b_strip = np.concatenate(
                [core.load(f"ag.Bcol.{i}") for i in range(grid)], axis=0
            )
            core.store(c_name, a_strip @ b_strip)
            macs = float(
                a_strip.shape[0] * a_strip.shape[1] * b_strip.shape[1]
            )
            for j in range(grid):
                core.free(f"ag.Arow.{j}")
                core.free(f"ag.Bcol.{j}")
            return macs

        with machine.phase("ag-gemm"):
            machine.compute_all("ag-gemm", local_gemm)
        return machine.gather_matrix(c_name, grid, grid)

    @classmethod
    def plan(cls, shape: GemmShape, grid: int) -> List[Phase]:
        """Analytic phases: two strip gathers, then one big local GEMM.

        The gather's critical receiver ingests ``grid - 1`` tiles over a
        single link while the farthest tile travels ``grid - 1`` hops; no
        overlap with compute is possible because the whole strip is
        needed before the local GEMM starts.
        """
        tm, tk, tn = shape.tiles(grid)
        a_bytes, b_bytes, _ = shape.tile_bytes(grid)
        phases: List[Phase] = []
        if grid > 1:
            phases.append(
                CommPhase(
                    label="ag-gather-A",
                    hop_distance=float(grid - 1),
                    payload_bytes=float((grid - 1) * a_bytes),
                )
            )
            phases.append(
                CommPhase(
                    label="ag-gather-B",
                    hop_distance=float(grid - 1),
                    payload_bytes=float((grid - 1) * b_bytes),
                )
            )
        phases.append(
            ComputePhase(
                label="ag-gemm", macs_per_core=float(tm) * (tk * grid) * tn
            )
        )
        return phases
