"""MeshGEMM on non-square meshes via LCM logical tiling (Section 5.4).

A ``Nh x Nw`` fabric with ``Nh != Nw`` cannot host the square cyclic-shift
grid directly.  The paper's fix: tile the operands into
``Nlcm x Nlcm`` logical positions, ``Nlcm = lcm(Nh, Nw)``, and fold the
logical grid onto the physical mesh — each physical core hosts a
``(Nlcm/Nh) x (Nlcm/Nw)`` block of logical positions.  The fold is
monotone, so a two-hop logical shift is at most a two-hop *physical*
transfer, and shifts between logical positions sharing a core are free
local moves.  Compute per core grows by the hosted-slot count, preserving
load balance exactly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.collectives.interleave import (
    interleave_placement,
    inverse_placement,
    shift_mapping_1d,
)
from repro.core.plmr import PLMRDevice
from repro.errors import ShapeError
from repro.gemm.base import GemmShape
from repro.mesh.cost_model import (
    CommPhase,
    ComputePhase,
    KernelCost,
    LoopPhase,
    Phase,
    estimate as estimate_phases,
)
from repro.mesh.fabric import Flow
from repro.mesh.machine import MeshMachine
from repro.mesh.topology import Coord

Slot = Tuple[int, int]  # (logical line row, logical line column)


class LogicalGrid:
    """Fold of an ``n x n`` logical grid onto an ``Nh x Nw`` physical mesh."""

    def __init__(self, nh: int, nw: int):
        if nh < 1 or nw < 1:
            raise ShapeError(f"mesh dims must be positive, got {nh}x{nw}")
        self.nh = nh
        self.nw = nw
        self.n = math.lcm(nh, nw)
        self.rows_per_core = self.n // nh
        self.cols_per_core = self.n // nw

    def physical(self, slot: Slot) -> Coord:
        """Physical core hosting a logical (row, col) line position."""
        li, lj = slot
        return (lj // self.cols_per_core, li // self.rows_per_core)

    @staticmethod
    def slot_name(base: str, slot: Slot) -> str:
        """Tile name of a logical slot in core memory."""
        return f"{base}@{slot[0]},{slot[1]}"


def _move_slots(
    machine: MeshMachine,
    grid: LogicalGrid,
    base: str,
    moves: List[Tuple[Slot, Slot]],
    pattern: str,
) -> None:
    """Permute slot tiles; cross-core moves use the NoC, local ones are free.

    All sources are staged to ``.out`` copies first so the permutation is
    simultaneous regardless of local/remote interleaving.
    """
    staged: Dict[Slot, np.ndarray] = {}
    for src, _dst in moves:
        core = machine.core(grid.physical(src))
        staged[src] = core.load(grid.slot_name(base, src))
        core.store(grid.slot_name(base, src) + ".out", staged[src])
    flows: List[Flow] = []
    for src, dst in moves:
        src_core = grid.physical(src)
        dst_core = grid.physical(dst)
        if src_core == dst_core:
            machine.place(grid.slot_name(base, dst), dst_core, staged[src])
        else:
            flows.append(
                Flow.unicast(
                    src_core,
                    dst_core,
                    grid.slot_name(base, src) + ".out",
                    grid.slot_name(base, dst),
                )
            )
    if flows:
        machine.communicate(pattern, flows)
    for src, _dst in moves:
        machine.core(grid.physical(src)).free(grid.slot_name(base, src) + ".out")


def _shift_rows(
    machine: MeshMachine,
    grid: LogicalGrid,
    base: str,
    placement: List[int],
    offsets_by_logical_row: List[int],
    pattern: str,
) -> None:
    """Shift every logical row's tiles around its interleaved ring."""
    moves: List[Tuple[Slot, Slot]] = []
    for li in range(grid.n):
        offset = offsets_by_logical_row[li]
        if offset % grid.n == 0:
            continue
        dest_of = shift_mapping_1d(placement, offset)
        for lj in range(grid.n):
            moves.append(((li, lj), (li, dest_of[lj])))
    if moves:
        _move_slots(machine, grid, base, moves, pattern)


def _shift_cols(
    machine: MeshMachine,
    grid: LogicalGrid,
    base: str,
    placement: List[int],
    offsets_by_logical_col: List[int],
    pattern: str,
) -> None:
    """Shift every logical column's tiles around its interleaved ring."""
    moves: List[Tuple[Slot, Slot]] = []
    for lj in range(grid.n):
        offset = offsets_by_logical_col[lj]
        if offset % grid.n == 0:
            continue
        dest_of = shift_mapping_1d(placement, offset)
        for li in range(grid.n):
            moves.append(((li, lj), (dest_of[li], lj)))
    if moves:
        _move_slots(machine, grid, base, moves, pattern)


class MeshGEMMNonSquare:
    """MeshGEMM on a rectangular fabric via the LCM logical grid."""

    name = "meshgemm-nonsquare"

    @classmethod
    def run(cls, machine: MeshMachine, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Functional ``a @ b`` on a (possibly) non-square mesh machine."""
        grid = LogicalGrid(machine.topology.height, machine.topology.width)
        n = grid.n
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"inner dims differ: {a.shape} @ {b.shape}")
        if a.shape[0] % n or a.shape[1] % n or b.shape[1] % n:
            raise ShapeError(f"dims must divide the logical grid size {n}")

        placement = interleave_placement(n)
        logical_at = inverse_placement(placement)
        tm, tk = a.shape[0] // n, a.shape[1] // n
        tn = b.shape[1] // n

        # Scatter: logical tile (i, j) occupies line slot
        # (placement[i], placement[j]).
        for i in range(n):
            for j in range(n):
                slot = (placement[i], placement[j])
                coord = grid.physical(slot)
                machine.place(
                    grid.slot_name("nsq.A", slot),
                    coord,
                    a[i * tm:(i + 1) * tm, j * tk:(j + 1) * tk],
                )
                machine.place(
                    grid.slot_name("nsq.B", slot),
                    coord,
                    b[i * tk:(i + 1) * tk, j * tn:(j + 1) * tn],
                )

        # Alignment skews, by logical index of each line row/column.  A
        # moves on X links, B on Y links — concurrent, one overlap scope.
        with machine.phase("nsq-align", kind="overlap"):
            _shift_rows(
                machine, grid, "nsq.A", placement,
                [-logical_at[li] for li in range(n)], "nsq-align-A",
            )
            _shift_cols(
                machine, grid, "nsq.B", placement,
                [-logical_at[lj] for lj in range(n)], "nsq-align-B",
            )

        # Which logical slots each physical core hosts (for the per-core
        # MAC accounting routed through the machine's compute API).
        slots_of: Dict[Coord, List[Slot]] = {
            coord: [] for coord in machine.topology.coords()
        }
        for li in range(n):
            for lj in range(n):
                slots_of[grid.physical((li, lj))].append((li, lj))

        def mac_hosted_slots(core) -> float:
            macs = 0.0
            for slot in slots_of[core.coord]:
                a_tile = core.load(grid.slot_name("nsq.A", slot))
                b_tile = core.load(grid.slot_name("nsq.B", slot))
                c_name = grid.slot_name("nsq.C", slot)
                c_tile = core.load_optional(c_name)
                partial = a_tile @ b_tile
                core.store(c_name, partial if c_tile is None else c_tile + partial)
                macs += float(
                    a_tile.shape[0] * a_tile.shape[1] * b_tile.shape[1]
                )
            return macs

        for step in range(n):
            with machine.phase("nsq-compute-shift", overlap=True):
                machine.compute_all("nsq-mac", mac_hosted_slots)
                if step < n - 1:
                    _shift_rows(
                        machine, grid, "nsq.A", placement, [-1] * n, "nsq-shift-A"
                    )
                    _shift_cols(
                        machine, grid, "nsq.B", placement, [-1] * n, "nsq-shift-B"
                    )

        result = np.zeros((n * tm, n * tn), dtype=np.result_type(a, b))
        for i in range(n):
            for j in range(n):
                slot = (placement[i], placement[j])
                tile = machine.core(grid.physical(slot)).load(
                    grid.slot_name("nsq.C", slot)
                )
                result[i * tm:(i + 1) * tm, j * tn:(j + 1) * tn] = tile
        return result

    @classmethod
    def plan(cls, shape: GemmShape, nh: int, nw: int) -> List[Phase]:
        """Analytic phases: square plan scaled by hosted slots per core.

        Per-step compute multiplies by the slots each core hosts; per-step
        shift payload multiplies by the slots crossing a physical core
        boundary (one per hosted logical row for the A shift).
        """
        grid = LogicalGrid(nh, nw)
        n = grid.n
        tm = math.ceil(shape.m / n)
        tk = math.ceil(shape.k / n)
        tn = math.ceil(shape.n / n)
        a_bytes = tm * tk * shape.dtype_bytes
        b_bytes = tk * tn * shape.dtype_bytes
        slots = grid.rows_per_core * grid.cols_per_core
        crossing = max(grid.rows_per_core, grid.cols_per_core)
        phases: List[Phase] = []
        if n > 1:
            phases.append(
                CommPhase(
                    label="nsq-align",
                    hop_distance=float(max(nh, nw) - 1),
                    payload_bytes=float((a_bytes + b_bytes) * crossing),
                )
            )
        phases.append(
            LoopPhase(
                label="nsq-compute-shift",
                steps=n,
                compute=ComputePhase(
                    label="nsq-mac", macs_per_core=float(tm * tk * tn * slots)
                ),
                comm=CommPhase(
                    label="nsq-shift",
                    hop_distance=2.0 if n > 2 else 1.0,
                    payload_bytes=float(max(a_bytes, b_bytes) * crossing),
                ),
                overlap=True,
            )
        )
        return phases

    @classmethod
    def estimate(cls, device: PLMRDevice, shape: GemmShape) -> KernelCost:
        """Cycle estimate using the device's full (rectangular) fabric."""
        return estimate_phases(
            f"{cls.name}[{device.mesh_height}x{device.mesh_width}]",
            device,
            cls.plan(shape, device.mesh_height, device.mesh_width),
        )
