"""The cyclic-shift GEMM engine shared by Cannon and MeshGEMM.

Cannon's algorithm and MeshGEMM execute the *same* logical program
(Section 5.3):

1. **Initialization** — operands tiled ``n x n`` across the grid.
2. **Alignment** — logical block-row ``i`` of A skews left by ``i``
   positions; logical block-column ``j`` of B skews up by ``j``.
3. **Compute-shift loop** — ``n`` steps of
   ``C_sub += A_sub @ B_sub`` with A shifting one logical position along
   X and B one logical position along Y between steps.

The only difference is the *placement* of the logical ring on the
physical line: Cannon uses the identity (so the ring's wraparound edge
spans ``n - 1`` physical hops — the L violation of Figure 6), MeshGEMM
uses INTERLEAVE (every logical step is at most 2 physical hops).

Correctness: after alignment, core at logical ``(i, j)`` holds
``A(i, (i + j) mod n)`` and ``B((i + j) mod n, j)``; at loop step ``s``
it multiplies ``A(i, (i + j + s) mod n) @ B((i + j + s) mod n, j)``, so
over ``n`` steps the full contraction over ``k`` accumulates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collectives.interleave import inverse_placement, ring_dilation
from repro.collectives.primitives import column_ring_shift, row_ring_shift
from repro.mesh.cost_model import CommPhase, ComputePhase, LoopPhase, Phase
from repro.mesh.core_sim import Core
from repro.mesh.machine import MeshMachine
from repro.gemm.base import (
    GemmShape,
    check_partitionable,
    gather_with_placement,
    require_square_grid,
    scatter_with_placement,
)

#: Tile names of the cyclic-shift engine (shared by bind/body/gather).
A_NAME, B_NAME, C_NAME = "gemm.A", "gemm.B", "gemm.C"


def bind_cyclic_operands(
    machine: MeshMachine,
    a: np.ndarray,
    b: np.ndarray,
    placement: Sequence[int],
) -> int:
    """Scatter A and B under ``placement``; returns the grid side.

    Host-side binding, separated from :func:`cyclic_gemm_body` so the
    body alone can be captured into a replayable
    :class:`~repro.mesh.program.MeshProgram`.
    """
    grid = require_square_grid(machine)
    check_partitionable(a, b, grid)
    placement = list(placement)
    scatter_with_placement(machine, A_NAME, a, placement, placement)
    scatter_with_placement(machine, B_NAME, b, placement, placement)
    return grid


def cyclic_gemm_body(
    machine: MeshMachine,
    placement: Sequence[int],
    name_prefix: str = "cyclic",
) -> None:
    """Alignment + compute-shift loop over already-bound operands."""
    grid = require_square_grid(machine)
    placement = list(placement)
    logical_at = inverse_placement(placement)

    # Alignment (one skew phase per operand).  The physical row py holds
    # logical block-row logical_at[py], which must shift left by that
    # logical index; likewise for columns of B.
    if grid > 1:
        # A skews on X links while B skews on Y links — the router moves
        # them concurrently, hence one overlap-kind phase for both.
        with machine.phase(f"{name_prefix}-align", kind="overlap"):
            row_ring_shift(
                machine,
                f"{name_prefix}-align-A",
                A_NAME,
                placement,
                row_offsets=[-logical_at[py] for py in range(grid)],
            )
            column_ring_shift(
                machine,
                f"{name_prefix}-align-B",
                B_NAME,
                placement,
                col_offsets=[-logical_at[px] for px in range(grid)],
            )

    def multiply_accumulate(core: Core) -> float:
        a_tile = core.load(A_NAME)
        b_tile = core.load(B_NAME)
        c_tile = core.load_optional(C_NAME)
        partial = a_tile @ b_tile
        if c_tile is None:
            core.store(C_NAME, partial)
        else:
            core.store(C_NAME, c_tile + partial)
        return float(a_tile.shape[0] * a_tile.shape[1] * b_tile.shape[1])

    def multiply_accumulate_stacked(
        stacks: Dict[str, Optional[np.ndarray]],
    ) -> Tuple[Dict[str, np.ndarray], float]:
        a_stack = stacks[A_NAME]
        b_stack = stacks[B_NAME]
        c_stack = stacks[C_NAME]
        partial = np.matmul(a_stack, b_stack)
        out = partial if c_stack is None else c_stack + partial
        macs = float(a_stack.shape[1] * a_stack.shape[2] * b_stack.shape[2])
        return {C_NAME: out}, macs

    for step in range(grid):
        with machine.phase(f"{name_prefix}-compute-shift", overlap=True):
            if machine.vectorize:
                machine.compute_stacked(
                    f"{name_prefix}-mac",
                    machine.topology.coords(),
                    multiply_accumulate_stacked,
                    reads=(A_NAME, B_NAME, C_NAME),
                    writes=(C_NAME,),
                    fallback=multiply_accumulate,
                )
            else:
                machine.compute_all(
                    f"{name_prefix}-mac",
                    multiply_accumulate,
                    reads=(A_NAME, B_NAME, C_NAME),
                    writes=(C_NAME,),
                )
            if step < grid - 1:
                row_ring_shift(
                    machine, f"{name_prefix}-shift-A", A_NAME, placement, offset=-1
                )
                column_ring_shift(
                    machine, f"{name_prefix}-shift-B", B_NAME, placement, offset=-1
                )


def gather_cyclic_result(
    machine: MeshMachine, placement: Sequence[int]
) -> np.ndarray:
    """Reassemble C from the grid under ``placement``."""
    placement = list(placement)
    return gather_with_placement(machine, C_NAME, placement, placement)


def run_cyclic_shift_gemm(
    machine: MeshMachine,
    a: np.ndarray,
    b: np.ndarray,
    placement: Sequence[int],
    name_prefix: str = "cyclic",
) -> np.ndarray:
    """Execute the alignment + compute-shift program under a placement."""
    bind_cyclic_operands(machine, a, b, placement)
    cyclic_gemm_body(machine, placement, name_prefix)
    return gather_cyclic_result(machine, placement)


def cyclic_gemm_plan(
    shape: GemmShape, grid: int, placement: Sequence[int], label: str
) -> List[Phase]:
    """Analytic phase plan of the alignment + compute-shift program.

    ``placement`` determines the per-step shift distance (its ring
    dilation): 2 under INTERLEAVE, ``grid - 1`` under the identity.  The
    worst alignment skew spans the physical line either way.
    """
    tm, tk, tn = shape.tiles(grid)
    a_bytes, b_bytes, _ = shape.tile_bytes(grid)
    dilation = ring_dilation(list(placement))
    phases: List[Phase] = []
    if grid > 1:
        phases.append(
            CommPhase(
                label=f"{label}-align",
                hop_distance=float(grid - 1),
                payload_bytes=float(a_bytes + b_bytes),
            )
        )
    # A shifts along X links while B shifts along Y links: the router
    # moves them concurrently, so each step's comm is the larger stream.
    # Note the wraparound stream of a non-interleaved ring travels
    # *against* the neighbour shifts on full-duplex links, so it suffers
    # no bandwidth contention — only its O(N) hop latency (verified by
    # the fluid NoC simulator, repro.mesh.netsim).
    phases.append(
        LoopPhase(
            label=f"{label}-compute-shift",
            steps=grid,
            compute=ComputePhase(label=f"{label}-mac", macs_per_core=float(tm * tk * tn)),
            comm=CommPhase(
                label=f"{label}-shift",
                hop_distance=float(dilation),
                payload_bytes=float(max(a_bytes, b_bytes)),
            ),
            overlap=True,
        )
    )
    return phases
