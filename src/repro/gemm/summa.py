"""SUMMA — Cerebras' default distributed GEMM (Figure 6, case 2).

SUMMA (van de Geijn & Watts, 1997) runs ``n`` outer-product steps: at
step ``k`` the cores in block-column ``k`` broadcast their A tiles along
their rows, the cores in block-row ``k`` broadcast their B tiles along
their columns, and every core accumulates ``A(i,k) @ B(k,j)``.

On a PLMR device this fails twice.  Each step's broadcast reaches the far
edge of the row/column — an ``n - 1`` hop critical path (L) — and every
core is a broadcast *root* in one step and a *leaf* in the others, so the
routers need a colour per step: O(N) paths per core (R).  Memory is
better than allgather but still double the local tiles (the received
pivot tiles), which the profile records as a working-set factor of 2.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.collectives.primitives import column_broadcast, row_broadcast
from repro.core.compliance import SUMMA
from repro.gemm.base import (
    GemmKernel,
    GemmShape,
    check_partitionable,
    require_square_grid,
)
from repro.mesh.cost_model import CommPhase, ComputePhase, LoopPhase, Phase
from repro.mesh.core_sim import Core
from repro.mesh.machine import MeshMachine


class SummaGEMM(GemmKernel):
    """Broadcast-based distributed GEMM."""

    name = "summa"
    profile = SUMMA

    @classmethod
    def run(cls, machine: MeshMachine, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Functional execution; returns the dense ``a @ b``."""
        grid = require_square_grid(machine)
        check_partitionable(a, b, grid)
        a_name, b_name, c_name = "summa.A", "summa.B", "summa.C"
        a_piv, b_piv = "summa.Apiv", "summa.Bpiv"
        machine.scatter_matrix(a_name, a, grid, grid)
        machine.scatter_matrix(b_name, b, grid, grid)

        def accumulate(core: Core) -> float:
            a_tile = core.load(a_piv)
            b_tile = core.load(b_piv)
            partial = a_tile @ b_tile
            c_tile = core.load_optional(c_name)
            if c_tile is None:
                core.store(c_name, partial)
            else:
                core.store(c_name, c_tile + partial)
            macs = float(a_tile.shape[0] * a_tile.shape[1] * b_tile.shape[1])
            core.free(a_piv)
            core.free(b_piv)
            return macs

        for k in range(grid):
            # Pivot column k of A broadcasts east/west; pivot row k of B
            # broadcasts north/south.  Each step is a fresh route colour —
            # the O(N) paths-per-core cost the trace will show.  The
            # broadcasts of step k+1 overlap the MACs of step k.
            with machine.phase("summa-broadcast-mac", overlap=True):
                row_broadcast(machine, f"summa-bcast-A{k}", a_name, a_piv, root_x=k)
                column_broadcast(
                    machine, f"summa-bcast-B{k}", b_name, b_piv, root_y=k
                )
                machine.compute_all("summa-mac", accumulate)

        return machine.gather_matrix(c_name, grid, grid)

    #: Router-reconfiguration cycles per step per mesh-unit: every SUMMA
    #: step programs a *fresh* broadcast colour rooted at a new pivot
    #: (the O(N)-paths R violation), and the route must be set up across
    #: the row/column before the stream can start.  Cyclic-shift kernels
    #: reuse two static routes and never pay this.
    ROUTE_SETUP_CYCLES_PER_HOP = 0.4

    @classmethod
    def plan(cls, shape: GemmShape, grid: int) -> List[Phase]:
        """Analytic phases: ``grid`` steps of far-edge broadcasts + MACs."""
        tm, tk, tn = shape.tiles(grid)
        a_bytes, b_bytes, _ = shape.tile_bytes(grid)
        return [
            LoopPhase(
                label="summa-broadcast-mac",
                steps=grid,
                compute=ComputePhase(
                    label="summa-mac", macs_per_core=float(tm * tk * tn)
                ),
                comm=CommPhase(
                    label="summa-bcast",
                    hop_distance=float(max(grid - 1, 0)),
                    payload_bytes=float(max(a_bytes, b_bytes)),
                    overhead_cycles=20.0
                    + cls.ROUTE_SETUP_CYCLES_PER_HOP * grid,
                ),
                overlap=True,
            )
        ]
