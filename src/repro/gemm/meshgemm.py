"""MeshGEMM — the paper's wafer-scale GEMM (Section 5).

MeshGEMM = Cannon's cyclic-shift structure + the INTERLEAVE placement.
Cyclic shifting gives O(1) routing paths per core (R) and the optimal
``O(1/N^2)`` per-core memory (M); INTERLEAVE folds the logical ring onto
the physical line so every shift is at most **two hops**, bounding the
per-step critical path at O(1) and satisfying L — the property every
other distributed GEMM violates (Figure 6).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.collectives.interleave import interleave_placement
from repro.core.compliance import MESHGEMM
from repro.gemm.base import GemmKernel, GemmShape, require_square_grid
from repro.gemm.cyclic import (
    bind_cyclic_operands,
    cyclic_gemm_body,
    cyclic_gemm_plan,
    gather_cyclic_result,
    run_cyclic_shift_gemm,
)
from repro.mesh.cost_model import Phase
from repro.mesh.machine import MeshMachine
from repro.mesh.program import MeshProgram, ProgramReplayError


class MeshGEMM(GemmKernel):
    """Interleaved cyclic-shift GEMM (PLMR-compliant)."""

    name = "meshgemm"
    profile = MESHGEMM

    @classmethod
    def run(cls, machine: MeshMachine, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Functional execution; returns the dense ``a @ b``."""
        grid = require_square_grid(machine)
        placement = interleave_placement(grid)
        return run_cyclic_shift_gemm(machine, a, b, placement, name_prefix=cls.name)

    @classmethod
    def capture_run(
        cls, machine: MeshMachine, a: np.ndarray, b: np.ndarray
    ) -> Tuple[np.ndarray, MeshProgram]:
        """Like :meth:`run`, additionally capturing a replayable program.

        The returned program covers the kernel *body* (alignment +
        compute-shift loop); operand scatter and result gather stay
        live, so :meth:`replay_run` can feed new payloads of the same
        shape through the cached skeleton.
        """
        placement = interleave_placement(require_square_grid(machine))
        bind_cyclic_operands(machine, a, b, placement)
        with machine.capture() as program:
            cyclic_gemm_body(machine, placement, name_prefix=cls.name)
        program.meta["placement"] = placement
        program.meta["operand_shapes"] = (a.shape, b.shape)
        return gather_cyclic_result(machine, placement), program

    @classmethod
    def replay_run(
        cls,
        machine: MeshMachine,
        program: MeshProgram,
        a: np.ndarray,
        b: np.ndarray,
    ) -> np.ndarray:
        """Run :meth:`run` semantics through a captured program."""
        if program.meta.get("operand_shapes") != (a.shape, b.shape):
            raise ProgramReplayError(
                f"program captured for shapes "
                f"{program.meta.get('operand_shapes')} cannot replay "
                f"{(a.shape, b.shape)}"
            )
        placement = program.meta["placement"]
        with machine.quiet_memory():
            bind_cyclic_operands(machine, a, b, placement)
        program.replay(machine)
        return gather_cyclic_result(machine, placement)

    @classmethod
    def plan(cls, shape: GemmShape, grid: int) -> List[Phase]:
        """Analytic phases: alignment + ``grid`` two-hop compute-shift steps."""
        placement = interleave_placement(grid)
        return cyclic_gemm_plan(shape, grid, placement, label=cls.name)
