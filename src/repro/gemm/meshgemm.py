"""MeshGEMM — the paper's wafer-scale GEMM (Section 5).

MeshGEMM = Cannon's cyclic-shift structure + the INTERLEAVE placement.
Cyclic shifting gives O(1) routing paths per core (R) and the optimal
``O(1/N^2)`` per-core memory (M); INTERLEAVE folds the logical ring onto
the physical line so every shift is at most **two hops**, bounding the
per-step critical path at O(1) and satisfying L — the property every
other distributed GEMM violates (Figure 6).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.collectives.interleave import interleave_placement
from repro.core.compliance import MESHGEMM
from repro.gemm.base import GemmKernel, GemmShape, require_square_grid
from repro.gemm.cyclic import cyclic_gemm_plan, run_cyclic_shift_gemm
from repro.mesh.cost_model import Phase
from repro.mesh.machine import MeshMachine


class MeshGEMM(GemmKernel):
    """Interleaved cyclic-shift GEMM (PLMR-compliant)."""

    name = "meshgemm"
    profile = MESHGEMM

    @classmethod
    def run(cls, machine: MeshMachine, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Functional execution; returns the dense ``a @ b``."""
        grid = require_square_grid(machine)
        placement = interleave_placement(grid)
        return run_cyclic_shift_gemm(machine, a, b, placement, name_prefix=cls.name)

    @classmethod
    def plan(cls, shape: GemmShape, grid: int) -> List[Phase]:
        """Analytic phases: alignment + ``grid`` two-hop compute-shift steps."""
        placement = interleave_placement(grid)
        return cyclic_gemm_plan(shape, grid, placement, label=cls.name)
