"""Cannon's algorithm (1969) — the mesh-classic baseline (Figure 6, case 3).

Cannon assumes a **2D torus**: every cyclic shift is a single-hop
neighbour exchange because wraparound links exist.  Wafer-scale meshes
have no wraparound (Section 2.3), so the ring's closing edge must be
routed across the whole row/column: the head core streams to the tail
core over ``n - 1`` hops *every step*.  Memory (optimal ``O(1/N^2)``)
and routing (two neighbours) remain excellent — only the L property
fails, and that is precisely the gap INTERLEAVE closes.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.collectives.interleave import identity_placement
from repro.core.compliance import CANNON
from repro.gemm.base import GemmKernel, GemmShape, require_square_grid
from repro.gemm.cyclic import cyclic_gemm_plan, run_cyclic_shift_gemm
from repro.mesh.cost_model import Phase
from repro.mesh.machine import MeshMachine


class CannonGEMM(GemmKernel):
    """Identity-placed cyclic-shift GEMM (torus algorithm on a mesh)."""

    name = "cannon"
    profile = CANNON

    @classmethod
    def run(cls, machine: MeshMachine, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Functional execution; returns the dense ``a @ b``."""
        grid = require_square_grid(machine)
        placement = identity_placement(grid)
        return run_cyclic_shift_gemm(machine, a, b, placement, name_prefix=cls.name)

    @classmethod
    def plan(cls, shape: GemmShape, grid: int) -> List[Phase]:
        """Analytic phases: the wraparound edge costs ``grid - 1`` hops/step."""
        placement = identity_placement(grid)
        return cyclic_gemm_plan(shape, grid, placement, label=cls.name)
