"""Weight placement and the prefill -> decode transition (Section 4.4).

Prefill and decode want different tensor layouts: prefill partitions the
sequence dimension (``B L_y E_x``) and keeps weights in ``E_y F_x``;
decode replicates the length-1 sequence (``B E_y L^x``) and pre-places
``W_O`` / ``W_out`` transposed so chained GEMVs never transpose on the
mesh.  Between the phases WaferLLM reshuffles the KV cache and weights
over the NoC; this module prices that transition and shows it is
negligible next to even one decoded token — the paper's justification
for re-placement over per-token transposes.

Moved here from ``runtime/placement.py`` when placement was unified into
the planner subsystem; the old module remains as a deprecation shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.plmr import PLMRDevice
from repro.llm.config import ModelConfig
from repro.llm.tensor_layout import (
    TensorLayout,
    weight_layout,
    weight_layout_decode,
)
from repro.mesh.cost_model import CommPhase, KernelCost, estimate
from repro.placement.plan import RegionCarveOut


@dataclass(frozen=True)
class WeightPlacementPlan:
    """Per-layer weight layouts in each phase."""

    model: ModelConfig

    def prefill_layouts(self) -> List[TensorLayout]:
        """Weight layouts during prefill (all ``E_y F_x``)."""
        e, kv, f = self.model.d_model, self.model.kv_dim, self.model.d_ff
        return [
            weight_layout(e, e),    # W_Q
            weight_layout(e, kv),   # W_K
            weight_layout(e, kv),   # W_V
            weight_layout(e, e),    # W_O
            weight_layout(e, f),    # W_gate (W_in)
            weight_layout(e, f),    # W_up
            weight_layout(f, e),    # W_down (W_out)
        ]

    def decode_layouts(self) -> List[TensorLayout]:
        """Decode layouts: ``W_O`` and ``W_out`` flipped (Figure 4)."""
        e, kv, f = self.model.d_model, self.model.kv_dim, self.model.d_ff
        return [
            weight_layout(e, e),
            weight_layout(e, kv),
            weight_layout(e, kv),
            weight_layout_decode(e, e),   # W_O pre-placed for dist-GEMV
            weight_layout(e, f),
            weight_layout(e, f),
            weight_layout_decode(f, e),   # W_out pre-placed for dist-GEMV
        ]

    def changed_layers(self) -> List[int]:
        """Indices (into the layout lists) that move during transition."""
        moved = []
        for idx, (pre, dec) in enumerate(
            zip(self.prefill_layouts(), self.decode_layouts())
        ):
            if pre != dec:
                moved.append(idx)
        return moved


def transition_cost(model: ModelConfig, device: PLMRDevice) -> KernelCost:
    """Cycle cost of re-placing weights between prefill and decode.

    Only the weights whose layout changes (``W_O``, ``W_out`` per layer)
    are streamed; KV-cache re-layout is charged as one extra tensor of
    the same order.  All transfers ride the full NoC bisection.
    """
    plan = WeightPlacementPlan(model)
    prefill = plan.prefill_layouts()
    decode = plan.decode_layouts()
    total: KernelCost | None = None
    for idx in plan.changed_layers():
        per_layer = prefill[idx].transition_cost(decode[idx], device)
        layer_total = per_layer.scaled(model.num_layers)
        total = layer_total if total is None else total + layer_total
    if total is None:  # no layout changes — zero-cost transition
        zero = TensorLayout(1, 1, *_trivial_maps())
        total = zero.transition_cost(zero, device).scaled(0)
    return total


def _trivial_maps():
    from repro.llm.tensor_layout import AxisMap

    return AxisMap.PARTITION_X, AxisMap.PARTITION_Y


def reshard_cost(
    model: ModelConfig, device: PLMRDevice, region: RegionCarveOut
) -> KernelCost:
    """Cycle cost of evacuating one decode region onto spare capacity.

    When a core dies persistently, the runtime re-shards the region's
    resident weights onto a spare region (Cerebras-style yield repair
    applied at runtime).  All of the region's rows stream their shards in
    parallel, so the serialized payload per lane is ``weight_bytes /
    width``, travelling roughly one region width in hops.  KV is *not*
    moved — it is recomputed from the prompts (the serving layer prices
    that separately), matching how wafer runtimes treat SRAM state as
    disposable next to the NoC cost of moving it.
    """
    phase = CommPhase(
        label="reshard.weights",
        hop_distance=float(region.width),
        payload_bytes=model.weight_bytes / region.width,
    )
    return estimate(
        f"region_reshard[{region.width}x{region.height}]", device, [phase]
    )


def transposes_avoided_per_token(model: ModelConfig) -> int:
    """Mesh transposes the decode plan avoids per generated token.

    Without pre-placement, every chained GEMV pair (``W_O`` after the
    attention GEMVs, ``W_out`` after the FFN GEMVs) and the
    ``Q @ K^T`` score step would each transpose on the mesh: three per
    layer (Section 4.2).
    """
    return 3 * model.num_layers
