"""The planner's single scoring path.

Every throughput number a placement decision rests on — the autotune
sweep, the paper-config comparison, the defect-aware planner's candidate
ranking, and the EXPERIMENTS.md table — comes from one memoized scorer,
so "paper vs tuned vs planned" reports can never drift apart by taking
different code paths (the bug class this module exists to kill:
``compare_with_paper_configs`` used to re-run the throughput
computations ``autotune`` had already done, on a second code path).

Degradation enters as a *communication stretch factor* measured by
:meth:`~repro.placement.fabric.FabricView.comm_stretch`: arithmetic is
unaffected by where a region sits, so only the exposed communication of
the calibrated cost is scaled.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.plmr import PLMRDevice
from repro.llm.config import ModelConfig
from repro.llm.wafer_system import WaferLLMSystem
from repro.mesh.cost_model import KernelCost


def stretched_seconds(cost: KernelCost, stretch: float) -> float:
    """Wall-clock of a kernel cost with its exposed comm stretched.

    Compute cycles are placement-invariant; the communication the
    overlap model could not hide stretches by the fabric factor.
    """
    if stretch <= 1.0:
        return cost.seconds
    total = cost.compute_cycles + cost.exposed_comm_cycles * stretch
    return cost.device.cycles_to_seconds(total)


class ThroughputScorer:
    """Memoized prefill/decode rates for one (model, device) pair.

    ``prefill(grid)`` / ``decode(grid)`` are the pristine-mesh rates the
    legacy autotune searched; the ``stretch`` argument prices the same
    configuration on a degraded fabric.  Costs are cached per grid, so
    re-scoring a grid at a different stretch (a different anchor) costs
    one multiply, not a schedule walk.
    """

    def __init__(
        self,
        model: ModelConfig,
        device: PLMRDevice,
        seq_len: int = 4096,
        context_len: int = 2048,
        system: Optional[WaferLLMSystem] = None,
    ):
        self.model = model
        self.device = device
        self.seq_len = seq_len
        self.context_len = context_len
        self.system = system or WaferLLMSystem(device)
        self._prefill_costs: Dict[int, KernelCost] = {}
        self._decode_costs: Dict[int, KernelCost] = {}
        self.evaluations = 0

    # ------------------------------------------------------------------
    def prefill_cost(self, grid: int) -> KernelCost:
        """Cached prefill-pass cost at one grid."""
        cost = self._prefill_costs.get(grid)
        if cost is None:
            cost = self.system.prefill_cost(self.model, self.seq_len, grid)
            self._prefill_costs[grid] = cost
            self.evaluations += 1
        return cost

    def decode_cost(self, grid: int) -> KernelCost:
        """Cached decode-step cost at one grid."""
        cost = self._decode_costs.get(grid)
        if cost is None:
            cost = self.system.decode_token_cost(
                self.model, self.context_len, grid
            )
            self._decode_costs[grid] = cost
            self.evaluations += 1
        return cost

    # ------------------------------------------------------------------
    def prefill(self, grid: int, stretch: float = 1.0) -> float:
        """Prefill tokens/s at one grid (optionally on a degraded fabric)."""
        return self.seq_len / stretched_seconds(self.prefill_cost(grid),
                                                stretch)

    def decode(self, grid: int, stretch: float = 1.0) -> float:
        """Decode tokens/s at one grid (optionally on a degraded fabric)."""
        return 1.0 / stretched_seconds(self.decode_cost(grid), stretch)

    def score_pair(
        self,
        prefill_grid: int,
        decode_grid: int,
        prefill_stretch: float = 1.0,
        decode_stretch: float = 1.0,
    ) -> Dict[str, float]:
        """Both headline rates of one configuration, as a report dict."""
        return {
            "prefill_grid": prefill_grid,
            "decode_grid": decode_grid,
            "prefill_tok_s": self.prefill(prefill_grid, prefill_stretch),
            "decode_tok_s": self.decode(decode_grid, decode_stretch),
        }
