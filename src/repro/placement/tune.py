"""Grid/K autotuning on the pristine mesh (Section 4.4's future work).

The legacy ``llm/autotune.py`` entry points, rebuilt on the planner's
single scoring path (:class:`~repro.placement.score.ThroughputScorer`)
and search driver (:func:`~repro.placement.search.coarse_then_refine`).
The numerics are unchanged — ``autotune`` on a pristine fabric is the
degenerate case of the defect-aware planner — but
``compare_with_paper_configs`` no longer re-runs the paper-config
throughput computations on a second code path: both sides of the report
read the same memoized scorer, so they cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plmr import PLMRDevice
from repro.errors import ConfigurationError
from repro.llm.config import ModelConfig
from repro.placement.score import ThroughputScorer
from repro.placement.search import (
    coarse_then_refine,
    min_decode_grid,
    sweep_ktree,
)


@dataclass(frozen=True)
class AutotuneResult:
    """Chosen configuration and the predicted rates at that choice."""

    model: str
    prefill_grid: int
    decode_grid: int
    ktree_k: int
    prefill_tokens_per_s: float
    decode_tokens_per_s: float
    candidates_evaluated: int


def _autotune_on(scorer: ThroughputScorer, coarse_step: int) -> AutotuneResult:
    """Run the grid/K search against an existing (shared) scorer."""
    model, device = scorer.model, scorer.device
    side = min(device.mesh_width, device.mesh_height)
    if side < 8:
        raise ConfigurationError(
            f"device fabric {side} too small for parallelism search"
        )

    lo = max(8, min(60, side // 4))
    prefill = coarse_then_refine(scorer.prefill, lo, side, coarse_step)

    decode_lo = max(
        min_decode_grid(model, device, scorer.context_len), lo
    )
    decode = coarse_then_refine(scorer.decode, decode_lo, side, coarse_step)

    best_k, k_evals = sweep_ktree(model, device, decode.best)

    return AutotuneResult(
        model=model.name,
        prefill_grid=prefill.best,
        decode_grid=decode.best,
        ktree_k=best_k,
        prefill_tokens_per_s=prefill.value,
        decode_tokens_per_s=decode.value,
        candidates_evaluated=(
            prefill.evaluations + decode.evaluations + k_evals
        ),
    )


def autotune(
    model: ModelConfig,
    device: PLMRDevice,
    seq_len: int = 4096,
    context_len: int = 2048,
    coarse_step: int = 60,
) -> AutotuneResult:
    """Search grids and K for the best prefill/decode configuration."""
    scorer = ThroughputScorer(model, device, seq_len=seq_len,
                              context_len=context_len)
    return _autotune_on(scorer, coarse_step)


def compare_with_paper_configs(
    model: ModelConfig, device: PLMRDevice
) -> dict:
    """Autotuned vs paper-chosen configurations, as a report dict.

    One :class:`ThroughputScorer` prices both columns: the paper grids
    hit the cache the search already filled, and a scoring change can
    never skew one side of the comparison.
    """
    scorer = ThroughputScorer(model, device)
    tuned = _autotune_on(scorer, coarse_step=60)
    system = scorer.system
    paper = scorer.score_pair(
        system.prefill_grid(model), system.decode_grid(model)
    )
    return {
        "model": model.name,
        "paper": paper,
        "autotuned": {
            "prefill_grid": tuned.prefill_grid,
            "decode_grid": tuned.decode_grid,
            "ktree_k": tuned.ktree_k,
            "prefill_tok_s": tuned.prefill_tokens_per_s,
            "decode_tok_s": tuned.decode_tokens_per_s,
        },
    }
