"""The :class:`PlacementPlan` IR — one searchable, checkable layout artifact.

Before this subsystem existed, five separate places decided where things
go on the wafer: ``llm/autotune.py`` searched grids on the pristine
mesh, ``runtime/placement.py`` knew the prefill/decode weight layouts,
``llm/wafer_system.py`` hard-coded the paper's per-model grids,
``serving/chunked.py`` picked its own decode region and spare count, and
``llm/tensor_layout.py`` carried the hand-chosen axis maps.  The
:class:`PlacementPlan` unifies them: region carve-outs on the *logical*
(defect-remapped) fabric, partition/grid shapes, per-phase tensor
layouts, and spare-region reservations — produced by one search driver
(:mod:`repro.placement.search`), validated by the reconciler and the
PLMR trace sanitizer (:mod:`repro.placement.validate`), and threaded
through system construction and serving.

Construction discipline: region carve-outs are *planner output*.  The
``region-carveout-outside-planner`` lint rule flags direct
``RegionCarveOut(...)`` construction outside ``src/repro/placement/``;
other layers obtain regions from a plan or from the helpers here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.errors import ConfigurationError
from repro.llm.tensor_layout import TensorLayout

Coord = Tuple[int, int]

#: Roles a carve-out can play in a plan.
REGION_ROLES = ("prefill", "decode", "spare", "search")


@dataclass(frozen=True)
class RegionCarveOut:
    """A rectangular region of the *logical* mesh reserved for one role.

    Coordinates are logical: on a defective wafer the remap already
    hides dead cores, so a carve-out can never sit on one — the planner
    and its property tests assert this through
    :meth:`~repro.placement.fabric.FabricView.to_physical`.
    """

    name: str
    x: int
    y: int
    width: int
    height: int
    role: str = "decode"

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ConfigurationError(
                f"carve-out {self.name!r} must have positive dims, got "
                f"{self.width}x{self.height}"
            )
        if self.x < 0 or self.y < 0:
            raise ConfigurationError(
                f"carve-out {self.name!r} anchor must be non-negative"
            )
        if self.role not in REGION_ROLES:
            raise ConfigurationError(
                f"carve-out role must be one of {REGION_ROLES}, "
                f"got {self.role!r}"
            )

    # ------------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        """Logical cores inside the carve-out."""
        return self.width * self.height

    @property
    def grid(self) -> int:
        """Square-grid side (the partition shape kernels run on)."""
        return min(self.width, self.height)

    def contains(self, coord: Coord) -> bool:
        """Whether a logical coordinate falls inside the carve-out."""
        cx, cy = coord
        return self.x <= cx < self.x + self.width and \
            self.y <= cy < self.y + self.height

    def overlaps(self, other: "RegionCarveOut") -> bool:
        """Whether two carve-outs share any logical core."""
        return not (
            self.x + self.width <= other.x
            or other.x + other.width <= self.x
            or self.y + self.height <= other.y
            or other.y + other.height <= self.y
        )

    def coords(self) -> Iterator[Coord]:
        """Logical coordinates of the carve-out, row-major."""
        for dy in range(self.height):
            for dx in range(self.width):
                yield (self.x + dx, self.y + dy)

    def fits(self, logical_width: int, logical_height: int) -> bool:
        """Whether the carve-out lies inside a logical mesh."""
        return (
            self.x + self.width <= logical_width
            and self.y + self.height <= logical_height
        )

    def to_dict(self) -> Dict:
        """JSON-serializable form."""
        return {
            "name": self.name,
            "x": self.x,
            "y": self.y,
            "width": self.width,
            "height": self.height,
            "role": self.role,
        }


def decode_carve_for_grid(grid: int, name: str = "decode0") -> RegionCarveOut:
    """Default decode carve-out for a bare grid (no plan in hand).

    The serving layer falls back to this when constructed without a
    :class:`PlacementPlan`; keeping the constructor inside the placement
    subsystem is what the ``region-carveout-outside-planner`` lint rule
    enforces.
    """
    if grid < 1:
        raise ConfigurationError(f"grid must be positive, got {grid}")
    return RegionCarveOut(name=name, x=0, y=0, width=grid, height=grid,
                          role="decode")


# ---------------------------------------------------------------------------
@dataclass
class PlanValidation:
    """Outcome of replaying a plan through the reconciler and sanitizer.

    ``findings`` carries every budget breach and sanitizer finding; an
    emitted (accepted) plan has ``ok=True`` and zero findings — rejected
    candidates keep theirs so the search can report *why* each
    alternative died (see :class:`RejectedPlan`).
    """

    probe_grid: int
    findings: List[Finding] = field(default_factory=list)
    reconcile_ok: bool = False
    sanitize_ok: bool = False
    budgets_ok: bool = False
    reconcile_summary: str = ""

    @property
    def ok(self) -> bool:
        """Plan passed every check with zero findings."""
        return (
            not self.findings
            and self.reconcile_ok
            and self.sanitize_ok
            and self.budgets_ok
        )

    def to_dict(self) -> Dict:
        """JSON-serializable form."""
        return {
            "ok": self.ok,
            "probe_grid": self.probe_grid,
            "reconcile_ok": self.reconcile_ok,
            "sanitize_ok": self.sanitize_ok,
            "budgets_ok": self.budgets_ok,
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        """Human-readable one-or-more-line summary."""
        if self.ok:
            return (
                f"valid (probe {self.probe_grid}x{self.probe_grid}: "
                f"reconciled, sanitized clean, budgets met)"
            )
        lines = [f"INVALID (probe {self.probe_grid}x{self.probe_grid}):"]
        lines += [f"  {f.render()}" for f in self.findings]
        return "\n".join(lines)


@dataclass
class PlacementPlan:
    """One complete placement decision for a model on a fabric.

    Everything downstream consumes *this* — ``WaferLLMSystem`` grids,
    ``WaferTransformer`` functional context, the serving layer's region
    and spare choices — so a placement change is one artifact swap, not
    five coordinated edits.
    """

    model: str
    device: str
    logical_width: int
    logical_height: int
    prefill_region: RegionCarveOut
    decode_region: RegionCarveOut
    spare_regions: Tuple[RegionCarveOut, ...]
    ktree_k: int
    prefill_tokens_per_s: float
    decode_tokens_per_s: float
    prefill_comm_stretch: float = 1.0
    decode_comm_stretch: float = 1.0
    num_defects: int = 0
    seed: int = 0
    candidates_evaluated: int = 0
    prefill_layouts: Tuple[TensorLayout, ...] = ()
    decode_layouts: Tuple[TensorLayout, ...] = ()
    validation: Optional[PlanValidation] = None

    # ------------------------------------------------------------------
    @property
    def prefill_grid(self) -> int:
        """Partition side used during prefill."""
        return self.prefill_region.grid

    @property
    def decode_grid(self) -> int:
        """Partition side used during decode."""
        return self.decode_region.grid

    @property
    def functional_grid(self) -> int:
        """Probe-scale grid for functional (bit-level) execution.

        Wafer-scale grids cannot be simulated functionally; the plan's
        validation probe ran at this side, so the functional transformer
        uses the same scale.
        """
        if self.validation is not None:
            return self.validation.probe_grid
        return min(4, self.decode_grid)

    @property
    def is_validated(self) -> bool:
        """Whether the plan replayed clean through reconciler + sanitizer."""
        return self.validation is not None and self.validation.ok

    def regions(self) -> List[RegionCarveOut]:
        """Every carve-out the plan reserves."""
        return [self.prefill_region, self.decode_region,
                *self.spare_regions]

    def matches(self, model_name: str) -> bool:
        """Whether the plan was searched for this model (base name)."""
        return self.model == model_name.split("[")[0]

    def to_dict(self) -> Dict:
        """JSON-serializable form (the ``repro place --json`` payload)."""
        return {
            "model": self.model,
            "device": self.device,
            "logical_mesh": [self.logical_width, self.logical_height],
            "num_defects": self.num_defects,
            "seed": self.seed,
            "prefill_region": self.prefill_region.to_dict(),
            "decode_region": self.decode_region.to_dict(),
            "spare_regions": [r.to_dict() for r in self.spare_regions],
            "prefill_grid": self.prefill_grid,
            "decode_grid": self.decode_grid,
            "ktree_k": self.ktree_k,
            "prefill_tokens_per_s": self.prefill_tokens_per_s,
            "decode_tokens_per_s": self.decode_tokens_per_s,
            "prefill_comm_stretch": self.prefill_comm_stretch,
            "decode_comm_stretch": self.decode_comm_stretch,
            "candidates_evaluated": self.candidates_evaluated,
            "validation": (
                self.validation.to_dict() if self.validation else None
            ),
        }


@dataclass
class RejectedPlan:
    """A candidate the search measured and the validators killed.

    The findings that killed it travel with the rejection so
    ``repro place --explain`` (and DESIGN.md's measured-and-rejected
    log) can say exactly why each alternative lost.
    """

    plan: PlacementPlan
    findings: List[Finding]
    reason: str

    def to_dict(self) -> Dict:
        """JSON-serializable form."""
        return {
            "reason": self.reason,
            "decode_region": self.plan.decode_region.to_dict(),
            "decode_tokens_per_s": self.plan.decode_tokens_per_s,
            "findings": [f.to_dict() for f in self.findings],
        }
