"""Defect-aware partition planning: search, score, validate, place.

One subsystem for every layout decision the repo used to scatter across
``llm/autotune.py``, ``runtime/placement.py``, the hard-coded grids of
``llm/wafer_system.py``, and the serving layer's region picks.  The
central artifact is the :class:`~repro.placement.plan.PlacementPlan` IR:
region carve-outs on the remapped logical fabric, partition shapes,
tensor layouts, and spare reservations — searched by
:class:`~repro.placement.search.PlacementPlanner`, priced by
:class:`~repro.placement.score.ThroughputScorer` over a
:class:`~repro.placement.fabric.FabricView`, and validated (reconciler +
PLMR sanitizer + hop/M/R budgets) by
:func:`~repro.placement.validate.validate_plan`.
"""

from repro.placement.fabric import FabricView
from repro.placement.plan import (
    PlacementPlan,
    PlanValidation,
    RegionCarveOut,
    RejectedPlan,
    decode_carve_for_grid,
)
from repro.placement.score import ThroughputScorer, stretched_seconds
from repro.placement.search import (
    PlacementPlanner,
    PlannerConfig,
    PlanSearchResult,
    coarse_then_refine,
    min_decode_grid,
    paper_default_plan,
    plan_placement,
    sweep_ktree,
)
from repro.placement.transition import (
    WeightPlacementPlan,
    reshard_cost,
    transition_cost,
    transposes_avoided_per_token,
)
from repro.placement.tune import (
    AutotuneResult,
    autotune,
    compare_with_paper_configs,
)
from repro.placement.validate import ValidationBudgets, validate_plan

__all__ = [
    "AutotuneResult",
    "FabricView",
    "PlacementPlan",
    "PlacementPlanner",
    "PlanSearchResult",
    "PlanValidation",
    "PlannerConfig",
    "RegionCarveOut",
    "RejectedPlan",
    "ThroughputScorer",
    "ValidationBudgets",
    "WeightPlacementPlan",
    "autotune",
    "coarse_then_refine",
    "compare_with_paper_configs",
    "decode_carve_for_grid",
    "min_decode_grid",
    "paper_default_plan",
    "plan_placement",
    "reshard_cost",
    "stretched_seconds",
    "sweep_ktree",
    "transition_cost",
    "transposes_avoided_per_token",
    "validate_plan",
]
