"""Plan validation: candidates are *validated, not just scored*.

A placement the scorer likes can still be unservable: its region may sit
on a neighbourhood whose detours breach the L hop budget, its grid may
leave no KV room for the live context (M), or its probe replay may
disagree with the analytic plan.  The validator replays every winning
candidate at probe scale on the carve-out's *actual physical
neighbourhood* (cropped defect map, real detours) through

* the **reconciler** — the analytic phase plan must agree with the
  functional trace within the named :class:`~repro.mesh.reconcile.Tolerances`;
* the **PLMR trace sanitizer** — zero findings under the machine's own
  policy (hop bound widened only by what legitimate detours require);
* the **named budgets** — hop (physical shift distance), M (region KV
  capacity vs the live context, pipeline depth), R (fan-in, via the
  sanitizer).

Any breach rejects the plan outright; the findings that killed it travel
with the rejection (:class:`~repro.placement.plan.RejectedPlan`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.findings import Finding
from repro.analysis.sanitize import policy_for_machine, sanitize_machine
from repro.core.plmr import PLMRDevice
from repro.errors import RemapError
from repro.llm.config import ModelConfig
from repro.llm.kvcache import region_token_capacity
from repro.mesh.reconcile import Tolerances, reconcile
from repro.placement.fabric import FabricView
from repro.placement.plan import PlacementPlan, PlanValidation
from repro.runtime.scheduler import USABLE_MEMORY_FRACTION

#: Deepest weight pipeline the runtime will schedule (beyond this the
#: bubble fraction makes the region useless — same constant the legacy
#: ``min_decode_grid`` enforced).
MAX_PIPELINE_STAGES = 64

#: Default probe side for functional replay.  Small enough to simulate
#: bit-level, large enough that shifts, K-trees, and broadcasts all
#: exercise real multi-hop routes.
DEFAULT_PROBE_SIDE = 4


@dataclass
class ValidationBudgets:
    """Named budgets a plan must meet to be emitted.

    ``hop_budget`` bounds the worst physical distance of a legitimate
    (<= 2 logical hops) shift inside the probe window — the L property
    with an allowance for remap displacement and one dead-link detour.
    ``min_kv_tokens`` is the live context the decode region must hold
    (M); ``tolerances`` are the reconciler's named tolerances.
    """

    hop_budget: int = 6
    min_kv_tokens: int = 2048
    max_stages: int = MAX_PIPELINE_STAGES
    probe_side: int = DEFAULT_PROBE_SIDE
    tolerances: Tolerances = field(default_factory=Tolerances)


def _finding(rule: str, subject: str, message: str) -> Finding:
    return Finding(rule=rule, message=message, subject=subject,
                   source="placement")


def _budget_findings(
    plan: PlacementPlan,
    model: ModelConfig,
    device: PLMRDevice,
    budgets: ValidationBudgets,
) -> List[Finding]:
    """Static M-budget checks (no replay needed)."""
    findings: List[Finding] = []
    grid = plan.decode_grid
    subject = plan.decode_region.name
    tokens = region_token_capacity(
        model, grid, device.core_memory_bytes, device.num_cores
    )
    if tokens < budgets.min_kv_tokens:
        findings.append(_finding(
            "memory-budget", subject,
            f"decode region {grid}x{grid} holds {tokens} KV tokens; the "
            f"plan must hold a {budgets.min_kv_tokens}-token live context "
            f"(M budget)",
        ))
    per_core_weights = model.weight_bytes / (grid * grid)
    capacity = device.core_memory_bytes * USABLE_MEMORY_FRACTION
    stages = math.ceil(per_core_weights / capacity)
    if stages >= budgets.max_stages:
        findings.append(_finding(
            "memory-budget", subject,
            f"decode region {grid}x{grid} needs {stages} pipeline stages "
            f"(budget {budgets.max_stages}); weights are spread too thin "
            f"(M budget)",
        ))
    return findings


def validate_plan(
    plan: PlacementPlan,
    view: FabricView,
    model: ModelConfig,
    budgets: Optional[ValidationBudgets] = None,
) -> PlanValidation:
    """Replay a plan through reconciler + sanitizer + budget checks."""
    from repro.profiling import build_case

    budgets = budgets or ValidationBudgets()
    probe = max(2, min(budgets.probe_side, plan.decode_grid))
    result = PlanValidation(probe_grid=probe)

    findings = _budget_findings(plan, model, view.device, budgets)
    result.budgets_ok = not findings
    result.findings.extend(findings)

    # Probe replay on the region's physical neighbourhood: decode's
    # GEMV and prefill's GEMM, each reconciled and sanitized.
    for carve, kernel in (
        (plan.decode_region, "meshgemv"),
        (plan.prefill_region, "meshgemm"),
    ):
        subject = f"{carve.name}:{kernel}@{probe}x{probe}"
        try:
            machine = view.probe_machine(carve, probe)
        except RemapError as exc:
            result.findings.append(_finding(
                "probe-unroutable", subject,
                f"probe window cannot host a dense {probe}x{probe} mesh: "
                f"{exc}",
            ))
            continue
        case = build_case(kernel, probe)
        case.runner(machine)
        # The policy reads the fabric's registered patterns and the
        # topology's legitimate detour distances, so it is derived from
        # the machine *after* the probe run.
        policy = policy_for_machine(machine)
        if policy.shift_hop_bound > budgets.hop_budget:
            result.findings.append(_finding(
                "hop-budget", subject,
                f"legitimate shifts need {policy.shift_hop_bound} physical "
                f"hops in this neighbourhood (budget {budgets.hop_budget}); "
                f"the region sits on too-displaced a patch (L budget)",
            ))
            continue
        sanitized = sanitize_machine(machine, subject=subject, policy=policy)
        if carve is plan.decode_region:
            result.sanitize_ok = sanitized.ok
        result.findings.extend(sanitized.findings)
        report = reconcile(
            case.planner(), machine.trace, machine.device,
            name=subject, tolerances=budgets.tolerances,
        )
        if carve is plan.decode_region:
            result.reconcile_ok = report.ok
            result.reconcile_summary = report.render()
        if not report.ok:
            worst = max(report.buckets, key=lambda b: b.rel_diff)
            result.findings.append(_finding(
                "reconcile-budget", subject,
                f"plan-vs-trace {worst.bucket} diverges "
                f"{worst.rel_diff:.0%} (tolerance "
                f"{worst.tolerance_rel:.0%}) on the probe replay",
            ))
    # Prefill-side sanitize/reconcile problems surface only as findings,
    # which still fail the plan via `ok` (findings must be empty).
    return result
