"""The placement search driver: coarse sweep + local refinement.

Generalizes the legacy ``_unimodal_search`` of ``llm/autotune.py`` from
"pick a grid side on the pristine mesh" to "pick *regions* on the
remapped, degraded fabric": every candidate grid is priced at its best
anchor among corner/center/seeded-random positions using the batched
flow engine's communication stretch
(:meth:`~repro.placement.fabric.FabricView.comm_stretch`), and the
ranked winners are *validated, not just scored* — replayed through the
reconciler and the PLMR trace sanitizer
(:func:`~repro.placement.validate.validate_plan`) before one is emitted.
Candidates the validators kill are kept as
:class:`~repro.placement.plan.RejectedPlan` records, findings attached.

The paper's hand-chosen grids are always seeded into the candidate set,
so on any fabric the emitted plan scores at least as well as the paper
default under the same cost model.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.plmr import PLMRDevice
from repro.errors import ConfigurationError, PlacementError
from repro.gemv.meshgemv import meshgemv_with_k
from repro.llm.config import ModelConfig
from repro.llm.kvcache import region_token_capacity
from repro.llm.wafer_system import WaferLLMSystem
from repro.mesh.remap import DefectMap
from repro.placement.fabric import FabricView
from repro.placement.plan import (
    Coord,
    PlacementPlan,
    RegionCarveOut,
    RejectedPlan,
)
from repro.placement.score import ThroughputScorer
from repro.placement.transition import WeightPlacementPlan
from repro.placement.validate import ValidationBudgets, validate_plan
from repro.runtime.scheduler import USABLE_MEMORY_FRACTION

#: Deepest weight pipeline the search will accept (M property).
MAX_PIPELINE_STAGES = 64


@dataclass(frozen=True)
class SearchSweep:
    """Result of one coarse-then-refine sweep over a 1-D objective."""

    best: int
    value: float
    evaluated: Dict[int, float]

    @property
    def evaluations(self) -> int:
        """Distinct arguments the objective was measured at."""
        return len(self.evaluated)

    def ranked(self) -> List[int]:
        """Arguments sorted best-first."""
        return sorted(self.evaluated, key=self.evaluated.get, reverse=True)


def coarse_then_refine(
    objective: Callable[[int], float],
    lo: int,
    hi: int,
    coarse_step: int,
) -> SearchSweep:
    """Coarse sweep + local refinement (the legacy ``_unimodal_search``).

    The objective need not be perfectly unimodal — the refinement stage
    re-checks every grid around the coarse winner, so small ripples
    cannot trap the search more than ``coarse_step`` away from optimum.
    """
    evaluated: Dict[int, float] = {}

    def measure(grid: int) -> float:
        if grid not in evaluated:
            evaluated[grid] = objective(grid)
        return evaluated[grid]

    coarse = list(range(lo, hi + 1, coarse_step))
    if coarse[-1] != hi:
        coarse.append(hi)
    best = max(coarse, key=measure)
    window_lo = max(lo, best - coarse_step)
    window_hi = min(hi, best + coarse_step)
    fine_step = max(1, coarse_step // 10)
    for grid in range(window_lo, window_hi + 1, fine_step):
        measure(grid)
    best = max(evaluated, key=evaluated.get)
    return SearchSweep(best=best, value=evaluated[best], evaluated=evaluated)


def min_decode_grid(
    model: ModelConfig, device: PLMRDevice, context_len: int = 2048
) -> int:
    """Smallest decode grid whose region satisfies the M property.

    Two per-grid requirements:

    * the ``grid x grid`` region must hold the live context — its
      aggregate KV capacity (:func:`~repro.llm.kvcache.region_token_capacity`,
      which shrinks as weights spread over fewer cores and KV rows
      widen) must reach ``context_len`` tokens;
    * the weight pipeline depth at that spread must stay under
      :data:`MAX_PIPELINE_STAGES`.

    The pre-refactor check computed a KV budget from
    ``device.num_cores`` — loop-invariant in ``grid`` — and compared it
    against a floor the budget was already clamped to, so it tested
    nothing about the grid being considered; only the stage bound ever
    bound.  Now the capacity requirement genuinely varies with (and
    binds for) the grid: llama2-13b's floor, for instance, is set by
    context capacity, not stages.
    """
    side = min(device.mesh_width, device.mesh_height)
    for grid in range(8, side + 1, 4):
        tokens = region_token_capacity(
            model, grid, device.core_memory_bytes, device.num_cores
        )
        per_core_weights = model.weight_bytes / (grid * grid)
        region_capacity = device.core_memory_bytes * USABLE_MEMORY_FRACTION
        stages = math.ceil(per_core_weights / region_capacity)
        if tokens >= context_len and stages < MAX_PIPELINE_STAGES:
            return grid
    return side


def sweep_ktree(
    model: ModelConfig, device: PLMRDevice, decode_grid: int
) -> Tuple[int, int]:
    """Exhaustive K-tree arity sweep on the decode GEMV shape.

    Returns ``(best_k, evaluations)``; K is discrete and tiny, so all
    four arities are measured.
    """
    best_k, best_cycles, evals = 2, None, 0
    for k in (1, 2, 3, 4):
        kernel = meshgemv_with_k(k)
        cost = kernel.estimate(
            device, rows=model.d_model, cols=model.d_ff,
            grid=min(decode_grid, model.d_model),
        )
        evals += 1
        if best_cycles is None or cost.total_cycles < best_cycles:
            best_cycles, best_k = cost.total_cycles, k
    return best_k, evals


# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PlannerConfig:
    """Knobs of one planner run (all deterministic given ``seed``)."""

    seed: int = 0
    coarse_step: int = 60
    seq_len: int = 4096
    context_len: int = 2048
    extra_anchors: int = 2
    spare_count: int = 1
    validate: bool = True
    probe_side: int = 4
    hop_budget: int = 6
    max_validation_attempts: int = 4


@dataclass
class PlanSearchResult:
    """The emitted plan plus the candidates measured and rejected."""

    plan: PlacementPlan
    rejected: List[RejectedPlan] = field(default_factory=list)

    @property
    def candidates_evaluated(self) -> int:
        """Convenience mirror of the plan's counter."""
        return self.plan.candidates_evaluated


class PlacementPlanner:
    """Defect-aware search over region placements for one model/fabric."""

    def __init__(
        self,
        model: ModelConfig,
        device: PLMRDevice,
        defects: Optional[DefectMap] = None,
        config: Optional[PlannerConfig] = None,
    ):
        self.model = model
        self.device = device
        self.config = config or PlannerConfig()
        self.view = FabricView(device, defects)
        if self.view.side < 8:
            raise ConfigurationError(
                f"device fabric {self.view.side} too small for "
                f"parallelism search"
            )
        self.scorer = ThroughputScorer(
            model, device,
            seq_len=self.config.seq_len,
            context_len=self.config.context_len,
        )
        self.system = self.scorer.system
        # Memoized per-grid best anchor: grid -> (anchor, stretch).
        self._anchor_cache: Dict[int, Tuple[Coord, float]] = {}
        self._stretch_evals = 0

    # ------------------------------------------------------------------
    def _anchor_candidates(self, grid: int) -> List[Coord]:
        """Corner/center anchors plus seeded random samples for a grid."""
        mx = self.view.logical_width - grid
        my = self.view.logical_height - grid
        if mx < 0 or my < 0:
            return []
        anchors = {(0, 0), (mx, 0), (0, my), (mx, my), (mx // 2, my // 2)}
        rng = random.Random(self.config.seed * 1000003 + grid)
        for _ in range(self.config.extra_anchors):
            anchors.add((rng.randrange(mx + 1), rng.randrange(my + 1)))
        return sorted(anchors)

    def best_anchor(self, grid: int) -> Tuple[Coord, float]:
        """Least-stretched anchor for a ``grid x grid`` carve-out.

        On a pristine fabric every anchor stretches 1.0, so (0, 0) wins
        immediately and the search degenerates to the legacy grid sweep.
        """
        cached = self._anchor_cache.get(grid)
        if cached is not None:
            return cached
        if self.view.is_pristine:
            best = ((0, 0), 1.0)
        else:
            best = None
            for anchor in self._anchor_candidates(grid):
                carve = RegionCarveOut(
                    "probe", anchor[0], anchor[1], grid, grid, role="search"
                )
                stretch = self.view.comm_stretch(carve)
                self._stretch_evals += 1
                if best is None or stretch < best[1]:
                    best = (anchor, stretch)
            if best is None:
                raise ConfigurationError(
                    f"grid {grid} does not fit the "
                    f"{self.view.logical_width}x{self.view.logical_height} "
                    f"logical mesh"
                )
        self._anchor_cache[grid] = best
        return best

    # ------------------------------------------------------------------
    def _prefill_objective(self, grid: int) -> float:
        _, stretch = self.best_anchor(grid)
        return self.scorer.prefill(grid, stretch)

    def _decode_objective(self, grid: int) -> float:
        _, stretch = self.best_anchor(grid)
        return self.scorer.decode(grid, stretch)

    def _sweep_bounds(self) -> Tuple[int, int]:
        side = self.view.side
        lo = max(8, min(60, side // 4))
        return lo, side

    def _seed_paper_grids(self, sweep: SearchSweep,
                          objective: Callable[[int], float],
                          paper_grid: int, lo: int) -> SearchSweep:
        """Ensure the paper's hand-chosen grid is in the candidate set."""
        grid = max(lo, min(paper_grid, self.view.side))
        if grid not in sweep.evaluated:
            evaluated = dict(sweep.evaluated)
            evaluated[grid] = objective(grid)
            best = max(evaluated, key=evaluated.get)
            return SearchSweep(best=best, value=evaluated[best],
                               evaluated=evaluated)
        return sweep

    def _select_spares(self, decode_region: RegionCarveOut) -> Tuple[
            RegionCarveOut, ...]:
        """Decode-sized reserves off the decode region, least stretch first.

        Falls back to half-size reserves when the fabric cannot host a
        disjoint full-size one; returns fewer than requested (possibly
        none) on tight fabrics rather than overlapping the live region.
        """
        spares: List[RegionCarveOut] = []
        if self.config.spare_count < 1:
            return ()
        for size in (decode_region.grid, max(2, decode_region.grid // 2)):
            candidates: List[Tuple[float, Coord]] = []
            for anchor in self._anchor_candidates(size):
                carve = RegionCarveOut(
                    "probe", anchor[0], anchor[1], size, size, role="search"
                )
                if carve.overlaps(decode_region) or any(
                        carve.overlaps(s) for s in spares):
                    continue
                stretch = (1.0 if self.view.is_pristine
                           else self.view.comm_stretch(carve))
                self._stretch_evals += 1
                candidates.append((stretch, anchor))
            for stretch, anchor in sorted(candidates):
                if len(spares) >= self.config.spare_count:
                    return tuple(spares)
                spares.append(RegionCarveOut(
                    f"spare{len(spares)}", anchor[0], anchor[1],
                    size, size, role="spare",
                ))
            if spares:
                break
        return tuple(spares)

    # ------------------------------------------------------------------
    def _assemble(
        self,
        prefill_grid: int,
        decode_grid: int,
        ktree_k: int,
        evals: int,
    ) -> PlacementPlan:
        p_anchor, p_stretch = self.best_anchor(prefill_grid)
        d_anchor, d_stretch = self.best_anchor(decode_grid)
        prefill_region = RegionCarveOut(
            "prefill0", p_anchor[0], p_anchor[1],
            prefill_grid, prefill_grid, role="prefill",
        )
        decode_region = RegionCarveOut(
            "decode0", d_anchor[0], d_anchor[1],
            decode_grid, decode_grid, role="decode",
        )
        layouts = WeightPlacementPlan(self.model)
        return PlacementPlan(
            model=self.model.name.split("[")[0],
            device=self.device.name,
            logical_width=self.view.logical_width,
            logical_height=self.view.logical_height,
            prefill_region=prefill_region,
            decode_region=decode_region,
            spare_regions=self._select_spares(decode_region),
            ktree_k=ktree_k,
            prefill_tokens_per_s=self.scorer.prefill(prefill_grid, p_stretch),
            decode_tokens_per_s=self.scorer.decode(decode_grid, d_stretch),
            prefill_comm_stretch=p_stretch,
            decode_comm_stretch=d_stretch,
            num_defects=self.view.num_defects,
            seed=self.config.seed,
            candidates_evaluated=evals,
            prefill_layouts=tuple(layouts.prefill_layouts()),
            decode_layouts=tuple(layouts.decode_layouts()),
        )

    def _budgets(self) -> ValidationBudgets:
        return ValidationBudgets(
            hop_budget=self.config.hop_budget,
            min_kv_tokens=self.config.context_len,
            probe_side=self.config.probe_side,
        )

    def search(self) -> PlanSearchResult:
        """Run the full search; emit the best *validating* plan.

        Raises :class:`~repro.errors.PlacementError` when every ranked
        candidate is rejected (the rejections' findings say why).
        """
        cfg = self.config
        lo, side = self._sweep_bounds()

        prefill_sweep = coarse_then_refine(
            self._prefill_objective, lo, side, cfg.coarse_step
        )
        prefill_sweep = self._seed_paper_grids(
            prefill_sweep, self._prefill_objective,
            self.system.prefill_grid(self.model), lo,
        )

        decode_lo = max(
            min_decode_grid(self.model, self.device, cfg.context_len), lo
        )
        decode_sweep = coarse_then_refine(
            self._decode_objective, decode_lo, side, cfg.coarse_step
        )
        decode_sweep = self._seed_paper_grids(
            decode_sweep, self._decode_objective,
            self.system.decode_grid(self.model), decode_lo,
        )

        ktree_k, k_evals = sweep_ktree(
            self.model, self.device, decode_sweep.best
        )
        evals = prefill_sweep.evaluations + decode_sweep.evaluations + k_evals

        rejected: List[RejectedPlan] = []
        attempts = decode_sweep.ranked()[:max(1, cfg.max_validation_attempts)]
        for decode_grid in attempts:
            plan = self._assemble(
                prefill_sweep.best, decode_grid, ktree_k, evals
            )
            if not cfg.validate:
                return PlanSearchResult(plan=plan, rejected=rejected)
            validation = validate_plan(
                plan, self.view, self.model, self._budgets()
            )
            plan.validation = validation
            if validation.ok:
                return PlanSearchResult(plan=plan, rejected=rejected)
            rejected.append(RejectedPlan(
                plan=plan,
                findings=list(validation.findings),
                reason=(
                    f"decode candidate {decode_grid}x{decode_grid} at "
                    f"{plan.decode_region.x},{plan.decode_region.y} failed "
                    f"validation"
                ),
            ))
        raise PlacementError(
            "no placement candidate survived validation; "
            + "; ".join(
                f.render() for r in rejected for f in r.findings[:2]
            )
        )


def plan_placement(
    model: ModelConfig,
    device: PLMRDevice,
    defects: Optional[DefectMap] = None,
    config: Optional[PlannerConfig] = None,
) -> PlanSearchResult:
    """One-call front door: search placements for a model on a fabric."""
    return PlacementPlanner(model, device, defects, config).search()


def paper_default_plan(
    model: ModelConfig,
    device: PLMRDevice,
    defects: Optional[DefectMap] = None,
    config: Optional[PlannerConfig] = None,
) -> PlacementPlan:
    """The paper's hand-chosen layout, priced on the same (degraded) view.

    Anchored at the origin with the per-model grids of Section 4.4
    (clamped to the logical mesh) — the baseline the planner is compared
    against in ``repro place --compare-paper`` and EXPERIMENTS.md.
    """
    cfg = config or PlannerConfig()
    planner = PlacementPlanner(model, device, defects, cfg)
    side = planner.view.side
    prefill_grid = min(planner.system.prefill_grid(model), side)
    decode_grid = min(planner.system.decode_grid(model), side)
    p_carve = RegionCarveOut(
        "prefill0", 0, 0, prefill_grid, prefill_grid, role="prefill"
    )
    d_carve = RegionCarveOut(
        "decode0", 0, 0, decode_grid, decode_grid, role="decode"
    )
    p_stretch = (1.0 if planner.view.is_pristine
                 else planner.view.comm_stretch(p_carve))
    d_stretch = (1.0 if planner.view.is_pristine
                 else planner.view.comm_stretch(d_carve))
    layouts = WeightPlacementPlan(model)
    return PlacementPlan(
        model=model.name.split("[")[0],
        device=device.name,
        logical_width=planner.view.logical_width,
        logical_height=planner.view.logical_height,
        prefill_region=p_carve,
        decode_region=d_carve,
        spare_regions=(),
        ktree_k=2,
        prefill_tokens_per_s=planner.scorer.prefill(prefill_grid, p_stretch),
        decode_tokens_per_s=planner.scorer.decode(decode_grid, d_stretch),
        prefill_comm_stretch=p_stretch,
        decode_comm_stretch=d_stretch,
        num_defects=planner.view.num_defects,
        seed=cfg.seed,
        candidates_evaluated=2,
        prefill_layouts=tuple(layouts.prefill_layouts()),
        decode_layouts=tuple(layouts.decode_layouts()),
    )
