"""The planner's view of a (possibly defective) wafer fabric.

:class:`FabricView` wraps a device and an optional
:class:`~repro.mesh.remap.DefectMap` into the dense *logical* mesh the
planner searches, and prices candidate carve-outs on the **real**
fabric: logical neighbours that the remap displaced pay their physical
hop distance, dead links pay detours, and degraded links surface their
bandwidth fraction — all evaluated through the batched flow engine's
vectorized streaming arithmetic (:func:`repro.mesh.cost_model.stream_cycles_batch`),
not analytic formulas on the pristine mesh.

The key scalar is :meth:`FabricView.comm_stretch`: the ratio of streamed
cycles for a carve-out's neighbour-shift flow population on the degraded
fabric versus the same flows on a pristine mesh.  WaferLLM's kernels are
shift-dominated (the L property), so this single factor scales the cost
model's exposed communication faithfully; anchors over displaced columns
or detour-ridden rows score worse and the search routes around them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.plmr import PLMRDevice
from repro.errors import ConfigurationError
from repro.mesh.cost_model import stream_cycles_batch
from repro.mesh.remap import (
    DefectMap,
    RemappedTopology,
    build_remapped_topology,
    normalize_link,
)
from repro.placement.plan import Coord, RegionCarveOut

#: Canonical per-flow payload for stretch probing: the order of one
#: decode GEMV shift fragment (``d_model / grid * dtype`` bytes lands in
#: the tens-of-bytes range for every paper model/grid pair).  One global
#: constant so stretch ratios are comparable across plans.
PROBE_PAYLOAD_BYTES = 64.0


class FabricView:
    """Device + defects -> the dense logical mesh, with physical pricing."""

    def __init__(self, device: PLMRDevice, defects: Optional[DefectMap] = None):
        self.device = device
        if defects is not None and (
            defects.width != device.mesh_width
            or defects.height != device.mesh_height
        ):
            raise ConfigurationError(
                f"defect map {defects.width}x{defects.height} does not "
                f"describe the {device.mesh_width}x{device.mesh_height} fabric"
            )
        if defects is None or defects.num_defects == 0:
            self.defects: Optional[DefectMap] = None
            self.topology: Optional[RemappedTopology] = None
            self.logical_width = device.mesh_width
            self.logical_height = device.mesh_height
        else:
            self.defects = defects
            self.topology = build_remapped_topology(
                device.mesh_width, device.mesh_height, defects
            )
            self.logical_width = self.topology.width
            self.logical_height = self.topology.height
        self._build_coordinate_arrays()
        self._build_defect_prefix_sums()

    # ------------------------------------------------------------------
    @property
    def side(self) -> int:
        """Largest square grid the logical mesh can host."""
        return min(self.logical_width, self.logical_height)

    @property
    def is_pristine(self) -> bool:
        """Whether the view carries no defects at all."""
        return self.topology is None

    @property
    def num_defects(self) -> int:
        """Defect count of the underlying map (0 when pristine)."""
        return 0 if self.defects is None else self.defects.num_defects

    def to_physical(self, coord: Coord) -> Coord:
        """Physical coordinate hosting a logical core."""
        if self.topology is None:
            return coord
        return self.topology.to_physical(coord)

    def region_physical_coords(self, carve: RegionCarveOut) -> List[Coord]:
        """Physical coordinates hosting every core of a carve-out."""
        return [self.to_physical(c) for c in carve.coords()]

    # ------------------------------------------------------------------
    def _build_coordinate_arrays(self) -> None:
        """Vectorized logical->physical maps for whole-region slicing."""
        if self.topology is None:
            self._px = None
            self._py = None
            return
        lw, lh = self.logical_width, self.logical_height
        px = np.empty((lh, lw), dtype=np.int64)
        py = np.empty(lh, dtype=np.int64)
        for (lx, ly), (qx, qy) in self.topology.remap.to_physical_map.items():
            px[ly, lx] = qx
            py[ly] = qy
        self._px = px
        self._py = py

    def _build_defect_prefix_sums(self) -> None:
        """Row/column prefix sums of defective links, for O(1) crossing
        tests per flow (a flow's nominal XY route is one horizontal and
        one vertical segment)."""
        self._ph = None
        self._pv = None
        if self.defects is None or not self.defects.has_link_defects:
            return
        w, h = self.device.mesh_width, self.device.mesh_height
        dh = np.zeros((h, w), dtype=np.int64)   # link (x,y)-(x+1,y)
        dv = np.zeros((w, h), dtype=np.int64)   # link (x,y)-(x,y+1)
        bad = set(self.defects.dead_links) | set(self.defects.degraded_links)
        for (ax, ay), (bx, by) in bad:
            if ay == by:                        # horizontal link
                dh[ay, min(ax, bx)] += 1
            else:                               # vertical link
                dv[ax, min(ay, by)] += 1
        # prefix[y, x] = defective links in row y with index < x
        self._ph = np.concatenate(
            [np.zeros((h, 1), dtype=np.int64), np.cumsum(dh, axis=1)], axis=1
        )
        self._pv = np.concatenate(
            [np.zeros((w, 1), dtype=np.int64), np.cumsum(dv, axis=1)], axis=1
        )

    # ------------------------------------------------------------------
    def _region_flows(
        self, carve: RegionCarveOut
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """(hops, bw_factor, n) for the carve-out's neighbour-shift flows.

        Base hops come from the remap displacement (``|Δpx| + |Δpy|`` of
        the nominal XY route); the few flows whose nominal route crosses
        a dead or degraded link are re-priced exactly through
        :meth:`~repro.mesh.remap.RemappedTopology.physical_route`
        (detour hops, slowest-link bandwidth).
        """
        x0, y0 = carve.x, carve.y
        w, h = carve.width, carve.height
        px = self._px[y0:y0 + h, x0:x0 + w]
        py = self._py[y0:y0 + h]

        # Horizontal logical neighbours (x,y) -> (x+1,y): same hosting row.
        h_src_x = px[:, :-1]
        h_dst_x = px[:, 1:]
        h_hops = np.abs(h_dst_x - h_src_x)
        # Vertical logical neighbours (x,y) -> (x,y+1): column displacement
        # between hosting rows plus the row gap (skipped spare rows).
        v_dx = np.abs(px[1:, :] - px[:-1, :])
        v_dy = (py[1:] - py[:-1])[:, None]
        v_hops = v_dx + np.broadcast_to(v_dy, v_dx.shape)

        hops = np.concatenate([h_hops.ravel(), v_hops.ravel()]).astype(
            np.float64
        )
        bw = np.ones_like(hops)
        n = hops.size
        if self._ph is None:
            return hops, bw, n

        # Nominal-route defect crossings, vectorized via prefix sums.
        # Horizontal flow: one horizontal segment in row py[y] spanning
        # [min(px), max(px)).
        rows = np.broadcast_to(py[:, None], h_src_x.shape)
        lo = np.minimum(h_src_x, h_dst_x)
        hi = np.maximum(h_src_x, h_dst_x)
        h_cross = self._ph[rows, hi] - self._ph[rows, lo]
        # Vertical flow: horizontal segment in the source hosting row,
        # then a vertical segment in the destination column.
        src_x = px[:-1, :]
        dst_x = px[1:, :]
        src_row = np.broadcast_to(py[:-1, None], src_x.shape)
        lo_v = np.minimum(src_x, dst_x)
        hi_v = np.maximum(src_x, dst_x)
        v_cross = self._ph[src_row, hi_v] - self._ph[src_row, lo_v]
        lo_y = np.broadcast_to(py[:-1, None], dst_x.shape)
        hi_y = np.broadcast_to(py[1:, None], dst_x.shape)
        v_cross = v_cross + self._pv[dst_x, hi_y] - self._pv[dst_x, lo_y]

        crossings = np.concatenate([h_cross.ravel(), v_cross.ravel()])
        dirty = np.nonzero(crossings > 0)[0]
        if dirty.size:
            n_h = h_hops.size
            hw = w - 1
            for idx in dirty:
                i = int(idx)
                if i < n_h:
                    ry, rx = divmod(i, hw)
                    src = (x0 + rx, y0 + ry)
                    dst = (x0 + rx + 1, y0 + ry)
                else:
                    ry, rx = divmod(i - n_h, w)
                    src = (x0 + rx, y0 + ry)
                    dst = (x0 + rx, y0 + ry + 1)
                route = self.topology.physical_route(src, dst)
                hops[i] = float(len(route) - 1)
                bw[i] = min(
                    self.topology.link_bandwidth_factor(a, b)
                    for a, b in zip(route, route[1:])
                )
        return hops, bw, n

    def comm_stretch(
        self,
        carve: RegionCarveOut,
        payload_bytes: float = PROBE_PAYLOAD_BYTES,
    ) -> float:
        """Streamed-cycle ratio: this carve-out's shift flows on the
        degraded fabric vs the same flows on a pristine mesh (>= 1.0)."""
        if self.topology is None:
            return 1.0
        if not carve.fits(self.logical_width, self.logical_height):
            raise ConfigurationError(
                f"carve-out {carve.name!r} outside the "
                f"{self.logical_width}x{self.logical_height} logical mesh"
            )
        if carve.width < 2 and carve.height < 2:
            return 1.0
        hops, bw, n = self._region_flows(carve)
        payload = np.full(n, float(payload_bytes))
        degraded = stream_cycles_batch(self.device, hops, payload, bw)
        pristine = stream_cycles_batch(self.device, np.ones(n), payload)
        return float(degraded.sum() / pristine.sum())

    # ------------------------------------------------------------------
    def probe_window(
        self, carve: RegionCarveOut, probe: int
    ) -> Tuple[Optional[DefectMap], Tuple[int, int]]:
        """Cropped defect map around the carve-out's probe corner.

        The validator replays kernels at probe scale on the *actual
        physical neighbourhood* hosting the carve-out's anchor window:
        the bounding box (padded one core for detours) of the physical
        coordinates hosting the ``probe x probe`` logical corner, with
        every defect inside the box re-anchored to box coordinates.
        """
        probe = min(probe, carve.width, carve.height)
        window = [
            (carve.x + dx, carve.y + dy)
            for dy in range(probe)
            for dx in range(probe)
        ]
        if self.topology is None:
            return None, (probe, probe)
        phys = [self.to_physical(c) for c in window]
        xs = [p[0] for p in phys]
        ys = [p[1] for p in phys]
        x0 = max(0, min(xs) - 1)
        y0 = max(0, min(ys) - 1)
        x1 = min(self.device.mesh_width - 1, max(xs) + 1)
        y1 = min(self.device.mesh_height - 1, max(ys) + 1)
        bw, bh = x1 - x0 + 1, y1 - y0 + 1

        def inside(c: Coord) -> bool:
            return x0 <= c[0] <= x1 and y0 <= c[1] <= y1

        def shift(c: Coord) -> Coord:
            return (c[0] - x0, c[1] - y0)

        defects = self.defects
        dead_cores = frozenset(
            shift(c) for c in defects.dead_cores if inside(c)
        )
        dead_links = frozenset(
            normalize_link(shift(a), shift(b))
            for a, b in defects.dead_links
            if inside(a) and inside(b)
        )
        degraded = {
            normalize_link(shift(a), shift(b)): factor
            for (a, b), factor in defects.degraded_links.items()
            if inside(a) and inside(b)
        }
        cropped = DefectMap(
            width=bw,
            height=bh,
            dead_cores=dead_cores,
            dead_links=dead_links,
            degraded_links=degraded,
        )
        if cropped.num_defects == 0:
            return None, (probe, probe)
        return cropped, (bw, bh)

    def probe_machine(self, carve: RegionCarveOut, probe: int):
        """A probe-scale :class:`~repro.mesh.machine.MeshMachine` over the
        carve-out's physical neighbourhood (dense when that patch is
        clean).

        Raises
        ------
        RemapError
            When the cropped patch cannot host a dense ``probe x probe``
            mesh (pathologically defective neighbourhood) — the caller
            turns this into a plan rejection.
        """
        from repro.mesh.machine import MeshMachine

        probe = min(probe, carve.width, carve.height)
        cropped, (bw, bh) = self.probe_window(carve, probe)
        if cropped is None:
            return MeshMachine(
                self.device.submesh(probe, probe), enforce_memory=False
            )
        return MeshMachine(
            self.device.submesh(bw, bh),
            enforce_memory=False,
            defects=cropped,
            logical_shape=(probe, probe),
        )
