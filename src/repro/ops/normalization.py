"""Distributed RMSNorm and softmax — the paper's "GEMV solutions".

Section 2.3: operations needing an allreduce, such as RMSNorm and
softmax, "can leverage GEMV solutions" — i.e. they reuse the same
two-way K-tree aggregation MeshGEMV is built on.  These kernels make
that concrete, executing *entirely on the mesh*:

* :class:`DistributedRMSNorm` — the vector lives in chunks along a mesh
  row; each core squares and sums its chunk locally, one scalar rides
  the K-tree to the root, the root broadcasts the scale, and each core
  normalizes its chunk in place.
* :class:`DistributedSoftmax` — two K-tree scalar allreduces (max, then
  sum of shifted exponentials) around purely local element work; ``-inf``
  (causal-mask) entries contribute zero, exactly as a wafer kernel's
  masked lanes would.

Both provide the usual pair: ``run`` (functional, on a
:class:`~repro.mesh.machine.MeshMachine`) and ``plan`` (analytic phases
for the cost model), and both keep every core's footprint at
``O(n / grid)`` plus two scalars — M-compliant by construction.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.collectives.allreduce import broadcast_from_root, ktree_reduce
from repro.collectives.plans import ktree_reduce_plan, root_broadcast_plan
from repro.errors import ShapeError
from repro.mesh.cost_model import ComputePhase, Phase
from repro.mesh.core_sim import Core
from repro.mesh.machine import MeshMachine


def _scatter_line_chunks(
    machine: MeshMachine, name: str, vector: np.ndarray, row: int
) -> int:
    """Spread a vector in contiguous chunks across one mesh row."""
    vector = np.asarray(vector, dtype=np.float64)
    if vector.ndim != 1 or vector.size == 0:
        raise ShapeError("expected a non-empty 1-D vector")
    grid = machine.topology.width
    chunks = np.array_split(vector, grid)
    for x, chunk in enumerate(chunks):
        machine.place(name, (x, row), chunk)
    return grid


def _gather_line_chunks(
    machine: MeshMachine, name: str, grid: int, row: int
) -> np.ndarray:
    return np.concatenate(
        [machine.core((x, row)).load(name) for x in range(grid)]
    )


class DistributedRMSNorm:
    """Mesh-resident RMSNorm over a row-distributed vector."""

    name = "dist-rmsnorm"

    @staticmethod
    def run(
        machine: MeshMachine,
        x: np.ndarray,
        weight: np.ndarray,
        eps: float,
        row: int = 0,
    ) -> np.ndarray:
        """Functional execution; returns the dense normalized vector."""
        x = np.asarray(x, dtype=np.float64)
        weight = np.asarray(weight, dtype=np.float64)
        if x.shape != weight.shape:
            raise ShapeError(f"weight shape {weight.shape} != x {x.shape}")
        grid = _scatter_line_chunks(machine, "rms.x", x, row)
        _scatter_line_chunks(machine, "rms.w", weight, row)
        dim = float(x.size)

        def local_square_sum(core: Core) -> float:
            chunk = core.load("rms.x")
            core.store("rms.sq", np.array([float(np.sum(chunk * chunk))]))
            return float(chunk.size)

        line = machine.topology.row(row)
        with machine.phase("rms-square"):
            machine.compute("rms-square", line, local_square_sum,
                            reads=("rms.x",), writes=("rms.sq",))
        roots = ktree_reduce(machine, [line], "rms.sq", k=2,
                             pattern_prefix="rms-ktree")
        broadcast_from_root(machine, [line], roots, "rms.sq",
                            pattern="rms-bcast")

        def local_normalize(core: Core) -> float:
            total = float(core.load("rms.sq")[0])
            rms = np.sqrt(total / dim + eps)
            chunk = core.load("rms.x")
            core.store("rms.x", chunk / rms * core.load("rms.w"))
            return float(chunk.size) * 2.0

        with machine.phase("rms-normalize"):
            machine.compute("rms-normalize", line, local_normalize,
                            reads=("rms.x", "rms.w", "rms.sq"),
                            writes=("rms.x",))
        result = _gather_line_chunks(machine, "rms.x", grid, row)
        for name in ("rms.x", "rms.w", "rms.sq"):
            machine.free(name, line)
        return result

    @staticmethod
    def plan(grid: int, n: int) -> List[Phase]:
        """Analytic phases: squares, K-tree scalar, broadcast, scale."""
        chunk = max(1.0, n / grid)
        phases: List[Phase] = [
            ComputePhase(label="rms-square", macs_per_core=chunk)
        ]
        phases += ktree_reduce_plan(grid, payload_bytes=4.0,
                                    payload_elems=1.0, k=2)
        phases += root_broadcast_plan(grid, payload_bytes=4.0)
        phases.append(ComputePhase(label="rms-normalize",
                                   macs_per_core=2.0 * chunk))
        return phases


class DistributedSoftmax:
    """Mesh-resident softmax over a row-distributed score vector."""

    name = "dist-softmax"

    @staticmethod
    def run(machine: MeshMachine, scores: np.ndarray, row: int = 0) -> np.ndarray:
        """Functional execution; returns the dense probability vector."""
        scores = np.asarray(scores, dtype=np.float64)
        if not np.isfinite(scores).any():
            raise ShapeError("softmax over fully masked scores")
        grid = _scatter_line_chunks(machine, "sm.x", scores, row)
        line = machine.topology.row(row)

        def local_max(core: Core) -> float:
            chunk = core.load("sm.x")
            finite = chunk[np.isfinite(chunk)]
            peak = float(np.max(finite)) if finite.size else -np.inf
            core.store("sm.max", np.array([peak]))
            return float(chunk.size)

        with machine.phase("sm-max"):
            machine.compute("sm-max", line, local_max,
                            reads=("sm.x",), writes=("sm.max",))
        roots = ktree_reduce(machine, [line], "sm.max", k=2,
                             pattern_prefix="sm-ktree-max", op="max")
        broadcast_from_root(machine, [line], roots, "sm.max",
                            pattern="sm-bcast-max")

        def local_exp_sum(core: Core) -> float:
            peak = float(core.load("sm.max")[0])
            chunk = core.load("sm.x")
            exps = np.where(np.isfinite(chunk), np.exp(chunk - peak), 0.0)
            core.store("sm.x", exps)
            core.store("sm.sum", np.array([float(np.sum(exps))]))
            return float(chunk.size) * 2.0

        with machine.phase("sm-exp"):
            machine.compute("sm-exp", line, local_exp_sum,
                            reads=("sm.x", "sm.max"),
                            writes=("sm.x", "sm.sum"))
        roots = ktree_reduce(machine, [line], "sm.sum", k=2,
                             pattern_prefix="sm-ktree-sum")
        broadcast_from_root(machine, [line], roots, "sm.sum",
                            pattern="sm-bcast-sum")

        def local_scale(core: Core) -> float:
            total = float(core.load("sm.sum")[0])
            chunk = core.load("sm.x")
            core.store("sm.x", chunk / total)
            return float(chunk.size)

        with machine.phase("sm-scale"):
            machine.compute("sm-scale", line, local_scale,
                            reads=("sm.x", "sm.sum"), writes=("sm.x",))
        result = _gather_line_chunks(machine, "sm.x", grid, row)
        for name in ("sm.x", "sm.max", "sm.sum"):
            machine.free(name, line)
        return result

    @staticmethod
    def plan(grid: int, n: int) -> List[Phase]:
        """Analytic phases: two K-tree scalar allreduces + local work."""
        chunk = max(1.0, n / grid)
        phases: List[Phase] = [
            ComputePhase(label="sm-max", macs_per_core=chunk)
        ]
        phases += ktree_reduce_plan(grid, payload_bytes=4.0,
                                    payload_elems=1.0, k=2)
        phases += root_broadcast_plan(grid, payload_bytes=4.0)
        phases.append(ComputePhase(label="sm-exp", macs_per_core=2.0 * chunk))
        phases += ktree_reduce_plan(grid, payload_bytes=4.0,
                                    payload_elems=1.0, k=2)
        phases += root_broadcast_plan(grid, payload_bytes=4.0)
        phases.append(ComputePhase(label="sm-scale", macs_per_core=chunk))
        return phases
