"""First-class distributed element ops: the allreduce-based kernels."""

from repro.ops.argmax import distributed_argmax
from repro.ops.normalization import DistributedRMSNorm, DistributedSoftmax

__all__ = ["DistributedRMSNorm", "DistributedSoftmax", "distributed_argmax"]
