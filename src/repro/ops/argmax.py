"""Distributed argmax — token selection without leaving the mesh.

Greedy decoding ends every step by finding the largest logit over the
vocabulary, which after the LM-head GEMV lives *distributed across the
root cores* of the mesh columns.  Gathering the full logit vector to a
host would move ~256 KB per token; instead the argmax rides the same
two-way K-tree as every other reduction, carrying a two-element
``(value, index)`` payload whose combine step keeps the larger value
(ties broken toward the smaller index, matching ``numpy.argmax``).

This is an extension beyond the paper's text — the paper's launcher
handles sampling host-side — but it follows directly from the PLMR
playbook: O(1) payload, O(K * N^(1/K)) critical path, K+1 route colours.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.collectives.allreduce import ktree_group_sizes
from repro.errors import ShapeError
from repro.mesh.core_sim import Core
from repro.mesh.fabric import Flow
from repro.mesh.machine import MeshMachine
from repro.mesh.topology import Coord


def _combine(core: Core, name: str, inbox: str) -> float:
    mine = core.load(name)
    theirs = core.load(inbox)
    # Keep the larger value; break ties toward the smaller index.
    if (theirs[0] > mine[0]) or (theirs[0] == mine[0] and theirs[1] < mine[1]):
        core.store(name, theirs)
    core.free(inbox)
    return 2.0


def _two_way_argmax_reduce(
    machine: MeshMachine,
    groups: Sequence[Sequence[Coord]],
    name: str,
    pattern: str,
) -> List[Coord]:
    """Two-way group reduction with the (value, index) combine rule."""
    roots: List[Coord] = []
    state: List[List[int]] = []
    max_stages = 0
    for group in groups:
        size = len(group)
        root = size // 2
        state.append([0, size - 1, root])
        max_stages = max(max_stages, max(root, size - 1 - root))
        roots.append(group[root])
    inbox_l, inbox_r = f"{name}.amL", f"{name}.amR"
    for _stage in range(max_stages):
        flows: List[Flow] = []
        receivers = {}
        for group, st in zip(groups, state):
            left, right, root = st
            if left < root:
                dst = group[left + 1]
                flows.append(Flow.unicast(group[left], dst, name, inbox_l))
                receivers.setdefault(dst, []).append(inbox_l)
                st[0] = left + 1
            if right > root:
                dst = group[right - 1]
                flows.append(Flow.unicast(group[right], dst, name, inbox_r))
                receivers.setdefault(dst, []).append(inbox_r)
                st[1] = right - 1
        if not flows:
            break

        def absorb(core: Core, inboxes=dict(receivers)) -> float:
            macs = 0.0
            for inbox in inboxes.get(core.coord, ()):
                macs += _combine(core, name, inbox)
            return macs

        # One phase per tree stage: the inward flows land and are folded
        # into the accumulators before the next stage reads them.
        with machine.phase(pattern, kind="serial"):
            machine.communicate(pattern, flows)
            machine.compute(
                f"{pattern}-cmp",
                list(receivers),
                absorb,
                reads=(name, inbox_l, inbox_r),
                writes=(name,),
            )
    return roots


def distributed_argmax(
    machine: MeshMachine, values: np.ndarray, row: int = 0
) -> Tuple[int, float]:
    """Argmax of a vector distributed in chunks along one mesh row.

    Returns ``(index, value)`` exactly as ``np.argmax`` would pick them.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ShapeError("expected a non-empty 1-D vector")
    grid = machine.topology.width
    chunks = np.array_split(values, grid)
    offset = 0
    line = machine.topology.row(row)
    for x, chunk in enumerate(chunks):
        if chunk.size:
            local = int(np.argmax(chunk))
            payload = np.array([chunk[local], float(offset + local)])
        else:
            payload = np.array([-np.inf, float(values.size)])
        machine.place("argmax.v", (x, row), payload)
        offset += chunk.size

    # K-tree over the row, with the (value, index) combine.
    sizes = ktree_group_sizes(grid, 2)
    active = list(line)
    level = 1
    while len(active) > 1:
        group_size = sizes[min(level, len(sizes)) - 1] if sizes else len(active)
        groups = [active[i:i + group_size]
                  for i in range(0, len(active), group_size)]
        active = _two_way_argmax_reduce(
            machine, groups, "argmax.v", f"argmax-L{level}"
        )
        level += 1
    winner = machine.core(active[0]).load("argmax.v")
    machine.free("argmax.v", line)
    return int(winner[1]), float(winner[0])
