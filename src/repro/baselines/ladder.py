"""Ladder execution model — the shared-memory compiler baseline.

Ladder (OSDI'24) compiles for shared-memory devices (GPUs).  The paper
ports it to the WSE-2 by *abstracting the distributed SRAM as one
unified memory*, with every access crossing the NoC (Section 7,
experiment setup).  That abstraction fails all four PLMR properties; the
model here charges for the two failure mechanisms that dominate the
published numbers:

* **P failure — serial partitioning.**  Ladder's tile scheduling assumes
  a handful of SMs; on the wafer its effective compute parallelism
  saturates at ``LADDER_EFFECTIVE_CORES`` regardless of fabric size.
* **L/R failure — centralized memory service.**  Emulating a flat
  address space requires a global tile directory; every per-step tile
  request from every core serializes through it at
  ``LADDER_SERVICE_CYCLES`` apiece.  Requests grow with the core count
  and steps with the mesh side, which is why Ladder's prefill slows
  *down* as cores are added (Table 3's declining column).

Decode under a shared-memory abstraction is weight-streaming bound: the
whole model crosses the NoC every token, at an effective bandwidth that
degrades with mesh size (longer average routes): ``LADDER_STREAM_BW``
bytes/cycle at the 420-wide reference mesh, scaled by ``sqrt(420/mesh)``.

The three constants are calibrated once against Table 3/4's Ladder
columns (see EXPERIMENTS.md) and reproduce Table 2 without further
tuning.
"""

from __future__ import annotations

import math
from typing import List

from repro.llm.config import ModelConfig
from repro.llm.ops_schedule import LayerOp, OpKind
from repro.llm.system_base import SystemModel
from repro.mesh.cost_model import CommPhase, ComputePhase, Phase

#: Effective compute parallelism of Ladder's GPU-shaped schedule.
LADDER_EFFECTIVE_CORES = 384

#: Directory service cycles per tile request (one request per core per
#: GEMM step).
LADDER_SERVICE_CYCLES = 0.93

#: Aggregate weight-streaming bandwidth in bytes/cycle at a 420-wide
#: mesh; scales as sqrt(420 / mesh).
LADDER_STREAM_BW = 214.0

#: Per-op dispatch overhead.
LADDER_LAUNCH_CYCLES = 500.0


class LadderSystem(SystemModel):
    """Ladder ported to the wafer mesh, as evaluated by the paper."""

    name = "ladder"

    def prefill_grid(self, model: ModelConfig) -> int:
        side = min(self.device.mesh_width, self.device.mesh_height)
        return side

    def decode_grid(self, model: ModelConfig) -> int:
        side = min(self.device.mesh_width, self.device.mesh_height)
        return side // 2

    # ------------------------------------------------------------------
    def _launch(self, label: str) -> ComputePhase:
        return ComputePhase(
            label=f"ladder-launch-{label}", macs_per_core=0.0,
            overhead_cycles=LADDER_LAUNCH_CYCLES,
        )

    def _stream_bw(self, grid: int) -> float:
        """Effective aggregate streaming bandwidth (bytes/cycle)."""
        return LADDER_STREAM_BW * math.sqrt(420.0 / max(1, grid))

    # ------------------------------------------------------------------
    def phases_for_op(
        self, op: LayerOp, grid: int, mode: str, model: ModelConfig
    ) -> List[Phase]:
        """Price one logical op under Ladder's execution model."""
        dtype = model.dtype_bytes
        if op.kind in (OpKind.GEMM, OpKind.GEMM_T):
            compute = ComputePhase(
                label=f"ladder-{op.name}",
                macs_per_core=op.macs / LADDER_EFFECTIVE_CORES,
            )
            # One directory request per core per step; steps = grid.
            service = ComputePhase(
                label=f"ladder-directory-{op.name}",
                macs_per_core=0.0,
                overhead_cycles=LADDER_SERVICE_CYCLES * grid * grid * grid,
            )
            return [self._launch(op.name), compute, service]

        if op.kind is OpKind.GEMV:
            # Weight (or KV) operand streams through unified memory.
            operand_bytes = float(op.k * op.n * dtype * op.rows)
            stream = CommPhase(
                label=f"ladder-stream-{op.name}",
                hop_distance=float(grid),
                payload_bytes=operand_bytes / self._stream_bw(grid)
                * 4.0,  # normalized so payload/link_bw = bytes/agg_bw
            )
            compute = ComputePhase(
                label=f"ladder-{op.name}",
                macs_per_core=op.macs / LADDER_EFFECTIVE_CORES,
            )
            return [self._launch(op.name), compute, stream]

        if op.kind in (OpKind.NORM, OpKind.SOFTMAX):
            return [
                self._launch(op.name),
                ComputePhase(
                    label=f"ladder-{op.name}",
                    macs_per_core=3.0 * op.n * op.rows / LADDER_EFFECTIVE_CORES,
                ),
            ]

        if op.kind is OpKind.ELEMENTWISE:
            return [
                ComputePhase(
                    label=f"ladder-{op.name}",
                    macs_per_core=float(op.n) * op.rows / LADDER_EFFECTIVE_CORES,
                )
            ]

        if op.kind is OpKind.KV_APPEND:
            # Concat-based append through unified memory.
            return [
                CommPhase(
                    label=f"ladder-{op.name}", hop_distance=float(grid),
                    payload_bytes=float(op.n) * dtype, repeats=op.rows,
                )
            ]

        if op.kind is OpKind.TRANSFER:
            return [
                CommPhase(
                    label=f"ladder-{op.name}", hop_distance=float(grid),
                    payload_bytes=float(op.n) * dtype,
                )
            ]

        raise ValueError(f"unknown op kind: {op.kind}")
