"""A100 GPU baseline: cuBLAS roofline + vLLM serving model.

The paper compares WSE-2 against an A100 (same TSMC 7 nm node) running
cuBLAS kernels (Tables 6-7) and vLLM (Table 8).  Those workloads sit at
the two corners of the roofline:

* **GEMV is memory-bound** — latency = matrix bytes / achieved HBM
  bandwidth.  With 2.0 TB/s peak and the calibrated 80% efficiency this
  reproduces cuBLAS's published 0.336 ms at 16K (paper: 0.336 ms).
* **GEMM is compute-bound** — latency = FLOPs / achieved fp16 tensor
  throughput; 312 Tflop/s at 82% reproduces 34.6 ms at 16K (paper 34.4).

vLLM decode streams the weights plus the live KV cache from HBM every
token and adds a fixed per-token serving overhead; prefill is
compute-bound.  Energy is wall-clock power x time with
``A100_POWER_W`` = 555 W (board + host share) — together with the
WSE-2's 15 kW this reproduces the paper's energy ratios to within a few
per cent (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.llm.config import ModelConfig


@dataclass(frozen=True)
class GPUSpec:
    """Roofline parameters of a GPU."""

    name: str
    fp16_flops: float           # peak dense fp16 FLOP/s
    hbm_bytes_per_s: float      # peak HBM bandwidth
    power_w: float              # wall-clock power for energy ratios
    gemm_efficiency: float      # achieved fraction of peak FLOPs
    gemv_efficiency: float      # achieved fraction of peak bandwidth
    onchip_bytes: int           # SRAM (for context, not modelling)


#: NVIDIA A100-SXM4-80GB, calibrated to the paper's cuBLAS numbers.
A100 = GPUSpec(
    name="nvidia-a100",
    fp16_flops=312e12,
    hbm_bytes_per_s=2.0e12,
    power_w=555.0,
    gemm_efficiency=0.82,
    gemv_efficiency=0.80,
    onchip_bytes=40 * 2**20,
)

#: H100-like spec for forward-looking comparisons (Section 7.5 notes a
#: fair H100 comparison would need the unavailable WSE-3).
H100 = GPUSpec(
    name="nvidia-h100",
    fp16_flops=989e12,
    hbm_bytes_per_s=3.35e12,
    power_w=750.0,
    gemm_efficiency=0.80,
    gemv_efficiency=0.80,
    onchip_bytes=50 * 2**20,
)

#: Fixed per-token serving overhead of the vLLM stack (scheduler,
#: sampling, kernel launches), calibrated against Table 8.
VLLM_OVERHEAD_S = 0.0012


class GPUModel:
    """Latency and energy of GPU kernels and vLLM serving."""

    def __init__(self, spec: GPUSpec = A100):
        self.spec = spec

    # -- cuBLAS kernels ---------------------------------------------------
    def gemv_seconds(self, rows: int, cols: int, dtype_bytes: int = 2) -> float:
        """cuBLAS GEMV ``[1, rows] x [rows, cols]``: memory-bound."""
        if rows < 1 or cols < 1:
            raise ConfigurationError("GEMV dims must be positive")
        bytes_read = rows * cols * dtype_bytes
        return bytes_read / (self.spec.hbm_bytes_per_s * self.spec.gemv_efficiency)

    def gemm_seconds(self, m: int, k: int, n: int, dtype_bytes: int = 2) -> float:
        """cuBLAS GEMM ``[m, k] x [k, n]``: compute-bound (large shapes)."""
        if min(m, k, n) < 1:
            raise ConfigurationError("GEMM dims must be positive")
        flops = 2.0 * m * k * n
        compute = flops / (self.spec.fp16_flops * self.spec.gemm_efficiency)
        memory = (
            (m * k + k * n + m * n) * dtype_bytes
            / (self.spec.hbm_bytes_per_s * self.spec.gemv_efficiency)
        )
        return max(compute, memory)

    def energy_joules(self, seconds: float) -> float:
        """Wall-clock energy at the calibrated device power."""
        return self.spec.power_w * seconds

    # -- vLLM serving -------------------------------------------------------
    def vllm_prefill_seconds(self, model: ModelConfig, seq_len: int) -> float:
        """Prefill is compute-bound on the GPU."""
        flops = 2.0 * model.prefill_macs(seq_len)
        return (
            flops / (self.spec.fp16_flops * self.spec.gemm_efficiency)
            + VLLM_OVERHEAD_S
        )

    def vllm_decode_seconds_per_token(
        self, model: ModelConfig, context_len: int
    ) -> float:
        """Decode streams weights + live KV cache from HBM per token."""
        weight_bytes = model.weight_bytes
        kv_bytes = model.kv_bytes_per_token() * context_len
        stream = (weight_bytes + kv_bytes) / (
            self.spec.hbm_bytes_per_s * self.spec.gemv_efficiency
        )
        compute = (
            2.0 * model.decode_macs_per_token(context_len)
            / (self.spec.fp16_flops * self.spec.gemm_efficiency)
        )
        return max(stream, compute) + VLLM_OVERHEAD_S

    def vllm_generation_seconds(
        self, model: ModelConfig, seq_in: int, seq_out: int
    ) -> float:
        """Full request latency: prefill + decode at mean context."""
        mean_context = seq_in + seq_out / 2.0
        return (
            self.vllm_prefill_seconds(model, seq_in)
            + seq_out * self.vllm_decode_seconds_per_token(model, int(mean_context))
        )

    def vllm_decode_throughput(
        self, model: ModelConfig, seq_in: int, seq_out: int
    ) -> float:
        """Decode tokens/s over a full request (Table 8's metric)."""
        mean_context = seq_in + seq_out / 2.0
        per_token = self.vllm_decode_seconds_per_token(model, int(mean_context))
        return 1.0 / per_token
