"""Baseline systems the paper compares against: T10, Ladder, A100/vLLM."""

from repro.baselines.t10 import T10System
from repro.baselines.ladder import LadderSystem
from repro.baselines.gpu import A100, H100, GPUModel, GPUSpec

__all__ = [
    "T10System",
    "LadderSystem",
    "GPUModel",
    "GPUSpec",
    "A100",
    "H100",
]
