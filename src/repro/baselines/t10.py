"""T10 execution model — the distributed-memory compiler baseline.

T10 (SOSP'24) targets the GraphCore IPU: inter-core connections through
an on-chip *crossbar* with hop-invariant latency.  The paper ports it to
the WSE-2 mesh (Section 7, experiment setup) and attributes its losses
to two PLMR failures:

* **P** — T10's partitioning searches scale to thousands of cores (the
  IPU has 1,472 tiles), not hundreds of thousands; its prefill GEMMs
  therefore run at IPU-scale parallelism while the rest of the wafer
  idles.  We cap GEMM compute at ``T10_MAX_COMPUTE_CORES``.
* **L** — T10 is hop-unaware: its compute-shift rounds and its reduce
  chains are laid out by core ID, so on a mesh each logical neighbour
  exchange crosses a large fraction of the fabric, and its GEMV
  reductions are synchronized linear chains (no wavelet pipelining).

The decode path *does* partition finely (1-D GEMV tiling is easy), so
decode compute uses the full grid; its cost is dominated by the
non-pipelined linear reduction chains — which also produces the paper's
observed decline of T10 decode throughput as the mesh grows.

Calibration: ``T10_CHAIN_CYCLES`` (hop-unaware exchange cycles per
sequence row per mesh-unit per layer-op schedule) is fit once so that
LLaMA3-8B prefill lands near Table 3's 175 tok/s at 480x480 and keeps
the published declining trend; see EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import List

from repro.llm.config import ModelConfig
from repro.llm.ops_schedule import LayerOp, OpKind
from repro.llm.system_base import SystemModel
from repro.mesh.cost_model import CommPhase, ComputePhase, Phase, ReducePhase

#: IPU-scale parallelism ceiling for T10's GEMM partitioning (P failure).
T10_MAX_COMPUTE_CORES = 1472

#: Hop-unaware exchange cycles per (sequence row x mesh-unit) per layer
#: (L failure), split evenly across the layer's matrix ops.  Calibrated
#: once against Table 3's T10 column at 480x480 and 720x720.
T10_CHAIN_CYCLES = 230.0

#: Per-op dispatch overhead (T10's ahead-of-time schedule is cheap to
#: launch; most cost sits in the chains themselves).
T10_LAUNCH_CYCLES = 200.0


class T10System(SystemModel):
    """T10 ported to the wafer mesh, as evaluated by the paper."""

    name = "t10"

    def prefill_grid(self, model: ModelConfig) -> int:
        side = min(self.device.mesh_width, self.device.mesh_height)
        return side

    def decode_grid(self, model: ModelConfig) -> int:
        side = min(self.device.mesh_width, self.device.mesh_height)
        return side // 2

    # ------------------------------------------------------------------
    def _launch(self, label: str) -> ComputePhase:
        return ComputePhase(
            label=f"t10-launch-{label}", macs_per_core=0.0,
            overhead_cycles=T10_LAUNCH_CYCLES,
        )

    def _chain_phase(self, op: LayerOp, grid: int, seq: int) -> ComputePhase:
        """The calibrated hop-unaware exchange charge for one matrix op.

        Expressed as explicit stall cycles so the calibration is visible
        in one place rather than hidden in synthetic hop counts.
        """
        matrix_ops_per_layer = 9.0
        cycles = T10_CHAIN_CYCLES * seq * grid / matrix_ops_per_layer
        return ComputePhase(
            label=f"t10-chain-{op.name}", macs_per_core=0.0,
            overhead_cycles=cycles,
        )

    # ------------------------------------------------------------------
    def phases_for_op(
        self, op: LayerOp, grid: int, mode: str, model: ModelConfig
    ) -> List[Phase]:
        """Price one logical op under T10's execution model."""
        dtype = model.dtype_bytes
        if op.kind in (OpKind.GEMM, OpKind.GEMM_T):
            # Compute at IPU-scale parallelism (P failure), shift rounds
            # hop-unaware (L failure, the calibrated chain charge).
            cap = min(grid * grid, T10_MAX_COMPUTE_CORES)
            compute = ComputePhase(
                label=f"t10-{op.name}", macs_per_core=op.macs / cap
            )
            return [self._launch(op.name), compute,
                    self._chain_phase(op, grid, op.m)]

        if op.kind is OpKind.GEMV:
            # Fine 2-D tiling works for GEMV; the reduction is a
            # synchronized (non-pipelined) linear chain down each column.
            tk = math.ceil(op.k / grid)
            tn = math.ceil(op.n / grid)
            compute = ComputePhase(
                label=f"t10-{op.name}",
                macs_per_core=float(tk * tn) * op.rows,
            )
            reduce = ReducePhase(
                label=f"t10-reduce-{op.name}",
                stages=grid - 1,
                stage_hop_distance=1.0,
                payload_bytes=float(tn * dtype),
                stage_add_elems=float(tn),
                pipelined=False,
            )
            bcast = CommPhase(
                label=f"t10-bcast-{op.name}",
                hop_distance=float(grid - 1),
                payload_bytes=float(tn * dtype),
            )
            return [self._launch(op.name), compute, reduce, bcast]

        if op.kind in (OpKind.NORM, OpKind.SOFTMAX):
            reductions = 1 if op.kind is OpKind.NORM else 2
            repeats = max(1, math.ceil(op.rows / grid))
            local = ComputePhase(
                label=f"t10-{op.name}",
                macs_per_core=3.0 * op.n / (grid * grid) * op.rows,
            )
            chain = ReducePhase(
                label=f"t10-chain-{op.name}",
                stages=grid - 1,
                stage_hop_distance=1.0,
                payload_bytes=4.0,
                stage_add_elems=1.0,
                pipelined=False,
                repeats=repeats * reductions,
            )
            return [self._launch(op.name), local, chain]

        if op.kind is OpKind.ELEMENTWISE:
            return [
                ComputePhase(
                    label=f"t10-{op.name}",
                    macs_per_core=float(op.n) * op.rows / (grid * grid),
                )
            ]

        if op.kind is OpKind.KV_APPEND:
            # Concat-based: the whole KV vector funnels to the bottom row.
            return [
                CommPhase(
                    label=f"t10-{op.name}", hop_distance=float(grid),
                    payload_bytes=float(op.n) * dtype, repeats=op.rows,
                )
            ]

        if op.kind is OpKind.TRANSFER:
            return [
                CommPhase(
                    label=f"t10-{op.name}", hop_distance=float(grid),
                    payload_bytes=float(op.n) * dtype / grid,
                )
            ]

        raise ValueError(f"unknown op kind: {op.kind}")
