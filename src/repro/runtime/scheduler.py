"""Pipeline-parallel scheduling and utilization accounting (Sections 7.5, 8).

The 48 KB per-core SRAM forces WaferLLM to place a model's layers across
multiple wafer *regions* and run them as a pipeline.  For a single
autoregressive stream only one region computes at a time, so chip
utilization drops by roughly the stage count — the execution-bubble
effect the paper blames for the gap between GEMV-level (22x) and
LLM-level (1.7x) energy efficiency, and the motivation for the
"hardware architecture" fix in Section 8 (5-6x more SRAM per core would
collapse the pipeline back to tensor parallelism).

:class:`PipelineSchedule` derives the stage structure for a model on a
device and quantifies bubbles for a given number of concurrent streams;
:func:`decode_speedup_if_resident` reproduces the Section 8 projection
(~10,000 tokens/s for 13B-class models once pipelining is unnecessary).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.plmr import PLMRDevice
from repro.errors import ConfigurationError
from repro.llm.config import ModelConfig

#: Fraction of core SRAM usable for weights after the runtime reserve.
USABLE_MEMORY_FRACTION = 0.58


@dataclass(frozen=True)
class PipelineSchedule:
    """Layer-to-region pipeline structure of one model on one device."""

    model: ModelConfig
    device: PLMRDevice
    region_side: int

    def __post_init__(self) -> None:
        if self.region_side < 1:
            raise ConfigurationError("region side must be positive")

    @property
    def region_cores(self) -> int:
        """Cores in one pipeline-stage region."""
        return self.region_side * self.region_side

    @property
    def region_weight_capacity(self) -> int:
        """Weight bytes one region can hold."""
        return int(self.region_cores * self.device.core_memory_bytes
                   * USABLE_MEMORY_FRACTION)

    @property
    def num_stages(self) -> int:
        """Pipeline stages needed to hold the whole model."""
        return max(1, math.ceil(self.model.weight_bytes
                                / self.region_weight_capacity))

    @property
    def stages_on_fabric(self) -> int:
        """Stage regions that physically fit on the fabric."""
        per_row = self.device.mesh_width // self.region_side
        per_col = self.device.mesh_height // self.region_side
        return max(1, per_row * per_col)

    @property
    def fits_on_fabric(self) -> bool:
        """Whether every stage is simultaneously resident."""
        return self.num_stages <= self.stages_on_fabric

    def layers_per_stage(self) -> int:
        """Transformer layers hosted by each stage (ceiling)."""
        return max(1, math.ceil(self.model.num_layers / self.num_stages))

    def utilization(self, concurrent_streams: int = 1) -> float:
        """Fraction of stage-cycles doing useful work.

        With ``s`` stages and ``m`` independent streams in flight the
        classic pipeline fill/drain analysis gives ``m / (s + m - 1)``,
        capped at 1.  A single autoregressive stream (``m = 1``) yields
        ``1 / s`` — the paper's ~5x utilization loss for ~5-stage
        placements.
        """
        if concurrent_streams < 1:
            raise ConfigurationError("at least one stream required")
        s = self.num_stages
        m = concurrent_streams
        return min(1.0, m / (s + m - 1))

    def bubble_fraction(self, concurrent_streams: int = 1) -> float:
        """Idle fraction of stage-cycles (1 - utilization)."""
        return 1.0 - self.utilization(concurrent_streams)

    def streams_for_utilization(self, target: float) -> int:
        """Concurrent streams needed to reach ``target`` utilization.

        Inverts the fill/drain relation ``u = m / (s + m - 1)``:
        ``m = u * (s - 1) / (1 - u)``, rounded up.  The serving layer
        uses this to size its decode batch so the pipeline's bubbles
        are actually filled rather than guessed at.
        """
        if not 0.0 < target < 1.0:
            raise ConfigurationError("target utilization must be in (0, 1)")
        s = self.num_stages
        if s == 1:
            return 1
        return max(1, math.ceil(target * (s - 1) / (1.0 - target)))


def decode_speedup_if_resident(
    model: ModelConfig, device: PLMRDevice, region_side: int
) -> float:
    """Projected decode speedup if pipeline stages became unnecessary.

    Section 8: growing per-core compute and SRAM ~5-6x would let the
    whole model be tensor-parallel across the active region, recovering
    the bubbled stage-cycles.  The projection is simply the single-stream
    utilization inverse, capped by the stage count.
    """
    schedule = PipelineSchedule(model, device, region_side)
    return 1.0 / schedule.utilization(concurrent_streams=1)
