"""Runtime concerns: pipeline scheduling and weight placement transitions."""

from repro.runtime.placement import (
    WeightPlacementPlan,
    transition_cost,
    transposes_avoided_per_token,
)
from repro.runtime.memory_audit import (
    MemoryAudit,
    admissible_models,
    audit_model,
    required_layer_subset,
)
from repro.runtime.pipeline_sim import (
    PipelineRun,
    imbalance_penalty,
    simulate_pipeline,
    uniform_stage_utilization,
)
from repro.runtime.scheduler import (
    USABLE_MEMORY_FRACTION,
    PipelineSchedule,
    decode_speedup_if_resident,
)

__all__ = [
    "WeightPlacementPlan",
    "transition_cost",
    "transposes_avoided_per_token",
    "PipelineSchedule",
    "decode_speedup_if_resident",
    "USABLE_MEMORY_FRACTION",
    "MemoryAudit",
    "audit_model",
    "admissible_models",
    "required_layer_subset",
    "PipelineRun",
    "simulate_pipeline",
    "uniform_stage_utilization",
    "imbalance_penalty",
]
