"""Discrete-event pipeline simulator: bubbles, measured not derived.

:class:`~repro.runtime.scheduler.PipelineSchedule` *derives* utilization
from the classic ``m / (s + m - 1)`` fill/drain formula.  This module
*measures* it: stage regions are resources, tokens are jobs traversing
them in order, and utilization is busy-time over elapsed-time summed
across stages.  Tests pin the simulation to the formula for uniform
stages — and the simulator then answers questions the formula cannot,
such as the effect of imbalanced stages (the paper's Section 7.5 note
that LLaMA's narrow layers placed across regions "exacerbate bubble
issues").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PipelineRun:
    """Outcome of simulating tokens through the stage pipeline."""

    num_stages: int
    num_tokens: int
    makespan: float
    stage_busy_time: tuple

    @property
    def utilization(self) -> float:
        """Mean busy fraction across stages."""
        if self.makespan <= 0:
            return 0.0
        return sum(self.stage_busy_time) / (
            self.num_stages * self.makespan
        )

    @property
    def bubble_fraction(self) -> float:
        """Idle fraction of stage-time."""
        return 1.0 - self.utilization

    @property
    def bottleneck_stage(self) -> int:
        """Index of the busiest stage."""
        return max(range(self.num_stages),
                   key=lambda i: self.stage_busy_time[i])


def simulate_pipeline(
    stage_times: Sequence[float],
    num_tokens: int,
    streams: int = 1,
) -> PipelineRun:
    """Push tokens through the stages and measure utilization.

    ``streams`` independent sequences are interleaved: a stream's next
    token may enter stage 0 only after its previous token left the last
    stage (autoregressive dependency), but different streams pipeline
    freely — this is exactly how concurrent queries fill the bubbles.
    """
    stages = [float(t) for t in stage_times]
    if not stages or any(t <= 0 for t in stages):
        raise ConfigurationError("stage times must be positive")
    if num_tokens < 1 or streams < 1:
        raise ConfigurationError("need at least one token and one stream")

    s = len(stages)
    stage_free = [0.0] * s
    busy = [0.0] * s
    # Per-stream: time its previous token cleared the pipeline.
    stream_ready = [0.0] * streams
    # Round-robin the streams' tokens (continuous batching order).
    finish = 0.0
    for token_idx in range(num_tokens):
        stream = token_idx % streams
        t = stream_ready[stream]
        for i, service in enumerate(stages):
            start = max(t, stage_free[i])
            t = start + service
            stage_free[i] = t
            busy[i] += service
        stream_ready[stream] = t
        finish = max(finish, t)
    return PipelineRun(
        num_stages=s,
        num_tokens=num_tokens,
        makespan=finish,
        stage_busy_time=tuple(busy),
    )


def uniform_stage_utilization(
    num_stages: int, streams: int, tokens_per_stream: int = 64
) -> float:
    """Measured steady-state utilization for uniform stages.

    Converges to ``min(1, m / s)`` for the round-robin schedule as the
    token count grows (the fill/drain formula's steady-state limit).
    """
    run = simulate_pipeline(
        [1.0] * num_stages, tokens_per_stream * streams, streams
    )
    return run.utilization


def imbalance_penalty(
    stage_times: Sequence[float], streams: int, tokens: int = 256
) -> float:
    """Throughput loss of imbalanced stages vs their balanced equivalent.

    Returns ``balanced_throughput / actual_throughput`` (>= 1); the
    pipeline runs at its slowest stage, so skew in layer placement
    directly becomes bubbles — the Section 7.5 observation about
    GPU-shaped (narrow-layer) models on wafer regions.
    """
    actual = simulate_pipeline(stage_times, tokens, streams)
    mean = sum(stage_times) / len(stage_times)
    balanced = simulate_pipeline([mean] * len(stage_times), tokens, streams)
    return balanced.num_tokens / balanced.makespan \
        / (actual.num_tokens / actual.makespan)
