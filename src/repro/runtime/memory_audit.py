"""Wafer memory audit: does a model fit for end-to-end inference?

Section 7.1: *"CodeLLaMA-34B and QWen-72B are not included [in the
end-to-end evaluation] due to the memory constraint of WSE-2"* — their
prefill throughput is instead measured on a layer subset.  This module
reproduces that admission decision from first principles: it lays a
model's weights, KV budget and runtime reserve onto the fabric and
reports, per core, whether everything fits.

The audit is also the honest backing for the engine's configuration
checks: rather than a hard-coded model list, `fits_end_to_end` derives
the verdict from the same byte arithmetic the KV-capacity model and the
pipeline scheduler use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.plmr import PLMRDevice
from repro.errors import ConfigurationError
from repro.llm.config import ModelConfig
from repro.llm.kvcache import MIN_KV_BUDGET_BYTES, RUNTIME_RESERVE_BYTES

#: Hard floor of the per-core runtime reserve (kernel code + stack).
#: The default 20 KiB reserve shrinks toward this when weights are
#: tight — LLaMA2-13B only fits the WSE-2 this way, which is exactly
#: why its Table 5 concat capacity is a mere 16 tokens.
MIN_RESERVE_BYTES = 8 * 1024


@dataclass(frozen=True)
class MemoryAudit:
    """Per-core byte budget of one model on one device."""

    model: str
    device: str
    core_memory_bytes: int
    weights_per_core: float
    reserve_per_core: int
    kv_budget_per_core: float
    min_generation_tokens: int

    @property
    def fits_weights(self) -> bool:
        """Weights + reserve fit in every core's SRAM."""
        return (self.weights_per_core + self.reserve_per_core
                <= self.core_memory_bytes)

    @property
    def fits_end_to_end(self) -> bool:
        """Weights fit *and* a usable KV budget remains for generation."""
        return self.fits_weights and \
            self.kv_budget_per_core >= MIN_KV_BUDGET_BYTES and \
            self.min_generation_tokens >= 128

    @property
    def utilization(self) -> float:
        """Fraction of SRAM consumed by weights + reserve."""
        return (self.weights_per_core + self.reserve_per_core) \
            / self.core_memory_bytes

    def summary(self) -> str:
        """One-line verdict."""
        verdict = "fits end-to-end" if self.fits_end_to_end else (
            "weights fit, KV budget too small" if self.fits_weights
            else "DOES NOT FIT"
        )
        return (f"{self.model} on {self.device}: "
                f"{self.weights_per_core / 1024:.1f} KiB weights/core + "
                f"{self.reserve_per_core / 1024:.0f} KiB reserve of "
                f"{self.core_memory_bytes / 1024:.0f} KiB -> {verdict}")


def audit_model(
    model: ModelConfig,
    device: PLMRDevice,
    decode_grid: int = 0,
    reserve_bytes: int = RUNTIME_RESERVE_BYTES,
) -> MemoryAudit:
    """Audit one model's residency on one device.

    Weights spread across the whole fabric (the pipeline-stage layout);
    the KV budget is whatever one core has left, and the generation
    ceiling follows the Table 5 arithmetic on the decode grid.
    """
    if device.num_cores < 1:
        raise ConfigurationError("device has no cores")
    if decode_grid <= 0:
        decode_grid = min(device.mesh_width, device.mesh_height) // 2
    weights_per_core = model.weight_bytes / device.num_cores
    # The reserve is elastic: it yields to weight pressure down to the
    # hard floor (code + stack cannot shrink further).
    slack = device.core_memory_bytes - weights_per_core - MIN_KV_BUDGET_BYTES
    reserve_used = int(min(reserve_bytes, max(MIN_RESERVE_BYTES, slack)))
    kv_budget = device.core_memory_bytes - weights_per_core - reserve_used
    features_per_core = -(-model.kv_dim // decode_grid)
    bytes_per_token_core = 2 * features_per_core * model.dtype_bytes
    tokens_per_row = max(0, int(kv_budget)) // bytes_per_token_core
    return MemoryAudit(
        model=model.name,
        device=device.name,
        core_memory_bytes=device.core_memory_bytes,
        weights_per_core=weights_per_core,
        reserve_per_core=reserve_used,
        kv_budget_per_core=kv_budget,
        min_generation_tokens=tokens_per_row * decode_grid,
    )


def admissible_models(
    models: List[ModelConfig], device: PLMRDevice
) -> List[str]:
    """Names of the models that pass the end-to-end audit on ``device``."""
    return [
        model.name for model in models
        if audit_model(model, device).fits_end_to_end
    ]


def required_layer_subset(model: ModelConfig, device: PLMRDevice) -> int:
    """Largest layer count of this model that fits the device's memory.

    This is how the paper evaluates CodeLLaMA-34B and QWen2-72B: "we
    evaluate a subset of layers and scale the results proportionally due
    to their uniform layer structure".
    """
    budget = device.num_cores * device.core_memory_bytes
    usable = budget - device.num_cores * RUNTIME_RESERVE_BYTES
    overhead = (model.embed_params + model.d_model) * model.dtype_bytes
    per_layer = model.layer_params * model.dtype_bytes
    layers = int((usable - overhead) // per_layer)
    return max(1, min(model.num_layers, layers))
