"""Deprecation shim: weight placement moved to :mod:`repro.placement`.

:class:`WeightPlacementPlan`, :func:`transition_cost`, and
:func:`transposes_avoided_per_token` now live in
:mod:`repro.placement.transition`; :func:`region_reshard_cost` is the
grid-shaped wrapper around the region-based
:func:`repro.placement.transition.reshard_cost`.  This module keeps the
historical import surface working unchanged.
"""

from __future__ import annotations

from repro.core.plmr import PLMRDevice
from repro.errors import ConfigurationError
from repro.llm.config import ModelConfig
from repro.mesh.cost_model import KernelCost
from repro.placement.plan import RegionCarveOut
from repro.placement.transition import (
    WeightPlacementPlan,
    reshard_cost,
    transition_cost,
    transposes_avoided_per_token,
)

__all__ = [
    "WeightPlacementPlan",
    "transition_cost",
    "region_reshard_cost",
    "transposes_avoided_per_token",
]


def region_reshard_cost(
    model: ModelConfig, device: PLMRDevice, grid: int
) -> KernelCost:
    """Cycle cost of evacuating a ``grid x grid`` decode region.

    Legacy bare-grid entry point; the planner-aware path passes a
    :class:`~repro.placement.plan.RegionCarveOut` straight to
    :func:`repro.placement.transition.reshard_cost`.  (The direct
    carve-out construction below carries an inline allowance for the
    ``region-carveout-outside-planner`` lint rule.)
    """
    if grid < 1:
        raise ConfigurationError(f"grid must be positive, got {grid}")
    region = RegionCarveOut(  # plmr: allow=region-carveout-outside-planner
        "reshard", 0, 0, grid, grid, role="decode"
    )
    return reshard_cost(model, device, region)
