"""Sanitizer coverage of the kernel zoo: every tier-1 kernel, self-audited.

Runs each kernel of the profiling registry functionally and sanitizes
the trace it produced under its own device limits.  The *clean* suite —
every kernel the paper claims PLMR-compliant — must report zero
findings; the paper's intentional baselines (Cannon/SUMMA identity
placement, allgather GEMM, ring allreduce) are excluded because their L
violations are the point of Figures 6 and 8, and the tests assert the
sanitizer does flag them.

Remapped coverage builds the same kernels on a defective fabric (dead
core, dead link, degraded link — the PR 3 remap path) where shifts
legitimately pay detour hops; :func:`repro.analysis.sanitize.physical_shift_bound`
widens the bound accordingly, so the suite stays clean there too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.sanitize import (
    SanitizeReport,
    policy_for_machine,
    sanitize_machine,
    sanitize_trace,
)
from repro.core import PRESETS
from repro.errors import ConfigurationError
from repro.mesh.machine import MeshMachine
from repro.mesh.remap import DefectMap, normalize_link
from repro.profiling import all_kernel_names, build_case, run_case

#: Kernels that are *intentional* PLMR violators — the paper's baselines.
#: The sanitizer is expected to flag them, so they sit outside the clean
#: suite (tests assert the flagging).
INTENTIONAL_VIOLATORS = frozenset({
    "cannon",
    "summa",
    "allgather-gemm",
    "ring-allreduce",
    "ring-gemv",
})


def clean_kernel_names() -> List[str]:
    """The PLMR-compliant kernel suite (registry minus known violators)."""
    return [n for n in all_kernel_names() if n not in INTENTIONAL_VIOLATORS]


def sanitize_kernel(
    name: str,
    grid: int = 4,
    preset: str = "cerebras-wse2",
    dim: Optional[int] = None,
) -> SanitizeReport:
    """Run one kernel case functionally and sanitize its trace."""
    case = build_case(name, grid, dim=dim)
    machine = run_case(case, preset)
    return sanitize_machine(
        machine, subject=f"{name}@{case.mesh[0]}x{case.mesh[1]}"
    )


def sanitize_clean_suite(
    grid: int = 4, preset: str = "cerebras-wse2"
) -> List[SanitizeReport]:
    """Sanitize every clean-suite kernel; one report per kernel."""
    return [sanitize_kernel(name, grid, preset) for name in clean_kernel_names()]


def sanitize_attention(grid: int = 4) -> List[SanitizeReport]:
    """Sanitize the attention-path mesh ops (GEMM/GEMM-T/GEMV/softmax/RMSNorm).

    Drives the same :class:`~repro.llm.mesh_ops.MeshOpContext` wrappers
    the distributed transformer composes its forward pass from, then
    sanitizes every accumulated kernel trace.  The context machines are
    discarded after each op, so the fabric's registration state is gone —
    the per-trace forwarded colours stand in for it.
    """
    import numpy as np

    from repro.llm.mesh_ops import MeshOpContext

    ctx = MeshOpContext(grid=grid)
    rng = np.random.default_rng(7)
    d = 2 * grid
    q = rng.standard_normal((d, d))
    k = rng.standard_normal((d, d))
    v = rng.standard_normal((d, d))
    scores = ctx.gemm_t(q, k)
    weights = ctx.softmax_rows(scores)
    out = ctx.gemm(weights, v)
    ctx.gemv(out[0], v)
    ctx.rms_norm(out[0], np.ones(d), 1e-6)
    device = ctx.device.submesh(grid, grid)
    from repro.analysis.sanitize import SanitizePolicy

    policy = SanitizePolicy(
        core_memory_bytes=device.core_memory_bytes,
        max_paths_per_core=device.max_paths_per_core,
    )
    return [
        sanitize_trace(trace, policy, subject=f"attention:{label}")
        for label, trace in ctx.traces
    ]


def _remapped_machine(
    grid: int, preset: str = "cerebras-wse2"
) -> MeshMachine:
    """A ``grid x grid`` logical mesh over a defective physical fabric.

    Mirrors the defect pattern of the remapped-kernel property tests:
    one dead core (forcing a remap displacement), one dead link (forcing
    a detour), and one degraded link (halving bandwidth).
    """
    if preset not in PRESETS:
        raise ConfigurationError(
            f"unknown device preset {preset!r}; choose from {list(PRESETS)}")
    pw, ph = grid + 1, grid + 1
    device = PRESETS[preset].submesh(pw, ph)
    defects = DefectMap(
        pw, ph,
        dead_cores=frozenset({(1, 1)}),
        dead_links=frozenset({normalize_link((2, 0), (2, 1))}),
        degraded_links={normalize_link((0, 0), (0, 1)): 0.5},
    )
    return MeshMachine(
        device,
        enforce_memory=False,
        defects=defects,
        logical_shape=(grid, grid),
    )


def sanitize_kernel_remapped(
    name: str, grid: int = 4, preset: str = "cerebras-wse2"
) -> SanitizeReport:
    """Run one kernel on a remapped (defective) fabric and sanitize it.

    The hop bound widens to the worst physical distance any legitimate
    (≤2 logical hops) shift pays on this fabric — detours are not
    violations, teleports still are.
    """
    case = build_case(name, grid)
    if case.mesh != (grid, grid):
        raise ConfigurationError(
            f"remapped sanitization needs a square-mesh kernel; "
            f"{name!r} wants {case.mesh}")
    machine = _remapped_machine(grid, preset)
    case.runner(machine)
    return sanitize_machine(machine, subject=f"{name}@remapped-{grid}x{grid}")


def run_kernel_checks(
    grid: int = 4,
    kernels: Optional[List[str]] = None,
    remapped: Tuple[str, ...] = ("meshgemm", "meshgemv"),
    preset: str = "cerebras-wse2",
) -> List[SanitizeReport]:
    """The full sanitizer sweep ``repro check`` runs: clean suite,
    attention path, and remapped variants."""
    names = kernels if kernels is not None else clean_kernel_names()
    reports = [sanitize_kernel(name, grid, preset) for name in names]
    if kernels is None:
        reports.extend(sanitize_attention(grid))
    for name in remapped:
        reports.append(sanitize_kernel_remapped(name, grid, preset))
    return reports
