"""The shared currency of the analysis subsystem: the :class:`Finding`.

Both sides of the PLMR conformance checker — the AST lint rules
(:mod:`repro.analysis.lint`) and the dynamic trace sanitizer
(:mod:`repro.analysis.sanitize`) — emit the same record type, so the
``repro check`` CLI can merge, render, and serialize them uniformly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Finding:
    """One conformance problem, from either the lint or the sanitizer.

    ``rule`` is the stable identifier (``raw-trace-record``,
    ``hop-bound``, ...) that suppressions and baselines key on.  ``path``
    / ``line`` locate a static finding in source; dynamic findings use
    ``subject`` instead (the kernel or trace label the violation was
    observed in).
    """

    rule: str
    message: str
    path: Optional[str] = None
    line: Optional[int] = None
    subject: Optional[str] = None
    severity: str = "error"
    source: str = "lint"  # "lint" | "sanitize"

    def render(self) -> str:
        """One human-readable report line."""
        if self.path is not None:
            where = self.path if self.line is None else f"{self.path}:{self.line}"
        else:
            where = self.subject or "<trace>"
        return f"{where}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (``None`` fields dropped)."""
        return {k: v for k, v in asdict(self).items() if v is not None}


def render_findings(findings: List[Finding]) -> str:
    """Render a list of findings, one per line (empty string when clean)."""
    return "\n".join(f.render() for f in findings)
