"""Replay-safety lint rules.

Five rules, each guarding one way "same seed, same timeline" quietly
breaks:

* ``wall-clock-read`` — real-time reads (``time.time``,
  ``perf_counter``, ``datetime.now``, ...) anywhere outside the timing
  harness make event times a function of the host, not the seed;
* ``unordered-iteration`` — iterating a ``set`` inside a function that
  feeds trace records, heap keys, or signatures makes event *order* a
  function of ``PYTHONHASHSEED``;
* ``object-identity-ordering`` — sort/heap keys built from ``id()`` or
  bare payload objects order events by allocation address (the
  ``(time, seq)`` event heap in ``fleet/router.py`` must stay totally
  ordered by value);
* ``mutable-module-state`` — module-level mutable caches without a
  version companion are exactly the hidden state the cache-key dataflow
  pass (:mod:`repro.analysis.determinism.cachekeys`) cannot see bumped;
* ``hashseed-dependent`` — builtin ``hash()`` is salted per process for
  strings; seeds and fingerprints derived from it do not replay across
  processes (use :func:`repro.mesh.faults.derive_seed` or hashlib).

All five register in the shared engine, so suppressions
(``# plmr: allow=...``) and the baseline apply unchanged.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.lint.engine import LintRule, register_rule


def _norm(rel_path: str) -> str:
    return rel_path.replace("\\", "/")


def _call_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@register_rule
class WallClockReadRule(LintRule):
    """No wall-clock reads outside the timing harness.

    Simulated time is event time: every timestamp in a trace, metrics
    rollup, or timeline signature must derive from the seeded event
    queue.  A real-clock read smuggles host state into the run, so two
    same-seed runs stop being byte-identical.  The timing harnesses
    (``bench/simbench.py``, ``bench/servebench.py``) are the one place
    where measuring the host is the point.
    """

    rule_id = "wall-clock-read"
    description = "real-time clock read outside the timing harness"

    ALLOWED_SUFFIXES = (
        "src/repro/bench/simbench.py",
        "src/repro/bench/servebench.py",
    )
    TIME_FUNCS = frozenset({
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
        "thread_time", "thread_time_ns", "localtime", "gmtime",
    })
    DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

    def applies_to(self, rel_path: str) -> bool:
        return not _norm(rel_path).endswith(self.ALLOWED_SUFFIXES)

    def check(
        self, tree: ast.AST, rel_path: str, source: str
    ) -> Iterator[Finding]:
        time_aliases: Set[str] = set()
        datetime_aliases: Set[str] = set()
        bare_time_funcs: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        datetime_aliases.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in self.TIME_FUNCS:
                            bare_time_funcs.add(alias.asname or alias.name)
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_aliases.add(alias.asname or alias.name)

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in bare_time_funcs:
                yield self.finding(
                    rel_path, node,
                    f"{func.id}() reads the host clock — simulated "
                    "timestamps must come from the seeded event queue",
                )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in time_aliases
                and func.attr in self.TIME_FUNCS
            ):
                yield self.finding(
                    rel_path, node,
                    f"time.{func.attr}() reads the host clock — simulated "
                    "timestamps must come from the seeded event queue",
                )
            elif func.attr in self.DATETIME_FUNCS:
                root = base
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name) and root.id in datetime_aliases:
                    yield self.finding(
                        rel_path, node,
                        f"datetime {func.attr}() reads the host clock — "
                        "runs must be a pure function of their seed",
                    )


#: Call names whose presence makes a function order-sensitive: its
#: iteration order reaches a trace, a heap, or a digest.
_SINK_CALLS = frozenset({
    "heappush", "heapify", "heappushpop", "heapreplace",
    "record_comm", "record_compute", "record_barrier",
    "sha1", "sha256", "sha512", "md5", "blake2b", "blake2s",
})
_SINK_NAME_RE = re.compile(r"signature|fingerprint", re.IGNORECASE)

#: Set-returning method names (on sets themselves, so iterating the
#: result inherits the unordered semantics).
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


def _is_unordered_expr(node: ast.AST, tainted: Set[str]) -> bool:
    """Whether an expression's iteration order is hash-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        if name in ("set", "frozenset"):
            return True
        if name in _SET_METHODS:
            return True
    return False


@register_rule
class UnorderedIterationRule(LintRule):
    """No set iteration where order feeds traces, heaps, or digests.

    ``set`` iteration order depends on element hashes; for strings the
    hash is salted per process, so two runs of the same seed can emit
    the same events in different orders.  Inside functions that push to
    heaps, record trace events, or build signatures/fingerprints, every
    set must pass through ``sorted(...)`` before iteration.  (Dict
    iteration is insertion-ordered and is not flagged.)
    """

    rule_id = "unordered-iteration"
    description = "set iteration feeding trace records, heaps, or signatures"

    def check(
        self, tree: ast.AST, rel_path: str, source: str
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_sensitive(node):
                    yield from self._check_function(node, rel_path)

    def _is_sensitive(self, func: ast.AST) -> bool:
        if _SINK_NAME_RE.search(getattr(func, "name", "")):
            return True
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                if _call_name(node.func) in _SINK_CALLS:
                    return True
        return False

    def _check_function(
        self, func: ast.AST, rel_path: str
    ) -> Iterator[Finding]:
        tainted: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and _is_unordered_expr(
                node.value, tainted
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
        iters: List[ast.AST] = []
        for node in ast.walk(func):
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                # Order-sensitive conversions of a set: list/tuple
                # capture the arbitrary order; str.join serializes it.
                name = _call_name(node.func)
                if name in ("list", "tuple", "enumerate", "join"):
                    iters.extend(node.args)
        for expr in iters:
            if _is_unordered_expr(expr, tainted):
                yield self.finding(
                    rel_path, expr,
                    "iterating a set in an order-sensitive function "
                    f"({getattr(func, 'name', '?')}); wrap it in sorted(...) "
                    "so the event order is hash-independent",
                )


def _contains_id_call(node: ast.AST) -> Optional[ast.Call]:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
        ):
            return sub
    return None


def _is_seq_tiebreaker(node: ast.AST) -> bool:
    """Whether a tuple element is a monotone tie-breaker."""
    if isinstance(node, ast.Call) and _call_name(node.func) == "next":
        return True
    label = ""
    if isinstance(node, ast.Name):
        label = node.id
    elif isinstance(node, ast.Attribute):
        label = node.attr
    return bool(re.search(r"seq|count|tie|index", label, re.IGNORECASE))


@register_rule
class ObjectIdentityOrderingRule(LintRule):
    """No ordering by object identity, no heap ties settled by payloads.

    ``id()`` is an allocation address: stable within a run, meaningless
    across runs — a sort or heap key containing it replays in a
    different order every process.  Heap entries shaped
    ``(time, payload)`` are the same bug one tie away: two events at
    equal times fall through to comparing the payload objects, which
    either raises ``TypeError`` or orders by identity.  A monotone
    sequence number between the time and the payload keeps the heap
    totally ordered by value (the ``(time, seq)`` discipline of
    ``fleet/router.py``).
    """

    rule_id = "object-identity-ordering"
    description = "sort/heap keys ordered by id() or bare payload objects"

    def check(
        self, tree: ast.AST, rel_path: str, source: str
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name in ("sorted", "min", "max", "sort", "nsmallest", "nlargest"):
                for kw in node.keywords:
                    if kw.arg == "key" and _contains_id_call(kw.value):
                        yield self.finding(
                            rel_path, kw.value,
                            f"id() inside a {name} key orders by allocation "
                            "address, which differs between same-seed runs — "
                            "key on a stable value instead",
                        )
            elif name in ("heappush", "heappushpop", "heapreplace"):
                if len(node.args) < 2:
                    continue
                item = node.args[1]
                if _contains_id_call(item):
                    yield self.finding(
                        rel_path, item,
                        "id() inside a heap entry orders by allocation "
                        "address, which differs between same-seed runs",
                    )
                    continue
                yield from self._check_heap_tuple(rel_path, item)

    def _check_heap_tuple(
        self, rel_path: str, item: ast.AST
    ) -> Iterator[Finding]:
        if not isinstance(item, ast.Tuple) or len(item.elts) < 2:
            return
        for elt in item.elts[1:]:
            if _is_seq_tiebreaker(elt):
                return  # totally ordered before any payload compares
            if isinstance(elt, ast.Constant):
                continue  # constants compare fine (and break no ties)
            yield self.finding(
                rel_path, item,
                "heap entry can tie on its leading key and fall through "
                "to comparing payload objects; insert a monotone sequence "
                "number (the (time, seq) discipline) before the payload",
            )
            return


_MUTABLE_CTORS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque",
})
_CACHE_NAME_RE = re.compile(
    r"cache|memo|registry|state|pool|seen|intern", re.IGNORECASE
)


@register_rule
class MutableModuleStateRule(LintRule):
    """Module-level mutable caches must carry a version companion.

    A module-level dict/list/set that code mutates at runtime is state
    shared by every machine, fabric, and capture in the process — and
    invisible to every cache key.  The PR-6 ``retrain_link`` bug was
    exactly hidden mutable state without a version the keys consume.
    A cache-ish module-level mutable binding is accepted only when the
    module also binds ``<name>_version`` (which the mutating code must
    bump, and cache keys must include); import-time-only registries can
    say so with ``# plmr: allow=mutable-module-state``.
    """

    rule_id = "mutable-module-state"
    description = "module-level mutable cache without a version companion"

    def check(
        self, tree: ast.AST, rel_path: str, source: str
    ) -> Iterator[Finding]:
        if not isinstance(tree, ast.Module):
            return
        names: Set[str] = set()
        candidates: List = []
        for node in tree.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not isinstance(target, ast.Name):
                continue
            names.add(target.id)
            if self._is_mutable(value) and _CACHE_NAME_RE.search(target.id):
                candidates.append((node, target.id))
        lowered = {n.lower().lstrip("_") for n in names}
        for node, name in candidates:
            base = name.lower().lstrip("_")
            if f"{base}_version" in lowered:
                continue
            yield self.finding(
                rel_path, node,
                f"module-level mutable cache {name!r} has no version "
                f"companion; bind {name}_version next to it (and thread it "
                "through every cache key that can observe the mutation), or "
                "mark an import-time-only registry with an allow comment",
            )

    @staticmethod
    def _is_mutable(value: Optional[ast.expr]) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.SetComp,
                              ast.ListComp, ast.DictComp)):
            return True
        if isinstance(value, ast.Call):
            return _call_name(value.func) in _MUTABLE_CTORS
        return False


@register_rule
class HashseedDependentRule(LintRule):
    """No builtin ``hash()`` where the result must replay.

    CPython salts ``str``/``bytes`` hashes per process
    (``PYTHONHASHSEED``), so a seed, signature, or cache key derived
    from ``hash()`` differs between two runs of the same program.  Use
    :func:`repro.mesh.faults.derive_seed` (sha256-based) for seeds and
    ``hashlib`` for digests; ``hash()`` on our own frozen dataclasses of
    ints is stable but gains nothing over their tuple identity.
    """

    rule_id = "hashseed-dependent"
    description = "builtin hash() in replay-sensitive code"

    def applies_to(self, rel_path: str) -> bool:
        return "src/repro/" in _norm(rel_path)

    def check(
        self, tree: ast.AST, rel_path: str, source: str
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    rel_path, node,
                    "builtin hash() is salted per process for strings — "
                    "derive seeds with repro.mesh.faults.derive_seed and "
                    "digests with hashlib so runs replay across processes",
                )
