"""Cache-key version dataflow: every cached value's inputs live in its key.

The costliest determinism failure class this repo has hit (PR 6's
``retrain_link``) is *stale cache keys after hidden state mutation*: a
memoized value depended on ``DefectMap.degraded_links``, the key did
not, and a runtime retrain kept serving factors priced under the old
link state.  The hand fix was the version-counter discipline — the key
consumes ``links_version``, the mutator bumps it.  This pass generalizes
that discipline into a repo-wide check:

1. **Cache sites** — functions that look up a memo keyed by an
   expression (``self._register_cache.get(signature)``, the topology's
   ``_flow_cache``/``_route_cache`` subscripts, ``lru_cache``-decorated
   interning like :func:`repro.mesh.topology.shared_topology`) plus
   fingerprint/signature builders (collected for the field inventory;
   they recompute per call, so they cannot go stale and are never
   flagged).  For each site we record the *key fields* (attribute /
   parameter names the key expression reads) and the *dependency
   fields* — every attribute the computation transitively reads,
   expanded through same-repo calls and properties, so
   ``flow_bandwidth_factor → link_bandwidth_factor → link_factor →
   degraded_links`` is visible.
2. **Mutation sites** — every attribute store, ``object.__setattr__``
   with a literal field name, subscript store, or mutator-method call
   (``.add`` / ``.append`` / ``.update`` / ``.pop`` / ...) on an
   attribute, anywhere in the tree, outside constructors.
3. **The check** — a mutation of field ``F`` in class ``Cm`` is flagged
   against a memoized site ``S`` when ``F`` is among ``S``'s
   dependencies, ``F`` is not in ``S``'s key, the mutation happens
   outside the class that owns the cache (a class invalidating or
   populating its own cache is bookkeeping, not hidden state), and the
   mutating function bumps no version field the key consumes.

Field names are compared after normalization (leading underscores
stripped, case-folded) so the ``_links_version`` attribute behind the
``links_version`` property pairs up.  Findings carry
``source="dataflow"`` under rule ``unversioned-cache-mutation`` and
honour the engine's ``# plmr: allow=`` suppressions and the shared
baseline.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.lint.engine import (
    REPO_ROOT,
    SOURCE_ROOT,
    _is_suppressed,
    _suppressions,
)

RULE_ID = "unversioned-cache-mutation"

_CACHE_ATTR_RE = re.compile(r"cache|memo|intern", re.IGNORECASE)
_FINGERPRINT_RE = re.compile(r"fingerprint|signature", re.IGNORECASE)
_VERSION_RE = re.compile(r"version", re.IGNORECASE)

_CTOR_NAMES = frozenset({"__init__", "__post_init__", "__new__"})
_MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popleft", "remove", "setdefault", "update",
})
#: Call-graph expansion stops at these — builtins shadowed by repo names
#: would otherwise union unrelated read sets into every site.
_EXPAND_STOPLIST = frozenset({"get", "items", "keys", "values", "update"})
#: Expansion is by bare name (no type inference), so a name defined in
#: many places ("run", "step", "finish") is a hub that would union the
#: whole repo into every closure.  Names with more definitions than this
#: are treated as opaque.
_MAX_FANOUT = 3


def _norm_field(name: str) -> str:
    return name.lstrip("_").lower()


def _terminal_attr(node: ast.AST) -> Optional[str]:
    """Attribute name at the end of an attr/subscript chain, else None."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@dataclass(frozen=True)
class CacheSite:
    """One place a computed value is served from a key-addressed store."""

    path: str
    line: int
    cls: Optional[str]
    function: str
    kind: str  # "memo" | "lru" | "fingerprint"
    key_fields: Tuple[str, ...]  # normalized
    deps: Tuple[str, ...]  # normalized, call-graph expanded

    @property
    def label(self) -> str:
        """Qualified ``Class.function`` (or bare function) name."""
        return f"{self.cls}.{self.function}" if self.cls else self.function


@dataclass(frozen=True)
class MutationSite:
    """One write to an attribute field outside a constructor."""

    path: str
    line: int
    cls: Optional[str]
    function: str
    field: str  # raw attribute name as written
    bumps: Tuple[str, ...]  # normalized version fields the function bumps

    @property
    def norm_field(self) -> str:
        """Normalized field name (underscores stripped, case-folded)."""
        return _norm_field(self.field)

    @property
    def package(self) -> str:
        """Directory of the defining module (the dataflow scope unit)."""
        return self.path.rsplit("/", 1)[0] if "/" in self.path else ""

    @property
    def label(self) -> str:
        """Qualified ``Class.function`` (or bare function) name."""
        return f"{self.cls}.{self.function}" if self.cls else self.function


@dataclass
class _FunctionInfo:
    name: str
    cls: Optional[str]
    path: str
    node: ast.AST
    reads: Set[str]
    calls: Set[str]
    self_names: Set[str]  # attrs/methods accessed directly on ``self``
    store_fields: Set[str]  # normalized attrs read via ``.get(key)``
    mutations: List[Tuple[str, int]]  # (raw field, line)
    bumps: Set[str]  # normalized

    @property
    def package(self) -> str:
        """Directory of the defining module (the dataflow scope unit)."""
        return self.path.rsplit("/", 1)[0] if "/" in self.path else ""


def _decorator_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for dec in getattr(func, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _analyze_function(
    func: ast.AST, cls: Optional[str], path: str
) -> _FunctionInfo:
    reads: Set[str] = set()
    calls: Set[str] = set()
    self_names: Set[str] = set()
    store_fields: Set[str] = set()
    mutations: List[Tuple[str, int]] = []
    bumps: Set[str] = set()
    call_funcs = set()

    def _on_self(node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in ("self", "cls")

    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            call_funcs.add(id(node.func))
            target = node.func
            name = ""
            if isinstance(target, ast.Attribute):
                name = target.attr
                if _on_self(target.value):
                    self_names.add(name)
            elif isinstance(target, ast.Name):
                name = target.id
            if name:
                calls.add(name)
            if (
                name == "get"
                and node.args
                and isinstance(target, ast.Attribute)
            ):
                store = _terminal_attr(target.value)
                if store is not None:
                    store_fields.add(_norm_field(store))
            if (
                name == "__setattr__"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                field = node.args[1].value
                mutations.append((field, node.lineno))
                if _VERSION_RE.search(field):
                    bumps.add(_norm_field(field))
            elif name in _MUTATOR_METHODS and isinstance(
                target, ast.Attribute
            ):
                field = _terminal_attr(target.value)
                if field is not None:
                    mutations.append((field, node.lineno))
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and id(node) not in call_funcs:
            if isinstance(node.ctx, ast.Load):
                reads.add(_norm_field(node.attr))
                if _on_self(node.value):
                    self_names.add(node.attr)
                    self_names.add(_norm_field(node.attr))
    targets: List[Tuple[ast.AST, int]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            targets.extend((t, node.lineno) for t in node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets.append((node.target, node.lineno))
    for target, lineno in targets:
        if isinstance(target, ast.Attribute):
            mutations.append((target.attr, lineno))
            if _VERSION_RE.search(target.attr):
                bumps.add(_norm_field(target.attr))
        elif isinstance(target, ast.Subscript):
            field = _terminal_attr(target)
            if field is not None:
                mutations.append((field, lineno))
    return _FunctionInfo(
        name=getattr(func, "name", "<module>"),
        cls=cls,
        path=path,
        node=func,
        reads=reads,
        calls=calls,
        self_names=self_names,
        store_fields=store_fields,
        mutations=mutations,
        bumps=bumps,
    )


def _key_fields(expr: ast.AST, local_assigns: Dict[str, ast.AST]) -> Set[str]:
    """Normalized attribute / parameter names a key expression consumes."""
    if isinstance(expr, ast.Name) and expr.id in local_assigns:
        expr = local_assigns[expr.id]
    fields: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute):
            fields.add(_norm_field(node.attr))
        elif isinstance(node, ast.Name):
            fields.add(_norm_field(node.id))
    return fields


def _cache_sites_in(info: _FunctionInfo) -> List[CacheSite]:
    func = info.node
    local_assigns: Dict[str, ast.AST] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                local_assigns.setdefault(target.id, node.value)

    def _is_cache_store(node: ast.AST) -> bool:
        attr = _terminal_attr(node)
        if attr is not None and _CACHE_ATTR_RE.search(attr):
            return True
        if isinstance(node, ast.Name):
            bound = local_assigns.get(node.id)
            return bound is not None and _is_cache_store(bound)
        return False

    sites: List[CacheSite] = []
    key_exprs: List[Tuple[ast.AST, int]] = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
            and _is_cache_store(node.func.value)
        ):
            key_exprs.append((node.args[0], node.lineno))
        elif isinstance(node, ast.Subscript) and _is_cache_store(node.value):
            key_exprs.append((node.slice, node.lineno))
    if key_exprs:
        fields: Set[str] = set()
        line = min(ln for _, ln in key_exprs)
        for expr, _ in key_exprs:
            fields.update(_key_fields(expr, local_assigns))
        sites.append(
            CacheSite(
                path=info.path,
                line=line,
                cls=info.cls,
                function=info.name,
                kind="memo",
                key_fields=tuple(sorted(fields)),
                deps=(),
            )
        )
    decorators = _decorator_names(func)
    if decorators & {"lru_cache", "cache"}:
        params = {
            _norm_field(a.arg)
            for a in list(func.args.args) + list(func.args.kwonlyargs)
        }
        sites.append(
            CacheSite(
                path=info.path,
                line=func.lineno,
                cls=info.cls,
                function=info.name,
                kind="lru",
                key_fields=tuple(sorted(params)),
                deps=(),
            )
        )
    if not sites and _FINGERPRINT_RE.search(info.name):
        sites.append(
            CacheSite(
                path=info.path,
                line=func.lineno,
                cls=info.cls,
                function=info.name,
                kind="fingerprint",
                key_fields=(),
                deps=(),
            )
        )
    return sites


class _RepoIndex:
    """All function infos in a tree, with call-graph dep expansion."""

    def __init__(self, roots: Sequence[Path]):
        self.functions: List[_FunctionInfo] = []
        self.by_name: Dict[str, List[_FunctionInfo]] = {}
        self.sources: Dict[str, str] = {}
        for root in roots:
            for path in sorted(Path(root).rglob("*.py")):
                try:
                    rel = str(path.resolve().relative_to(REPO_ROOT))
                except ValueError:
                    rel = str(path)
                rel = rel.replace("\\", "/")
                source = path.read_text(encoding="utf-8")
                try:
                    tree = ast.parse(source)
                except SyntaxError:
                    continue
                self.sources[rel] = source
                self._index_module(tree, rel)
        self._expanded: Dict[int, Tuple[Set, Set]] = {}
        #: (class, field) pairs read via ``.get(key)`` — fields that are
        #: themselves key-addressed stores; filling one is a memo write
        #: governed by its own site's key, not hidden state.
        self.store_fields: Set[Tuple[Optional[str], str]] = set()
        #: bare call name -> functions whose body calls it.
        self.callers: Dict[str, List[_FunctionInfo]] = {}
        for info in self.functions:
            for field in info.store_fields:
                self.store_fields.add((info.cls, field))
            for name in info.calls:
                self.callers.setdefault(name, []).append(info)

    def _index_module(self, tree: ast.Module, rel: str) -> None:
        def add(func: ast.AST, cls: Optional[str]) -> None:
            info = _analyze_function(func, cls, rel)
            self.functions.append(info)
            self.by_name.setdefault(info.name, []).append(info)

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add(node, None)
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        add(sub, node.name)

    def expand_deps(
        self, info: _FunctionInfo
    ) -> Tuple[Set[Tuple[Optional[str], str]], Set[Tuple[Optional[str], str]]]:
        """Class-qualified transitive reads plus the traversed functions.

        Returns ``(deps, visited)``: ``deps`` is the set of
        ``(owning class, normalized field)`` pairs read anywhere in the
        closure (the class is the one whose method performed the read —
        the closest thing to field ownership name-based analysis has),
        and ``visited`` the ``(class, function)`` pairs the closure
        traversed.  Expansion follows calls and property reads by bare
        name, within the starting function's package, skipping hub names
        defined in more than ``_MAX_FANOUT`` places.
        """
        memo = self._expanded
        cached = memo.get(id(info))
        if cached is not None:
            return cached
        deps: Set[Tuple[Optional[str], str]] = set()
        visited: Set[Tuple[Optional[str], str]] = set()
        seen: Set[int] = set()
        stack = [info]
        while stack:
            current = stack.pop()
            if id(current) in seen:
                continue
            seen.add(id(current))
            visited.add((current.cls, current.name))
            deps.update((current.cls, read) for read in current.reads)
            package = info.package

            def _resolve(name: str) -> List[_FunctionInfo]:
                candidates = [
                    c for c in self.by_name.get(name, ())
                    if c.package == package
                ]
                if name in current.self_names:
                    # self.<name> binds to this class: a namesake on
                    # another class must not pollute the closure.
                    candidates = [
                        c for c in candidates if c.cls == current.cls
                    ]
                if len(candidates) > _MAX_FANOUT:
                    return []
                return candidates

            for name in current.calls:
                if name in _EXPAND_STOPLIST or name.startswith("__"):
                    continue
                stack.extend(_resolve(name))
            # Properties read as plain attributes expand the same way —
            # but a read through another object (``self.device.x``)
            # could bind to any namesake property, so those only expand
            # when the package has exactly one definition.
            for read in current.reads:
                candidates = _resolve(read)
                if read not in current.self_names and len(candidates) > 1:
                    continue
                for candidate in candidates:
                    if "property" in _decorator_names(candidate.node):
                        stack.append(candidate)
        memo[id(info)] = (deps, visited)
        return deps, visited


def collect_cache_sites(
    roots: Optional[Sequence[Path]] = None,
    index: Optional[_RepoIndex] = None,
) -> List[CacheSite]:
    """Every cache-key / fingerprint site under ``roots``, deps expanded."""
    if index is None:
        index = _RepoIndex(roots or (SOURCE_ROOT,))
    sites: List[CacheSite] = []
    for info in index.functions:
        for site in _cache_sites_in(info):
            dep_pairs, _ = index.expand_deps(info)
            dep_fields = {field for _, field in dep_pairs}
            key_fields = set(site.key_fields)
            if site.kind == "fingerprint":
                # Fingerprints recompute per call: every dep is, by
                # construction, consumed — collected for inventory only.
                key_fields = set(dep_fields)
            sites.append(
                CacheSite(
                    path=site.path,
                    line=site.line,
                    cls=site.cls,
                    function=site.function,
                    kind=site.kind,
                    key_fields=tuple(sorted(key_fields)),
                    deps=tuple(sorted(dep_fields)),
                )
            )
    return sites


def collect_mutations(
    roots: Optional[Sequence[Path]] = None,
    index: Optional[_RepoIndex] = None,
) -> List[MutationSite]:
    """Every non-constructor attribute mutation under ``roots``."""
    if index is None:
        index = _RepoIndex(roots or (SOURCE_ROOT,))
    mutations: List[MutationSite] = []
    for info in index.functions:
        if info.name in _CTOR_NAMES:
            continue
        bumps = tuple(sorted(info.bumps))
        for field, line in info.mutations:
            if _CACHE_ATTR_RE.search(field):
                continue  # stores into the cache itself are bookkeeping
            mutations.append(
                MutationSite(
                    path=info.path,
                    line=line,
                    cls=info.cls,
                    function=info.name,
                    field=field,
                    bumps=bumps,
                )
            )
    return mutations


def check_cache_keys(
    roots: Optional[Sequence[Path]] = None,
) -> List[Finding]:
    """Flag cross-class mutations of cached inputs without a version bump.

    Returns ``source="dataflow"`` findings anchored at the mutation line
    (``subject`` names the cache site whose key goes stale), after
    ``# plmr: allow=`` suppressions.
    """
    index = _RepoIndex(roots or (SOURCE_ROOT,))
    mutations = collect_mutations(index=index)
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str, str]] = set()
    for info in index.functions:
        raw_sites = [
            s for s in _cache_sites_in(info) if s.kind != "fingerprint"
        ]
        if not raw_sites:
            continue
        dep_pairs, visited = index.expand_deps(info)
        for site in raw_sites:
            key_fields = set(site.key_fields)
            for mut in mutations:
                field = mut.norm_field
                if (mut.cls, field) not in dep_pairs:
                    continue  # field ownership (by class) must line up
                if field in key_fields:
                    continue
                if mut.package != info.package:
                    continue  # name-only matching is noise across packages
                if mut.cls is not None and mut.cls == site.cls:
                    continue  # a class managing its own cache is bookkeeping
                if mut.cls is None and site.cls is None and mut.path == site.path:
                    continue
                if (mut.cls, mut.function) in visited:
                    continue  # mutation happens while computing the value
                             # (lazy init / memo fill), not behind its back
                if (mut.cls, field) in index.store_fields:
                    continue  # the field is itself a key-addressed memo
                              # store; staleness is that site's concern
                callers = index.callers.get(mut.function, ())
                if callers and all(
                    c.name in _CTOR_NAMES and c.cls == mut.cls
                    for c in callers
                ):
                    continue  # helper invoked only from constructors:
                              # construction-time init, not a mutation
                if set(mut.bumps) & key_fields:
                    continue  # the retrain_link/links_version discipline
                dedup = (mut.path, mut.line, mut.field, site.label)
                if dedup in seen:
                    continue
                seen.add(dedup)
                findings.append(
                    Finding(
                        rule=RULE_ID,
                        message=(
                            f"{mut.label} mutates {mut.field!r}, an input "
                            f"of the {site.label} cache, but the key "
                            "consumes neither the field nor a version "
                            "counter this mutation bumps — cached values "
                            "go stale (the PR-6 retrain_link bug shape)"
                        ),
                        path=mut.path,
                        line=mut.line,
                        subject=site.label,
                        source="dataflow",
                    )
                )
    kept: List[Finding] = []
    for finding in findings:
        source = index.sources.get(finding.path or "")
        if source is not None and _is_suppressed(
            finding, _suppressions(source)
        ):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path or "", f.line or 0, f.subject or ""))
    return kept
