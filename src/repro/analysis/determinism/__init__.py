"""Determinism conformance analysis: the third leg of ``repro check``.

Everything the repo promises about replay — bit-exact
:class:`~repro.mesh.program.MeshProgram` replay, eager-identical batched
flows, and the fleet's sha256 ``timeline_signature`` identity — rests on
determinism invariants.  This package checks them instead of assuming
them, from three directions:

* :mod:`repro.analysis.determinism.rules` — static AST lint rules
  registered in the shared :mod:`repro.analysis.lint` engine:
  ``wall-clock-read``, ``unordered-iteration``,
  ``object-identity-ordering``, ``mutable-module-state``, and
  ``hashseed-dependent``;
* :mod:`repro.analysis.determinism.cachekeys` — a cross-module
  cache-key *version dataflow* pass that generalizes the PR-6
  ``retrain_link``/``links_version`` bug: every field a cached value
  depends on must either appear in the cache key or be shadowed by a
  version counter the key consumes, and every mutation of such a field
  must bump that counter;
* :mod:`repro.analysis.determinism.audit` — the dynamic
  :class:`ReplayAuditor`: run a serve / fleet / kernel scenario twice
  from the same seed, compare phase-granular timeline signatures, and
  localize the first divergent event with a readable diff.

``repro check --determinism`` (see :mod:`repro.cli`) wires all three;
the static sides also run under plain ``repro check``.
"""

from repro.analysis.determinism.audit import (
    SCENARIOS,
    AuditEvent,
    AuditReport,
    Divergence,
    ScenarioRun,
    audit_all,
    audit_scenario,
    run_scenario,
)
from repro.analysis.determinism.cachekeys import (
    CacheSite,
    MutationSite,
    check_cache_keys,
    collect_cache_sites,
    collect_mutations,
)
from repro.analysis.determinism import rules  # noqa: F401  (registers lint rules)

__all__ = [
    "SCENARIOS",
    "AuditEvent",
    "AuditReport",
    "CacheSite",
    "Divergence",
    "MutationSite",
    "ScenarioRun",
    "audit_all",
    "audit_scenario",
    "check_cache_keys",
    "collect_cache_sites",
    "collect_mutations",
    "run_scenario",
]
