"""The ReplayAuditor: double-run divergence detection and localization.

Static rules catch determinism hazards by shape; this module catches
them by behaviour.  A *scenario* is a named, seeded, end-to-end run —
serving a trace, surviving a fleet fault, executing a kernel — distilled
into an ordered stream of :class:`AuditEvent` records, each tagged with
the phase of the run it belongs to (``steps``, ``timeline``,
``shift``, ...).  The auditor runs a scenario twice (or more) from the
same seed and compares:

1. the **run signature** — one sha256 over every event in order; equal
   signatures mean the runs told the identical story;
2. on mismatch, the **phase signatures** — one digest per phase, in
   first-appearance order, to bisect the divergence to a phase without
   reading any events;
3. inside the first divergent phase, a linear scan to the first
   differing event, reported as a :class:`Divergence` with both sides
   and a few events of surrounding context.

``audit_scenario(..., perturb=...)`` applies a caller-supplied
perturbation to the final run's event stream — the harness the tests
(and ``repro check --inject-divergence``) use to prove the auditor
*would* catch a real divergence and point at the right event.

Findings carry ``source="audit"`` under rule ``replay-divergence``, so
``repro check --determinism`` merges them with the static sides.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.errors import ConfigurationError

RULE_ID = "replay-divergence"

#: Events of context shown on each side of a divergent event.
_CONTEXT_EVENTS = 2


@dataclass(frozen=True)
class AuditEvent:
    """One replay-relevant fact of a run: a phase label and a payload.

    Payloads are pre-formatted strings (times rendered at nanosecond
    precision) so comparison and hashing are unambiguous.
    """

    phase: str
    payload: str


@dataclass
class ScenarioRun:
    """The distilled event stream of one seeded scenario execution."""

    scenario: str
    seed: int
    events: List[AuditEvent] = field(default_factory=list)

    def phases(self) -> List[str]:
        """Phase labels in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.phase)
        return list(seen)

    def phase_events(self, phase: str) -> List[str]:
        """Payloads of one phase, in stream order."""
        return [e.payload for e in self.events if e.phase == phase]

    def phase_signatures(self) -> Dict[str, str]:
        """Per-phase sha256 digests, keyed in first-appearance order."""
        digests: Dict[str, "hashlib._Hash"] = {}
        for event in self.events:
            h = digests.get(event.phase)
            if h is None:
                h = digests[event.phase] = hashlib.sha256()
            h.update(event.payload.encode("utf-8"))
            h.update(b"\n")
        return {phase: h.hexdigest() for phase, h in digests.items()}

    def signature(self) -> str:
        """One digest over the whole run (phase tags included)."""
        h = hashlib.sha256()
        for event in self.events:
            h.update(f"{event.phase}|{event.payload}\n".encode("utf-8"))
        return h.hexdigest()


@dataclass(frozen=True)
class Divergence:
    """First point two same-seed runs told different stories."""

    phase: str
    index: int  # event index within the phase
    left: Optional[str]  # payload in the reference run (None: missing)
    right: Optional[str]  # payload in the diverged run (None: missing)
    context: Tuple[str, ...] = ()  # shared events leading up to it

    def render(self) -> str:
        """Readable diff of the first divergent event."""
        lines = [f"first divergence: phase {self.phase!r}, event {self.index}"]
        for payload in self.context:
            lines.append(f"      = {payload}")
        lines.append(f"    run A: {self.left if self.left is not None else '<no event>'}")
        lines.append(f"    run B: {self.right if self.right is not None else '<no event>'}")
        return "\n".join(lines)


def _locate_divergence(a: ScenarioRun, b: ScenarioRun) -> Optional[Divergence]:
    """Bisect by phase signature, then scan the divergent phase."""
    sig_a, sig_b = a.phase_signatures(), b.phase_signatures()
    if sig_a == sig_b:
        return None
    ordered = list(sig_a)
    ordered.extend(p for p in sig_b if p not in sig_a)
    for phase in ordered:
        if sig_a.get(phase) == sig_b.get(phase):
            continue
        left, right = a.phase_events(phase), b.phase_events(phase)
        for i in range(max(len(left), len(right))):
            la = left[i] if i < len(left) else None
            rb = right[i] if i < len(right) else None
            if la != rb:
                context = tuple(left[max(0, i - _CONTEXT_EVENTS):i])
                return Divergence(
                    phase=phase, index=i, left=la, right=rb, context=context
                )
    # Same per-phase content but different phase ordering between runs.
    return Divergence(
        phase=ordered[0], index=0,
        left="|".join(sig_a), right="|".join(sig_b),
    )


@dataclass
class AuditReport:
    """Outcome of auditing one scenario across N same-seed runs."""

    scenario: str
    seed: int
    runs: List[ScenarioRun]
    divergence: Optional[Divergence] = None

    @property
    def ok(self) -> bool:
        """Whether every run produced the identical event stream."""
        return self.divergence is None

    @property
    def signature(self) -> str:
        """The (shared, when ok) run signature of the reference run."""
        return self.runs[0].signature() if self.runs else ""

    def findings(self) -> List[Finding]:
        """The divergence as analysis findings (empty when ok)."""
        if self.divergence is None:
            return []
        d = self.divergence
        return [
            Finding(
                rule=RULE_ID,
                message=(
                    f"two seed={self.seed} runs diverged in phase "
                    f"{d.phase!r} at event {d.index}: "
                    f"{d.left!r} != {d.right!r}"
                ),
                subject=f"{self.scenario} scenario",
                source="audit",
            )
        ]

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form for ``repro check --json``."""
        data: Dict[str, object] = {
            "scenario": self.scenario,
            "seed": self.seed,
            "runs": len(self.runs),
            "ok": self.ok,
            "signature": self.signature,
            "phases": self.runs[0].phase_signatures() if self.runs else {},
            "divergence": None,
        }
        if self.divergence is not None:
            data["divergence"] = {
                "phase": self.divergence.phase,
                "index": self.divergence.index,
                "left": self.divergence.left,
                "right": self.divergence.right,
            }
        return data

    def render(self) -> str:
        """Human-readable audit block."""
        head = (
            f"{self.scenario}: {len(self.runs)} runs, seed {self.seed} — "
            + ("identical" if self.ok else "DIVERGED")
        )
        lines = [head]
        if self.runs:
            phases = self.runs[0].phase_signatures()
            counts = {
                p: len(self.runs[0].phase_events(p)) for p in phases
            }
            for phase, digest in phases.items():
                lines.append(
                    f"  {phase}: {counts[phase]} events, {digest[:16]}"
                )
        if self.divergence is not None:
            lines.append("  " + self.divergence.render().replace("\n", "\n  "))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------

def _serve_scenario(seed: int) -> ScenarioRun:
    """One faulty serving run on the smoke model/device pair.

    Faults matter here: the injector's Bernoulli stream and the backoff
    jitter are exactly the state a replay bug would corrupt first.
    """
    from repro.core.device_presets import get_device
    from repro.llm.config import get_model
    from repro.mesh.faults import FaultInjector, derive_seed
    from repro.serving.chunked import WaferServer
    from repro.serving.trace import synthetic_trace

    device = get_device("ipu-like-crossbar")
    model = get_model("tiny-gqa")
    trace = synthetic_trace(
        10, seed=seed, mean_interarrival_s=0.01,
        seq_in_range=(64, 128), seq_out_range=(8, 16),
        ttft_slo_s=5.0, tpot_slo_s=0.5,
    )
    server = WaferServer(
        model, device, chunk_tokens=64, default_context_len=256,
        fault_injector=FaultInjector(
            0.05, seed=derive_seed(seed, "serve-audit"), jitter=True
        ),
    )
    metrics = server.serve(trace)
    events: List[AuditEvent] = []
    for request in metrics.rejected:
        events.append(AuditEvent("admission", f"reject|{request.request_id}"))
    for e in metrics.events:
        events.append(AuditEvent(
            "steps",
            f"{e.start_s:.9f}|{e.end_s:.9f}|{e.kind}|{e.decode_batch}"
            f"|{e.chunk_tokens}|{e.kv_tokens}|{e.queue_depth}",
        ))
    for s in metrics.completed:
        events.append(AuditEvent(
            "requests",
            f"{s.request.request_id}|{s.prefill_start_s:.9f}"
            f"|{s.first_token_s:.9f}|{s.finish_s:.9f}"
            f"|{s.prefill_chunks}|{s.preemptions}|{s.retries}",
        ))
    for f in metrics.fault_log:
        events.append(AuditEvent(
            "faults",
            f"{f.at_s:.9f}|{f.kind}|{f.action}|{f.downtime_s:.9f}|{f.detail}",
        ))
    return ScenarioRun("serve", seed, events)


def _fleet_scenario(seed: int) -> ScenarioRun:
    """The fleet smoke shape: burst trace, mid-trace wafer loss."""
    from repro.core.device_presets import get_device
    from repro.fleet.chaos import poisson_trace, run_chaos
    from repro.fleet.faults import FleetFaultEvent, FleetFaultSchedule
    from repro.fleet.fleet import FleetConfig
    from repro.llm.config import get_model

    device = get_device("ipu-like-crossbar")
    model = get_model("tiny-gqa")
    trace = poisson_trace(
        12, seed=seed, mean_interarrival_s=0.0,
        seq_in_range=(64, 128), seq_out_range=(8, 16), n_sessions=3,
    )

    def config() -> FleetConfig:
        return FleetConfig(
            n_wafers=3, chunk_tokens=64, default_context_len=256, seed=seed,
        )

    clean = run_chaos(model, device, trace, config())
    horizon = clean.makespan_s
    schedule = FleetFaultSchedule(events=[
        FleetFaultEvent(
            at_s=horizon * 0.4, kind="wafer_down", wafer=0,
            duration_s=horizon * 0.3, detail="audit wafer loss",
        ),
    ], seed=seed)
    metrics = run_chaos(model, device, trace, config(), schedule=schedule)
    events: List[AuditEvent] = []
    for e in metrics.timeline:
        events.append(AuditEvent(
            "timeline", f"{e.at_s:.9f}|{e.kind}|{e.wafer}|{e.detail}"
        ))
    for o in metrics.outcomes:
        wafers = ",".join(str(w) for w in o.wafers)
        events.append(AuditEvent(
            "outcomes",
            f"{o.request.request_id}|{o.dispatches}|{o.migrations}"
            f"|{o.retries}|{o.first_token_s:.9f}|{o.finish_s:.9f}"
            f"|{int(o.completed)}|{int(o.lost)}|{wafers}",
        ))
    for wafer, segments in enumerate(metrics.wafer_segments):
        for epoch, seg in enumerate(segments):
            events.append(AuditEvent(
                "segments",
                f"{wafer}|{epoch}|{seg.makespan_s:.9f}|{seg.finished}"
                f"|{seg.retries}|{seg.total_decode_tokens}",
            ))
    return ScenarioRun("fleet", seed, events)


def _kernel_scenario(seed: int) -> ScenarioRun:
    """One MeshGEMM execution, its trace replayed phase by phase."""
    from repro.mesh.trace import BarrierRecord, CommRecord, ComputeRecord
    from repro.profiling import build_case, run_case

    dim = 16 + 4 * (seed % 4)
    machine = run_case(build_case("meshgemm", 4, dim=dim))
    events: List[AuditEvent] = []
    for record in machine.trace.events():
        phase = record.phase or "unphased"
        if isinstance(record, CommRecord):
            payload = (
                f"comm|{record.step}|{record.pattern}|{record.num_flows}"
                f"|{record.max_hops}|{record.total_hops}"
                f"|{record.max_payload_bytes}|{record.total_payload_bytes}"
                f"|{record.group}|{record.seq}"
            )
        elif isinstance(record, ComputeRecord):
            payload = (
                f"compute|{record.step}|{record.label}|{record.max_macs:.3f}"
                f"|{record.total_macs:.3f}|{record.num_cores}"
                f"|{record.group}|{record.seq}"
            )
        else:
            assert isinstance(record, BarrierRecord)
            payload = (
                f"barrier|{record.step}|{record.pattern}"
                f"|{record.group}|{record.seq}"
            )
        events.append(AuditEvent(phase, payload))
    return ScenarioRun("kernel", seed, events)


#: Scenario name -> ``callable(seed) -> ScenarioRun``.
SCENARIOS: Dict[str, Callable[[int], ScenarioRun]] = {
    "serve": _serve_scenario,
    "fleet": _fleet_scenario,
    "kernel": _kernel_scenario,
}


def run_scenario(name: str, seed: int = 0) -> ScenarioRun:
    """Execute one scenario once and return its event stream."""
    try:
        runner = SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown audit scenario {name!r}; choose from {list(SCENARIOS)}"
        ) from None
    return runner(seed)


def audit_scenario(
    name: str,
    seed: int = 0,
    runs: int = 2,
    perturb: Optional[
        Callable[[List[AuditEvent]], List[AuditEvent]]
    ] = None,
) -> AuditReport:
    """Run a scenario ``runs`` times from one seed and compare streams.

    ``perturb`` rewrites the final run's event list before comparison —
    the injected-divergence harness proving the auditor localizes a real
    mismatch (it never touches the scenario itself).
    """
    if runs < 2:
        raise ConfigurationError(
            "auditing needs at least 2 runs to compare"
        )
    executed = [run_scenario(name, seed) for _ in range(runs)]
    if perturb is not None:
        last = executed[-1]
        executed[-1] = ScenarioRun(
            last.scenario, last.seed, list(perturb(list(last.events)))
        )
    divergence: Optional[Divergence] = None
    reference = executed[0]
    for candidate in executed[1:]:
        divergence = _locate_divergence(reference, candidate)
        if divergence is not None:
            break
    return AuditReport(
        scenario=name, seed=seed, runs=executed, divergence=divergence
    )


def audit_all(
    seed: int = 0,
    runs: int = 2,
    scenarios: Optional[Sequence[str]] = None,
) -> List[AuditReport]:
    """Audit every (or the named) scenario; reports in scenario order."""
    names = list(scenarios) if scenarios is not None else list(SCENARIOS)
    return [audit_scenario(name, seed=seed, runs=runs) for name in names]
