"""Orchestration for ``repro check``: run the lint, the cache-key
dataflow pass, the sanitizer — and, on request, the replay auditor —
then merge the findings into one report.

The lint side walks the extended sweep (``src/repro``, ``tests``,
``tools``, ``benchmarks``; fixtures excluded) with every registered AST
rule and subtracts the baseline; the dataflow side checks every
cache-key site against repo-wide mutations of its inputs; the sanitize
side executes the clean kernel suite (plus the attention path and
remapped variants) and checks each trace against its machine's PLMR
limits; the determinism side replays serve / fleet / kernel scenarios
twice from one seed and requires identical phase signatures.
``CheckReport.ok`` is the ``--strict`` exit criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.findings import Finding
from repro.analysis.lint.baseline import (
    BASELINE_PATH,
    apply_baseline,
    load_baseline,
)
from repro.analysis.lint.engine import DEFAULT_ROOTS, SOURCE_ROOT, lint_repo


@dataclass
class CheckReport:
    """Combined outcome of one ``repro check`` invocation."""

    lint_findings: List[Finding] = field(default_factory=list)
    dataflow_findings: List[Finding] = field(default_factory=list)
    sanitize_findings: List[Finding] = field(default_factory=list)
    audit_findings: List[Finding] = field(default_factory=list)
    kernels_checked: List[str] = field(default_factory=list)
    audits: List[object] = field(default_factory=list)  # AuditReport
    baselined: int = 0

    @property
    def findings(self) -> List[Finding]:
        return [
            *self.lint_findings,
            *self.dataflow_findings,
            *self.sanitize_findings,
            *self.audit_findings,
        ]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "lint": [f.to_dict() for f in self.lint_findings],
            "dataflow": [f.to_dict() for f in self.dataflow_findings],
            "sanitize": [f.to_dict() for f in self.sanitize_findings],
            "audit": [f.to_dict() for f in self.audit_findings],
            "kernels_checked": list(self.kernels_checked),
            "audits": [a.to_dict() for a in self.audits],
            "baselined": self.baselined,
        }

    def render(self) -> str:
        lines: List[str] = []
        lines.append(
            f"lint: {len(self.lint_findings)} finding(s)"
            + (f" ({self.baselined} baselined)" if self.baselined else "")
        )
        lines.extend("  " + f.render() for f in self.lint_findings)
        lines.append(f"dataflow: {len(self.dataflow_findings)} finding(s)")
        lines.extend("  " + f.render() for f in self.dataflow_findings)
        lines.append(
            f"sanitize: {len(self.sanitize_findings)} finding(s) over "
            f"{len(self.kernels_checked)} trace(s)"
        )
        lines.extend("  " + f.render() for f in self.sanitize_findings)
        if self.audits:
            lines.append(
                f"determinism: {len(self.audit_findings)} finding(s) over "
                f"{len(self.audits)} scenario(s)"
            )
            for audit in self.audits:
                lines.extend("  " + ln for ln in audit.render().splitlines())
        lines.append("check: " + ("OK" if self.ok else "FAIL"))
        return "\n".join(lines)


def run_check(
    lint: bool = True,
    sanitize: bool = True,
    determinism: bool = False,
    grid: int = 4,
    kernels: Optional[List[str]] = None,
    remapped: bool = True,
    source_root: Optional[Path] = None,
    lint_roots: Optional[Sequence[Path]] = None,
    baseline_path: Path = BASELINE_PATH,
    audit_seed: int = 0,
    audit_runs: int = 2,
    scenarios: Optional[Sequence[str]] = None,
) -> CheckReport:
    """Run the requested sides of the conformance check.

    ``source_root`` narrows the static sides (lint + dataflow) to one
    tree — used by tests; the default sweeps ``DEFAULT_ROOTS`` for the
    lint and ``src/repro`` for the dataflow pass.
    """
    report = CheckReport()
    if lint:
        if source_root is not None:
            roots: Sequence[Path] = (source_root,)
        else:
            roots = tuple(lint_roots) if lint_roots else DEFAULT_ROOTS
        raw = lint_repo(roots)
        kept = apply_baseline(raw, load_baseline(baseline_path))
        report.lint_findings = kept
        report.baselined = len(raw) - len(kept)

        from repro.analysis.determinism.cachekeys import check_cache_keys

        dataflow_roots = (source_root,) if source_root is not None else (
            SOURCE_ROOT,
        )
        raw_flow = check_cache_keys(roots=dataflow_roots)
        kept_flow = apply_baseline(raw_flow, load_baseline(baseline_path))
        report.dataflow_findings = kept_flow
        report.baselined += len(raw_flow) - len(kept_flow)
    if sanitize:
        from repro.analysis.kernels import run_kernel_checks

        sanitize_reports = run_kernel_checks(
            grid=grid,
            kernels=kernels,
            remapped=("meshgemm", "meshgemv") if remapped else (),
        )
        for sub in sanitize_reports:
            report.kernels_checked.append(sub.subject)
            report.sanitize_findings.extend(sub.findings)
    if determinism:
        from repro.analysis.determinism.audit import audit_all

        report.audits = list(
            audit_all(seed=audit_seed, runs=audit_runs, scenarios=scenarios)
        )
        for audit in report.audits:
            report.audit_findings.extend(audit.findings())
    return report
