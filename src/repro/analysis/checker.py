"""Orchestration for ``repro check``: run the lint, run the sanitizer,
merge the findings into one report.

The lint side walks ``src/repro`` with every registered AST rule and
subtracts the baseline; the sanitize side executes the clean kernel
suite (plus the attention path and remapped variants) and checks each
trace against its machine's PLMR limits.  ``CheckReport.ok`` is the
``--strict`` exit criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.lint.baseline import (
    BASELINE_PATH,
    apply_baseline,
    load_baseline,
)
from repro.analysis.lint.engine import SOURCE_ROOT, lint_tree


@dataclass
class CheckReport:
    """Combined outcome of one ``repro check`` invocation."""

    lint_findings: List[Finding] = field(default_factory=list)
    sanitize_findings: List[Finding] = field(default_factory=list)
    kernels_checked: List[str] = field(default_factory=list)
    baselined: int = 0

    @property
    def findings(self) -> List[Finding]:
        return [*self.lint_findings, *self.sanitize_findings]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "lint": [f.to_dict() for f in self.lint_findings],
            "sanitize": [f.to_dict() for f in self.sanitize_findings],
            "kernels_checked": list(self.kernels_checked),
            "baselined": self.baselined,
        }

    def render(self) -> str:
        lines: List[str] = []
        lines.append(
            f"lint: {len(self.lint_findings)} finding(s)"
            + (f" ({self.baselined} baselined)" if self.baselined else "")
        )
        lines.extend("  " + f.render() for f in self.lint_findings)
        lines.append(
            f"sanitize: {len(self.sanitize_findings)} finding(s) over "
            f"{len(self.kernels_checked)} trace(s)"
        )
        lines.extend("  " + f.render() for f in self.sanitize_findings)
        lines.append("check: " + ("OK" if self.ok else "FAIL"))
        return "\n".join(lines)


def run_check(
    lint: bool = True,
    sanitize: bool = True,
    grid: int = 4,
    kernels: Optional[List[str]] = None,
    remapped: bool = True,
    source_root: Path = SOURCE_ROOT,
    baseline_path: Path = BASELINE_PATH,
) -> CheckReport:
    """Run the requested sides of the conformance check."""
    report = CheckReport()
    if lint:
        raw = lint_tree(source_root)
        kept = apply_baseline(raw, load_baseline(baseline_path))
        report.lint_findings = kept
        report.baselined = len(raw) - len(kept)
    if sanitize:
        from repro.analysis.kernels import run_kernel_checks

        sanitize_reports = run_kernel_checks(
            grid=grid,
            kernels=kernels,
            remapped=("meshgemm", "meshgemv") if remapped else (),
        )
        for sub in sanitize_reports:
            report.kernels_checked.append(sub.subject)
            report.sanitize_findings.extend(sub.findings)
    return report
