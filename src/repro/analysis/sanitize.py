"""Dynamic trace sanitizer (side 2 of the PLMR checker).

Replays a :class:`~repro.mesh.trace.Trace` phase stream and flags PLMR
violations the type system cannot catch:

* ``hop-bound`` — a shift-pattern flow travelled more hops than the
  INTERLEAVE bound allows (L);
* ``memory-capacity`` — a core's resident high-water exceeded the
  device's per-core SRAM budget (M);
* ``routing-fanin`` — a core participates in more route colours than
  ``max_paths_per_core`` (R);
* ``unregistered-pattern`` — a traced pattern never went through
  ``FabricModel.register()``, so the lazy bandwidth/paths accounting
  silently missed it;
* ``barrier-hazard`` — inside an ``overlap`` phase group, a compute
  consumed a tile a flow delivered earlier in the same group with no
  barrier in between (the comm producing an input cannot overlap the
  compute reading it);
* ``deadlock-cycle`` — separate communication records in one overlap
  group form a cyclic read-after-write dependency (cyclic wait): each
  record's source tile is produced by the other, so neither transfer can
  start first.  A ring exchange issued as *one* ``communicate()`` call
  is sanctioned — the machine reads all sources before writing — which
  is exactly why split-up rings are a deadlock candidate.

On a remapped fabric (:class:`~repro.mesh.remap.RemappedTopology`) the
hop bound is widened to the worst *physical* distance between cores that
are logical neighbours within the bound — detours around dead links are
legitimate, teleporting across the wafer is not; see
:func:`physical_shift_bound`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.mesh.topology import Coord, MeshTopology
from repro.mesh.trace import (
    BarrierRecord,
    CommRecord,
    ComputeRecord,
    Trace,
)

#: Comm patterns treated as cyclic shifts for the hop-bound check.
#: Alignment/placement phases legitimately cross the mesh (grid-1 hops
#: on Cannon-style skews), so the L bound only binds true shift steps.
DEFAULT_SHIFT_PATTERN = r"shift|ring|rot"


@dataclass
class SanitizePolicy:
    """Limits the sanitizer enforces over one trace.

    ``None`` limits disable the corresponding check; callers usually get
    a fully-populated policy from :func:`policy_for_machine`.
    ``registered_patterns=None`` falls back to the colours the trace
    itself forwarded from the fabric (sufficient for hand-built traces).
    """

    shift_hop_bound: int = 2
    shift_pattern: str = DEFAULT_SHIFT_PATTERN
    core_memory_bytes: Optional[int] = None
    max_paths_per_core: Optional[int] = None
    registered_patterns: Optional[Set[str]] = None
    check_registration: bool = True


@dataclass
class SanitizeReport:
    """Findings of one sanitizer pass over one trace."""

    subject: str
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        if self.ok:
            return f"{self.subject}: clean"
        lines = [f.render() for f in self.findings]
        return "\n".join(lines)


def _finding(rule: str, subject: str, message: str) -> Finding:
    return Finding(rule=rule, message=message, subject=subject, source="sanitize")


# ----------------------------------------------------------------------
# individual checks
# ----------------------------------------------------------------------

def _check_hop_bounds(
    trace: Trace, policy: SanitizePolicy, subject: str
) -> List[Finding]:
    pattern_re = re.compile(policy.shift_pattern, re.IGNORECASE)
    findings: List[Finding] = []
    for comm in trace.comms:
        if not pattern_re.search(comm.pattern):
            continue
        if comm.flows:
            offenders = [f for f in comm.flows if f.hops > policy.shift_hop_bound]
            for flow in offenders:
                findings.append(_finding(
                    "hop-bound", subject,
                    f"shift pattern {comm.pattern!r} moves "
                    f"{flow.src}->{flow.dsts[0] if flow.dsts else '?'} over "
                    f"{flow.hops} hops (bound {policy.shift_hop_bound}) — "
                    "INTERLEAVE placement keeps every cyclic shift local",
                ))
        elif comm.max_hops > policy.shift_hop_bound:
            findings.append(_finding(
                "hop-bound", subject,
                f"shift pattern {comm.pattern!r} reaches {comm.max_hops} hops "
                f"(bound {policy.shift_hop_bound})",
            ))
    return findings


def _check_memory(
    trace: Trace, policy: SanitizePolicy, subject: str
) -> List[Finding]:
    limit = policy.core_memory_bytes
    if limit is None:
        return []
    findings: List[Finding] = []
    if trace.core_peak_bytes:
        for coord in sorted(trace.core_peak_bytes):
            peak = trace.core_peak_bytes[coord]
            if peak > limit:
                findings.append(_finding(
                    "memory-capacity", subject,
                    f"core {coord} peaked at {peak} resident bytes "
                    f"(budget {limit}) — the M property is per-core SRAM",
                ))
    elif trace.peak_memory_bytes > limit:
        findings.append(_finding(
            "memory-capacity", subject,
            f"peak resident memory {trace.peak_memory_bytes} bytes exceeds "
            f"the per-core budget {limit}",
        ))
    return findings


def _check_fanin(
    trace: Trace, policy: SanitizePolicy, subject: str
) -> List[Finding]:
    limit = policy.max_paths_per_core
    if limit is None:
        return []
    findings: List[Finding] = []
    for coord, count in sorted(trace.paths_map().items()):
        if count > limit:
            findings.append(_finding(
                "routing-fanin", subject,
                f"core {coord} participates in {count} route colours "
                f"(device allows {limit}) — the R property is scarce "
                "router state, not a soft hint",
            ))
    return findings


def _check_registration(
    trace: Trace, policy: SanitizePolicy, subject: str
) -> List[Finding]:
    if not policy.check_registration:
        return []
    registered = (
        policy.registered_patterns
        if policy.registered_patterns is not None
        else trace.registered_colours()
    )
    findings: List[Finding] = []
    for pattern in sorted(trace.patterns() - registered):
        findings.append(_finding(
            "unregistered-pattern", subject,
            f"pattern {pattern!r} appears in the trace but was never "
            "registered with the fabric — flow_bandwidth_factor/paths_at "
            "accounting silently missed it",
        ))
    return findings


def _check_barrier_hazards(
    trace: Trace, subject: str
) -> List[Finding]:
    findings: List[Finding] = []
    for scope, events in trace.phase_groups():
        if scope.kind != "overlap":
            continue
        # tile name -> (seq, pattern) of the flow that last wrote it
        delivered: Dict[str, Tuple[int, str]] = {}
        for event in events:
            if isinstance(event, BarrierRecord):
                delivered.clear()
            elif isinstance(event, CommRecord):
                for flow in event.flows:
                    if flow.dst_name:
                        delivered[flow.dst_name] = (event.seq, event.pattern)
            elif isinstance(event, ComputeRecord):
                for name in (*event.reads, *event.writes):
                    hit = delivered.get(name)
                    if hit is not None:
                        findings.append(_finding(
                            "barrier-hazard", subject,
                            f"overlap phase {scope.label!r}: compute "
                            f"{event.label!r} touches tile {name!r} delivered "
                            f"by flow {hit[1]!r} in the same phase with no "
                            "barrier between — a compute cannot overlap the "
                            "communication producing its input",
                        ))
    return findings


def _check_deadlock(trace: Trace, subject: str) -> List[Finding]:
    findings: List[Finding] = []
    for scope, events in trace.phase_groups():
        if scope.kind not in ("overlap", "gather"):
            continue
        comms = [e for e in events if isinstance(e, CommRecord) and e.flows]
        if len(comms) < 2:
            continue
        reads: List[Set[Tuple[str, Coord]]] = []
        writes: List[Set[Tuple[str, Coord]]] = []
        for comm in comms:
            r: Set[Tuple[str, Coord]] = set()
            w: Set[Tuple[str, Coord]] = set()
            for flow in comm.flows:
                if flow.src_name:
                    r.add((flow.src_name, flow.src))
                if flow.dst_name:
                    for dst in flow.dsts:
                        w.add((flow.dst_name, dst))
            reads.append(r)
            writes.append(w)
        # Record i waits on record j when i's source tile is j's delivery.
        edges: Dict[int, Set[int]] = {
            i: {
                j
                for j in range(len(comms))
                if j != i and reads[i] & writes[j]
            }
            for i in range(len(comms))
        }
        cycle = _find_cycle(edges)
        if cycle:
            names = " -> ".join(comms[i].pattern for i in cycle)
            findings.append(_finding(
                "deadlock-cycle", subject,
                f"overlap phase {scope.label!r}: communication records form "
                f"a cyclic wait ({names}) — each transfer's source is the "
                "other's delivery, so neither can start; issue the exchange "
                "as one communicate() call (sources read before writes)",
            ))
    return findings


def _find_cycle(edges: Dict[int, Set[int]]) -> Optional[List[int]]:
    """First cycle in a small digraph, as a node list (or ``None``)."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in edges}
    stack: List[int] = []

    def visit(node: int) -> Optional[List[int]]:
        colour[node] = GREY
        stack.append(node)
        for nxt in sorted(edges.get(node, ())):
            if colour[nxt] == GREY:
                return stack[stack.index(nxt):]
            if colour[nxt] == WHITE:
                found = visit(nxt)
                if found:
                    return found
        stack.pop()
        colour[node] = BLACK
        return None

    for node in sorted(edges):
        if colour[node] == WHITE:
            found = visit(node)
            if found:
                return found
    return None


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def sanitize_trace(
    trace: Trace,
    policy: Optional[SanitizePolicy] = None,
    subject: str = "<trace>",
) -> SanitizeReport:
    """Run every check over one trace; returns the report."""
    policy = policy or SanitizePolicy()
    findings: List[Finding] = []
    findings.extend(_check_hop_bounds(trace, policy, subject))
    findings.extend(_check_memory(trace, policy, subject))
    findings.extend(_check_fanin(trace, policy, subject))
    findings.extend(_check_registration(trace, policy, subject))
    findings.extend(_check_barrier_hazards(trace, subject))
    findings.extend(_check_deadlock(trace, subject))
    return SanitizeReport(subject=subject, findings=findings)


def physical_shift_bound(
    topology: MeshTopology, logical_bound: int = 2
) -> int:
    """Physical hop bound equivalent to a logical shift bound.

    On a healthy mesh this is ``logical_bound`` exactly.  On a remapped
    topology, cores that are logical neighbours can sit several physical
    hops apart (remap displacement, dead-link detours), so the bound is
    the worst physical distance over all pairs within ``logical_bound``
    logical hops — tightest bound that accepts every legitimate shift.
    """
    bound = logical_bound
    coords = list(topology.coords())
    for (ax, ay) in coords:
        for dx in range(-logical_bound, logical_bound + 1):
            for dy in range(-logical_bound + abs(dx), logical_bound - abs(dx) + 1):
                bx, by = ax + dx, ay + dy
                if (dx, dy) == (0, 0):
                    continue
                if 0 <= bx < topology.width and 0 <= by < topology.height:
                    bound = max(
                        bound, topology.hop_distance((ax, ay), (bx, by))
                    )
    return bound


def policy_for_machine(machine) -> SanitizePolicy:
    """Build the policy one machine's device/fabric/topology implies."""
    return SanitizePolicy(
        shift_hop_bound=physical_shift_bound(machine.topology),
        core_memory_bytes=machine.device.core_memory_bytes,
        max_paths_per_core=machine.device.max_paths_per_core,
        registered_patterns=machine.fabric.registered_patterns(),
    )


def sanitize_machine(
    machine, subject: str = "<machine>", policy: Optional[SanitizePolicy] = None
) -> SanitizeReport:
    """Sanitize the trace a machine accumulated, under its own limits."""
    return sanitize_trace(
        machine.trace, policy or policy_for_machine(machine), subject
    )
