"""The initial PLMR lint rule catalogue.

Four rules, mirroring the invariants the mesh machine and the paper's
PLMR model rely on:

* ``raw-trace-record`` — kernels must not call ``Trace.record_*``
  directly (migrated from the old regex lint in
  ``tools/lint_trace_api.py``);
* ``unseeded-rng`` — no unseeded ``random`` / ``np.random`` use inside
  ``src/repro`` (traces and fault schedules must replay byte-identically);
* ``non-neighbour-shift`` — literal coordinates in kernel communication
  calls must stay within the 2-hop INTERLEAVE bound;
* ``bare-advance-step`` — stepping belongs to ``machine.phase()`` scopes,
  not loose ``advance_step()`` calls that leave events unscoped.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.lint.engine import LintRule, register_rule

Coord = Tuple[int, int]

#: Path fragments (repo-relative, ``/``-separated) of kernel modules —
#: the code that builds flows and drives the machine.
KERNEL_PATH_FRAGMENTS = (
    "src/repro/gemm/",
    "src/repro/gemv/",
    "src/repro/collectives/",
    "src/repro/ops/",
    "src/repro/llm/",
)


def _norm(rel_path: str) -> str:
    return rel_path.replace("\\", "/")


def _literal_coord(node: ast.AST) -> Optional[Coord]:
    """``(x, y)`` when the node is a literal pair of non-negative ints."""
    if not isinstance(node, ast.Tuple) or len(node.elts) != 2:
        return None
    values: List[int] = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, int):
            values.append(elt.value)
        else:
            return None
    return (values[0], values[1])


def _manhattan(a: Coord, b: Coord) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def _call_name(func: ast.AST) -> str:
    """Trailing name of the called object (``Flow.unicast`` -> ``unicast``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@register_rule
class RawTraceRecordRule(LintRule):
    """No raw ``Trace.record_*`` calls outside the machine.

    The replayable phase stream depends on every event carrying its
    phase scope, per-flow detail, and per-core MAC list — which only the
    ``MeshMachine`` wrappers fill in.  Only the machine (and the trace
    module that defines the API) may record directly.
    """

    rule_id = "raw-trace-record"
    description = "Trace.record_* called outside repro/mesh/machine.py"

    ALLOWED_SUFFIXES = ("src/repro/mesh/machine.py", "src/repro/mesh/trace.py")
    RECORD_METHODS = frozenset({"record_comm", "record_compute", "record_barrier"})

    def applies_to(self, rel_path: str) -> bool:
        return not _norm(rel_path).endswith(self.ALLOWED_SUFFIXES)

    def check(
        self, tree: ast.AST, rel_path: str, source: str
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.RECORD_METHODS
            ):
                yield self.finding(
                    rel_path,
                    node,
                    f"direct trace recording ({node.func.attr}); route it "
                    "through machine.communicate / compute / barrier so the "
                    "phase stream stays replayable",
                )


@register_rule
class UnseededRngRule(LintRule):
    """No unseeded randomness in ``src/repro``.

    Traces, defect maps, and fault schedules must replay byte-identically
    from their seeds; module-level ``random.*`` / legacy ``np.random.*``
    state (or a no-argument ``Random()`` / ``default_rng()``) breaks that.
    """

    rule_id = "unseeded-rng"
    description = "unseeded random/np.random use in src/repro"

    def applies_to(self, rel_path: str) -> bool:
        return "src/repro/" in _norm(rel_path) or _norm(rel_path).startswith(
            "src/repro"
        )

    def check(
        self, tree: ast.AST, rel_path: str, source: str
    ) -> Iterator[Finding]:
        random_aliases: Set[str] = set()
        numpy_aliases: Set[str] = set()
        np_random_aliases: Set[str] = set()
        bare_fn_imports: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
                    elif alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random" and alias.asname:
                        np_random_aliases.add(alias.asname)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in ("Random", "SystemRandom"):
                            bare_fn_imports.add(alias.asname or alias.name)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            np_random_aliases.add(alias.asname or "random")

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # stdlib: random.X(...) on the module object
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in random_aliases
            ):
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            rel_path, node,
                            "random.Random() without a seed — pass an "
                            "explicit seed so runs replay deterministically",
                        )
                else:
                    yield self.finding(
                        rel_path, node,
                        f"random.{func.attr}() uses the global (unseeded) RNG "
                        "— use a seeded random.Random instance",
                    )
                continue
            # from random import shuffle; shuffle(...) — global state too
            if isinstance(func, ast.Name) and func.id in bare_fn_imports:
                yield self.finding(
                    rel_path, node,
                    f"{func.id}() from the random module uses global RNG "
                    "state — use a seeded random.Random instance",
                )
                continue
            # numpy: np.random.X(...) or npr.X(...)
            attr = None
            if isinstance(func, ast.Attribute):
                base = func.value
                if (
                    isinstance(base, ast.Attribute)
                    and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in numpy_aliases
                ):
                    attr = func.attr
                elif isinstance(base, ast.Name) and base.id in np_random_aliases:
                    attr = func.attr
            if attr is None:
                continue
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        rel_path, node,
                        "np.random.default_rng() without a seed — pass an "
                        "explicit seed so runs replay deterministically",
                    )
            elif attr not in ("Generator", "SeedSequence", "PCG64", "Philox"):
                yield self.finding(
                    rel_path, node,
                    f"np.random.{attr}() uses numpy's legacy global RNG — "
                    "use a seeded np.random.default_rng generator",
                )


@register_rule
class NonNeighbourShiftRule(LintRule):
    """Literal coordinates in kernel flows must respect the 2-hop bound.

    Under INTERLEAVE placement every cyclic shift is at most 2 physical
    hops; a kernel hard-coding a farther literal pair is either not a
    shift (and should say so) or an L violation waiting for the
    sanitizer.  Only literal ``(x, y)`` pairs are checked — computed
    coordinates are the sanitizer's job at runtime.
    """

    rule_id = "non-neighbour-shift"
    description = "literal flow coordinates farther than 2 hops in kernel code"

    HOP_BOUND = 2

    def applies_to(self, rel_path: str) -> bool:
        rel = _norm(rel_path)
        return any(fragment in rel for fragment in KERNEL_PATH_FRAGMENTS)

    def check(
        self, tree: ast.AST, rel_path: str, source: str
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name in ("unicast", "point_to_point"):
                coords = [c for c in map(_literal_coord, node.args) if c]
                if len(coords) >= 2:
                    yield from self._check_pair(
                        rel_path, node, name, coords[0], coords[1]
                    )
            elif name == "multicast":
                src = _literal_coord(node.args[0]) if node.args else None
                dsts_node = node.args[1] if len(node.args) > 1 else None
                if src and isinstance(dsts_node, (ast.List, ast.Tuple)):
                    for elt in dsts_node.elts:
                        dst = _literal_coord(elt)
                        if dst:
                            yield from self._check_pair(
                                rel_path, node, name, src, dst
                            )
            elif name == "shift_named":
                for arg in node.args:
                    if isinstance(arg, ast.Dict):
                        for key, value in zip(arg.keys, arg.values):
                            src = _literal_coord(key) if key else None
                            dst = _literal_coord(value)
                            if src and dst:
                                yield from self._check_pair(
                                    rel_path, node, name, src, dst
                                )

    def _check_pair(
        self, rel_path: str, node: ast.AST, via: str, src: Coord, dst: Coord
    ) -> Iterator[Finding]:
        hops = _manhattan(src, dst)
        if hops > self.HOP_BOUND:
            yield self.finding(
                rel_path, node,
                f"{via} from {src} to {dst} is {hops} hops — kernel flows "
                f"must stay within the {self.HOP_BOUND}-hop INTERLEAVE bound",
            )


@register_rule
class RegionCarveOutOutsidePlannerRule(LintRule):
    """Region carve-outs are planner output, not ad-hoc layout decisions.

    The placement subsystem searches, scores, and *validates* every
    region it emits; a ``RegionCarveOut(...)`` constructed elsewhere in
    ``src/repro`` bypasses that pipeline — it is exactly the fragmented
    placement logic the planner refactor removed.  Other layers obtain
    regions from a :class:`~repro.placement.plan.PlacementPlan` or the
    helpers in :mod:`repro.placement.plan` (the deprecation shims'
    constructions are baselined).
    """

    rule_id = "region-carveout-outside-planner"
    description = "RegionCarveOut constructed outside src/repro/placement/"

    def applies_to(self, rel_path: str) -> bool:
        rel = _norm(rel_path)
        return "src/repro/" in rel and "src/repro/placement/" not in rel

    def check(
        self, tree: ast.AST, rel_path: str, source: str
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and _call_name(node.func) == "RegionCarveOut"
            ):
                yield self.finding(
                    rel_path, node,
                    "direct RegionCarveOut construction outside the "
                    "placement subsystem; obtain regions from a "
                    "PlacementPlan (or repro.placement.plan helpers) so "
                    "they are searched and validated, not hand-chosen",
                )


@register_rule
class BareAdvanceStepRule(LintRule):
    """No bare ``advance_step()`` outside the machine.

    The step counter advances when a ``machine.phase()`` scope exits;
    loose ``advance_step()`` calls leave the events around them unscoped,
    which the reconciler lowers as degenerate singleton phases.
    """

    rule_id = "bare-advance-step"
    description = "bare advance_step() outside machine.phase() scopes"

    ALLOWED_SUFFIXES = ("src/repro/mesh/machine.py",)

    def applies_to(self, rel_path: str) -> bool:
        return not _norm(rel_path).endswith(self.ALLOWED_SUFFIXES)

    def check(
        self, tree: ast.AST, rel_path: str, source: str
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "advance_step"
            ):
                yield self.finding(
                    rel_path, node,
                    "bare advance_step(); wrap the phase's events in a "
                    "machine.phase(...) scope, which advances the step on exit",
                )
