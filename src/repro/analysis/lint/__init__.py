"""AST-based pluggable lint framework (side 1 of the PLMR checker)."""

from repro.analysis.lint.baseline import (
    BASELINE_PATH,
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint.engine import (
    REPO_ROOT,
    SOURCE_ROOT,
    LintRule,
    all_rules,
    lint_file,
    lint_source,
    lint_tree,
    register_rule,
    rule_ids,
)

__all__ = [
    "BASELINE_PATH",
    "REPO_ROOT",
    "SOURCE_ROOT",
    "LintRule",
    "all_rules",
    "apply_baseline",
    "fingerprint",
    "lint_file",
    "lint_source",
    "lint_tree",
    "load_baseline",
    "register_rule",
    "rule_ids",
    "write_baseline",
]
