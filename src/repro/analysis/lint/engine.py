"""AST-based pluggable lint engine for the repro source tree.

Rules subclass :class:`LintRule` and register through
:func:`register_rule`; each receives the parsed module, its source text,
and a repo-relative path, and yields :class:`~repro.analysis.findings.Finding`
objects.  Compared with the regex lint this replaces, operating on the
AST means string literals, comments, and docstrings can never false-
positive — only real call sites are visited.

Suppression
-----------
A finding is suppressed by a comment on the offending line::

    machine.advance_step()  # plmr: allow=bare-advance-step

``allow=`` takes a comma-separated list of rule ids or ``*``.  Comments
are read with :mod:`tokenize`, so suppressions inside strings do not
count.  Persistent exceptions belong in the baseline file instead
(:mod:`repro.analysis.lint.baseline`).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

from repro.analysis.findings import Finding

REPO_ROOT = Path(__file__).resolve().parents[4]
SOURCE_ROOT = REPO_ROOT / "src" / "repro"
#: Trees swept by :func:`lint_repo` (the extended sweep ``repro check``
#: and ``--update-baseline`` run).  ``tests/fixtures`` is excluded by
#: :func:`lint_repo` itself: fixtures *seed* findings on purpose.
DEFAULT_ROOTS = (
    SOURCE_ROOT,
    REPO_ROOT / "tests",
    REPO_ROOT / "tools",
    REPO_ROOT / "benchmarks",
)

_ALLOW_COMMENT = re.compile(r"#\s*plmr:\s*allow=([\w\-*,\s]+)")


class LintRule:
    """Base class for one lint rule.

    Subclasses set ``rule_id`` / ``description`` and implement
    :meth:`check`.  ``paths`` may restrict the rule to path fragments
    (relative, ``/``-separated); empty means every file.
    """

    rule_id: str = ""
    description: str = ""

    def applies_to(self, rel_path: str) -> bool:
        """Whether this rule runs on the file at ``rel_path``."""
        return True

    def check(
        self, tree: ast.AST, rel_path: str, source: str
    ) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def finding(self, rel_path: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at an AST node."""
        return Finding(
            rule=self.rule_id,
            message=message,
            path=rel_path,
            line=getattr(node, "lineno", None),
            source="lint",
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}  # plmr: allow=mutable-module-state  (import-time only: register_rule rejects re-registration)


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must set rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def _load_rule_modules() -> None:
    # Importing the rule modules populates the registry.
    from repro.analysis.determinism import rules as _det_rules  # noqa: F401
    from repro.analysis.lint import rules as _rules  # noqa: F401


def all_rules() -> List[LintRule]:
    """Fresh instances of every registered rule, import side effects included."""
    _load_rule_modules()
    return [cls() for cls in _REGISTRY.values()]


def rule_ids() -> List[str]:
    """Stable list of registered rule ids."""
    _load_rule_modules()
    return list(_REGISTRY)


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids allowed by a ``plmr: allow=`` comment."""
    allowed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_COMMENT.search(tok.string)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                allowed.setdefault(tok.start[0], set()).update(ids - {""})
    except tokenize.TokenError:  # pragma: no cover - malformed source
        pass
    return allowed


def _is_suppressed(finding: Finding, allowed: Dict[int, Set[str]]) -> bool:
    if finding.line is None:
        return False
    ids = allowed.get(finding.line)
    return bool(ids) and ("*" in ids or finding.rule in ids)


def lint_source(
    source: str,
    rel_path: str,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint one module given as text; returns unsuppressed findings."""
    if rules is None:
        rules = all_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="syntax-error",
                message=f"cannot parse: {exc.msg}",
                path=rel_path,
                line=exc.lineno,
                source="lint",
            )
        ]
    allowed = _suppressions(source)
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(rel_path):
            continue
        for finding in rule.check(tree, rel_path, source):
            if not _is_suppressed(finding, allowed):
                findings.append(finding)
    return findings


def lint_file(
    path: Path, rules: Optional[Sequence[LintRule]] = None
) -> List[Finding]:
    """Lint one file on disk (path reported relative to the repo root)."""
    try:
        rel = str(path.resolve().relative_to(REPO_ROOT))
    except ValueError:
        rel = str(path)
    return lint_source(path.read_text(encoding="utf-8"), rel, rules)


def lint_tree(
    root: Path = SOURCE_ROOT,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint every ``*.py`` under ``root``, in sorted path order."""
    if rules is None:
        rules = all_rules()
    findings: List[Finding] = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(lint_file(path, rules))
    return findings


def lint_repo(
    roots: Sequence[Path] = DEFAULT_ROOTS,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """The extended sweep: lint src, tests, tools and benchmarks.

    ``tests/fixtures`` is skipped — those modules seed findings on
    purpose so the analyzers' true-positive tests have something to
    catch.
    """
    if rules is None:
        rules = all_rules()
    findings: List[Finding] = []
    for root in roots:
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.py")):
            rel = str(path.resolve()).replace("\\", "/")
            if "/tests/fixtures/" in rel:
                continue
            findings.extend(lint_file(path, rules))
    return findings
