"""Baseline support: adopt the lint without fixing history first.

A baseline file records fingerprints of known, accepted findings so
``repro check`` only fails on *new* violations.  Fingerprints hash the
rule id, the repo-relative path, and the normalized source line — not
the line *number* — so unrelated edits above a baselined finding do not
invalidate it, while any change to the offending line itself surfaces
the finding again.

The repo keeps its baseline at ``tools/lint_baseline.json`` (empty: the
tree lints clean); ``repro check --update-baseline`` rewrites it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.lint.engine import REPO_ROOT

BASELINE_PATH = REPO_ROOT / "tools" / "lint_baseline.json"
BASELINE_VERSION = 1


def _context_line(finding: Finding) -> str:
    """The normalized source line a finding points at ('' when unknown)."""
    if finding.path is None or finding.line is None:
        return ""
    path = REPO_ROOT / finding.path
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
        return " ".join(lines[finding.line - 1].split())
    except (OSError, IndexError):
        return ""


def fingerprint(finding: Finding, context: Optional[str] = None) -> str:
    """Stable identity of a finding: sha1 of rule | path | source line."""
    if context is None:
        context = _context_line(finding)
    payload = f"{finding.rule}|{finding.path or ''}|{context}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


def load_baseline(path: Path = BASELINE_PATH) -> Set[str]:
    """Fingerprints recorded in the baseline file (empty when absent)."""
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    return set(data.get("fingerprints", []))


def apply_baseline(
    findings: List[Finding], baseline: Set[str]
) -> List[Finding]:
    """Drop findings whose fingerprint is baselined."""
    if not baseline:
        return list(findings)
    return [f for f in findings if fingerprint(f) not in baseline]


def write_baseline(
    findings: List[Finding], path: Path = BASELINE_PATH
) -> Dict[str, object]:
    """Record the given findings as the new accepted baseline."""
    data: Dict[str, object] = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted({fingerprint(f) for f in findings}),
    }
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return data
