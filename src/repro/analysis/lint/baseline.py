"""Baseline support: adopt the lint without fixing history first.

A baseline file records fingerprints of known, accepted findings so
``repro check`` only fails on *new* violations.  Fingerprints hash the
rule id, the file *basename*, and the normalized source line — not the
line number or the directory — so unrelated edits above a baselined
finding, and moving a module between directories, do not invalidate it,
while any change to the offending line itself surfaces the finding
again.  (Version 2 of the format; version-1 files hashed the full
relative path and are discarded on load so stale entries cannot mask
new findings.)

The repo keeps its baseline at ``tools/lint_baseline.json`` (empty: the
tree lints clean); ``repro check --update-baseline`` rewrites it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.lint.engine import REPO_ROOT

BASELINE_PATH = REPO_ROOT / "tools" / "lint_baseline.json"
BASELINE_VERSION = 2


def _context_line(finding: Finding) -> str:
    """The normalized source line a finding points at ('' when unknown)."""
    if finding.path is None or finding.line is None:
        return ""
    path = REPO_ROOT / finding.path
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
        return " ".join(lines[finding.line - 1].split())
    except (OSError, IndexError):
        return ""


def fingerprint(finding: Finding, context: Optional[str] = None) -> str:
    """Stable identity of a finding: sha1 of rule | basename | source line.

    Using the basename instead of the full relative path keeps the
    fingerprint stable when a module moves between directories — the
    finding's identity is the offending line, not where it lives.
    """
    if context is None:
        context = _context_line(finding)
    basename = (finding.path or "").replace("\\", "/").rsplit("/", 1)[-1]
    payload = f"{finding.rule}|{basename}|{context}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


def load_baseline(path: Path = BASELINE_PATH) -> Set[str]:
    """Fingerprints recorded in the baseline file (empty when absent).

    A file written by an older ``BASELINE_VERSION`` is ignored — its
    fingerprints use a different recipe, and silently honouring them
    would let stale entries mask genuinely new findings.
    """
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        return set()
    return set(data.get("fingerprints", []))


def apply_baseline(
    findings: List[Finding], baseline: Set[str]
) -> List[Finding]:
    """Drop findings whose fingerprint is baselined."""
    if not baseline:
        return list(findings)
    return [f for f in findings if fingerprint(f) not in baseline]


def write_baseline(
    findings: List[Finding], path: Path = BASELINE_PATH
) -> Dict[str, object]:
    """Record the given findings as the new accepted baseline."""
    data: Dict[str, object] = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted({fingerprint(f) for f in findings}),
    }
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return data
