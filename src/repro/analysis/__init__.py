"""PLMR conformance checking: static lint rules + dynamic trace sanitizer.

Two sides, one currency (:class:`~repro.analysis.findings.Finding`):

* :mod:`repro.analysis.lint` — AST-based pluggable rules over the
  source tree (raw trace recording, unseeded RNG, non-neighbour literal
  flows, bare ``advance_step``), with suppression comments and a
  baseline file;
* :mod:`repro.analysis.sanitize` — replays any executed
  :class:`~repro.mesh.trace.Trace` and flags hop-bound breaches, memory
  capacity overruns, routing fan-in, unregistered patterns, barrier
  hazards, and cyclic-wait deadlock candidates.

``repro check`` (see :mod:`repro.cli`) wires both over the kernel zoo.
"""

from repro.analysis.checker import CheckReport, run_check
from repro.analysis.findings import Finding, render_findings
from repro.analysis.sanitize import (
    SanitizePolicy,
    SanitizeReport,
    physical_shift_bound,
    policy_for_machine,
    sanitize_machine,
    sanitize_trace,
)

__all__ = [
    "CheckReport",
    "Finding",
    "SanitizePolicy",
    "SanitizeReport",
    "physical_shift_bound",
    "policy_for_machine",
    "render_findings",
    "run_check",
    "sanitize_machine",
    "sanitize_trace",
]
