"""Simulator micro-benchmarks: what compiled execution actually buys.

The cost model answers "how fast is the *wafer*"; this module answers
"how fast is the *simulator*" — the wall-clock price of one functional
decode step, prefill GEMM, or allreduce, with and without the compiled
execution layer (route caching + capture/replay + vectorized tile
compute, see DESIGN.md §10).

Timing discipline: the container this runs in is noisy (2-8x swings
between runs), so every benchmark interleaves its modes round-robin and
keeps the per-mode **minimum** over many rounds — ambient load then hits
all modes equally and the floor approximates the true cost.  Reported
*ratios* (replay vs capture, vectorized vs scalar) are therefore far
more stable than the absolute milliseconds, and the CI regression check
compares only ratios.

``run_benchmarks`` returns a plain dict; ``python -m repro bench``
writes it to ``BENCH_simulator.json`` at the repo root, which is the
single source the EXPERIMENTS.md generator and the CI perf-smoke step
read.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core import WSE2

#: Canonical artifact name, written at the repository root.
BENCH_FILENAME = "BENCH_simulator.json"
SCHEMA_VERSION = 1

#: CI warns (non-blocking) when a speedup ratio degrades by more than
#: this fraction relative to the committed baseline.
REGRESSION_TOLERANCE = 0.20


def _interleaved_best(
    modes: Dict[str, Callable[[], int]], rounds: int
) -> Dict[str, float]:
    """Per-mode best seconds-per-iteration over interleaved rounds.

    Each callable runs one round and returns the number of iterations it
    performed; modes alternate within every round so transient load
    penalises all of them equally.
    """
    best = {name: float("inf") for name in modes}
    for _ in range(rounds):
        for name, fn in modes.items():
            t0 = time.perf_counter()
            iters = fn()
            dt = (time.perf_counter() - t0) / iters
            if dt < best[name]:
                best[name] = dt
    return best


# ---------------------------------------------------------------------------
# Individual benchmarks
# ---------------------------------------------------------------------------
def bench_decode_gemv(smoke: bool = False) -> Dict[str, float]:
    """Repeated decode-step GEMV: eager vs per-call capture vs replay.

    The decode workhorse — ``[1, k] @ [k, n]`` against stationary
    weights — run through :class:`~repro.llm.mesh_ops.MeshOpContext`
    three ways: the eager reference path, the compiled path with caches
    cleared before every call (so each step pays a full capture), and
    the compiled path warm (weight-stationary replay).
    """
    from repro.llm.mesh_ops import MeshOpContext

    # Smoke keeps the full shapes (ratios must be comparable with the
    # committed baseline) and only cuts repetitions.
    grid, dim = 8, 64
    iters = 10 if smoke else 50
    rounds = 3 if smoke else 12

    rng = np.random.default_rng(0)
    weights = rng.standard_normal((dim, dim)).astype(np.float32)
    vecs = [rng.standard_normal(dim).astype(np.float32) for _ in range(iters)]

    eager = MeshOpContext(device=WSE2, grid=grid)
    cold = MeshOpContext(device=WSE2, grid=grid, compiled=True, vectorize=True)
    warm = MeshOpContext(device=WSE2, grid=grid, compiled=True, vectorize=True)
    warm.gemv(vecs[0], weights)  # one-time capture

    def run_eager() -> int:
        for vec in vecs:
            eager.gemv(vec, weights)
        return iters

    def run_capture() -> int:
        for vec in vecs:
            cold._programs.clear()
            cold._resident.clear()
            cold.gemv(vec, weights)
        return iters

    def run_replay() -> int:
        for vec in vecs:
            warm.gemv(vec, weights)
        return iters

    best = _interleaved_best(
        {"eager": run_eager, "capture": run_capture, "replay": run_replay},
        rounds,
    )
    # Replay must stay bit-exact with the eager reference.
    for vec in vecs[: min(4, iters)]:
        if not np.array_equal(eager.gemv(vec, weights),
                              warm.gemv(vec, weights)):
            raise AssertionError("replayed GEMV diverged from eager path")
    return {
        "grid": grid,
        "dim": dim,
        "eager_ms": best["eager"] * 1e3,
        "capture_ms": best["capture"] * 1e3,
        "replay_ms": best["replay"] * 1e3,
        "replay_vs_capture": best["capture"] / best["replay"],
        "replay_vs_eager": best["eager"] / best["replay"],
        # The warm replay path *is* the batched flow engine (compiled
        # tape + SoA comm records); this key names the ratio the CI
        # perf-smoke step and the PR 6 acceptance criterion track.
        "batched_vs_eager": best["eager"] / best["replay"],
    }


def bench_prefill_gemm(smoke: bool = False) -> Dict[str, float]:
    """Prefill GEMM: eager vs compiled replay, plus vectorize on/off.

    Prefill runs the *same-shaped* MeshGEMM once per layer, so after the
    first layer captures the program every later layer replays it —
    skipping route walks, flow-record construction, and fabric
    registration (the dominant cost; the kernel is comm-bound in the
    simulator).  ``vectorized_vs_scalar`` additionally reports the
    stacked-compute path against the per-core loop on the eager kernel;
    it is roughly neutral at paper tile sizes because per-core tile
    bookkeeping, not arithmetic, bounds the simulator (see DESIGN.md
    §10).
    """
    from repro.llm.mesh_ops import MeshOpContext

    grid, dim = 8, 64
    iters = 2 if smoke else 8
    rounds = 3 if smoke else 8

    rng = np.random.default_rng(1)
    mats = [
        (rng.standard_normal((dim, dim)).astype(np.float32),
         rng.standard_normal((dim, dim)).astype(np.float32))
        for _ in range(iters)
    ]

    eager = MeshOpContext(device=WSE2, grid=grid)
    compiled = MeshOpContext(device=WSE2, grid=grid, compiled=True)
    stacked = MeshOpContext(device=WSE2, grid=grid, vectorize=True)
    compiled.gemm(*mats[0])  # one-time capture

    def run_eager() -> int:
        for a, b in mats:
            eager.gemm(a, b)
        return iters

    def run_replay() -> int:
        for a, b in mats:
            compiled.gemm(a, b)
        return iters

    def run_vectorized() -> int:
        for a, b in mats:
            stacked.gemm(a, b)
        return iters

    best = _interleaved_best(
        {"eager": run_eager, "replay": run_replay,
         "vectorized": run_vectorized},
        rounds,
    )
    a, b = mats[0]
    expected = eager.gemm(a, b)
    if not np.array_equal(expected, compiled.gemm(a, b)):
        raise AssertionError("replayed GEMM diverged from eager path")
    if not np.array_equal(expected, stacked.gemm(a, b)):
        raise AssertionError("vectorized GEMM diverged from eager path")
    return {
        "grid": grid,
        "dim": dim,
        "eager_ms": best["eager"] * 1e3,
        "replay_ms": best["replay"] * 1e3,
        "vectorized_ms": best["vectorized"] * 1e3,
        "replay_vs_eager": best["eager"] / best["replay"],
        "vectorized_vs_scalar": best["eager"] / best["vectorized"],
    }


def bench_allreduce(smoke: bool = False) -> Dict[str, float]:
    """Line allreduce (K-tree): eager vs compiled capture/replay."""
    from repro.llm.mesh_ops import MeshOpContext

    grid, length = 8, 256
    iters = 10 if smoke else 50
    rounds = 3 if smoke else 12

    rng = np.random.default_rng(2)
    vals = [rng.standard_normal(length).astype(np.float64)
            for _ in range(iters)]

    eager = MeshOpContext(device=WSE2, grid=grid)
    warm = MeshOpContext(device=WSE2, grid=grid, compiled=True)
    warm.reduce_sum(vals[0])  # one-time capture

    def run_eager() -> int:
        for v in vals:
            eager.reduce_sum(v)
        return iters

    def run_replay() -> int:
        for v in vals:
            warm.reduce_sum(v)
        return iters

    best = _interleaved_best(
        {"eager": run_eager, "replay": run_replay}, rounds
    )
    for v in vals[: min(4, iters)]:
        if eager.reduce_sum(v) != warm.reduce_sum(v):
            raise AssertionError("replayed allreduce diverged from eager path")
    return {
        "grid": grid,
        "length": length,
        "eager_ms": best["eager"] * 1e3,
        "replay_ms": best["replay"] * 1e3,
        "replay_vs_eager": best["eager"] / best["replay"],
    }


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------
def run_benchmarks(smoke: bool = False) -> Dict[str, object]:
    """Run the full simulator benchmark suite and return the report dict."""
    return {
        "schema": SCHEMA_VERSION,
        "suite": "simulator",
        "smoke": smoke,
        "benchmarks": {
            "decode_gemv": bench_decode_gemv(smoke),
            "prefill_gemm": bench_prefill_gemm(smoke),
            "allreduce": bench_allreduce(smoke),
        },
    }


#: name -> (path into the benchmarks dict, higher-is-better ratio key)
RATIO_KEYS = {
    "decode_gemv.replay_vs_capture": ("decode_gemv", "replay_vs_capture"),
    "decode_gemv.replay_vs_eager": ("decode_gemv", "replay_vs_eager"),
    "decode_gemv.batched_vs_eager": ("decode_gemv", "batched_vs_eager"),
    "prefill_gemm.replay_vs_eager": ("prefill_gemm", "replay_vs_eager"),
    "prefill_gemm.vectorized_vs_scalar": (
        "prefill_gemm", "vectorized_vs_scalar"),
    "allreduce.replay_vs_eager": ("allreduce", "replay_vs_eager"),
}


def compare_to_baseline(
    report: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Machine-independent regression check: compare speedup *ratios*.

    Absolute milliseconds differ per machine; the ratio of two modes
    measured back-to-back on the same machine is portable.  Returns a
    list of human-readable warnings (empty when no ratio degraded by
    more than ``tolerance``).
    """
    warnings: List[str] = []
    new = report.get("benchmarks", {})
    old = baseline.get("benchmarks", {})
    for label, (bench, key) in RATIO_KEYS.items():
        try:
            current = float(new[bench][key])
            reference = float(old[bench][key])
        except (KeyError, TypeError, ValueError):
            continue
        if reference <= 0:
            continue
        if current < reference * (1.0 - tolerance):
            warnings.append(
                f"{label}: {current:.2f}x is more than "
                f"{tolerance:.0%} below baseline {reference:.2f}x"
            )
    return warnings


def write_report(report: Dict[str, object], path: Path) -> None:
    """Write the benchmark report as stable, diff-friendly JSON."""
    rounded = json.loads(json.dumps(report), parse_float=lambda s: round(float(s), 4))
    path.write_text(json.dumps(rounded, indent=2, sort_keys=True) + "\n")


def load_report(path: Path) -> Optional[Dict[str, object]]:
    """Load a committed benchmark report; ``None`` when absent/corrupt."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None
