"""Serving-loop macro-benchmarks: what horizon stepping actually buys.

:mod:`repro.bench.simbench` times the functional simulator's inner
kernels; this module times the *serving simulation* end to end — whole
traces through :class:`~repro.serving.chunked.ServeEngine` and whole
chaos scenarios through :class:`~repro.fleet.router.FleetRouter` — with
the macro-compiled loop (``horizon=True``: shape-keyed step-cost cache,
horizon-batched decode, incremental scheduling) against the per-event
reference loop (``horizon=False``).  The headline metric is
**simulated requests per wall-second**.

Every scenario run is asserted bit-identical across the two modes
before its timings count: same ``FleetMetrics.timeline_signature``,
same summaries, same per-request outcomes.  The benchmark is therefore
also a differential test — a speedup that changes a single clock tick
fails the run instead of publishing a wrong number.

Timing discipline follows simbench: modes interleave round-robin and
the per-mode **minimum** over rounds is kept, so ambient container load
hits both modes equally and reported *ratios* stay stable even when
the absolute milliseconds swing.  ``--smoke`` keeps every scenario at
full shape (ratios must remain comparable with the committed baseline)
and only cuts the number of rounds.

``python -m repro bench --suite serving`` writes the report to
``BENCH_serving.json`` at the repo root — the single source the
EXPERIMENTS.md generator and the CI perf-smoke step read.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

from repro.bench.simbench import load_report, write_report  # noqa: F401
from repro.core import WSE2
from repro.fleet.chaos import bursty_trace, poisson_trace, run_chaos
from repro.fleet.faults import FleetFaultEvent, FleetFaultSchedule
from repro.fleet.fleet import FleetConfig
from repro.fleet.metrics import FleetMetrics
from repro.llm.config import get_model
from repro.serving.chunked import ServeEngine, WaferServer
from repro.serving.metrics import ServingMetrics
from repro.serving.trace import synthetic_trace

#: Canonical artifact name, written at the repository root.
BENCH_FILENAME = "BENCH_serving.json"
SCHEMA_VERSION = 1

#: CI warns (non-blocking) when a speedup ratio degrades by more than
#: this fraction relative to the committed baseline.
REGRESSION_TOLERANCE = 0.20

#: Fixed seed: the benchmark doubles as a differential test, so the
#: workload must replay identically everywhere.
SEED = 0

#: One scenario: (requests served, run(horizon) -> metrics).
Scenario = Tuple[int, Callable[[bool], object]]


# ---------------------------------------------------------------------------
# Scenario construction
# ---------------------------------------------------------------------------
def _serve_scenarios(model, device) -> Dict[str, Scenario]:
    """Single-wafer traces through ``ServeEngine``, one per serve mode."""
    trace = synthetic_trace(
        16, seed=SEED, mean_interarrival_s=0.02,
        seq_in_range=(256, 1024), seq_out_range=(96, 256),
        ttft_slo_s=5.0, tpot_slo_s=0.5,
    )

    def run(mode: str, horizon: bool) -> ServingMetrics:
        server = WaferServer(
            model, device, mode=mode, chunk_tokens=256,
            default_context_len=2048,
        )
        return ServeEngine(server, trace, horizon=horizon).run()

    return {
        "serve_chunked": (
            len(trace), lambda horizon: run("chunked", horizon)),
        "serve_exclusive": (
            len(trace), lambda horizon: run("exclusive", horizon)),
    }


def _fleet_scenarios(model, device) -> Dict[str, Scenario]:
    """The fleet chaos ladder plus a decode-heavy bursty scenario.

    Mirrors :func:`repro.fleet.chaos.chaos_sweep` construction: a clean
    reference run pins the fault horizon, then wafer-down and churn
    schedules derive from it.  ``fleet_bursty`` is the headline
    decode-bound scenario — long outputs, flash-crowd arrivals, a
    mid-trace wafer loss — where horizon batching has the most per-step
    overhead to erase.
    """
    def config(horizon: bool) -> FleetConfig:
        return FleetConfig(
            n_wafers=3, chunk_tokens=256, default_context_len=2048,
            seed=SEED, horizon=horizon,
        )

    trace = poisson_trace(
        24, seed=SEED, mean_interarrival_s=0.02,
        seq_in_range=(256, 1024), seq_out_range=(32, 128),
        ttft_slo_s=5.0, tpot_slo_s=0.5,
    )
    bursts = bursty_trace(
        32, seed=SEED, seq_in_range=(256, 512), seq_out_range=(192, 384),
        ttft_slo_s=5.0, tpot_slo_s=0.5,
    )
    # The clean reference run pins every schedule's fault horizon (and
    # warms the shared step-cost cache before any timing starts).
    horizon_s = run_chaos(model, device, trace, config(False)).makespan_s

    def down_mid() -> FleetFaultSchedule:
        return FleetFaultSchedule(events=[FleetFaultEvent(
            at_s=horizon_s * 0.4, kind="wafer_down", wafer=0,
            duration_s=horizon_s * 0.2, detail="planned mid-trace loss",
        )], seed=SEED)

    def churn() -> FleetFaultSchedule:
        return FleetFaultSchedule.generate(
            3, horizon_s, seed=SEED,
            wafer_down_rate_hz=4.0 / horizon_s,
            wafer_degraded_rate_hz=2.0 / horizon_s,
            down_duration_s=horizon_s * 0.1,
            degraded_duration_s=horizon_s * 0.2,
        )

    return {
        "fleet_clean": (len(trace), lambda h: run_chaos(
            model, device, trace, config(h))),
        "fleet_wafer_down": (len(trace), lambda h: run_chaos(
            model, device, trace, config(h), schedule=down_mid())),
        "fleet_churn": (len(trace), lambda h: run_chaos(
            model, device, trace, config(h), schedule=churn())),
        "fleet_bursty": (len(bursts), lambda h: run_chaos(
            model, device, bursts, config(h), schedule=down_mid())),
    }


# ---------------------------------------------------------------------------
# Equivalence oracle
# ---------------------------------------------------------------------------
def _assert_identical(name: str, reference, horizon) -> None:
    """Both modes must produce the same simulation, bit for bit."""
    if isinstance(reference, FleetMetrics):
        if reference.timeline_signature() != horizon.timeline_signature():
            raise AssertionError(
                f"{name}: horizon timeline diverged from reference")
        checks = (
            ("summary", reference.summary(), horizon.summary()),
            ("outcomes", reference.outcomes, horizon.outcomes),
            ("segments", reference.wafer_segments, horizon.wafer_segments),
        )
    else:
        checks = (("metrics", reference, horizon),)
    for what, ref_val, fast_val in checks:
        if ref_val != fast_val:
            raise AssertionError(
                f"{name}: horizon {what} diverged from reference")


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------
def _bench_scenario(
    name: str, scenario: Scenario, rounds: int
) -> Dict[str, float]:
    """Interleaved best-of-``rounds`` timing of one scenario."""
    n_requests, run = scenario
    best = {"reference": float("inf"), "horizon": float("inf")}
    for round_idx in range(rounds):
        results = {}
        for mode, flag in (("reference", False), ("horizon", True)):
            t0 = time.perf_counter()
            results[mode] = run(flag)
            dt = time.perf_counter() - t0
            if dt < best[mode]:
                best[mode] = dt
        # The first round doubles as the differential test; later
        # rounds are pure timing (determinism is separately audited).
        if round_idx == 0:
            _assert_identical(name, results["reference"], results["horizon"])
    return {
        "n_requests": n_requests,
        "reference_ms": best["reference"] * 1e3,
        "horizon_ms": best["horizon"] * 1e3,
        "reference_rps": n_requests / best["reference"],
        "horizon_rps": n_requests / best["horizon"],
        "horizon_vs_reference": best["reference"] / best["horizon"],
    }


def run_benchmarks(smoke: bool = False) -> Dict[str, object]:
    """Run the serving benchmark suite and return the report dict."""
    model = get_model("llama3-8b")
    device = WSE2
    rounds = 2 if smoke else 5
    scenarios: Dict[str, Scenario] = {}
    scenarios.update(_serve_scenarios(model, device))
    scenarios.update(_fleet_scenarios(model, device))
    return {
        "schema": SCHEMA_VERSION,
        "suite": "serving",
        "smoke": smoke,
        "model": model.name,
        "device": device.name,
        "benchmarks": {
            name: _bench_scenario(name, scenario, rounds)
            for name, scenario in scenarios.items()
        },
    }


def compare_to_baseline(
    report: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Machine-independent regression check on ``horizon_vs_reference``.

    Same discipline as simbench: absolute milliseconds differ per
    machine, the ratio of two modes measured back-to-back does not.
    Returns human-readable warnings (empty when nothing degraded more
    than ``tolerance``); never raises.
    """
    warnings: List[str] = []
    new = report.get("benchmarks", {})
    old = baseline.get("benchmarks", {})
    for name in sorted(set(new) & set(old)):
        try:
            current = float(new[name]["horizon_vs_reference"])
            reference = float(old[name]["horizon_vs_reference"])
        except (KeyError, TypeError, ValueError):
            continue
        if reference <= 0:
            continue
        if current < reference * (1.0 - tolerance):
            warnings.append(
                f"{name}.horizon_vs_reference: {current:.2f}x is more "
                f"than {tolerance:.0%} below baseline {reference:.2f}x"
            )
    return warnings
