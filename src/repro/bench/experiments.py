"""Experiment runners regenerating every table and figure of Section 7.

Each ``run_*`` function computes the measured values for one published
table/figure and returns structured results; benchmarks print them next
to the paper numbers and assert the qualitative claims.  Everything runs
on the calibrated WSE-2 preset unless a device is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines import GPUModel, LadderSystem, T10System
from repro.bench import paper_data
from repro.core.device_presets import WSE2
from repro.core.plmr import PLMRDevice
from repro.gemm import CannonGEMM, MeshGEMM, SummaGEMM
from repro.gemm.base import GemmShape
from repro.gemv import MeshGEMV, PipelineGEMV
from repro.llm.config import get_model
from repro.llm.kvcache import (
    ConcatKVCache,
    ShiftKVCache,
    capacity_geometry,
)
from repro.llm.wafer_system import WaferLLMSystem
from repro.mesh.energy import energy_ratio


@dataclass
class CellResult:
    """One measured cell with its paper counterpart."""

    label: str
    measured: float
    paper: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)


def _systems(device: PLMRDevice):
    return {
        "waferllm": WaferLLMSystem(device),
        "t10": T10System(device),
        "ladder": LadderSystem(device),
    }


# ---------------------------------------------------------------------------
# Table 2: end-to-end throughput
# ---------------------------------------------------------------------------

def run_table2(device: PLMRDevice = WSE2) -> List[CellResult]:
    """End-to-end generated tokens/s for every Table 2 cell."""
    systems = _systems(device)
    results: List[CellResult] = []
    for model_name, configs in paper_data.TABLE2.items():
        model = get_model(model_name)
        prefill_grid, decode_grid = paper_data.TABLE2_GRIDS[model_name]
        for (seq_in, seq_out), published in configs.items():
            for system_name, system in systems.items():
                gen = system.generation(
                    model, seq_in, seq_out, prefill_grid, decode_grid
                )
                results.append(
                    CellResult(
                        label=f"{model_name} {seq_in}/{seq_out} {system_name}",
                        measured=gen.throughput_tokens_per_s,
                        paper=published[system_name],
                    )
                )
    return results


# ---------------------------------------------------------------------------
# Table 3 / Table 4: prefill and decode throughput sweeps
# ---------------------------------------------------------------------------

def run_table3(device: PLMRDevice = WSE2) -> List[CellResult]:
    """Prefill tokens/s across core configurations (seq 4096)."""
    systems = _systems(device)
    results: List[CellResult] = []
    for model_name, by_grid in paper_data.TABLE3.items():
        model = get_model(model_name)
        for grid, published in by_grid.items():
            for system_name, system in systems.items():
                measured = system.prefill_throughput(model, 4096, grid)
                results.append(
                    CellResult(
                        label=f"{model_name}@{grid} {system_name}",
                        measured=measured,
                        paper=published[system_name],
                    )
                )
    return results


def run_table4(device: PLMRDevice = WSE2) -> List[CellResult]:
    """Decode tokens/s across core configurations."""
    systems = _systems(device)
    context = paper_data.TABLE4_CONTEXT
    results: List[CellResult] = []
    for model_name, by_grid in paper_data.TABLE4.items():
        model = get_model(model_name)
        for grid, published in by_grid.items():
            for system_name, system in systems.items():
                measured = system.decode_throughput(model, context, grid)
                results.append(
                    CellResult(
                        label=f"{model_name}@{grid} {system_name}",
                        measured=measured,
                        paper=published[system_name],
                    )
                )
    return results


# ---------------------------------------------------------------------------
# Figure 9: MeshGEMM vs SUMMA vs Cannon
# ---------------------------------------------------------------------------

def run_figure9(
    device: PLMRDevice = WSE2,
    sizes: Tuple[int, ...] = paper_data.FIGURE9_SIZES,
    grids: Tuple[int, ...] = paper_data.FIGURE9_GRIDS,
) -> List[CellResult]:
    """Total/compute/comm cycles for each kernel at each sweep point."""
    results: List[CellResult] = []
    for dim in sizes:
        shape = GemmShape.square(dim)
        for grid in grids:
            for kernel in (MeshGEMM, CannonGEMM, SummaGEMM):
                cost = kernel.estimate(device, shape, grid)
                results.append(
                    CellResult(
                        label=f"gemm{dim // 1024}K@{grid} {kernel.name}",
                        measured=cost.total_cycles,
                        extra={
                            "compute_cycles": cost.compute_cycles,
                            "comm_cycles": cost.comm_cycles,
                            "ms": cost.milliseconds,
                        },
                    )
                )
    return results


# ---------------------------------------------------------------------------
# Figure 10: MeshGEMV vs Cerebras pipeline GEMV
# ---------------------------------------------------------------------------

def run_figure10(
    device: PLMRDevice = WSE2,
    sizes: Tuple[int, ...] = paper_data.FIGURE10_SIZES,
    grids: Tuple[int, ...] = paper_data.FIGURE10_GRIDS,
) -> List[CellResult]:
    """Total/compute/comm cycles for both GEMV kernels per sweep point."""
    results: List[CellResult] = []
    for dim in sizes:
        for grid in grids:
            grid = min(grid, dim)
            for kernel in (MeshGEMV, PipelineGEMV):
                cost = kernel.estimate(device, rows=dim, cols=dim, grid=grid)
                results.append(
                    CellResult(
                        label=f"gemv{dim // 1024}K@{grid} {kernel.name}",
                        measured=cost.total_cycles,
                        extra={
                            "compute_cycles": cost.compute_cycles,
                            "comm_cycles": cost.comm_cycles,
                            "us": cost.seconds * 1e6,
                        },
                    )
                )
    return results


# ---------------------------------------------------------------------------
# Table 5: KV-cache capacity
# ---------------------------------------------------------------------------

def run_table5(device: PLMRDevice = WSE2) -> List[CellResult]:
    """Maximum generation length under shift vs concat management."""
    results: List[CellResult] = []
    for model_name, published in paper_data.TABLE5.items():
        model = get_model(model_name)
        grid = paper_data.TABLE5_GRIDS[model_name]
        geometry = capacity_geometry(
            model, grid, device.core_memory_bytes, device.num_cores
        )
        concat = ConcatKVCache(geometry)
        shift = ShiftKVCache(geometry)
        results.append(
            CellResult(
                label=f"{model_name} concat",
                measured=float(concat.capacity),
                paper=float(published["concat"]),
            )
        )
        results.append(
            CellResult(
                label=f"{model_name} shift",
                measured=float(shift.capacity),
                paper=float(published["shift"]),
                extra={"ratio": shift.capacity / max(1, concat.capacity)},
            )
        )
    return results


# ---------------------------------------------------------------------------
# Tables 6-8: GPU comparisons
# ---------------------------------------------------------------------------

def run_table6(device: PLMRDevice = WSE2) -> List[CellResult]:
    """MeshGEMV (WSE-2) vs cuBLAS (A100): latency and energy ratio."""
    gpu = GPUModel()
    sub = device.submesh(750)
    results: List[CellResult] = []
    for dim, published in paper_data.TABLE6.items():
        wafer = MeshGEMV.estimate(sub, rows=dim, cols=dim)
        gpu_seconds = gpu.gemv_seconds(dim, dim)
        ratio = energy_ratio(gpu.energy_joules(gpu_seconds), wafer.energy_joules)
        results.append(CellResult(f"gemv{dim // 1024}K wse_ms",
                                  wafer.milliseconds, published["wse_ms"]))
        results.append(CellResult(f"gemv{dim // 1024}K a100_ms",
                                  gpu_seconds * 1e3, published["a100_ms"]))
        results.append(CellResult(f"gemv{dim // 1024}K energy_ratio",
                                  ratio, published["energy_ratio"]))
    return results


def run_table7(device: PLMRDevice = WSE2) -> List[CellResult]:
    """MeshGEMM (WSE-2) vs cuBLAS (A100): latency and energy ratio."""
    gpu = GPUModel()
    sub = device.submesh(750)
    results: List[CellResult] = []
    for dim, published in paper_data.TABLE7.items():
        wafer = MeshGEMM.estimate(sub, GemmShape.square(dim))
        gpu_seconds = gpu.gemm_seconds(dim, dim, dim)
        ratio = energy_ratio(gpu.energy_joules(gpu_seconds), wafer.energy_joules)
        results.append(CellResult(f"gemm{dim // 1024}K wse_ms",
                                  wafer.milliseconds, published["wse_ms"]))
        results.append(CellResult(f"gemm{dim // 1024}K a100_ms",
                                  gpu_seconds * 1e3, published["a100_ms"]))
        results.append(CellResult(f"gemm{dim // 1024}K energy_ratio",
                                  ratio, published["energy_ratio"]))
    return results


def run_table8(device: PLMRDevice = WSE2) -> List[CellResult]:
    """WaferLLM (WSE-2) vs vLLM (A100): 4096/4096 throughput and energy."""
    gpu = GPUModel()
    wafer = WaferLLMSystem(device)
    results: List[CellResult] = []
    for model_name, published in paper_data.TABLE8.items():
        model = get_model(model_name)
        prefill_grid, decode_grid = paper_data.TABLE2_GRIDS[model_name]
        gen = wafer.generation(model, 4096, 4096, prefill_grid, decode_grid)
        gpu_seconds = gpu.vllm_generation_seconds(model, 4096, 4096)
        ratio = energy_ratio(
            gpu.energy_joules(gpu_seconds) / 8192.0,
            gen.energy_joules / 8192.0,
        )
        results.append(CellResult(f"{model_name} wse_tokens_s",
                                  gen.decode_tokens_per_s,
                                  published["wse_tokens_s"]))
        results.append(CellResult(f"{model_name} a100_tokens_s",
                                  gpu.vllm_decode_throughput(model, 4096, 4096),
                                  published["a100_tokens_s"]))
        results.append(CellResult(f"{model_name} energy_ratio",
                                  ratio, published["energy_ratio"]))
    return results


# ---------------------------------------------------------------------------
# Serving extension: chunked-prefill vs exclusive-prefill on one trace
# ---------------------------------------------------------------------------

#: The canonical serving trace (seeded, so every consumer — benchmark,
#: EXPERIMENTS.md, CLI sanity runs — compares on identical requests).
SERVING_TRACE_SPEC = dict(
    num_requests=32,
    seed=1234,
    mean_interarrival_s=0.03,
    seq_in_range=(256, 2048),
    seq_out_range=(32, 192),
    ttft_slo_s=1.0,
    tpot_slo_s=0.05,
)

SERVING_CHUNK_TOKENS = 256
SERVING_MAX_BATCH = 16


def run_serving(device: PLMRDevice = WSE2):
    """Chunked vs exclusive prefill on the canonical trace.

    Returns ``{"chunked": ServingMetrics, "exclusive": ServingMetrics}``
    for LLaMA3-8B on the paper's decode region.  No paper counterpart —
    the paper serves single streams; this quantifies the Section 8
    concurrent-stream roadmap with MOCAP-style chunked prefill.
    """
    from repro.serving import compare_modes, synthetic_trace

    trace = synthetic_trace(**SERVING_TRACE_SPEC)
    return compare_modes(
        get_model("llama3-8b"), device, trace,
        chunk_tokens=SERVING_CHUNK_TOKENS, max_batch=SERVING_MAX_BATCH,
    )


def run_serving_cells(device: PLMRDevice = WSE2) -> List[CellResult]:
    """The serving comparison flattened into report cells (no paper
    column; the claim under test is chunked > exclusive on goodput and
    chunked < exclusive on p99 TTFT)."""
    results: List[CellResult] = []
    for mode, metrics in run_serving(device).items():
        results.extend([
            CellResult(f"{mode}: decode goodput (tok/s)",
                       metrics.goodput_tokens_per_s),
            CellResult(f"{mode}: throughput (tok/s)",
                       metrics.throughput_tokens_per_s),
            CellResult(f"{mode}: p99 TTFT (s)", metrics.p99_ttft_s),
            CellResult(f"{mode}: p50 TTFT (s)", metrics.p50_ttft_s),
            CellResult(f"{mode}: p99 TPOT (ms)", metrics.p99_tpot_s * 1e3),
            CellResult(f"{mode}: SLO attainment", metrics.slo_attainment),
            CellResult(f"{mode}: decode stall (s)", metrics.decode_stall_s),
        ])
    return results


FAULT_SWEEP_SEED = 0


def run_fault_sweep(
    device: PLMRDevice = WSE2,
    model_name: str = "llama3-8b",
    n_requests: int = 16,
    seq_in: int = 1024,
    seq_out: int = 256,
    interval_s: float = 0.05,
    chunk_tokens: int = 256,
    seed: int = FAULT_SWEEP_SEED,
):
    """The canonical fault ladder: one request trace, five scenarios.

    Returns ``[(label, ServingMetrics), ...]`` for a clean fabric,
    transient upsets, link retrains, a core death absorbed by a spare
    region, and core deaths past the spare budget.  The baseline
    makespan is reused as every scenario's fault horizon, so the whole
    sweep is a pure function of ``seed``.  Shared by ``repro faults``
    and the EXPERIMENTS.md generator.
    """
    from repro.mesh.faults import FaultEvent, FaultInjector, FaultSchedule
    from repro.serving import Request, WaferServer

    model = get_model(model_name)
    requests = [
        Request(i, seq_in=seq_in, seq_out=seq_out,
                arrival_s=i * interval_s, priority=i % 2)
        for i in range(n_requests)
    ]

    def run(schedule, fault_rate, spares):
        server = WaferServer(
            model, device, chunk_tokens=chunk_tokens,
            fault_injector=FaultInjector(fault_rate, seed=seed),
            fault_schedule=schedule, spare_regions=spares,
        )
        return server.serve(requests)

    baseline = run(None, 0.0, 1)
    horizon = baseline.makespan_s
    return [
        ("baseline", baseline),
        ("transient upsets", run(
            FaultSchedule.generate(
                horizon, seed=seed, transient_rate_hz=8.0 / horizon),
            0.0, 1)),
        ("link retrains", run(
            FaultSchedule.generate(
                horizon, seed=seed, retrain_rate_hz=4.0 / horizon,
                retrain_duration_s=horizon * 0.01,
                retrain_bw_factor=0.25),
            0.0, 1)),
        ("core death + spare", run(
            FaultSchedule(events=[
                FaultEvent(at_s=horizon * 0.3, kind="core_dead",
                           detail="planned death"),
            ]), 0.0, 1)),
        ("core deaths, no spares", run(
            FaultSchedule(events=[
                FaultEvent(at_s=horizon * 0.3, kind="core_dead",
                           detail="death#0"),
                FaultEvent(at_s=horizon * 0.6, kind="core_dead",
                           detail="death#1"),
            ]), 0.0, 0)),
    ]


def fault_sweep_rows(scenarios) -> List[List[str]]:
    """Render ``run_fault_sweep`` output as the shared table rows."""
    rows: List[List[str]] = []
    for label, m in scenarios:
        rows.append([
            label, str(m.finished), str(len(m.rejected)),
            str(m.retries), str(m.remaps), str(m.degradations),
            f"{m.availability:.4f}",
            f"{m.mttr_s * 1e3:.2f}",
            f"{m.goodput_tokens_per_s:,.0f}",
        ])
    return rows


# ---------------------------------------------------------------------------
# Placement planner: paper-chosen vs planner-chosen layouts
# ---------------------------------------------------------------------------

#: Defect scenarios for the placement comparison: (label, defect kwargs).
#: Rates are per-core / per-link Bernoulli probabilities at seed 11.
PLACEMENT_SCENARIOS: List[Tuple[str, Optional[Dict[str, float]]]] = [
    ("clean wafer", None),
    ("degraded wafer (0.2% cores, 0.1% links dead, 0.4% links at 0.5x)",
     dict(dead_core_rate=0.002, dead_link_rate=0.001,
          degraded_link_rate=0.004, degraded_factor=0.5)),
]


def run_placement_cells(
    device: PLMRDevice = WSE2, model_name: str = "llama3-8b"
) -> List[CellResult]:
    """Predicted decode tokens/s: planner-chosen vs paper-default layout.

    ``measured`` is the planner's validated plan, ``paper`` the paper's
    hand-chosen grids anchored at the origin, both priced on the same
    (possibly degraded) fabric view through the one scoring path.  The
    planner search on a full WSE-2 defect map takes tens of seconds, so
    this table is regenerated manually, not in CI (the CI gate is
    ``repro place --smoke``).
    """
    from repro.mesh.remap import DefectMap
    from repro.placement import (
        PlannerConfig,
        paper_default_plan,
        plan_placement,
    )

    model = get_model(model_name)
    cells: List[CellResult] = []
    for label, rates in PLACEMENT_SCENARIOS:
        defects = None
        if rates is not None:
            defects = DefectMap.generate(
                device.mesh_width, device.mesh_height, seed=11, **rates
            )
        config = PlannerConfig(seed=0)
        result = plan_placement(model, device, defects, config)
        paper = paper_default_plan(model, device, defects, config)
        plan = result.plan
        cells.append(CellResult(
            f"{model_name} decode tok/s, {label}",
            plan.decode_tokens_per_s,
            paper.decode_tokens_per_s,
            extra={
                "planner_prefill_grid": plan.prefill_grid,
                "planner_decode_grid": plan.decode_grid,
                "paper_prefill_grid": paper.prefill_grid,
                "paper_decode_grid": paper.decode_grid,
                "decode_stretch": plan.decode_comm_stretch,
                "paper_decode_stretch": paper.decode_comm_stretch,
                "num_defects": plan.num_defects,
                "validated": float(plan.is_validated),
            },
        ))
        cells.append(CellResult(
            f"{model_name} prefill tok/s, {label}",
            plan.prefill_tokens_per_s,
            paper.prefill_tokens_per_s,
        ))
    return cells
