"""Benchmark harness: paper data, experiment runners, report formatting."""

from repro.bench import paper_data
from repro.bench.experiments import (
    CellResult,
    run_figure9,
    run_figure10,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)
from repro.bench.ascii_charts import grouped_bars, hbar_chart, sparkline
from repro.bench.reporting import Comparison, comparison_table, format_table

__all__ = [
    "paper_data",
    "CellResult",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
    "run_figure9",
    "run_figure10",
    "Comparison",
    "comparison_table",
    "format_table",
    "hbar_chart",
    "grouped_bars",
    "sparkline",
]
