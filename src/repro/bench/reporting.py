"""Report formatting for the benchmark harness.

Benchmarks print the same rows/series the paper reports, side by side
with the published values, so a reader can eyeball "who wins, by what
factor, where the crossovers fall" directly from the bench output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


@dataclass(frozen=True)
class Comparison:
    """One measured value next to its published counterpart."""

    label: str
    measured: float
    paper: Optional[float] = None
    unit: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """measured / paper, when a published value exists."""
        if self.paper is None or self.paper == 0:
            return None
        return self.measured / self.paper

    def row(self) -> List[str]:
        """Render as table cells."""
        cells = [self.label, _fmt(self.measured)]
        if self.paper is not None:
            cells.append(_fmt(self.paper))
            cells.append(f"{self.ratio:.2f}x" if self.ratio is not None else "-")
        else:
            cells.extend(["-", "-"])
        if self.unit:
            cells.append(self.unit)
        return cells


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000:
        return f"{value:,.0f}"
    if magnitude >= 10:
        return f"{value:.1f}"
    if magnitude >= 0.01:
        return f"{value:.3f}"
    return f"{value:.5f}"


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[str]],
) -> str:
    """Render an aligned plain-text table with a title rule."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            str(cell).ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    rule = "-" * max(len(title), sum(widths) + 2 * max(0, len(widths) - 1))
    out = [title, rule, line(headers), rule]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def comparison_table(title: str, comparisons: Sequence[Comparison]) -> str:
    """Standard measured-vs-paper table."""
    return format_table(
        title,
        ["case", "measured", "paper", "measured/paper", "unit"],
        [c.row() for c in comparisons],
    )
