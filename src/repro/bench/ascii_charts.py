"""ASCII charts for benchmark output: grouped bars and log-scale series.

The paper's Figures 9 and 10 are grouped bar charts of cycle counts.
Terminals don't do matplotlib, but they do fixed-width art; these
renderers give benchmark output the same at-a-glance shape the figures
have — which series dominates, where the crossovers sit — without any
plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError

_BAR = "█"
_HALF = "▌"


def hbar_chart(
    title: str,
    values: Dict[str, float],
    width: int = 48,
    unit: str = "",
    log_scale: bool = False,
) -> str:
    """Horizontal bars, one per labelled value.

    With ``log_scale=True`` bar lengths follow log10 of the values —
    the right choice when series span orders of magnitude (as the
    WaferLLM-vs-Ladder comparisons do).
    """
    if not values:
        raise ConfigurationError("no values to chart")
    if any(v < 0 for v in values.values()):
        raise ConfigurationError("bar values must be non-negative")

    def magnitude(value: float) -> float:
        if not log_scale:
            return value
        return math.log10(max(value, 1.0))

    peak = max(magnitude(v) for v in values.values())
    label_width = max(len(k) for k in values)
    lines = [title]
    for label, value in values.items():
        share = magnitude(value) / peak if peak > 0 else 0.0
        cells = share * width
        bar = _BAR * int(cells)
        if cells - int(cells) >= 0.5:
            bar += _HALF
        rendered = f"{value:,.4g}{(' ' + unit) if unit else ''}"
        lines.append(f"  {label:>{label_width}s} |{bar:<{width}s}| {rendered}")
    if log_scale:
        lines.append(f"  {'':>{label_width}s}  (log scale)")
    return "\n".join(lines)


def grouped_bars(
    title: str,
    groups: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 40,
    log_scale: bool = True,
) -> str:
    """Figure-style grouped bars: one block per group, one bar per series."""
    if not groups or not series:
        raise ConfigurationError("groups and series must be non-empty")
    for name, row in series.items():
        if len(row) != len(groups):
            raise ConfigurationError(
                f"series {name!r} has {len(row)} values for "
                f"{len(groups)} groups"
            )
    lines = [title]
    for idx, group in enumerate(groups):
        lines.append(f"{group}:")
        block = {name: row[idx] for name, row in series.items()}
        chart = hbar_chart("", block, width=width, log_scale=log_scale)
        lines.extend(chart.splitlines()[1:])
    return "\n".join(line for line in lines if line.strip() or line == "")


def sparkline(values: Sequence[float]) -> str:
    """Eight-level sparkline of a numeric series."""
    if not values:
        raise ConfigurationError("no values for sparkline")
    ramp = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return ramp[0] * len(values)
    out = []
    for value in values:
        idx = int((value - lo) / (hi - lo) * (len(ramp) - 1))
        out.append(ramp[idx])
    return "".join(out)
