"""Published numbers from the paper's evaluation (Section 7).

Each structure transcribes one table or figure so benchmarks can print
measured-vs-paper comparisons and tests can assert the reproduced
*shapes* (orderings, trends, crossovers) without hard-coding data in
multiple places.
"""

from __future__ import annotations

#: Table 2 — end-to-end inference throughput (generated tokens/s).
#: model -> (seq_in, seq_out) -> {system: tokens/s}
TABLE2 = {
    "llama3-8b": {
        (2048, 128): {"waferllm": 764.4, "t10": 4.6, "ladder": 1.18},
        (4096, 128): {"waferllm": 604.38, "t10": 4.5, "ladder": 1.05},
        (2048, 2048): {"waferllm": 2370.33, "t10": 58.3, "ladder": 7.4},
        (4096, 4096): {"waferllm": 2480.4, "t10": 94.6, "ladder": 8.72},
    },
    "llama2-13b": {
        (2048, 128): {"waferllm": 473.9, "t10": 2.6, "ladder": 0.7},
        (4096, 128): {"waferllm": 413.98, "t10": 2.51, "ladder": 0.69},
        (2048, 2048): {"waferllm": 1690.28, "t10": 35.0, "ladder": 4.93},
        (4096, 4096): {"waferllm": 1848.0, "t10": 58.27, "ladder": 6.14},
    },
}

#: Table 2 core configurations: model -> (prefill grid, decode grid).
TABLE2_GRIDS = {"llama3-8b": (660, 360), "llama2-13b": (750, 375)}

#: Table 3 — prefill throughput (tokens/s), seq_len 4096.
#: model -> {grid: {system: tokens/s}}
TABLE3 = {
    "llama3-8b": {
        480: {"waferllm": 20320.6, "t10": 175.01, "ladder": 61.82},
        600: {"waferllm": 25037.22, "t10": 156.62, "ladder": 42.31},
        720: {"waferllm": 27686.45, "t10": 132.82, "ladder": 31.32},
    },
    "llama2-13b": {
        480: {"waferllm": 13685.10, "t10": 121.02, "ladder": 47.25},
        600: {"waferllm": 16854.21, "t10": 100.53, "ladder": 33.14},
        720: {"waferllm": 17498.28, "t10": 81.28, "ladder": 24.23},
    },
    "codellama-34b": {
        480: {"waferllm": 5471.43, "t10": 49.06, "ladder": 30.01},
        600: {"waferllm": 7540.13, "t10": 46.77, "ladder": 23.14},
        720: {"waferllm": 8526.0, "t10": 41.23, "ladder": 17.67},
    },
    "qwen2-72b": {
        480: {"waferllm": 2785.19, "t10": 24.89, "ladder": 16.77},
        600: {"waferllm": 3775.53, "t10": 23.48, "ladder": 12.80},
        720: {"waferllm": 4421.58, "t10": 21.50, "ladder": 10.12},
    },
}

#: Table 4 — decode throughput (tokens/s).
TABLE4 = {
    "llama3-8b": {
        420: {"waferllm": 2699.94, "t10": 418.27, "ladder": 14.6},
        540: {"waferllm": 2501.54, "t10": 339.43, "ladder": 13.09},
        660: {"waferllm": 2243.25, "t10": 265.12, "ladder": 11.42},
    },
    "llama2-13b": {
        420: {"waferllm": 2039.22, "t10": 341.83, "ladder": 11.01},
        540: {"waferllm": 1899.4, "t10": 270.79, "ladder": 9.93},
        660: {"waferllm": 1739.78, "t10": 233.72, "ladder": 9.07},
    },
    "codellama-34b": {
        420: {"waferllm": 1450.77, "t10": 278.24, "ladder": 6.07},
        540: {"waferllm": 1407.68, "t10": 222.41, "ladder": 6.15},
        660: {"waferllm": 1359.18, "t10": 222.41, "ladder": 5.77},
    },
    "qwen2-72b": {
        420: {"waferllm": 839.71, "t10": 168.5, "ladder": 3.23},
        540: {"waferllm": 824.3, "t10": 132.97, "ladder": 3.29},
        660: {"waferllm": 787.08, "t10": 114.56, "ladder": 3.38},
    },
}

#: Decode context length used for Table 4 runs (matches the end-to-end
#: evaluation's 2048-token generations).
TABLE4_CONTEXT = 2048

#: Table 5 — maximum tokens in generation (KV-cache capacity).
TABLE5 = {
    "llama3-8b": {"concat": 382, "shift": 137548},
    "llama2-13b": {"concat": 16, "shift": 6168},
}
TABLE5_GRIDS = {"llama3-8b": 360, "llama2-13b": 375}

#: Table 6 — GEMV: MeshGEMV (WSE-2) vs cuBLAS (A100).
TABLE6 = {
    16384: {"wse_ms": 0.0012, "a100_ms": 0.336, "energy_ratio": 10.37},
    32768: {"wse_ms": 0.00203, "a100_ms": 1.231, "energy_ratio": 22.46},
}

#: Table 7 — GEMM: MeshGEMM (WSE-2) vs cuBLAS (A100).
TABLE7 = {
    16384: {"wse_ms": 4.8, "a100_ms": 34.4, "energy_ratio": 0.265},
    32768: {"wse_ms": 34.0, "a100_ms": 282.1, "energy_ratio": 0.307},
}

#: Table 8 — end-to-end vs vLLM (A100), 4096 in / 4096 out.
TABLE8 = {
    "llama3-8b": {"wse_tokens_s": 2480.4, "a100_tokens_s": 78.36,
                  "energy_ratio": 1.41},
    "llama2-13b": {"wse_tokens_s": 1848.0, "a100_tokens_s": 47.86,
                   "energy_ratio": 1.71},
}

#: Figure 9 — MeshGEMM sweep settings: matrix sizes x core grids.
FIGURE9_SIZES = (2048, 4096, 8192)
FIGURE9_GRIDS = (480, 540, 600, 660, 720)

#: Figure 9 headline claims asserted by tests: MeshGEMM is fastest at
#: every point; the speedup over SUMMA/Cannon lies in roughly 1-8x.
FIGURE9_SPEEDUP_RANGE = (1.0, 10.0)

#: Figure 10 — MeshGEMV sweep settings.
FIGURE10_SIZES = (4096, 8192, 16384)
FIGURE10_GRIDS = (240, 360, 480, 600, 720)

#: Figure 10 headline: up to ~4.6x total-time improvement.
FIGURE10_MAX_SPEEDUP = 4.6
