"""Exception hierarchy for the WaferLLM reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without swallowing programming errors
(``TypeError``, ``ValueError`` raised by numpy, and so on).

The PLMR-violation errors mirror the four properties of the device model
from the paper (Section 3.1): code that breaks the Memory (M) or Routing (R)
constraints of a simulated device fails *loudly* instead of silently
producing results a real wafer could never compute.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class ShapeError(ReproError):
    """Tensor or tile shapes do not satisfy a kernel's requirements."""


class PLMRViolation(ReproError):
    """Base class for violations of the PLMR device model."""


class MemoryCapacityError(PLMRViolation):
    """A core exceeded its local memory capacity (the M property).

    Raised by :class:`repro.mesh.core_sim.Core` when the sum of resident
    tile bytes would exceed the core's SRAM budget.
    """

    def __init__(self, coord, requested: int, capacity: int, resident: int):
        self.coord = coord
        self.requested = requested
        self.capacity = capacity
        self.resident = resident
        super().__init__(
            f"core {coord}: allocating {requested} B would exceed the "
            f"{capacity} B local memory capacity ({resident} B already resident)"
        )


class RoutingResourceError(PLMRViolation):
    """A core exceeded its routing-path budget (the R property).

    Wafer-scale NoCs encode routes in a handful of header bits, so each core
    may only participate in a small number of distinct communication paths
    (colours).  The fabric model raises this error when a communication plan
    asks a core for more simultaneous paths than the device provides.
    """

    def __init__(self, coord, requested: int, limit: int):
        self.coord = coord
        self.requested = requested
        self.limit = limit
        super().__init__(
            f"core {coord}: plan requires {requested} routing paths but the "
            f"device only provides {limit}"
        )


class MessageSizeError(PLMRViolation):
    """A single NoC message exceeded the fabric's message-size limit."""

    def __init__(self, nbytes: int, limit: int):
        self.nbytes = nbytes
        self.limit = limit
        super().__init__(
            f"message of {nbytes} B exceeds the {limit} B NoC message limit; "
            f"large transfers must be streamed as wavelets"
        )


class PlacementError(ReproError):
    """A tensor layout or placement request is invalid for the mesh."""


class RemapError(PlacementError):
    """The logical-over-physical remap cannot be built.

    Raised when a defect map leaves too few healthy cores (or rows) to
    host the requested dense logical mesh — the wafer-scale analogue of
    a die whose spare rows are exhausted at configuration time.
    """


class FaultEscalationError(ReproError):
    """The runtime's fault-escalation policy ran out of options.

    Raised by the serving layer when a step cannot commit within the
    configured retry budget: at that point the failure process is not
    transient noise but a mis-configured (or catastrophically faulty)
    fabric, and looping further would never terminate.
    """

    def __init__(self, consecutive_failures: int, limit: int):
        self.consecutive_failures = consecutive_failures
        self.limit = limit
        super().__init__(
            f"step failed {consecutive_failures} consecutive times "
            f"(max_retries={limit}); the failure process is pathological — "
            f"lower the fault rate or raise the retry budget"
        )


class SpareExhaustionError(FaultEscalationError):
    """A persistent fault struck with the spare-region pool empty.

    Raised (instead of degrading in place) when the server runs with
    ``fail_on_exhausted_spares=True`` — the fleet configuration, where a
    wafer out of spares should surface as *down* so the router fails the
    affected sessions over to a healthy replica rather than limping on
    at reduced capacity.
    """

    def __init__(self, deaths: int, spares_used: int):
        self.deaths = deaths
        self.spares_used = spares_used
        ReproError.__init__(
            self,
            f"core death #{deaths} struck with all {spares_used} spare "
            f"region(s) already consumed; the wafer's escalation ladder "
            f"is exhausted — fail over to another wafer or degrade"
        )


class SimulationError(ReproError):
    """The functional mesh machine reached an inconsistent state."""


class KVCacheError(ReproError):
    """KV-cache management failed (e.g. capacity exhausted)."""


class CapacityExceeded(KVCacheError):
    """The KV cache cannot accept another token without violating M."""

    def __init__(self, tokens_stored: int, detail: str = ""):
        self.tokens_stored = tokens_stored
        msg = f"KV cache full after {tokens_stored} tokens"
        if detail:
            msg = f"{msg}: {detail}"
        super().__init__(msg)
