"""Mesh-wide communication primitives built on the machine's phases.

These helpers translate logical collective steps (shift every row's tiles
one position around its ring; broadcast along each row; ...) into the
flow sets the :class:`~repro.mesh.machine.MeshMachine` executes.  All of
them operate on every row (or column) of the mesh simultaneously, which
is how the 2D kernels use them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.collectives.interleave import shift_mapping_1d
from repro.errors import ShapeError
from repro.mesh.fabric import Flow
from repro.mesh.machine import MeshMachine
from repro.mesh.topology import Coord


def row_ring_shift(
    machine: MeshMachine,
    pattern: str,
    name: str,
    placement: List[int],
    offset: int = 1,
    row_offsets: Optional[List[int]] = None,
) -> None:
    """Shift a named tile around the logical ring of every row.

    ``placement`` maps logical ring index -> physical X position (use
    :func:`~repro.collectives.interleave.interleave_placement` for
    MeshGEMM, :func:`identity_placement` for Cannon).  ``row_offsets``
    lets each row shift by a different amount (Cannon/MeshGEMM alignment
    skews row ``i`` by ``-i``); otherwise every row shifts by ``offset``.
    """
    width = machine.topology.width
    if len(placement) != width:
        raise ShapeError(
            f"placement length {len(placement)} != mesh width {width}"
        )
    mapping: Dict[Coord, Coord] = {}
    for y in range(machine.topology.height):
        row_shift = row_offsets[y] if row_offsets is not None else offset
        dest_of = shift_mapping_1d(placement, row_shift)
        for x in range(width):
            mapping[(x, y)] = (dest_of[x], y)
    machine.shift_named(pattern, mapping, name, name)


def column_ring_shift(
    machine: MeshMachine,
    pattern: str,
    name: str,
    placement: List[int],
    offset: int = 1,
    col_offsets: Optional[List[int]] = None,
) -> None:
    """Shift a named tile around the logical ring of every column."""
    height = machine.topology.height
    if len(placement) != height:
        raise ShapeError(
            f"placement length {len(placement)} != mesh height {height}"
        )
    mapping: Dict[Coord, Coord] = {}
    for x in range(machine.topology.width):
        col_shift = col_offsets[x] if col_offsets is not None else offset
        dest_of = shift_mapping_1d(placement, col_shift)
        for y in range(height):
            mapping[(x, y)] = (x, dest_of[y])
    machine.shift_named(pattern, mapping, name, name)


def row_broadcast(
    machine: MeshMachine,
    pattern: str,
    src_name: str,
    dst_name: str,
    root_x: int,
) -> None:
    """Broadcast one core's tile to its whole row, in every row at once.

    Used by SUMMA's per-step pivot broadcast; the flow fans out east and
    west of the root, so the critical path is the distance to the row's
    far edge.  The root also keeps a local copy under ``dst_name``.
    """
    flows: List[Flow] = []
    for y in range(machine.topology.height):
        root = (root_x, y)
        machine.copy_tile(root, src_name, dst_name)
        dsts = [(x, y) for x in range(machine.topology.width) if x != root_x]
        if dsts:
            flows.append(Flow.multicast(root, dsts, src_name, dst_name))
    if flows:
        machine.communicate(pattern, flows)
    else:
        # Single-column mesh: the broadcast degenerates to the local copy
        # above.  Record a barrier so the event stays visible without a
        # fake zero-byte communication phase.
        machine.barrier(pattern)


def column_broadcast(
    machine: MeshMachine,
    pattern: str,
    src_name: str,
    dst_name: str,
    root_y: int,
) -> None:
    """Broadcast one core's tile to its whole column, in every column.

    The root also keeps a local copy under ``dst_name``.
    """
    flows: List[Flow] = []
    for x in range(machine.topology.width):
        root = (x, root_y)
        machine.copy_tile(root, src_name, dst_name)
        dsts = [(x, y) for y in range(machine.topology.height) if y != root_y]
        if dsts:
            flows.append(Flow.multicast(root, dsts, src_name, dst_name))
    if flows:
        machine.communicate(pattern, flows)
    else:
        # Single-row mesh: degenerate broadcast, same as row_broadcast.
        machine.barrier(pattern)


def point_to_point(
    machine: MeshMachine,
    pattern: str,
    src: Coord,
    dst: Coord,
    src_name: str,
    dst_name: str,
) -> None:
    """Move one tile between two arbitrary cores (XY routed)."""
    machine.communicate(pattern, [Flow.unicast(src, dst, src_name, dst_name)])


def line_coords(
    machine: MeshMachine, axis: str, index: int
) -> List[Coord]:
    """Coordinates of row ``index`` (axis='x') or column ``index`` (axis='y').

    ``axis`` names the direction of travel along the line: ``'x'`` is a
    row (varying x), ``'y'`` a column (varying y).
    """
    if axis == "x":
        return machine.topology.row(index)
    if axis == "y":
        return machine.topology.column(index)
    raise ShapeError(f"axis must be 'x' or 'y', got {axis!r}")
